/**
 * @file
 * Plain-text table rendering for bench output.
 *
 * Every bench binary reproduces a table or figure from the paper; Table
 * renders the rows/series in aligned monospace so the output can be
 * compared against the paper side by side and diffed between runs.
 */
#pragma once

#include <string>
#include <vector>

namespace comet {

/**
 * An aligned monospace table builder.
 *
 * Columns are sized to the widest cell. Numeric cells should be
 * pre-formatted by the caller (see formatDouble below) so precision is
 * controlled per column.
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Inserts a horizontal separator after the current last row. */
    void addSeparator();

    /** Renders the table, including a header separator, as a string. */
    std::string render() const;

    /** Renders and writes the table to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separator_after_;
};

/** Formats a double with @p digits fractional digits. */
std::string formatDouble(double value, int digits = 2);

/** Formats a ratio as e.g. "2.88x". */
std::string formatSpeedup(double value, int digits = 2);

/** Formats a fraction as e.g. "84.0%". */
std::string formatPercent(double fraction, int digits = 1);

} // namespace comet
