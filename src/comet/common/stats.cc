#include "comet/common/stats.h"

#include <algorithm>
#include <cmath>

#include "comet/common/status.h"

namespace comet {

void
StreamingStats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double
StreamingStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

double
StreamingStats::min() const
{
    COMET_CHECK_MSG(count_ > 0, "min() of an empty accumulator");
    return min_;
}

double
StreamingStats::max() const
{
    COMET_CHECK_MSG(count_ > 0, "max() of an empty accumulator");
    return max_;
}

void
StreamingStats::merge(const StreamingStats &other)
{
    if (&other == this) {
        // Self-merge: duplicating the stream keeps mean/min/max and
        // doubles count and the sum of squared deviations. Handled
        // explicitly — the aliased reads below only stay correct by
        // accident of evaluation order.
        count_ *= 2;
        m2_ *= 2.0;
        return;
    }
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto total =
        static_cast<double>(count_ + other.count_);
    m2_ += other.m2_ + delta * delta *
                           static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

namespace {

/** Percentile of an already-sorted sample set. */
double
percentileOfSorted(const std::vector<double> &sorted, double p)
{
    COMET_CHECK(p >= 0.0 && p <= 100.0);
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

double
exactPercentile(std::vector<double> values, double p)
{
    COMET_CHECK(!values.empty());
    std::sort(values.begin(), values.end());
    return percentileOfSorted(values, p);
}

std::vector<double>
exactPercentiles(std::vector<double> values,
                 const std::vector<double> &ps)
{
    COMET_CHECK(!values.empty());
    std::sort(values.begin(), values.end());
    std::vector<double> out;
    out.reserve(ps.size());
    for (const double p : ps)
        out.push_back(percentileOfSorted(values, p));
    return out;
}

} // namespace comet
