#include "comet/common/table.h"

#include <algorithm>
#include <cstdio>

#include "comet/common/status.h"

namespace comet {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    COMET_CHECK(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    COMET_CHECK_MSG(cells.size() == headers_.size(),
                    "row width must match header width");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    separator_after_.push_back(rows_.size());
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += "| ";
            line += row[c];
            line += std::string(widths[c] - row[c].size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    auto render_separator = [&]() {
        std::string line;
        for (size_t c = 0; c < widths.size(); ++c) {
            line += "|";
            line += std::string(widths[c] + 2, '-');
        }
        line += "|\n";
        return line;
    };

    std::string out = render_row(headers_);
    out += render_separator();
    for (size_t r = 0; r < rows_.size(); ++r) {
        for (size_t s : separator_after_) {
            if (s == r)
                out += render_separator();
        }
        out += render_row(rows_[r]);
    }
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
formatDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

std::string
formatSpeedup(double value, int digits)
{
    return formatDouble(value, digits) + "x";
}

std::string
formatPercent(double fraction, int digits)
{
    return formatDouble(100.0 * fraction, digits) + "%";
}

} // namespace comet
