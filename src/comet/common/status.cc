#include "comet/common/status.h"

namespace comet {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    std::string out = statusCodeName(code_);
    out += ": ";
    out += message_;
    return out;
}

namespace detail {

void
checkFailed(const char *file, int line, const char *expr, const char *msg)
{
    std::fprintf(stderr, "comet: CHECK failed at %s:%d: %s%s%s\n", file,
                 line, expr, msg[0] ? " — " : "", msg);
    std::abort();
}

} // namespace detail

} // namespace comet
