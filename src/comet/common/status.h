/**
 * @file
 * Error handling primitives for the COMET library.
 *
 * COMET uses value-based error handling at module boundaries: operations
 * that can fail for reasons a caller may want to handle return a Status
 * (or Result<T>), while programming errors use COMET_CHECK which aborts.
 * This mirrors the gem5 fatal()/panic() split: Status is for conditions a
 * user of the library can cause (bad configuration, out-of-memory budget),
 * COMET_CHECK for internal invariants.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace comet {

/** Coarse error category carried by a Status. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kResourceExhausted,
    kFailedPrecondition,
    kUnimplemented,
    kInternal,
};

/** Returns a stable human-readable name for a StatusCode. */
const char *statusCodeName(StatusCode code);

/**
 * A success-or-error value.
 *
 * Default-constructed Status is OK. Error statuses carry a code and a
 * message. Statuses are cheap to copy in the error-free case.
 */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() = default;

    /** Constructs an error status with the given code and message. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    /** Factory helpers, one per error category. @{ */
    static Status ok() { return Status(); }
    static Status invalidArgument(std::string msg)
    {
        return Status(StatusCode::kInvalidArgument, std::move(msg));
    }
    static Status outOfRange(std::string msg)
    {
        return Status(StatusCode::kOutOfRange, std::move(msg));
    }
    static Status resourceExhausted(std::string msg)
    {
        return Status(StatusCode::kResourceExhausted, std::move(msg));
    }
    static Status failedPrecondition(std::string msg)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(msg));
    }
    static Status unimplemented(std::string msg)
    {
        return Status(StatusCode::kUnimplemented, std::move(msg));
    }
    static Status internal(std::string msg)
    {
        return Status(StatusCode::kInternal, std::move(msg));
    }
    /** @} */

    /** True when the status represents success. */
    bool isOk() const { return code_ == StatusCode::kOk; }

    /** The error category (kOk on success). */
    StatusCode code() const { return code_; }

    /** The error message (empty on success). */
    const std::string &message() const { return message_; }

    /** Renders "OK" or "<code>: <message>". */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * A value-or-error return type.
 *
 * On success holds a T; on failure holds a non-OK Status. Accessing the
 * value of a failed Result aborts, so callers must test isOk() first when
 * failure is possible.
 */
template <typename T>
class Result
{
  public:
    /** Constructs a successful result holding @p value. */
    Result(T value) : value_(std::move(value)) {}

    /** Constructs a failed result from a non-OK @p status. */
    Result(Status status) : status_(std::move(status))
    {
        if (status_.isOk()) {
            std::fprintf(stderr,
                         "comet: Result constructed from OK status\n");
            std::abort();
        }
    }

    /** True when a value is present. */
    bool isOk() const { return value_.has_value(); }

    /** The status: OK when a value is present. */
    const Status &status() const { return status_; }

    /** Returns the contained value; aborts if the result is an error. @{ */
    const T &
    value() const &
    {
        ensureOk();
        return *value_;
    }

    T &
    value() &
    {
        ensureOk();
        return *value_;
    }

    T &&
    value() &&
    {
        ensureOk();
        return std::move(*value_);
    }
    /** @} */

  private:
    void
    ensureOk() const
    {
        if (!value_.has_value()) {
            std::fprintf(stderr, "comet: Result::value() on error: %s\n",
                         status_.toString().c_str());
            std::abort();
        }
    }

    std::optional<T> value_;
    Status status_ = Status::ok();
};

namespace detail {

[[noreturn]] void
checkFailed(const char *file, int line, const char *expr, const char *msg);

} // namespace detail

} // namespace comet

/**
 * Aborts with a diagnostic when @p expr is false.
 *
 * Use for internal invariants (programming errors), not user-recoverable
 * conditions. Enabled in all build types.
 */
#define COMET_CHECK(expr)                                                  \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::comet::detail::checkFailed(__FILE__, __LINE__, #expr, "");   \
        }                                                                  \
    } while (0)

/** COMET_CHECK with an explanatory message. */
#define COMET_CHECK_MSG(expr, msg)                                         \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::comet::detail::checkFailed(__FILE__, __LINE__, #expr, msg);  \
        }                                                                  \
    } while (0)
