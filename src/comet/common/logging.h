/**
 * @file
 * Minimal leveled logging for the COMET library.
 *
 * Logging goes to stderr so bench binaries can keep stdout clean for
 * paper-style result tables. The global level defaults to kWarn; tests and
 * examples can raise it to kInfo/kDebug for narration.
 */
#pragma once

#include <sstream>
#include <string>

namespace comet {

/** Severity of a log record, in increasing verbosity order. */
enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/** Sets the global log level; records above this level are dropped. */
void setLogLevel(LogLevel level);

/** Returns the current global log level. */
LogLevel logLevel();

namespace detail {

/**
 * Formats one record as `[comet LEVEL file:line] message` (no
 * trailing newline); the directory part of @p file is stripped.
 * Pure function, exposed so tests can pin the format without
 * capturing stderr.
 */
std::string formatLogRecord(LogLevel level, const char *file, int line,
                            const std::string &message);

/**
 * Emits one formatted record to stderr and ticks the `log.warnings` /
 * `log.errors` obs counters for records at kWarn / kError severity.
 * Not for direct use.
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &message);

/**
 * Stream-style log record builder; emits on destruction.
 *
 * Used via the COMET_LOG macro so the file/line of the call site is
 * captured.
 */
class LogStream
{
  public:
    LogStream(LogLevel level, const char *file, int line)
        : level_(level), file_(file), line_(line)
    {
    }

    ~LogStream()
    {
        logMessage(level_, file_, line_, stream_.str());
    }

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    const char *file_;
    int line_;
    std::ostringstream stream_;
};

} // namespace detail
} // namespace comet

/** Stream-style logging: COMET_LOG(kInfo) << "batch=" << b; */
#define COMET_LOG(level)                                                   \
    if (::comet::LogLevel::level > ::comet::logLevel()) {                  \
    } else                                                                 \
        ::comet::detail::LogStream(::comet::LogLevel::level, __FILE__,     \
                                   __LINE__)
