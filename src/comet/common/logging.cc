#include "comet/common/logging.h"

#include <atomic>
#include <cstdio>

namespace comet {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kDebug: return "DEBUG";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &message)
{
    // Strip directories so records stay short.
    const char *base = file;
    for (const char *p = file; *p; ++p) {
        if (*p == '/')
            base = p + 1;
    }
    std::fprintf(stderr, "[comet %s %s:%d] %s\n", levelName(level), base,
                 line, message.c_str());
}

} // namespace detail
} // namespace comet
