#include "comet/common/logging.h"

#include <atomic>
#include <cstdio>

#include "comet/obs/metrics.h"

namespace comet {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kDebug: return "DEBUG";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

std::string
formatLogRecord(LogLevel level, const char *file, int line,
                const std::string &message)
{
    // Strip directories so records stay short.
    const char *base = file;
    for (const char *p = file; *p; ++p) {
        if (*p == '/')
            base = p + 1;
    }
    std::string out = "[comet ";
    out += levelName(level);
    out += ' ';
    out += base;
    out += ':';
    out += std::to_string(line);
    out += "] ";
    out += message;
    return out;
}

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &message)
{
    // Severity counters make warning/error volume visible in the obs
    // dump even when stderr scrolls away (cached references: the
    // registry mutex is paid once per process).
    if (level == LogLevel::kWarn) {
        static obs::Counter &warnings =
            obs::MetricsRegistry::global().counter("log.warnings");
        warnings.add(1);
    } else if (level == LogLevel::kError) {
        static obs::Counter &errors =
            obs::MetricsRegistry::global().counter("log.errors");
        errors.add(1);
    }
    const std::string record =
        formatLogRecord(level, file, line, message);
    // One fprintf per record keeps concurrent records line-atomic.
    std::fprintf(stderr, "%s\n", record.c_str());
}

} // namespace detail
} // namespace comet
