#include "comet/common/rng.h"

#include <cmath>

#include "comet/common/status.h"

namespace comet {

namespace {

/** SplitMix64 step; used only to expand the seed. */
uint64_t
splitMix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    COMET_CHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t x;
    do {
        x = nextU64();
    } while (x >= limit);
    return x % n;
}

double
Rng::gaussian()
{
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

void
Rng::fillGaussian(std::vector<float> &out, double mean, double stddev)
{
    for (auto &x : out)
        x = static_cast<float>(gaussian(mean, stddev));
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

} // namespace comet
