/**
 * @file
 * Streaming statistics accumulators.
 *
 * Used by the serving-trace metrics and available to downstream users:
 * Welford mean/variance in one pass, plus an exact small-sample
 * percentile helper shared by the latency reports.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace comet {

/**
 * One-pass mean/variance/min/max accumulator (Welford's algorithm —
 * numerically stable for long streams).
 */
class StreamingStats
{
  public:
    /** Feeds one sample. */
    void add(double value);

    int64_t count() const { return count_; }
    double mean() const { return mean_; }

    /** Sample variance (n-1 denominator); 0 with fewer than two
     * samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const;
    double max() const;

    /** Merges another accumulator (parallel reduction). */
    void merge(const StreamingStats &other);

  private:
    int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exact percentile of a sample set with linear interpolation between
 * order statistics (the definition used by the latency reports).
 * @pre !values.empty(), 0 <= p <= 100.
 */
double exactPercentile(std::vector<double> values, double p);

/**
 * Exact percentiles of several quantiles over one sample set: sorts
 * once and evaluates every entry of @p ps against the sorted order
 * statistics. Element i equals exactPercentile(values, ps[i]) exactly;
 * report paths that need p50/p95/p99 of the same samples should use
 * this instead of re-sorting per quantile.
 * @pre !values.empty(), every p in [0, 100].
 */
std::vector<double> exactPercentiles(std::vector<double> values,
                                     const std::vector<double> &ps);

} // namespace comet
