/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * All synthetic data in the reproduction (activations, weights, token
 * streams) is generated through Rng so every bench and test is bit-stable
 * across runs and platforms. The generator is SplitMix64-seeded
 * xoshiro256**, implemented locally to avoid std::mt19937 implementation
 * differences.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comet {

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographically secure; intended for synthetic workload
 * generation only.
 */
class Rng
{
  public:
    /** Seeds the generator; the same seed always produces the same
     * stream. */
    explicit Rng(uint64_t seed = 0x434f4d4554ull); // "COMET"

    /** Returns the next raw 64-bit value. */
    uint64_t nextU64();

    /** Returns a uniform double in [0, 1). */
    double uniform();

    /** Returns a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Returns a uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Returns a standard normal sample (Box–Muller, cached pair). */
    double gaussian();

    /** Returns a normal sample with the given mean and stddev. */
    double gaussian(double mean, double stddev);

    /** Fills @p out with iid N(mean, stddev) samples. */
    void fillGaussian(std::vector<float> &out, double mean, double stddev);

    /** Returns a sample from a heavy-tailed (log-normal) distribution;
     * used to synthesize activation outliers. */
    double logNormal(double mu, double sigma);

    /** Shuffles @p v in place (Fisher–Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derives an independent child generator; handy for per-layer
     * streams that must not depend on generation order elsewhere. */
    Rng split();

  private:
    uint64_t s_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

} // namespace comet
