/**
 * @file
 * FMPQ: Fine-grained Mixed-Precision Quantization (paper Section 3).
 *
 * FMPQ quantizes LLM activations block-wise along the channel dimension:
 * the channel axis is split into blocks of k channels (k = 128 by
 * default, matching the GPU's computation granularity), each block gets
 * its own per-token symmetric quantizer, and a block is assigned INT8
 * precision only when it contains outlier channels — every other block
 * is INT4. A channel permutation (shared with the weight matrix to keep
 * the GEMM result unchanged) first clusters the outlier channels into as
 * few blocks as possible so that, in practice, fewer than 20% of blocks
 * need INT8 and more than 84% of GEMM compute runs as W4A4.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/quant/outlier.h"
#include "comet/quant/permutation.h"
#include "comet/quant/quantizer.h"
#include "comet/tensor/packed.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** Precision assigned to one activation block. */
enum class BlockPrecision : uint8_t {
    kInt4 = 0,
    kInt8 = 1,
};

/** Returns "INT4" / "INT8". */
const char *blockPrecisionName(BlockPrecision precision);

/** Configuration of the FMPQ activation quantizer. */
struct FmpqConfig {
    /** Channel block size k; must divide the channel count. The paper
     * uses 128 to match tensor-core tiling. */
    int64_t block_size = 128;

    /** Outlier detector settings. */
    OutlierConfig outlier;

    /** When false, channels keep their original order (Figure 4(c));
     * when true, outlier channels are clustered first (Figure 4(d)). */
    bool enable_permutation = true;

    /** Bit widths for normal and outlier blocks. */
    int low_bits = 4;
    int high_bits = 8;
};

/**
 * Real (packed) mixed-precision quantization of an activation matrix.
 *
 * Data is stored in *permuted* channel order — the order the kernel
 * consumes. Blocks flagged kInt4 are valid in int4_data; kInt8 blocks in
 * int8_data. Scales are per (token, block).
 */
struct MixedQuantizedActivation {
    int64_t tokens = 0;
    int64_t channels = 0;
    int64_t block_size = 0;
    std::vector<BlockPrecision> precisions; ///< one per channel block
    Int4Tensor int4_data;                   ///< [tokens, channels]
    Int8Tensor int8_data;                   ///< [tokens, channels]
    Tensor scales;                          ///< [tokens, num_blocks]

    int64_t
    numBlocks() const
    {
        return static_cast<int64_t>(precisions.size());
    }
};

/**
 * Real (packed) block-wise INT4 quantization of a weight matrix
 * [out_features, in_channels], stored in permuted channel order with one
 * scale per (out_feature, block).
 */
struct BlockQuantizedWeight {
    int64_t out_features = 0;
    int64_t in_channels = 0;
    int64_t block_size = 0;
    Int4Tensor data;   ///< [out_features, in_channels]
    Tensor scales;     ///< [out_features, num_blocks]
};

/**
 * The FMPQ activation quantizer for one linear layer.
 *
 * Calibrated once from sampled activations, then applied to any number
 * of runtime activation matrices. Calibration fixes the channel
 * permutation and the per-block precision; runtime scales are computed
 * per token (dynamic quantization), as the paper's kernel does.
 */
class FmpqActivationQuantizer
{
  public:
    /**
     * Calibrates the quantizer from a calibration activation matrix
     * [tokens, channels].
     *
     * @pre channels % config.block_size == 0.
     */
    static FmpqActivationQuantizer calibrate(const Tensor &calibration,
                                             const FmpqConfig &config = {});

    /**
     * Reassembles a quantizer from previously calibrated state (the
     * serialization path). Validates that the permutation and
     * precision map are structurally consistent with the config.
     */
    static FmpqActivationQuantizer fromParts(
        const FmpqConfig &config, ChannelPermutation permutation,
        std::vector<BlockPrecision> precisions);

    const FmpqConfig &config() const { return config_; }
    const ChannelPermutation &permutation() const { return permutation_; }
    const std::vector<BlockPrecision> &
    blockPrecisions() const
    {
        return precisions_;
    }

    int64_t channels() const { return permutation_.channels(); }
    int64_t
    numBlocks() const
    {
        return static_cast<int64_t>(precisions_.size());
    }

    /** Fraction of blocks quantized to INT4. */
    double int4BlockFraction() const;

    /** Fraction of GEMM multiply-accumulates that execute as W4A4 —
     * equal to the INT4 block fraction because every (M, N) tile over an
     * INT4 channel block is W4A4. */
    double w4a4ComputeFraction() const { return int4BlockFraction(); }

    /**
     * Fake-quantizes runtime activations [tokens, channels] (original
     * channel order in, original channel order out). Used by the
     * accuracy experiments.
     */
    Tensor fakeQuantize(const Tensor &x) const;

    /**
     * Quantizes runtime activations to packed mixed-precision form in
     * permuted channel order, for the bit-exact kernel path.
     */
    MixedQuantizedActivation quantize(const Tensor &x) const;

    /**
     * Quantizes a weight matrix [out_features, in_channels] to packed
     * block-wise INT4, applying this quantizer's channel permutation so
     * the GEMM remains computationally equivalent.
     */
    BlockQuantizedWeight quantizeWeight(const Tensor &w) const;

  private:
    FmpqActivationQuantizer(FmpqConfig config,
                            ChannelPermutation permutation,
                            std::vector<BlockPrecision> precisions)
        : config_(config), permutation_(std::move(permutation)),
          precisions_(std::move(precisions))
    {
    }

    FmpqConfig config_;
    ChannelPermutation permutation_;
    std::vector<BlockPrecision> precisions_;
};

/**
 * Dequantizes a packed mixed-precision activation back to float in
 * *permuted* channel order (for kernel verification).
 */
Tensor dequantize(const MixedQuantizedActivation &qa);

/** Dequantizes a packed block-wise weight back to float (permuted
 * order). */
Tensor dequantize(const BlockQuantizedWeight &qw);

} // namespace comet
