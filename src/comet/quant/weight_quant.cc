#include "comet/quant/weight_quant.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "comet/quant/quantizer.h"

namespace comet {

namespace {

/** Group-wise symmetric fake quantization with per-group clip ratio 1. */
Tensor
rtnImpl(const Tensor &weight, int bits, int64_t group_size)
{
    COMET_CHECK(weight.shape().rank() == 2);
    COMET_CHECK(group_size > 0 && weight.cols() % group_size == 0);
    return fakeQuantPerGroup(weight, bits, group_size);
}

/**
 * Cholesky decomposition of a symmetric positive-definite matrix stored
 * row-major in @p a (n x n). On return the lower triangle holds L.
 * Aborts on a non-PD matrix (damping should prevent that).
 */
void
choleskyInPlace(std::vector<double> &a, int64_t n)
{
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j <= i; ++j) {
            double sum = a[static_cast<size_t>(i * n + j)];
            for (int64_t k = 0; k < j; ++k) {
                sum -= a[static_cast<size_t>(i * n + k)] *
                       a[static_cast<size_t>(j * n + k)];
            }
            if (i == j) {
                COMET_CHECK_MSG(sum > 0.0,
                                "Hessian is not positive definite; "
                                "increase damping");
                a[static_cast<size_t>(i * n + i)] = std::sqrt(sum);
            } else {
                a[static_cast<size_t>(i * n + j)] =
                    sum / a[static_cast<size_t>(j * n + j)];
            }
        }
    }
}

/**
 * Inverts a symmetric positive-definite matrix via Cholesky.
 * @p a is row-major n x n and is replaced by its inverse.
 */
void
spdInverseInPlace(std::vector<double> &a, int64_t n)
{
    choleskyInPlace(a, n);
    // Invert L in place (lower triangular inverse).
    for (int64_t i = 0; i < n; ++i) {
        a[static_cast<size_t>(i * n + i)] =
            1.0 / a[static_cast<size_t>(i * n + i)];
        for (int64_t j = i + 1; j < n; ++j) {
            double sum = 0.0;
            for (int64_t k = i; k < j; ++k) {
                sum -= a[static_cast<size_t>(j * n + k)] *
                       a[static_cast<size_t>(k * n + i)];
            }
            a[static_cast<size_t>(j * n + i)] =
                sum / a[static_cast<size_t>(j * n + j)];
        }
    }
    // inverse(H) = Linv^T * Linv; fill the full symmetric result.
    std::vector<double> inv(static_cast<size_t>(n * n), 0.0);
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j <= i; ++j) {
            double sum = 0.0;
            for (int64_t k = i; k < n; ++k) {
                sum += a[static_cast<size_t>(k * n + i)] *
                       a[static_cast<size_t>(k * n + j)];
            }
            inv[static_cast<size_t>(i * n + j)] = sum;
            inv[static_cast<size_t>(j * n + i)] = sum;
        }
    }
    a.swap(inv);
}

/** Squared error of X*(W - Wq)^T over the calibration matrix. */
double
reconstructionError(const Tensor &x, const Tensor &w, const Tensor &wq)
{
    const int64_t tokens = x.rows();
    const int64_t out = w.rows();
    const int64_t in = w.cols();
    double err = 0.0;
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t n = 0; n < out; ++n) {
            double d = 0.0;
            for (int64_t c = 0; c < in; ++c) {
                d += static_cast<double>(x.at(t, c)) *
                     (w.at(n, c) - wq.at(n, c));
            }
            err += d * d;
        }
    }
    return err;
}

} // namespace

Tensor
rtnQuantizeWeight(const Tensor &weight, const WeightQuantConfig &config)
{
    return rtnImpl(weight, config.bits, config.group_size);
}

Tensor
gptqQuantizeWeight(const Tensor &weight, const Tensor &act_calibration,
                   const WeightQuantConfig &config, float hessian_damping)
{
    COMET_CHECK(weight.shape().rank() == 2);
    COMET_CHECK(act_calibration.shape().rank() == 2);
    COMET_CHECK(act_calibration.cols() == weight.cols());
    const int64_t in = weight.cols();
    const int64_t out = weight.rows();
    COMET_CHECK(config.group_size > 0 && in % config.group_size == 0);

    // Hessian H = X^T X, damped by lambda * mean(diag).
    std::vector<double> hessian(static_cast<size_t>(in * in), 0.0);
    for (int64_t t = 0; t < act_calibration.rows(); ++t) {
        for (int64_t i = 0; i < in; ++i) {
            const double xi = act_calibration.at(t, i);
            if (xi == 0.0)
                continue;
            for (int64_t j = i; j < in; ++j) {
                hessian[static_cast<size_t>(i * in + j)] +=
                    xi * act_calibration.at(t, j);
            }
        }
    }
    for (int64_t i = 0; i < in; ++i) {
        for (int64_t j = 0; j < i; ++j) {
            hessian[static_cast<size_t>(i * in + j)] =
                hessian[static_cast<size_t>(j * in + i)];
        }
    }
    double diag_mean = 0.0;
    for (int64_t i = 0; i < in; ++i)
        diag_mean += hessian[static_cast<size_t>(i * in + i)];
    diag_mean /= static_cast<double>(in);
    const double damp =
        std::max(static_cast<double>(hessian_damping) * diag_mean, 1e-8);
    for (int64_t i = 0; i < in; ++i)
        hessian[static_cast<size_t>(i * in + i)] += damp;

    spdInverseInPlace(hessian, in);
    const std::vector<double> &hinv = hessian;

    // Working copy of the weights; columns are quantized in order and
    // the rounding error of each column is propagated into later ones.
    Tensor work = weight;
    Tensor result(out, in);
    const QuantRange range = signedRange(config.bits);

    std::vector<QuantParams> row_group_params(static_cast<size_t>(out));
    for (int64_t c = 0; c < in; ++c) {
        if (c % config.group_size == 0) {
            // Refresh per-row scales from the *current* (compensated)
            // weights of this group, as GPTQ's grouped variant does.
            for (int64_t n = 0; n < out; ++n) {
                float abs_max = 0.0f;
                for (int64_t g = c;
                     g < c + config.group_size; ++g) {
                    abs_max = std::max(abs_max,
                                       std::fabs(work.at(n, g)));
                }
                row_group_params[static_cast<size_t>(n)] =
                    chooseSymmetric(abs_max, config.bits);
            }
        }
        const double d = hinv[static_cast<size_t>(c * in + c)];
        for (int64_t n = 0; n < out; ++n) {
            const QuantParams &params =
                row_group_params[static_cast<size_t>(n)];
            const float w = work.at(n, c);
            const int32_t q = std::clamp(params.quantize(w), range.qmin,
                                         range.qmax);
            const float wq = params.dequantize(q);
            result.at(n, c) = wq;
            const double err = (static_cast<double>(w) - wq) / d;
            // Propagate into not-yet-quantized columns.
            for (int64_t j = c + 1; j < in; ++j) {
                work.at(n, j) -= static_cast<float>(
                    err * hinv[static_cast<size_t>(c * in + j)]);
            }
        }
    }
    return result;
}

Tensor
awqQuantizeWeight(const Tensor &weight, const Tensor &act_calibration,
                  const WeightQuantConfig &config)
{
    COMET_CHECK(weight.shape().rank() == 2);
    COMET_CHECK(act_calibration.shape().rank() == 2);
    COMET_CHECK(act_calibration.cols() == weight.cols());
    const int64_t in = weight.cols();
    const int64_t out = weight.rows();

    // Per-channel activation magnitude (the AWQ "importance" signal).
    std::vector<double> act_mag(static_cast<size_t>(in), 0.0);
    for (int64_t t = 0; t < act_calibration.rows(); ++t) {
        for (int64_t c = 0; c < in; ++c) {
            act_mag[static_cast<size_t>(c)] +=
                std::fabs(act_calibration.at(t, c));
        }
    }
    for (auto &m : act_mag)
        m = std::max(m / act_calibration.rows(), 1e-8);

    // Cap the calibration tokens used for candidate scoring; AWQ's grid
    // search only needs a relative ranking.
    const int64_t score_tokens = std::min<int64_t>(
        act_calibration.rows(), 32);
    Tensor score_x(score_tokens, in);
    for (int64_t t = 0; t < score_tokens; ++t) {
        for (int64_t c = 0; c < in; ++c)
            score_x.at(t, c) = act_calibration.at(t, c);
    }

    Tensor best = rtnQuantizeWeight(weight, config);
    double best_err = reconstructionError(score_x, weight, best);

    for (int step = 1; step <= 10; ++step) {
        const double alpha = 0.1 * step;
        // Candidate per-channel scales, normalized to geometric mean 1
        // so the overall weight magnitude is preserved.
        std::vector<double> scales(static_cast<size_t>(in));
        double log_sum = 0.0;
        for (int64_t c = 0; c < in; ++c) {
            scales[static_cast<size_t>(c)] =
                std::pow(act_mag[static_cast<size_t>(c)], alpha);
            log_sum += std::log(scales[static_cast<size_t>(c)]);
        }
        const double norm = std::exp(log_sum / static_cast<double>(in));
        for (auto &s : scales)
            s = std::max(s / norm, 1e-4);

        Tensor scaled(out, in);
        for (int64_t n = 0; n < out; ++n) {
            for (int64_t c = 0; c < in; ++c) {
                scaled.at(n, c) = static_cast<float>(
                    weight.at(n, c) * scales[static_cast<size_t>(c)]);
            }
        }
        Tensor q = rtnQuantizeWeight(scaled, config);
        for (int64_t n = 0; n < out; ++n) {
            for (int64_t c = 0; c < in; ++c) {
                q.at(n, c) = static_cast<float>(
                    q.at(n, c) / scales[static_cast<size_t>(c)]);
            }
        }
        const double err = reconstructionError(score_x, weight, q);
        if (err < best_err) {
            best_err = err;
            best = std::move(q);
        }
    }
    return best;
}

Tensor
omniquantQuantizeWeightLet(const Tensor &weight,
                           const Tensor &act_calibration,
                           const WeightQuantConfig &config)
{
    COMET_CHECK(weight.shape().rank() == 2);
    COMET_CHECK(act_calibration.shape().rank() == 2);
    COMET_CHECK(act_calibration.cols() == weight.cols());
    const int64_t in = weight.cols();
    const int64_t out = weight.rows();

    // Per-channel activation and weight magnitudes.
    std::vector<float> a_max(static_cast<size_t>(in), 0.0f);
    for (int64_t t = 0; t < act_calibration.rows(); ++t) {
        for (int64_t c = 0; c < in; ++c) {
            a_max[static_cast<size_t>(c)] =
                std::max(a_max[static_cast<size_t>(c)],
                         std::fabs(act_calibration.at(t, c)));
        }
    }
    std::vector<float> w_max(static_cast<size_t>(in), 0.0f);
    for (int64_t n = 0; n < out; ++n) {
        for (int64_t c = 0; c < in; ++c) {
            w_max[static_cast<size_t>(c)] =
                std::max(w_max[static_cast<size_t>(c)],
                         std::fabs(weight.at(n, c)));
        }
    }
    std::vector<float> s(static_cast<size_t>(in), 1.0f);
    for (size_t c = 0; c < s.size(); ++c) {
        const float a = std::max(a_max[c], 1e-5f);
        const float w = std::max(w_max[c], 1e-5f);
        s[c] = std::max(std::sqrt(a / w), 1e-4f);
    }

    Tensor scaled(out, in);
    for (int64_t n = 0; n < out; ++n) {
        for (int64_t c = 0; c < in; ++c)
            scaled.at(n, c) = weight.at(n, c) *
                              s[static_cast<size_t>(c)];
    }
    Tensor q = omniquantQuantizeWeight(scaled, config);
    for (int64_t n = 0; n < out; ++n) {
        for (int64_t c = 0; c < in; ++c)
            q.at(n, c) /= s[static_cast<size_t>(c)];
    }
    return q;
}

Tensor
omniquantQuantizeWeight(const Tensor &weight,
                        const WeightQuantConfig &config)
{
    COMET_CHECK(weight.shape().rank() == 2);
    const int64_t in = weight.cols();
    const int64_t out = weight.rows();
    COMET_CHECK(config.group_size > 0 && in % config.group_size == 0);
    const QuantRange range = signedRange(config.bits);

    Tensor result(out, in);
    for (int64_t n = 0; n < out; ++n) {
        for (int64_t g = 0; g < in; g += config.group_size) {
            float abs_max = 0.0f;
            for (int64_t c = g; c < g + config.group_size; ++c)
                abs_max = std::max(abs_max, std::fabs(weight.at(n, c)));

            double best_mse = -1.0;
            float best_clip = 1.0f;
            for (int step = 0; step <= 10; ++step) {
                const float clip = 1.0f - 0.05f * step; // 1.00 .. 0.50
                const QuantParams params =
                    chooseSymmetric(abs_max * clip, config.bits);
                double mse = 0.0;
                for (int64_t c = g; c < g + config.group_size; ++c) {
                    const float w = weight.at(n, c);
                    const int32_t q = std::clamp(params.quantize(w),
                                                 range.qmin, range.qmax);
                    const double d = static_cast<double>(w) -
                                     params.dequantize(q);
                    mse += d * d;
                }
                if (best_mse < 0.0 || mse < best_mse) {
                    best_mse = mse;
                    best_clip = clip;
                }
            }
            const QuantParams params =
                chooseSymmetric(abs_max * best_clip, config.bits);
            for (int64_t c = g; c < g + config.group_size; ++c) {
                const int32_t q =
                    std::clamp(params.quantize(weight.at(n, c)),
                               range.qmin, range.qmax);
                result.at(n, c) = params.dequantize(q);
            }
        }
    }
    return result;
}

} // namespace comet
