/**
 * @file
 * SmoothQuant baseline (Xiao et al., ICML'23) — the paper's W8A8
 * weight-activation comparison point.
 *
 * SmoothQuant migrates quantization difficulty from activations to
 * weights with a per-channel equivalent transformation: activations are
 * divided by s_c and the corresponding weight column is multiplied by
 * s_c, where s_c = max|X_c|^alpha / max|W_c|^(1-alpha). Both sides are
 * then quantized to INT8 (per-token activations, per-channel weights).
 */
#pragma once

#include <vector>

#include "comet/quant/outlier.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** SmoothQuant configuration. */
struct SmoothQuantConfig {
    float alpha = 0.5f; ///< migration strength
    int weight_bits = 8;
    int act_bits = 8;
};

/**
 * SmoothQuant applied to one linear layer (X [tokens, in],
 * W [out, in]).
 */
class SmoothQuantLayer
{
  public:
    /** Calibrates smoothing factors from activation statistics and the
     * weight matrix. */
    static SmoothQuantLayer calibrate(const Tensor &act_calibration,
                                      const Tensor &weight,
                                      const SmoothQuantConfig &config = {});

    const SmoothQuantConfig &config() const { return config_; }

    /** Per-channel smoothing divisors s_c (all >= a small epsilon). */
    const std::vector<float> &
    smoothingFactors() const
    {
        return factors_;
    }

    /** The fake-quantized, smoothed weight W' = quant(W * s). */
    const Tensor &quantizedWeight() const { return quantized_weight_; }

    /**
     * Simulates the quantized layer: smooths X, fake-quantizes per
     * token, and returns the dequantized smoothed activations X' such
     * that X' * quantizedWeight()^T approximates X * W^T.
     */
    Tensor fakeQuantActivations(const Tensor &x) const;

  private:
    SmoothQuantLayer(SmoothQuantConfig config, std::vector<float> factors,
                     Tensor quantized_weight)
        : config_(config), factors_(std::move(factors)),
          quantized_weight_(std::move(quantized_weight))
    {
    }

    SmoothQuantConfig config_;
    std::vector<float> factors_;
    Tensor quantized_weight_;
};

} // namespace comet
