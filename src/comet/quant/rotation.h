/**
 * @file
 * Hadamard-rotation outlier suppression (QuaRot/SpinQuant-lite — the
 * paper's references [4] and [32]).
 *
 * The competing line of work the paper discusses in Section 2.2
 * attacks activation outliers not by mixed precision but by rotating
 * the channel basis: multiplying activations (and, inversely, the
 * weights) by a random orthogonal matrix spreads each outlier
 * channel's energy across all channels, after which uniform low-bit
 * quantization becomes viable. The canonical cheap rotation is a
 * randomized Hadamard transform R = D * H / sqrt(n) with D a random
 * +-1 diagonal and H the Walsh-Hadamard matrix — O(n log n) to apply
 * and exactly orthogonal, so (x R)(w R)^T == x w^T.
 *
 * This module implements the fast Walsh-Hadamard transform, the seeded
 * rotation, and a rotation-based W4A4 fake quantizer used as an extra
 * comparison point against FMPQ (`bench_ablation_rotation`).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/tensor/tensor.h"

namespace comet {

/**
 * In-place orthonormal fast Walsh-Hadamard transform of @p data
 * (H / sqrt(n)); applying it twice returns the input.
 * @pre data.size() is a power of two.
 */
void fastWalshHadamard(std::vector<float> &data);

/**
 * A seeded randomized Hadamard rotation over a fixed channel count.
 *
 * R = D * H / sqrt(n). apply() maps row vectors x -> x R;
 * applyInverse() maps x -> x R^T. Both are O(n log n) per row.
 */
class HadamardRotation
{
  public:
    /** @pre channels is a power of two. */
    HadamardRotation(int64_t channels, uint64_t seed);

    int64_t channels() const { return channels_; }

    /** Rotates every row of a [rows, channels] matrix: X -> X R. */
    Tensor apply(const Tensor &x) const;

    /** Applies the inverse rotation: X -> X R^T. */
    Tensor applyInverse(const Tensor &x) const;

  private:
    int64_t channels_;
    std::vector<float> signs_; ///< the +-1 diagonal D
};

/**
 * QuaRot-lite W4A4 fake quantization of one linear layer:
 * activations quantize per token and weights per group *in the
 * rotated basis*, and both come back expressed in the original basis
 * so the layer composes unchanged:
 *
 *   x' = quant(x R) R^T,   w' = quant(w R) R^T
 *   =>  x' w'^T = quant(x R) quant(w R)^T  ~=  x w^T.
 */
struct RotatedQuantConfig {
    int act_bits = 4;
    int weight_bits = 4;
    int64_t weight_group_size = 16;
    uint64_t seed = 0x40ad;
};

/** Rotation-quantizes a weight matrix [out, in] (in original basis). */
Tensor rotatedQuantizeWeight(const Tensor &weight,
                             const RotatedQuantConfig &config = {});

/** Rotation-quantizes activations [tokens, in] (in original basis). */
Tensor rotatedFakeQuantActivations(const Tensor &x,
                                   const RotatedQuantConfig &config = {});

} // namespace comet
