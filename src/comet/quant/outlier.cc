#include "comet/quant/outlier.h"

#include <algorithm>
#include <cmath>

#include "comet/common/stats.h"

namespace comet {

ChannelStats
computeChannelStats(const Tensor &calibration)
{
    COMET_CHECK(calibration.shape().rank() == 2);
    const int64_t tokens = calibration.rows();
    const int64_t channels = calibration.cols();
    ChannelStats stats;
    stats.abs_max.assign(static_cast<size_t>(channels), 0.0f);
    stats.abs_mean.assign(static_cast<size_t>(channels), 0.0f);
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t c = 0; c < channels; ++c) {
            const float a = std::fabs(calibration.at(t, c));
            auto ci = static_cast<size_t>(c);
            stats.abs_max[ci] = std::max(stats.abs_max[ci], a);
            stats.abs_mean[ci] += a;
        }
    }
    for (auto &m : stats.abs_mean)
        m /= static_cast<float>(tokens);

    std::vector<float> sorted = stats.abs_max;
    std::sort(sorted.begin(), sorted.end());
    stats.median_abs_max = sorted[sorted.size() / 2];
    return stats;
}

ChannelStats
computeChannelStatsPercentile(const Tensor &calibration,
                              double percentile)
{
    COMET_CHECK(calibration.shape().rank() == 2);
    COMET_CHECK(percentile > 0.0 && percentile <= 100.0);
    const int64_t tokens = calibration.rows();
    const int64_t channels = calibration.cols();
    ChannelStats stats;
    stats.abs_max.assign(static_cast<size_t>(channels), 0.0f);
    stats.abs_mean.assign(static_cast<size_t>(channels), 0.0f);
    std::vector<double> column(static_cast<size_t>(tokens));
    for (int64_t c = 0; c < channels; ++c) {
        double sum = 0.0;
        for (int64_t t = 0; t < tokens; ++t) {
            const double a = std::fabs(calibration.at(t, c));
            column[static_cast<size_t>(t)] = a;
            sum += a;
        }
        stats.abs_max[static_cast<size_t>(c)] = static_cast<float>(
            exactPercentile(column, percentile));
        stats.abs_mean[static_cast<size_t>(c)] =
            static_cast<float>(sum / static_cast<double>(tokens));
    }
    std::vector<float> sorted = stats.abs_max;
    std::sort(sorted.begin(), sorted.end());
    stats.median_abs_max = sorted[sorted.size() / 2];
    return stats;
}

ChannelStats
mergeChannelStats(const std::vector<ChannelStats> &parts)
{
    COMET_CHECK(!parts.empty());
    const size_t channels = parts.front().abs_max.size();
    ChannelStats merged;
    merged.abs_max.assign(channels, 0.0f);
    merged.abs_mean.assign(channels, 0.0f);
    for (const auto &part : parts) {
        COMET_CHECK_MSG(part.abs_max.size() == channels,
                        "channel counts must match across batches");
        for (size_t c = 0; c < channels; ++c) {
            merged.abs_max[c] = std::max(merged.abs_max[c],
                                         part.abs_max[c]);
            merged.abs_mean[c] += part.abs_mean[c];
        }
    }
    for (auto &m : merged.abs_mean)
        m /= static_cast<float>(parts.size());

    std::vector<float> sorted = merged.abs_max;
    std::sort(sorted.begin(), sorted.end());
    merged.median_abs_max = sorted[sorted.size() / 2];
    return merged;
}

OutlierReport
detectOutliers(const ChannelStats &stats, const OutlierConfig &config)
{
    COMET_CHECK(config.threshold_ratio > 1.0f);
    OutlierReport report;
    const size_t channels = stats.abs_max.size();
    report.is_outlier.assign(channels, 0);
    // Guard against all-zero calibration: threshold of 0 would flag
    // every channel with any signal.
    const float base = std::max(stats.median_abs_max, 1e-12f);
    report.threshold = config.threshold_ratio * base;
    for (size_t c = 0; c < channels; ++c) {
        if (stats.abs_max[c] > report.threshold) {
            report.is_outlier[c] = 1;
            report.outlier_channels.push_back(static_cast<int64_t>(c));
        }
    }
    return report;
}

} // namespace comet
