#include "comet/quant/smooth_quant.h"

#include <algorithm>
#include <cmath>

#include "comet/quant/quantizer.h"

namespace comet {

SmoothQuantLayer
SmoothQuantLayer::calibrate(const Tensor &act_calibration,
                            const Tensor &weight,
                            const SmoothQuantConfig &config)
{
    COMET_CHECK(act_calibration.shape().rank() == 2);
    COMET_CHECK(weight.shape().rank() == 2);
    COMET_CHECK_MSG(act_calibration.cols() == weight.cols(),
                    "activation channels must match weight in_channels");
    COMET_CHECK(config.alpha >= 0.0f && config.alpha <= 1.0f);

    const int64_t in_channels = weight.cols();
    const ChannelStats act_stats = computeChannelStats(act_calibration);

    // Per-input-channel weight magnitude max_n |W[n, c]|.
    std::vector<float> w_abs_max(static_cast<size_t>(in_channels), 0.0f);
    for (int64_t n = 0; n < weight.rows(); ++n) {
        for (int64_t c = 0; c < in_channels; ++c) {
            auto ci = static_cast<size_t>(c);
            w_abs_max[ci] = std::max(w_abs_max[ci],
                                     std::fabs(weight.at(n, c)));
        }
    }

    std::vector<float> factors(static_cast<size_t>(in_channels), 1.0f);
    for (size_t c = 0; c < factors.size(); ++c) {
        const float a = std::max(act_stats.abs_max[c], 1e-5f);
        const float w = std::max(w_abs_max[c], 1e-5f);
        const float s = std::pow(a, config.alpha) /
                        std::pow(w, 1.0f - config.alpha);
        factors[c] = std::max(s, 1e-5f);
    }

    // Smooth the weight (multiply columns by s) and fake-quantize it
    // per output channel.
    Tensor smoothed(weight.rows(), in_channels);
    for (int64_t n = 0; n < weight.rows(); ++n) {
        for (int64_t c = 0; c < in_channels; ++c) {
            smoothed.at(n, c) =
                weight.at(n, c) * factors[static_cast<size_t>(c)];
        }
    }
    Tensor quantized_weight = fakeQuantPerRow(smoothed,
                                              config.weight_bits);
    return SmoothQuantLayer(config, std::move(factors),
                            std::move(quantized_weight));
}

Tensor
SmoothQuantLayer::fakeQuantActivations(const Tensor &x) const
{
    COMET_CHECK(x.shape().rank() == 2);
    COMET_CHECK(x.cols() ==
                static_cast<int64_t>(factors_.size()));
    Tensor smoothed(x.rows(), x.cols());
    for (int64_t t = 0; t < x.rows(); ++t) {
        for (int64_t c = 0; c < x.cols(); ++c) {
            smoothed.at(t, c) =
                x.at(t, c) / factors_[static_cast<size_t>(c)];
        }
    }
    return fakeQuantPerRow(smoothed, config_.act_bits);
}

} // namespace comet
