/**
 * @file
 * Outlier-channel analysis for LLM activations (paper Section 3.1).
 *
 * LLMs past ~6B parameters develop a small set of channels whose
 * magnitudes exceed typical hidden-state values by 10-100x. FMPQ's
 * precision decisions hinge on locating those channels from a calibration
 * set; this header provides the statistics and the detector.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/tensor/tensor.h"

namespace comet {

/** Per-channel calibration statistics of an activation matrix
 * [tokens, channels]. */
struct ChannelStats {
    std::vector<float> abs_max;  ///< per-channel max |x|
    std::vector<float> abs_mean; ///< per-channel mean |x|
    float median_abs_max = 0.0f; ///< median over channels of abs_max
};

/** Computes per-channel statistics over the calibration matrix. */
ChannelStats computeChannelStats(const Tensor &calibration);

/**
 * Percentile-robust variant: abs_max is replaced by the per-channel
 * @p percentile of |x| (e.g. 99.5), so a single corrupt calibration
 * token cannot promote a normal channel to outlier status — a common
 * PTQ-calibration hardening. @pre 0 < percentile <= 100.
 */
ChannelStats computeChannelStatsPercentile(const Tensor &calibration,
                                           double percentile);

/** Merges statistics from multiple calibration batches (elementwise max
 * of abs_max, mean of abs_mean). @pre equal channel counts. */
ChannelStats mergeChannelStats(const std::vector<ChannelStats> &parts);

/** Configuration of the outlier detector. */
struct OutlierConfig {
    /** A channel is an outlier when abs_max > ratio * median(abs_max). */
    float threshold_ratio = 6.0f;
};

/** Result of outlier detection. */
struct OutlierReport {
    std::vector<int64_t> outlier_channels; ///< sorted ascending
    std::vector<uint8_t> is_outlier;       ///< bitmap, one per channel
    float threshold = 0.0f;                ///< absolute magnitude cutoff
};

/** Flags channels whose calibration abs-max exceeds the configured
 * multiple of the median channel magnitude. */
OutlierReport detectOutliers(const ChannelStats &stats,
                             const OutlierConfig &config = {});

} // namespace comet
