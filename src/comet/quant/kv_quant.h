/**
 * @file
 * KV-cache quantization (paper Section 3.2, last paragraph).
 *
 * The attention (activation-activation) operator is memory-bound, so the
 * KV cache can be quantized aggressively without regard to tensor-core
 * granularity. COMET uses channel-wise *asymmetric* INT4 group
 * quantization: each channel of the K/V tensors gets its own affine
 * quantizer, re-derived per group of consecutive tokens so scales track
 * the evolving cache. RoPE and softmax regularize K's outliers and V has
 * few, which is why 4 bits suffice.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/quant/quantizer.h"
#include "comet/tensor/packed.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** Configuration of the KV-cache quantizer. */
struct KvQuantConfig {
    int bits = 4;             ///< precision of the stored cache
    int64_t group_size = 64;  ///< tokens per scale group
    bool asymmetric = true;   ///< affine (true) vs symmetric (false)
};

/** Packed quantized KV tensor: data plus per-(group, channel) params. */
struct QuantizedKv {
    int64_t tokens = 0;
    int64_t channels = 0;
    int64_t group_size = 0;
    Int8Tensor data;          ///< values in [-8,7] for 4-bit configs
    std::vector<QuantParams> params; ///< [num_groups * channels]

    int64_t
    numGroups() const
    {
        return (tokens + group_size - 1) / group_size;
    }
};

/**
 * The KV-cache quantizer. Stateless: parameters are derived from the
 * data being quantized (the cache is quantized as it is appended, so no
 * calibration pass exists).
 */
class KvCacheQuantizer
{
  public:
    explicit KvCacheQuantizer(KvQuantConfig config = {});

    const KvQuantConfig &config() const { return config_; }

    /** Fake-quantizes a [tokens, channels] K or V tensor. */
    Tensor fakeQuantize(const Tensor &kv) const;

    /** Real quantization to packed form. */
    QuantizedKv quantize(const Tensor &kv) const;

    /** Dequantizes a packed KV tensor back to float. */
    Tensor dequantize(const QuantizedKv &q) const;

  private:
    KvQuantConfig config_;
};

} // namespace comet
