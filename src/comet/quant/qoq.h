/**
 * @file
 * QoQ baseline (QServe, Lin et al. 2024) — the paper's W4A8KV4
 * comparison point.
 *
 * QoQ uses *progressive group quantization* for weights: an outer
 * per-output-channel INT8 quantizer and, nested inside it, per-group
 * INT4 quantizers whose scales are themselves small integers in units of
 * the outer scale (so dequantization to INT8 is cheap on the GPU).
 * Activations are per-token INT8 and the KV cache is INT4.
 */
#pragma once

#include "comet/quant/kv_quant.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** QoQ configuration. */
struct QoqConfig {
    int64_t group_size = 128; ///< channels per inner INT4 group
    int weight_bits = 4;
    int act_bits = 8;
    KvQuantConfig kv{4, 64, true};
};

/** QoQ applied to one linear layer. */
class QoqLayer
{
  public:
    /** Quantizes the weight with progressive group quantization. */
    static QoqLayer calibrate(const Tensor &weight,
                              const QoqConfig &config = {});

    /**
     * Quantizes with QServe's smoothing stage first: per-channel
     * scales s_c = sqrt(max|X_c| / max|W_c|) migrate precision toward
     * high-activation channels (folded back after quantization), then
     * progressive group quantization runs on the smoothed weight.
     */
    static QoqLayer calibrate(const Tensor &weight,
                              const Tensor &act_calibration,
                              const QoqConfig &config = {});

    const QoqConfig &config() const { return config_; }

    /** The fake-quantized weight on the progressive INT4 grid. */
    const Tensor &quantizedWeight() const { return quantized_weight_; }

    /** Per-token INT8 fake quantization of runtime activations. */
    Tensor fakeQuantActivations(const Tensor &x) const;

    /** INT4 fake quantization of a KV tensor. */
    Tensor fakeQuantKv(const Tensor &kv) const;

  private:
    QoqLayer(QoqConfig config, Tensor quantized_weight)
        : config_(config), quantized_weight_(std::move(quantized_weight))
    {
    }

    QoqConfig config_;
    Tensor quantized_weight_;
};

} // namespace comet
