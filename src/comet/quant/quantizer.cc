#include "comet/quant/quantizer.h"

#include <algorithm>
#include <cmath>

namespace comet {

QuantRange
signedRange(int bits)
{
    COMET_CHECK(bits >= 2 && bits <= 16);
    const int32_t qmax = (1 << (bits - 1)) - 1;
    return QuantRange{-qmax - 1, qmax};
}

QuantParams
chooseSymmetric(float abs_max, int bits)
{
    const QuantRange range = signedRange(bits);
    QuantParams params;
    params.zero_point = 0;
    params.scale = abs_max > 0
                       ? abs_max / static_cast<float>(range.qmax)
                       : 1.0f;
    return params;
}

QuantParams
chooseAsymmetric(float min_val, float max_val, int bits)
{
    const QuantRange range = signedRange(bits);
    min_val = std::min(min_val, 0.0f);
    max_val = std::max(max_val, 0.0f);
    QuantParams params;
    const float span = max_val - min_val;
    if (span <= 0.0f) {
        params.scale = 1.0f;
        params.zero_point = 0;
        return params;
    }
    params.scale = span / static_cast<float>(range.qmax - range.qmin);
    const float zp = static_cast<float>(range.qmin) -
                     min_val / params.scale;
    params.zero_point = static_cast<int32_t>(std::lround(zp));
    params.zero_point = std::clamp(params.zero_point, range.qmin,
                                   range.qmax);
    return params;
}

float
fakeQuantValue(float x, const QuantParams &params, int bits)
{
    const QuantRange range = signedRange(bits);
    int32_t q = params.quantize(x);
    q = std::clamp(q, range.qmin, range.qmax);
    return params.dequantize(q);
}

Tensor
fakeQuantPerTensor(const Tensor &x, int bits)
{
    const QuantParams params = chooseSymmetric(x.absMax(), bits);
    Tensor out(x.shape());
    const int64_t n = x.numel();
    for (int64_t i = 0; i < n; ++i)
        out[i] = fakeQuantValue(x[i], params, bits);
    return out;
}

Tensor
fakeQuantPerRow(const Tensor &x, int bits)
{
    COMET_CHECK(x.shape().rank() == 2);
    const int64_t rows = x.rows(), cols = x.cols();
    Tensor out(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
        float abs_max = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            abs_max = std::max(abs_max, std::fabs(x.at(r, c)));
        const QuantParams params = chooseSymmetric(abs_max, bits);
        for (int64_t c = 0; c < cols; ++c)
            out.at(r, c) = fakeQuantValue(x.at(r, c), params, bits);
    }
    return out;
}

Tensor
fakeQuantPerColumn(const Tensor &x, int bits)
{
    COMET_CHECK(x.shape().rank() == 2);
    const int64_t rows = x.rows(), cols = x.cols();
    std::vector<float> abs_max(static_cast<size_t>(cols), 0.0f);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            abs_max[static_cast<size_t>(c)] =
                std::max(abs_max[static_cast<size_t>(c)],
                         std::fabs(x.at(r, c)));
        }
    }
    Tensor out(rows, cols);
    for (int64_t c = 0; c < cols; ++c) {
        const QuantParams params =
            chooseSymmetric(abs_max[static_cast<size_t>(c)], bits);
        for (int64_t r = 0; r < rows; ++r)
            out.at(r, c) = fakeQuantValue(x.at(r, c), params, bits);
    }
    return out;
}

Tensor
fakeQuantPerGroup(const Tensor &x, int bits, int64_t group_size)
{
    COMET_CHECK(x.shape().rank() == 2);
    COMET_CHECK(group_size > 0 && x.cols() % group_size == 0);
    const int64_t rows = x.rows(), cols = x.cols();
    Tensor out(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t g = 0; g < cols; g += group_size) {
            float abs_max = 0.0f;
            for (int64_t c = g; c < g + group_size; ++c)
                abs_max = std::max(abs_max, std::fabs(x.at(r, c)));
            const QuantParams params = chooseSymmetric(abs_max, bits);
            for (int64_t c = g; c < g + group_size; ++c)
                out.at(r, c) = fakeQuantValue(x.at(r, c), params, bits);
        }
    }
    return out;
}

QuantizedInt8
quantizeInt8PerRow(const Tensor &x)
{
    COMET_CHECK(x.shape().rank() == 2);
    const int64_t rows = x.rows(), cols = x.cols();
    QuantizedInt8 q{Int8Tensor(rows, cols), {}};
    q.row_params.reserve(static_cast<size_t>(rows));
    const QuantRange range = signedRange(8);
    for (int64_t r = 0; r < rows; ++r) {
        float abs_max = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            abs_max = std::max(abs_max, std::fabs(x.at(r, c)));
        const QuantParams params = chooseSymmetric(abs_max, 8);
        q.row_params.push_back(params);
        for (int64_t c = 0; c < cols; ++c) {
            const int32_t v = std::clamp(params.quantize(x.at(r, c)),
                                         range.qmin, range.qmax);
            q.data.set(r, c, static_cast<int8_t>(v));
        }
    }
    return q;
}

QuantizedInt4
quantizeInt4PerRow(const Tensor &x)
{
    COMET_CHECK(x.shape().rank() == 2);
    const int64_t rows = x.rows(), cols = x.cols();
    QuantizedInt4 q{Int4Tensor(rows, cols), {}};
    q.row_params.reserve(static_cast<size_t>(rows));
    const QuantRange range = signedRange(4);
    for (int64_t r = 0; r < rows; ++r) {
        float abs_max = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            abs_max = std::max(abs_max, std::fabs(x.at(r, c)));
        const QuantParams params = chooseSymmetric(abs_max, 4);
        q.row_params.push_back(params);
        for (int64_t c = 0; c < cols; ++c) {
            const int32_t v = std::clamp(params.quantize(x.at(r, c)),
                                         range.qmin, range.qmax);
            q.data.set(r, c, static_cast<int8_t>(v));
        }
    }
    return q;
}

Tensor
dequantize(const QuantizedInt8 &q)
{
    const int64_t rows = q.data.rows(), cols = q.data.cols();
    Tensor out(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
        const QuantParams &params = q.row_params[static_cast<size_t>(r)];
        for (int64_t c = 0; c < cols; ++c)
            out.at(r, c) = params.dequantize(q.data.get(r, c));
    }
    return out;
}

Tensor
dequantize(const QuantizedInt4 &q)
{
    const int64_t rows = q.data.rows(), cols = q.data.cols();
    Tensor out(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
        const QuantParams &params = q.row_params[static_cast<size_t>(r)];
        for (int64_t c = 0; c < cols; ++c)
            out.at(r, c) = params.dequantize(q.data.get(r, c));
    }
    return out;
}

double
sqnrDb(const Tensor &reference, const Tensor &quantized)
{
    COMET_CHECK(reference.shape() == quantized.shape());
    double sig = 0.0, err = 0.0;
    const int64_t n = reference.numel();
    for (int64_t i = 0; i < n; ++i) {
        const double s = reference[i];
        const double e = s - quantized[i];
        sig += s * s;
        err += e * e;
    }
    if (err <= 0.0)
        return 300.0; // effectively lossless
    return 10.0 * std::log10(sig / err);
}

} // namespace comet
