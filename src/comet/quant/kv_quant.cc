#include "comet/quant/kv_quant.h"

#include <algorithm>
#include <cmath>

#include "comet/simd/simd.h"

namespace comet {

KvCacheQuantizer::KvCacheQuantizer(KvQuantConfig config) : config_(config)
{
    COMET_CHECK(config_.bits >= 2 && config_.bits <= 8);
    COMET_CHECK(config_.group_size > 0);
}

namespace {

/**
 * Per-channel quantizer state for one token group, in
 * structure-of-arrays form so the span routines can consume it.
 * Channel-wise parameter *choice* stays scalar (it is O(channels) per
 * group); the O(group_size * channels) range scan and value transforms
 * go through comet::simd.
 */
struct GroupParams {
    std::vector<float> mins, maxs, scales;
    std::vector<int32_t> zero_points;

    explicit GroupParams(int64_t channels)
        : mins(static_cast<size_t>(channels)),
          maxs(static_cast<size_t>(channels)),
          scales(static_cast<size_t>(channels)),
          zero_points(static_cast<size_t>(channels))
    {
    }

    /** Scans rows [t0, t1) of @p kv and derives each channel's
     * quantizer, exactly as the per-channel spanParams loop did. */
    void
    derive(const Tensor &kv, int64_t t0, int64_t t1,
           const KvQuantConfig &config)
    {
        const int64_t channels = kv.cols();
        const float *first = kv.data() + t0 * channels;
        std::copy(first, first + channels, mins.begin());
        std::copy(first, first + channels, maxs.begin());
        for (int64_t t = t0 + 1; t < t1; ++t) {
            simd::minMaxUpdate(kv.data() + t * channels, channels,
                               mins.data(), maxs.data());
        }
        for (int64_t c = 0; c < channels; ++c) {
            const size_t ci = static_cast<size_t>(c);
            QuantParams params;
            if (config.asymmetric) {
                params = chooseAsymmetric(mins[ci], maxs[ci],
                                          config.bits);
            } else {
                params = chooseSymmetric(
                    std::max(std::fabs(mins[ci]), std::fabs(maxs[ci])),
                    config.bits);
            }
            scales[ci] = params.scale;
            zero_points[ci] = params.zero_point;
        }
    }

    QuantParams
    at(int64_t c) const
    {
        return QuantParams{scales[static_cast<size_t>(c)],
                           zero_points[static_cast<size_t>(c)]};
    }
};

} // namespace

Tensor
KvCacheQuantizer::fakeQuantize(const Tensor &kv) const
{
    COMET_CHECK(kv.shape().rank() == 2);
    const int64_t tokens = kv.rows(), channels = kv.cols();
    const QuantRange range = signedRange(config_.bits);
    Tensor out(tokens, channels);
    GroupParams group(channels);
    std::vector<int8_t> qrow(static_cast<size_t>(channels));
    for (int64_t t0 = 0; t0 < tokens; t0 += config_.group_size) {
        const int64_t t1 = std::min(t0 + config_.group_size, tokens);
        group.derive(kv, t0, t1, config_);
        // fakeQuantValue is quantize -> clamp -> dequantize; the fused
        // span pair performs exactly those operations per element.
        for (int64_t t = t0; t < t1; ++t) {
            simd::quantizeAffine(kv.data() + t * channels,
                                 group.scales.data(),
                                 group.zero_points.data(), channels,
                                 range.qmin, range.qmax, qrow.data());
            simd::dequantAffine(qrow.data(), group.scales.data(),
                                group.zero_points.data(), channels,
                                out.data() + t * channels);
        }
    }
    return out;
}

QuantizedKv
KvCacheQuantizer::quantize(const Tensor &kv) const
{
    COMET_CHECK(kv.shape().rank() == 2);
    const int64_t tokens = kv.rows(), channels = kv.cols();
    const int64_t num_groups =
        (tokens + config_.group_size - 1) / config_.group_size;
    QuantizedKv q{tokens, channels, config_.group_size,
                  Int8Tensor(tokens, channels),
                  std::vector<QuantParams>(
                      static_cast<size_t>(num_groups * channels))};
    const QuantRange range = signedRange(config_.bits);
    GroupParams group(channels);
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t t0 = g * config_.group_size;
        const int64_t t1 = std::min(t0 + config_.group_size, tokens);
        group.derive(kv, t0, t1, config_);
        for (int64_t c = 0; c < channels; ++c)
            q.params[static_cast<size_t>(g * channels + c)] =
                group.at(c);
        for (int64_t t = t0; t < t1; ++t) {
            simd::quantizeAffine(kv.data() + t * channels,
                                 group.scales.data(),
                                 group.zero_points.data(), channels,
                                 range.qmin, range.qmax, q.data.rowPtr(t));
        }
    }
    return q;
}

Tensor
KvCacheQuantizer::dequantize(const QuantizedKv &q) const
{
    Tensor out(q.tokens, q.channels);
    // The params array is laid out [group][channel], so each group's
    // scales/zero-points are already contiguous SoA spans... except
    // QuantParams is an AoS struct; unzip one group at a time and
    // reuse it for every token row in the group.
    std::vector<float> scales(static_cast<size_t>(q.channels));
    std::vector<int32_t> zero_points(static_cast<size_t>(q.channels));
    for (int64_t g = 0; g < q.numGroups(); ++g) {
        for (int64_t c = 0; c < q.channels; ++c) {
            const QuantParams &params =
                q.params[static_cast<size_t>(g * q.channels + c)];
            scales[static_cast<size_t>(c)] = params.scale;
            zero_points[static_cast<size_t>(c)] = params.zero_point;
        }
        const int64_t t0 = g * q.group_size;
        const int64_t t1 = std::min(t0 + q.group_size, q.tokens);
        for (int64_t t = t0; t < t1; ++t) {
            simd::dequantAffine(q.data.rowPtr(t), scales.data(),
                                zero_points.data(), q.channels,
                                out.data() + t * q.channels);
        }
    }
    return out;
}

} // namespace comet
