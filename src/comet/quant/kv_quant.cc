#include "comet/quant/kv_quant.h"

#include <algorithm>
#include <cmath>

namespace comet {

KvCacheQuantizer::KvCacheQuantizer(KvQuantConfig config) : config_(config)
{
    COMET_CHECK(config_.bits >= 2 && config_.bits <= 8);
    COMET_CHECK(config_.group_size > 0);
}

namespace {

/** Derives the quantizer for one (channel, token-group) span. */
QuantParams
spanParams(const Tensor &kv, int64_t c, int64_t t0, int64_t t1,
           const KvQuantConfig &config)
{
    float min_val = kv.at(t0, c), max_val = kv.at(t0, c);
    for (int64_t t = t0; t < t1; ++t) {
        min_val = std::min(min_val, kv.at(t, c));
        max_val = std::max(max_val, kv.at(t, c));
    }
    if (config.asymmetric)
        return chooseAsymmetric(min_val, max_val, config.bits);
    const float abs_max = std::max(std::fabs(min_val),
                                   std::fabs(max_val));
    return chooseSymmetric(abs_max, config.bits);
}

} // namespace

Tensor
KvCacheQuantizer::fakeQuantize(const Tensor &kv) const
{
    COMET_CHECK(kv.shape().rank() == 2);
    const int64_t tokens = kv.rows(), channels = kv.cols();
    Tensor out(tokens, channels);
    for (int64_t c = 0; c < channels; ++c) {
        for (int64_t t0 = 0; t0 < tokens; t0 += config_.group_size) {
            const int64_t t1 = std::min(t0 + config_.group_size, tokens);
            const QuantParams params = spanParams(kv, c, t0, t1, config_);
            for (int64_t t = t0; t < t1; ++t)
                out.at(t, c) = fakeQuantValue(kv.at(t, c), params,
                                              config_.bits);
        }
    }
    return out;
}

QuantizedKv
KvCacheQuantizer::quantize(const Tensor &kv) const
{
    COMET_CHECK(kv.shape().rank() == 2);
    const int64_t tokens = kv.rows(), channels = kv.cols();
    const int64_t num_groups =
        (tokens + config_.group_size - 1) / config_.group_size;
    QuantizedKv q{tokens, channels, config_.group_size,
                  Int8Tensor(tokens, channels),
                  std::vector<QuantParams>(
                      static_cast<size_t>(num_groups * channels))};
    const QuantRange range = signedRange(config_.bits);
    for (int64_t c = 0; c < channels; ++c) {
        for (int64_t g = 0; g < num_groups; ++g) {
            const int64_t t0 = g * config_.group_size;
            const int64_t t1 = std::min(t0 + config_.group_size, tokens);
            const QuantParams params = spanParams(kv, c, t0, t1, config_);
            q.params[static_cast<size_t>(g * channels + c)] = params;
            for (int64_t t = t0; t < t1; ++t) {
                const int32_t v = std::clamp(params.quantize(kv.at(t, c)),
                                             range.qmin, range.qmax);
                q.data.set(t, c, static_cast<int8_t>(v));
            }
        }
    }
    return q;
}

Tensor
KvCacheQuantizer::dequantize(const QuantizedKv &q) const
{
    Tensor out(q.tokens, q.channels);
    for (int64_t t = 0; t < q.tokens; ++t) {
        const int64_t g = t / q.group_size;
        for (int64_t c = 0; c < q.channels; ++c) {
            const QuantParams &params =
                q.params[static_cast<size_t>(g * q.channels + c)];
            out.at(t, c) = params.dequantize(q.data.get(t, c));
        }
    }
    return out;
}

} // namespace comet
