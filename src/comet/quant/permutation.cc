#include "comet/quant/permutation.h"

#include <algorithm>
#include <numeric>

namespace comet {

ChannelPermutation
ChannelPermutation::identity(int64_t channels)
{
    std::vector<int64_t> order(static_cast<size_t>(channels));
    std::iota(order.begin(), order.end(), 0);
    return ChannelPermutation(std::move(order));
}

ChannelPermutation::ChannelPermutation(std::vector<int64_t> order)
    : order_(std::move(order))
{
    std::vector<uint8_t> seen(order_.size(), 0);
    for (int64_t src : order_) {
        COMET_CHECK_MSG(src >= 0 &&
                            src < static_cast<int64_t>(order_.size()),
                        "permutation index out of range");
        auto si = static_cast<size_t>(src);
        COMET_CHECK_MSG(!seen[si], "permutation has a repeated index");
        seen[si] = 1;
    }
}

ChannelPermutation
ChannelPermutation::inverse() const
{
    std::vector<int64_t> inv(order_.size());
    for (size_t i = 0; i < order_.size(); ++i)
        inv[static_cast<size_t>(order_[i])] = static_cast<int64_t>(i);
    return ChannelPermutation(std::move(inv));
}

Tensor
ChannelPermutation::applyToColumns(const Tensor &x) const
{
    COMET_CHECK(x.shape().rank() == 2);
    COMET_CHECK_MSG(x.cols() == channels(),
                    "permutation size must match column count");
    Tensor out(x.rows(), x.cols());
    for (int64_t r = 0; r < x.rows(); ++r) {
        for (int64_t c = 0; c < x.cols(); ++c)
            out.at(r, c) = x.at(r, order_[static_cast<size_t>(c)]);
    }
    return out;
}

std::vector<float>
ChannelPermutation::applyToVector(const std::vector<float> &v) const
{
    COMET_CHECK(static_cast<int64_t>(v.size()) == channels());
    std::vector<float> out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = v[static_cast<size_t>(order_[i])];
    return out;
}

bool
ChannelPermutation::isIdentity() const
{
    for (size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] != static_cast<int64_t>(i))
            return false;
    }
    return true;
}

ChannelPermutation
buildOutlierClusteringPermutation(const ChannelStats &stats,
                                  const OutlierReport &report)
{
    const size_t channels = stats.abs_max.size();
    COMET_CHECK(report.is_outlier.size() == channels);

    std::vector<int64_t> outliers = report.outlier_channels;
    std::sort(outliers.begin(), outliers.end(),
              [&](int64_t a, int64_t b) {
                  const float ma = stats.abs_max[static_cast<size_t>(a)];
                  const float mb = stats.abs_max[static_cast<size_t>(b)];
                  if (ma != mb)
                      return ma > mb;
                  return a < b; // deterministic tie-break
              });

    std::vector<int64_t> order;
    order.reserve(channels);
    order.insert(order.end(), outliers.begin(), outliers.end());
    for (size_t c = 0; c < channels; ++c) {
        if (!report.is_outlier[c])
            order.push_back(static_cast<int64_t>(c));
    }
    return ChannelPermutation(std::move(order));
}

} // namespace comet
