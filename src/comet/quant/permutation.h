/**
 * @file
 * Channel permutation for outlier clustering (paper Section 3.2,
 * Figure 4(d)).
 *
 * FMPQ partitions the activation channel dimension into blocks of k
 * channels; any block containing an outlier channel must be quantized to
 * INT8. Without reordering, outliers scattered across many blocks force
 * a large INT8 fraction. The permutation gathers outlier channels into
 * as few leading blocks as possible, and the same permutation is applied
 * to the weight matrix's input dimension so the GEMM result is unchanged
 * (computational equivalence).
 *
 * GEMM convention used throughout comet: activations X are
 * [tokens, in_channels], weights W are [out_features, in_channels], and
 * the layer computes O = X * W^T. Permuting the in_channels axis of both
 * X and W by the same permutation leaves O bit-identical in exact
 * arithmetic.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/quant/outlier.h"
#include "comet/tensor/tensor.h"

namespace comet {

/**
 * A permutation of channel indices.
 *
 * order[i] is the source channel placed at position i, i.e. permuted
 * column i of a matrix is original column order[i].
 */
class ChannelPermutation
{
  public:
    /** Identity permutation over @p channels channels. */
    static ChannelPermutation identity(int64_t channels);

    /** Builds a permutation from an explicit order; validates it is a
     * bijection. */
    explicit ChannelPermutation(std::vector<int64_t> order);

    int64_t channels() const
    {
        return static_cast<int64_t>(order_.size());
    }

    const std::vector<int64_t> &order() const { return order_; }

    /** The inverse permutation. */
    ChannelPermutation inverse() const;

    /** Returns X with columns reordered: out[:, i] = x[:, order[i]]. */
    Tensor applyToColumns(const Tensor &x) const;

    /** Applies the permutation to a per-channel stat vector. */
    std::vector<float> applyToVector(const std::vector<float> &v) const;

    /** True when this is the identity. */
    bool isIdentity() const;

  private:
    std::vector<int64_t> order_;
};

/**
 * Builds the outlier-clustering permutation: channels flagged as outliers
 * come first (in descending calibration magnitude, so the very largest
 * values share scales with similarly large ones), followed by the
 * remaining channels in their original order (stable, to minimally
 * perturb locality).
 */
ChannelPermutation buildOutlierClusteringPermutation(
    const ChannelStats &stats, const OutlierReport &report);

} // namespace comet
