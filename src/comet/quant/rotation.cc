#include "comet/quant/rotation.h"

#include <cmath>

#include "comet/common/rng.h"
#include "comet/quant/quantizer.h"

namespace comet {

void
fastWalshHadamard(std::vector<float> &data)
{
    const size_t n = data.size();
    COMET_CHECK_MSG(n > 0 && (n & (n - 1)) == 0,
                    "FWHT length must be a power of two");
    for (size_t h = 1; h < n; h <<= 1) {
        for (size_t i = 0; i < n; i += h << 1) {
            for (size_t j = i; j < i + h; ++j) {
                const float a = data[j];
                const float b = data[j + h];
                data[j] = a + b;
                data[j + h] = a - b;
            }
        }
    }
    const float norm =
        1.0f / std::sqrt(static_cast<float>(n));
    for (float &x : data)
        x *= norm;
}

HadamardRotation::HadamardRotation(int64_t channels, uint64_t seed)
    : channels_(channels)
{
    COMET_CHECK_MSG(channels > 0 &&
                        (channels & (channels - 1)) == 0,
                    "rotation requires a power-of-two channel count");
    Rng rng(seed);
    signs_.resize(static_cast<size_t>(channels));
    for (auto &s : signs_)
        s = rng.uniform() < 0.5 ? -1.0f : 1.0f;
}

Tensor
HadamardRotation::apply(const Tensor &x) const
{
    COMET_CHECK(x.shape().rank() == 2 && x.cols() == channels_);
    Tensor out(x.rows(), channels_);
    std::vector<float> row(static_cast<size_t>(channels_));
    for (int64_t r = 0; r < x.rows(); ++r) {
        // x R = x D H / sqrt(n): scale by D, then FWHT.
        for (int64_t c = 0; c < channels_; ++c) {
            row[static_cast<size_t>(c)] =
                x.at(r, c) * signs_[static_cast<size_t>(c)];
        }
        fastWalshHadamard(row);
        for (int64_t c = 0; c < channels_; ++c)
            out.at(r, c) = row[static_cast<size_t>(c)];
    }
    return out;
}

Tensor
HadamardRotation::applyInverse(const Tensor &x) const
{
    COMET_CHECK(x.shape().rank() == 2 && x.cols() == channels_);
    Tensor out(x.rows(), channels_);
    std::vector<float> row(static_cast<size_t>(channels_));
    for (int64_t r = 0; r < x.rows(); ++r) {
        // x R^T = x (H / sqrt(n)) D: FWHT (H is symmetric), then D.
        for (int64_t c = 0; c < channels_; ++c)
            row[static_cast<size_t>(c)] = x.at(r, c);
        fastWalshHadamard(row);
        for (int64_t c = 0; c < channels_; ++c) {
            out.at(r, c) = row[static_cast<size_t>(c)] *
                           signs_[static_cast<size_t>(c)];
        }
    }
    return out;
}

Tensor
rotatedQuantizeWeight(const Tensor &weight,
                      const RotatedQuantConfig &config)
{
    COMET_CHECK(weight.shape().rank() == 2);
    const HadamardRotation rotation(weight.cols(), config.seed);
    const Tensor rotated = rotation.apply(weight);
    const Tensor quantized = fakeQuantPerGroup(
        rotated, config.weight_bits, config.weight_group_size);
    return rotation.applyInverse(quantized);
}

Tensor
rotatedFakeQuantActivations(const Tensor &x,
                            const RotatedQuantConfig &config)
{
    COMET_CHECK(x.shape().rank() == 2);
    const HadamardRotation rotation(x.cols(), config.seed);
    const Tensor rotated = rotation.apply(x);
    const Tensor quantized = fakeQuantPerRow(rotated, config.act_bits);
    return rotation.applyInverse(quantized);
}

} // namespace comet
