/**
 * @file
 * Uniform integer quantization primitives.
 *
 * Everything in comet/quant builds on these: symmetric and asymmetric
 * uniform quantizers at arbitrary bit widths, applied per-tensor,
 * per-channel (column), per-token (row), or per-block (contiguous channel
 * groups — the granularity FMPQ uses).
 *
 * Two styles of API are provided:
 *  - *fake quantization* (quantize-then-dequantize in float), used by the
 *    accuracy experiments, mirroring how PTQ literature simulates
 *    low-precision inference; and
 *  - *real quantization* to packed integer tensors, used by the kernel
 *    path so the bit-exact GEMM can be verified against float references.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/tensor/packed.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** Parameters of one uniform affine quantizer: q = round(x/scale) + zp. */
struct QuantParams {
    float scale = 1.0f;
    int32_t zero_point = 0;

    /** Quantizes one value to the integer grid (unclamped). */
    int32_t
    quantize(float x) const
    {
        // Round half away from zero, matching CUDA's rounding of the
        // cvt.rni path closely enough for PTQ purposes.
        const float t = x / scale;
        return static_cast<int32_t>(t >= 0 ? t + 0.5f : t - 0.5f) +
               zero_point;
    }

    /** Dequantizes one integer back to float. */
    float
    dequantize(int32_t q) const
    {
        return static_cast<float>(q - zero_point) * scale;
    }
};

/** Integer range of a signed @p bits-wide quantizer, e.g. 4 -> [-8, 7]. */
struct QuantRange {
    int32_t qmin;
    int32_t qmax;
};

/** Returns the signed two's-complement range for a bit width. */
QuantRange signedRange(int bits);

/** Chooses a symmetric quantizer for values with the given absolute
 * maximum. A zero absmax yields scale 1 (all values quantize to 0). */
QuantParams chooseSymmetric(float abs_max, int bits);

/** Chooses an asymmetric quantizer covering [min, max]. */
QuantParams chooseAsymmetric(float min_val, float max_val, int bits);

/** Fake-quantizes one value: quantize, clamp to range, dequantize. */
float fakeQuantValue(float x, const QuantParams &params, int bits);

/** Fake-quantizes a whole tensor with a single symmetric quantizer. */
Tensor fakeQuantPerTensor(const Tensor &x, int bits);

/**
 * Fake-quantizes a rank-2 tensor [rows, cols] with one symmetric
 * quantizer per row ("per-token" for activations laid out as
 * [tokens, channels]).
 */
Tensor fakeQuantPerRow(const Tensor &x, int bits);

/**
 * Fake-quantizes a rank-2 tensor with one symmetric quantizer per column
 * ("per-channel").
 */
Tensor fakeQuantPerColumn(const Tensor &x, int bits);

/**
 * Fake-quantizes a rank-2 tensor [rows, cols] with one symmetric
 * quantizer per (row, channel-group) where channel groups are contiguous
 * runs of @p group_size columns ("group-wise", as used by AWQ/QoQ).
 * @pre cols % group_size == 0.
 */
Tensor fakeQuantPerGroup(const Tensor &x, int bits, int64_t group_size);

/** Result of a real per-row INT8 quantization. */
struct QuantizedInt8 {
    Int8Tensor data;
    std::vector<QuantParams> row_params; ///< one per row
};

/** Result of a real per-row INT4 quantization (packed). */
struct QuantizedInt4 {
    Int4Tensor data;
    std::vector<QuantParams> row_params; ///< one per row
};

/** Quantizes [rows, cols] floats to INT8, one symmetric scale per row. */
QuantizedInt8 quantizeInt8PerRow(const Tensor &x);

/** Quantizes [rows, cols] floats to packed INT4, one symmetric scale per
 * row. @pre cols is even. */
QuantizedInt4 quantizeInt4PerRow(const Tensor &x);

/** Dequantizes a per-row INT8 tensor back to float. */
Tensor dequantize(const QuantizedInt8 &q);

/** Dequantizes a per-row packed INT4 tensor back to float. */
Tensor dequantize(const QuantizedInt4 &q);

/** Signal-to-quantization-noise ratio in dB: 10 log10(P_sig / P_err). */
double sqnrDb(const Tensor &reference, const Tensor &quantized);

} // namespace comet
