#include "comet/quant/fmpq.h"

#include <algorithm>
#include <cmath>

#include "comet/runtime/thread_pool.h"

namespace comet {

const char *
blockPrecisionName(BlockPrecision precision)
{
    return precision == BlockPrecision::kInt4 ? "INT4" : "INT8";
}

FmpqActivationQuantizer
FmpqActivationQuantizer::calibrate(const Tensor &calibration,
                                   const FmpqConfig &config)
{
    COMET_CHECK(calibration.shape().rank() == 2);
    const int64_t channels = calibration.cols();
    COMET_CHECK_MSG(config.block_size > 0 &&
                        channels % config.block_size == 0,
                    "block size must divide the channel count");
    COMET_CHECK(config.low_bits >= 2 &&
                config.high_bits > config.low_bits);

    const ChannelStats stats = computeChannelStats(calibration);
    const OutlierReport report = detectOutliers(stats, config.outlier);

    ChannelPermutation permutation =
        config.enable_permutation
            ? buildOutlierClusteringPermutation(stats, report)
            : ChannelPermutation::identity(channels);

    const int64_t num_blocks = channels / config.block_size;
    std::vector<BlockPrecision> precisions(
        static_cast<size_t>(num_blocks), BlockPrecision::kInt4);
    for (int64_t b = 0; b < num_blocks; ++b) {
        for (int64_t i = 0; i < config.block_size; ++i) {
            const int64_t src = permutation.order()[static_cast<size_t>(
                b * config.block_size + i)];
            if (report.is_outlier[static_cast<size_t>(src)]) {
                precisions[static_cast<size_t>(b)] = BlockPrecision::kInt8;
                break;
            }
        }
    }
    return FmpqActivationQuantizer(config, std::move(permutation),
                                   std::move(precisions));
}

FmpqActivationQuantizer
FmpqActivationQuantizer::fromParts(
    const FmpqConfig &config, ChannelPermutation permutation,
    std::vector<BlockPrecision> precisions)
{
    COMET_CHECK(config.block_size > 0);
    COMET_CHECK_MSG(permutation.channels() % config.block_size == 0,
                    "block size must divide the channel count");
    COMET_CHECK_MSG(static_cast<int64_t>(precisions.size()) ==
                        permutation.channels() / config.block_size,
                    "precision map must have one entry per block");
    COMET_CHECK(config.low_bits >= 2 &&
                config.high_bits > config.low_bits);
    return FmpqActivationQuantizer(config, std::move(permutation),
                                   std::move(precisions));
}

double
FmpqActivationQuantizer::int4BlockFraction() const
{
    if (precisions_.empty())
        return 1.0;
    int64_t int4 = 0;
    for (BlockPrecision p : precisions_) {
        if (p == BlockPrecision::kInt4)
            ++int4;
    }
    return static_cast<double>(int4) /
           static_cast<double>(precisions_.size());
}

Tensor
FmpqActivationQuantizer::fakeQuantize(const Tensor &x) const
{
    COMET_CHECK(x.shape().rank() == 2);
    COMET_CHECK(x.cols() == channels());
    const int64_t tokens = x.rows();
    const int64_t k = config_.block_size;
    Tensor out(tokens, x.cols());
    const auto &order = permutation_.order();

    // Token rows are independent (per-token dynamic quantization);
    // chunk bodies run the sequential per-row loop unchanged, so the
    // result is bit-identical for any pool size.
    parallelFor(0, tokens, 1, [&](int64_t t_begin, int64_t t_end) {
    for (int64_t t = t_begin; t < t_end; ++t) {
        for (int64_t b = 0; b < numBlocks(); ++b) {
            const int bits = precisions_[static_cast<size_t>(b)] ==
                                     BlockPrecision::kInt4
                                 ? config_.low_bits
                                 : config_.high_bits;
            float abs_max = 0.0f;
            for (int64_t i = 0; i < k; ++i) {
                const int64_t src =
                    order[static_cast<size_t>(b * k + i)];
                abs_max = std::max(abs_max, std::fabs(x.at(t, src)));
            }
            const QuantParams params = chooseSymmetric(abs_max, bits);
            for (int64_t i = 0; i < k; ++i) {
                const int64_t src =
                    order[static_cast<size_t>(b * k + i)];
                out.at(t, src) = fakeQuantValue(x.at(t, src), params,
                                                bits);
            }
        }
    }
    });
    return out;
}

MixedQuantizedActivation
FmpqActivationQuantizer::quantize(const Tensor &x) const
{
    COMET_CHECK(x.shape().rank() == 2);
    COMET_CHECK(x.cols() == channels());
    const int64_t tokens = x.rows();
    const int64_t k = config_.block_size;
    const auto &order = permutation_.order();

    MixedQuantizedActivation qa{
        tokens,
        channels(),
        k,
        precisions_,
        Int4Tensor(tokens, channels()),
        Int8Tensor(tokens, channels()),
        Tensor(tokens, numBlocks()),
    };

    const QuantRange r4 = signedRange(config_.low_bits);
    const QuantRange r8 = signedRange(config_.high_bits);

    // Per-token sweep, parallel across the pool; rows of every output
    // tensor are disjoint, so results are bit-identical for any pool
    // size. (Packed INT4 rows are padded to whole bytes per row, so
    // row writes never share a byte.)
    parallelFor(0, tokens, 1, [&](int64_t t_begin, int64_t t_end) {
    for (int64_t t = t_begin; t < t_end; ++t) {
        for (int64_t b = 0; b < numBlocks(); ++b) {
            const bool is_int4 = precisions_[static_cast<size_t>(b)] ==
                                 BlockPrecision::kInt4;
            const int bits = is_int4 ? config_.low_bits
                                     : config_.high_bits;
            float abs_max = 0.0f;
            for (int64_t i = 0; i < k; ++i) {
                const int64_t src =
                    order[static_cast<size_t>(b * k + i)];
                abs_max = std::max(abs_max, std::fabs(x.at(t, src)));
            }
            const QuantParams params = chooseSymmetric(abs_max, bits);
            qa.scales.at(t, b) = params.scale;
            for (int64_t i = 0; i < k; ++i) {
                const int64_t dst = b * k + i;
                const int64_t src =
                    order[static_cast<size_t>(dst)];
                const int32_t q = params.quantize(x.at(t, src));
                if (is_int4) {
                    qa.int4_data.set(
                        t, dst,
                        static_cast<int8_t>(
                            std::clamp(q, r4.qmin, r4.qmax)));
                } else {
                    qa.int8_data.set(
                        t, dst,
                        static_cast<int8_t>(
                            std::clamp(q, r8.qmin, r8.qmax)));
                }
            }
        }
    }
    });
    return qa;
}

BlockQuantizedWeight
FmpqActivationQuantizer::quantizeWeight(const Tensor &w) const
{
    COMET_CHECK(w.shape().rank() == 2);
    COMET_CHECK_MSG(w.cols() == channels(),
                    "weight in_channels must match activation channels");
    const int64_t out_features = w.rows();
    const int64_t k = config_.block_size;
    const auto &order = permutation_.order();
    const QuantRange r4 = signedRange(4);

    BlockQuantizedWeight qw{
        out_features,
        channels(),
        k,
        Int4Tensor(out_features, channels()),
        Tensor(out_features, numBlocks()),
    };

    // The offline calibration sweep: out_features rows quantize
    // independently, so the sweep fans out across the pool with
    // bit-identical results for any pool size.
    parallelFor(0, out_features, 1, [&](int64_t n_begin,
                                        int64_t n_end) {
    for (int64_t n = n_begin; n < n_end; ++n) {
        for (int64_t b = 0; b < numBlocks(); ++b) {
            float abs_max = 0.0f;
            for (int64_t i = 0; i < k; ++i) {
                const int64_t src =
                    order[static_cast<size_t>(b * k + i)];
                abs_max = std::max(abs_max, std::fabs(w.at(n, src)));
            }
            const QuantParams params = chooseSymmetric(abs_max, 4);
            qw.scales.at(n, b) = params.scale;
            for (int64_t i = 0; i < k; ++i) {
                const int64_t dst = b * k + i;
                const int64_t src =
                    order[static_cast<size_t>(dst)];
                const int32_t q = params.quantize(w.at(n, src));
                qw.data.set(n, dst,
                            static_cast<int8_t>(
                                std::clamp(q, r4.qmin, r4.qmax)));
            }
        }
    }
    });
    return qw;
}

Tensor
dequantize(const MixedQuantizedActivation &qa)
{
    Tensor out(qa.tokens, qa.channels);
    for (int64_t t = 0; t < qa.tokens; ++t) {
        for (int64_t b = 0; b < qa.numBlocks(); ++b) {
            const float scale = qa.scales.at(t, b);
            const bool is_int4 =
                qa.precisions[static_cast<size_t>(b)] ==
                BlockPrecision::kInt4;
            for (int64_t i = 0; i < qa.block_size; ++i) {
                const int64_t c = b * qa.block_size + i;
                const int8_t q = is_int4 ? qa.int4_data.get(t, c)
                                         : qa.int8_data.get(t, c);
                out.at(t, c) = static_cast<float>(q) * scale;
            }
        }
    }
    return out;
}

Tensor
dequantize(const BlockQuantizedWeight &qw)
{
    Tensor out(qw.out_features, qw.in_channels);
    const int64_t num_blocks = qw.in_channels / qw.block_size;
    for (int64_t n = 0; n < qw.out_features; ++n) {
        for (int64_t b = 0; b < num_blocks; ++b) {
            const float scale = qw.scales.at(n, b);
            for (int64_t i = 0; i < qw.block_size; ++i) {
                const int64_t c = b * qw.block_size + i;
                out.at(n, c) =
                    static_cast<float>(qw.data.get(n, c)) * scale;
            }
        }
    }
    return out;
}

} // namespace comet
