#include "comet/quant/qoq.h"

#include <algorithm>
#include <cmath>

#include "comet/quant/quantizer.h"

namespace comet {

QoqLayer
QoqLayer::calibrate(const Tensor &weight,
                    const Tensor &act_calibration,
                    const QoqConfig &config)
{
    COMET_CHECK(act_calibration.shape().rank() == 2);
    COMET_CHECK(act_calibration.cols() == weight.cols());
    const int64_t in = weight.cols(), out = weight.rows();

    std::vector<float> a_max(static_cast<size_t>(in), 0.0f);
    for (int64_t t = 0; t < act_calibration.rows(); ++t) {
        for (int64_t c = 0; c < in; ++c) {
            a_max[static_cast<size_t>(c)] =
                std::max(a_max[static_cast<size_t>(c)],
                         std::fabs(act_calibration.at(t, c)));
        }
    }
    std::vector<float> w_max(static_cast<size_t>(in), 0.0f);
    for (int64_t n = 0; n < out; ++n) {
        for (int64_t c = 0; c < in; ++c) {
            w_max[static_cast<size_t>(c)] =
                std::max(w_max[static_cast<size_t>(c)],
                         std::fabs(weight.at(n, c)));
        }
    }
    Tensor scaled(out, in);
    std::vector<float> s(static_cast<size_t>(in), 1.0f);
    for (size_t c = 0; c < s.size(); ++c) {
        const float a = std::max(a_max[c], 1e-5f);
        const float w = std::max(w_max[c], 1e-5f);
        s[c] = std::max(std::sqrt(a / w), 1e-4f);
    }
    for (int64_t n = 0; n < out; ++n) {
        for (int64_t c = 0; c < in; ++c)
            scaled.at(n, c) = weight.at(n, c) *
                              s[static_cast<size_t>(c)];
    }
    QoqLayer layer = calibrate(scaled, config);
    for (int64_t n = 0; n < out; ++n) {
        for (int64_t c = 0; c < in; ++c)
            layer.quantized_weight_.at(n, c) /=
                s[static_cast<size_t>(c)];
    }
    return layer;
}

QoqLayer
QoqLayer::calibrate(const Tensor &weight, const QoqConfig &config)
{
    COMET_CHECK(weight.shape().rank() == 2);
    COMET_CHECK(config.group_size > 0 &&
                weight.cols() % config.group_size == 0);
    const int64_t out = weight.rows(), in = weight.cols();
    const QuantRange inner_range = signedRange(config.weight_bits);

    Tensor result(out, in);
    for (int64_t n = 0; n < out; ++n) {
        // Outer per-channel INT8 scale.
        float chan_abs_max = 0.0f;
        for (int64_t c = 0; c < in; ++c)
            chan_abs_max = std::max(chan_abs_max,
                                    std::fabs(weight.at(n, c)));
        const float s_outer = chan_abs_max > 0
                                  ? chan_abs_max / 127.0f
                                  : 1.0f;

        for (int64_t g = 0; g < in; g += config.group_size) {
            float group_abs_max = 0.0f;
            for (int64_t c = g; c < g + config.group_size; ++c)
                group_abs_max = std::max(group_abs_max,
                                         std::fabs(weight.at(n, c)));
            // Inner INT4 scale constrained to an integer multiple of
            // the outer INT8 scale (progressive quantization): the
            // group scale is s_int * s_outer with s_int a small int.
            const float ideal =
                group_abs_max /
                (static_cast<float>(inner_range.qmax) * s_outer);
            const int32_t s_int = std::max(
                1, static_cast<int32_t>(std::lround(std::ceil(ideal))));
            const float scale = static_cast<float>(s_int) * s_outer;
            const QuantParams params{scale, 0};
            for (int64_t c = g; c < g + config.group_size; ++c) {
                const int32_t q =
                    std::clamp(params.quantize(weight.at(n, c)),
                               inner_range.qmin, inner_range.qmax);
                result.at(n, c) = params.dequantize(q);
            }
        }
    }
    return QoqLayer(config, std::move(result));
}

Tensor
QoqLayer::fakeQuantActivations(const Tensor &x) const
{
    return fakeQuantPerRow(x, config_.act_bits);
}

Tensor
QoqLayer::fakeQuantKv(const Tensor &kv) const
{
    return KvCacheQuantizer(config_.kv).fakeQuantize(kv);
}

} // namespace comet
