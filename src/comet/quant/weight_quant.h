/**
 * @file
 * Weight-only quantization baselines (paper Section 6.2).
 *
 * The paper compares FMPQ against W4A16 weight-only methods: GPTQ, AWQ
 * and OmniQuant. This header implements each from scratch at the level
 * of fidelity the comparison needs:
 *
 *  - RTN: round-to-nearest group-wise quantization (the common
 *    substrate of the other methods).
 *  - GPTQ: exact layer-wise error compensation using the calibration
 *    Hessian H = X^T X with Cholesky-based column elimination (Frantar
 *    et al., 2022), column-serial variant.
 *  - AWQ: activation-aware per-channel scaling with a grid-searched
 *    migration exponent (Lin et al., 2023).
 *  - OmniQuant (lite): learnable weight clipping realized as a per-group
 *    grid search over clip ratios (Shao et al., 2023, the weight-only
 *    part).
 *
 * All functions return *fake-quantized* weights (float tensors on the
 * INT grid) since the accuracy experiments run the transformer in float.
 */
#pragma once

#include <cstdint>

#include "comet/tensor/tensor.h"

namespace comet {

/** Shared settings for weight-only quantizers. */
struct WeightQuantConfig {
    int bits = 4;
    int64_t group_size = 128; ///< channels per scale group (along in dim)
};

/** Round-to-nearest group-wise symmetric quantization of W [out, in]. */
Tensor rtnQuantizeWeight(const Tensor &weight,
                         const WeightQuantConfig &config = {});

/**
 * GPTQ quantization of W [out, in] using calibration activations
 * X [tokens, in].
 *
 * Minimizes || (W - Wq) X^T ||^2 by quantizing input channels in order
 * and propagating the rounding error of each channel into the not-yet
 * quantized ones via the inverse Hessian (H = X^T X + lambda I).
 */
Tensor gptqQuantizeWeight(const Tensor &weight,
                          const Tensor &act_calibration,
                          const WeightQuantConfig &config = {},
                          float hessian_damping = 0.01f);

/**
 * AWQ quantization of W [out, in] guided by calibration activations.
 *
 * Searches a migration exponent alpha over a fixed grid; each candidate
 * scales weight column c by s_c = mean|X_c|^alpha before group-wise RTN
 * and unscales after, keeping the candidate whose reconstructed output
 * X * Wq^T has the lowest error on the calibration set.
 */
Tensor awqQuantizeWeight(const Tensor &weight,
                         const Tensor &act_calibration,
                         const WeightQuantConfig &config = {});

/**
 * OmniQuant-style quantization of W [out, in]: per-group grid search
 * over clipping ratios in (0, 1], keeping the ratio minimizing the
 * within-group quantization MSE. This realizes "learned weight
 * clipping" without gradient descent.
 */
Tensor omniquantQuantizeWeight(const Tensor &weight,
                               const WeightQuantConfig &config = {});

/**
 * OmniQuant with its learnable-equivalent-transformation stage: per
 * input channel, precision is migrated toward channels that carry
 * large activations (s_c = sqrt(max|X_c| / max|W_c|)), realized as a
 * scale/quantize/unscale weight transform — so the high-activation
 * columns that dominate the layer output get proportionally smaller
 * quantization error. This is the configuration the paper's
 * "Omniquant W4A16" rows (and FMPQ's weight path) correspond to.
 */
Tensor omniquantQuantizeWeightLet(const Tensor &weight,
                                  const Tensor &act_calibration,
                                  const WeightQuantConfig &config = {});

} // namespace comet
