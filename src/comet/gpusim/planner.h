/**
 * @file
 * Compile-time kernel planning (paper Sections 4.4 and 5).
 *
 * The paper applies its fine-grained SM scheduling "during LLM
 * compilation stages": before serving, every linear layer's
 * mixed-precision tile grid is examined and a tile-to-SM mapping is
 * fixed. This module is that compilation pass: given a model, a batch
 * size and the deployed W4A4 fraction, it enumerates each decoder
 * GEMM, evaluates all four scheduling strategies on its tile grid,
 * picks the fastest, and emits a per-layer plan plus a human-readable
 * report (predicted step latency, utilization, bottleneck layer).
 */
#pragma once

#include <string>
#include <vector>

#include "comet/gpusim/cost_model.h"
#include "comet/model/llm_config.h"

namespace comet {

/** The compiled plan of one linear layer's GEMM. */
struct LayerPlan {
    std::string name;                 ///< e.g. "gate_up_proj"
    GemmShape shape;
    int64_t total_tiles = 0;
    double w4a4_tile_fraction = 0.0;
    SchedulingStrategy strategy =
        SchedulingStrategy::kTaskStealing; ///< chosen mapping
    double predicted_us = 0.0;             ///< with the chosen strategy
    double naive_us = 0.0;                 ///< naive-sync reference
    double sm_utilization = 0.0;
};

/** The compiled plan of a whole decoder step. */
struct ModelPlan {
    std::string model_name;
    int64_t batch = 0;
    /** Tensor-parallel degree the GEMM extents were sharded at. */
    int tensor_parallel = 1;
    std::vector<LayerPlan> layers;    ///< one per distinct layer GEMM
    double step_gemm_us = 0.0;        ///< per decode step, all layers
    /** Per-layer all-reduce cost the TP group pays on top of
     * step_gemm_us (two collectives per decoder layer, priced by
     * tp::InterconnectModel at the cheaper ring/direct algorithm;
     * 0 at degree 1). */
    double allreduce_us = 0.0;
    size_t bottleneck_layer = 0;      ///< index of the costliest GEMM
    double speedup_over_naive = 1.0;  ///< scheduling gain of the plan
};

/**
 * The compilation pass.
 */
class CompilePlanner
{
  public:
    explicit CompilePlanner(GpuSpec spec = GpuSpec::a100Sxm480G(),
                            CostModelCalibration calibration = {});

    /**
     * Plans every decoder-layer GEMM of @p model at decode batch
     * @p batch. @p w4a4_fraction is the deployed FMPQ statistic
     * (Section 6.2; defaults to the paper's measured 84%).
     * @p tensor_parallel shards each GEMM Megatron-style before
     * planning (column-parallel first projections, row-parallel
     * second; must pass tp::validateTpDegree for the model) and adds
     * the per-layer all-reduce cost to the plan.
     */
    ModelPlan plan(const LlmConfig &model, int64_t batch,
                   double w4a4_fraction = 0.84,
                   int tensor_parallel = 1) const;

    /** Renders a plan as an aligned text report. */
    static std::string report(const ModelPlan &plan);

  private:
    GemmCostModel model_;
};

} // namespace comet
