/**
 * @file
 * Fine-grained SM scheduling (paper Section 4.4, Figure 8).
 *
 * A mixed-precision GEMM decomposes into tiles whose durations differ
 * (W4A4 tiles run ~2x faster than W4A8 tiles). How tiles are bound to
 * SMs determines utilization:
 *
 *  - kNaiveSync: tiles are issued in waves of num_sms with a
 *    synchronization barrier after every wave — every wave lasts as
 *    long as its slowest tile (Figure 8(b)).
 *  - kBarrierMinimized: the per-wave barriers are removed (only the
 *    final pre-writeback barrier remains), but the tile-to-SM binding
 *    stays the naive cyclic one, so SMs that keep drawing INT8 tiles
 *    still dominate the makespan (Figure 8(c)).
 *  - kTileRemapping: tiles are redistributed so each SM receives a
 *    balanced mix (longest-processing-time greedy; Figure 8(d)).
 *  - kTaskStealing: additionally breaks the one-to-one tile/SM binding:
 *    idle SMs steal fractions of the remaining tiles near the end of
 *    the kernel (Figure 8(e)). Modeled by splitting tiles into
 *    sub-tiles (with a small reduction overhead per extra fragment)
 *    before balanced assignment.
 *
 * The scheduler here is a faithful discrete simulation of those four
 * policies; the Figure 14 bench runs it on real tile lists.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/quant/fmpq.h"

namespace comet {

/** Tile-to-SM scheduling policy. */
enum class SchedulingStrategy {
    kNaiveSync = 0,
    kBarrierMinimized,
    kTileRemapping,
    kTaskStealing,
};

/** Returns a short human-readable strategy name. */
const char *schedulingStrategyName(SchedulingStrategy strategy);

/** One schedulable tile of a mixed-precision GEMM. */
struct TileWork {
    double duration = 0.0;       ///< microseconds on one SM
    BlockPrecision precision = BlockPrecision::kInt4;
};

/** Outcome of scheduling a tile list onto the SMs. */
struct ScheduleResult {
    double makespan = 0.0;          ///< kernel duration, microseconds
    double total_work = 0.0;        ///< sum of tile durations
    std::vector<double> sm_busy;    ///< per-SM busy time
    int64_t barriers = 0;           ///< synchronization barriers issued

    /** Mean busy fraction across SMs: total busy / (SMs * makespan). */
    double utilization() const;
};

/** Scheduler configuration. */
struct SchedulerConfig {
    int num_sms = 108;
    /** Task stealing splits each tile into this many sub-tiles. */
    int steal_split = 4;
    /** Fractional duration overhead added per extra sub-tile fragment
     * (covers the cross-SM reduction of partial accumulators). */
    double steal_overhead = 0.03;
};

/** Simulates the given policy over the tile list. */
ScheduleResult scheduleTiles(const std::vector<TileWork> &tiles,
                             const SchedulerConfig &config,
                             SchedulingStrategy strategy);

/**
 * Builds the tile list of an (m, n, k) GEMM with the given per-k-block
 * precision pattern: tiles iterate over the m x n grid for each k block,
 * with per-tile durations supplied by the caller.
 */
std::vector<TileWork> buildGemmTiles(int64_t m, int64_t n, int64_t k,
                                     int64_t tile_m, int64_t tile_n,
                                     int64_t tile_k,
                                     const std::vector<BlockPrecision>
                                         &k_block_precisions,
                                     int64_t block_size,
                                     double int4_tile_us,
                                     double int8_tile_us);

} // namespace comet
