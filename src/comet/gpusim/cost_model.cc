#include "comet/gpusim/cost_model.h"

#include <algorithm>
#include <cmath>

namespace comet {

const char *
gemmKernelKindName(GemmKernelKind kind)
{
    switch (kind) {
      case GemmKernelKind::kCublasW16A16: return "cuBLAS-W16A16";
      case GemmKernelKind::kTrtLlmW4A16: return "TRT-LLM-W4A16";
      case GemmKernelKind::kTrtLlmW8A8: return "TRT-LLM-W8A8";
      case GemmKernelKind::kQserveW4A8: return "QServe-W4A8";
      case GemmKernelKind::kCometW4Ax: return "COMET-W4Ax";
      case GemmKernelKind::kOracleW4A4: return "Oracle-W4A4";
    }
    return "?";
}

namespace {

/** Storage bytes per value for each operand precision. */
double
bytesPerValue(int bits)
{
    return static_cast<double>(bits) / 8.0;
}

/** Shared-memory fragment reuse factor: with a 2-D warp tiling each
 * fragment byte is read from shared memory by several warps. */
constexpr double kSmemReuse = 4.0;

/** Extra serialized weight-fragment traffic without interleaving:
 * 2x ldmatrix issues x 2x bank-conflict wavefronts (Figure 6). */
constexpr double kInterleavePenalty = 7.0;

} // namespace

GemmCostModel::GemmCostModel(GpuSpec spec,
                             CostModelCalibration calibration)
    : spec_(std::move(spec)), calibration_(calibration)
{
    COMET_CHECK(spec_.num_sms > 0);
}

double
GemmCostModel::effectiveBandwidth(int active_sms) const
{
    const double saturation = std::min(
        1.0, static_cast<double>(active_sms) /
                 static_cast<double>(
                     calibration_.bandwidth_saturation_sms));
    return spec_.hbm_bandwidth * calibration_.memory_efficiency *
           saturation;
}

double
GemmCostModel::computeTime(const GemmShape &shape, int precision_bits,
                           double efficiency,
                           double parallel_fraction) const
{
    const double peak = spec_.tensorOps(precision_bits) * efficiency *
                        parallel_fraction;
    return shape.ops() / peak * 1e6;
}

double
GemmCostModel::scheduledComputeTime(const GemmShape &shape,
                                    const CometKernelFeatures &features,
                                    double efficiency,
                                    double *utilization) const
{
    const auto &cal = calibration_;
    const int64_t k_blocks =
        (shape.k + cal.tile_k - 1) / cal.tile_k;

    // Precision pattern over k blocks: the INT8 blocks are spread
    // evenly through the k range, mirroring the interleaved pattern of
    // Figure 8 (FMPQ's permutation clusters outliers into the leading
    // blocks of the *channel* order, but tiles of both precisions are
    // co-resident in every kernel wave).
    std::vector<BlockPrecision> pattern(
        static_cast<size_t>(k_blocks), BlockPrecision::kInt4);
    const int64_t int8_blocks = std::llround(
        (1.0 - features.w4a4_fraction) * static_cast<double>(k_blocks));
    if (int8_blocks > 0) {
        const double stride = static_cast<double>(k_blocks) /
                              static_cast<double>(int8_blocks);
        for (int64_t i = 0; i < int8_blocks; ++i) {
            // Deterministic jitter keeps the INT8 positions from
            // resonating with the SM count (a perfectly periodic
            // pattern makes the cyclic binding maximally
            // pathological, which real layer shapes are not).
            const int64_t jitter = (i * 7) % 3;
            const auto idx = static_cast<size_t>(std::clamp<int64_t>(
                std::llround(i * stride) + jitter, 0, k_blocks - 1));
            pattern[idx] = BlockPrecision::kInt8;
        }
    }

    // Per-tile stage times. Edge tiles are smaller than the nominal
    // extents (decode GEMMs have m << tile_m), so durations use the
    // *average effective* extent per dimension.
    const double m_tiles =
        std::ceil(shape.m / static_cast<double>(cal.tile_m));
    const double n_tiles =
        std::ceil(shape.n / static_cast<double>(cal.tile_n));
    const double k_tiles_d =
        std::ceil(shape.k / static_cast<double>(cal.tile_k));
    const double tm_eff = static_cast<double>(shape.m) / m_tiles;
    const double tn_eff = static_cast<double>(shape.n) / n_tiles;
    const double tk_eff = static_cast<double>(shape.k) / k_tiles_d;
    const double tile_ops = 2.0 * tm_eff * tn_eff * tk_eff;
    const double sms = static_cast<double>(spec_.num_sms);
    const double mma4 =
        tile_ops / (spec_.int4_tensor_ops * efficiency / sms) * 1e6;
    const double mma8 =
        tile_ops / (spec_.int8_tensor_ops * efficiency / sms) * 1e6;

    // CUDA-core conversion of the weight fragment (INT8 tiles only).
    const double conv_values = tn_eff * tk_eff;
    const double conv_ops_per_value = features.fast_conversion
                                          ? cal.fast_conv_ops_per_value
                                          : cal.naive_conv_ops_per_value;
    const double conv8 = conv_values * conv_ops_per_value /
                         (spec_.cuda_core_ops / sms) * 1e6;

    // Shared-memory fragment traffic (store + reuse-amplified reads).
    auto smem_time = [&](double act_bytes_per_value,
                         double weight_traffic_scale) {
        const double act_bytes = tm_eff * tk_eff * act_bytes_per_value;
        const double w_bytes = tn_eff * tk_eff * bytesPerValue(4) *
                               weight_traffic_scale;
        return (act_bytes + w_bytes) * kSmemReuse /
               (spec_.smem_bandwidth / sms) * 1e6;
    };
    const double smem4 = smem_time(bytesPerValue(4), 1.0);
    const double smem8 = smem_time(
        bytesPerValue(8),
        features.weight_interleaving ? 1.0 : kInterleavePenalty);

    // Per-tile HBM load: the weight fragment is always cold; the
    // activation tile is reused across the n dimension, so about half
    // its traffic hits L2.
    auto load_time = [&](double act_bytes_per_value) {
        const double bytes = tn_eff * tk_eff * bytesPerValue(4) +
                             0.5 * tm_eff * tk_eff *
                                 act_bytes_per_value;
        return bytes / (effectiveBandwidth(spec_.num_sms) / sms) * 1e6;
    };
    const double load4 = load_time(bytesPerValue(4));
    const double load8 = load_time(bytesPerValue(8));

    const PipelineMode mode = features.software_pipeline
                                  ? PipelineMode::kSimtEnhanced
                                  : PipelineMode::kSerial;
    // Conversion instructions issue on the SM's CUDA cores and
    // compete with the warps feeding the tensor core. The pipeline
    // hides conversion work up to a budget proportional to the mma
    // duration; the excess spills onto the tile's critical path —
    // negligible for the 2-instruction fast conversion, dominant for
    // the naive one (the Figure 13 "w/o fast conversion" effect).
    const double exposed_conv =
        features.software_pipeline
            ? std::max(0.0, conv8 - cal.conv_hide_budget * mma8)
            : conv8;
    const double tile4 = pipelineIterationTime(
        StageTimes{load4, smem4, 0.0, mma4}, mode);
    const double tile8 = pipelineIterationTime(
        StageTimes{load8, smem8, 0.0, mma8 + exposed_conv}, mode);

    std::vector<TileWork> tiles = buildGemmTiles(
        shape.m, shape.n, shape.k, cal.tile_m, cal.tile_n, cal.tile_k,
        pattern, cal.tile_k, tile4, tile8);

    SchedulerConfig sched_config;
    sched_config.num_sms = spec_.num_sms;
    sched_config.steal_split = cal.steal_split;
    sched_config.steal_overhead = cal.steal_overhead;
    const ScheduleResult schedule =
        scheduleTiles(tiles, sched_config, features.scheduling);
    if (utilization != nullptr)
        *utilization = schedule.utilization();
    return schedule.makespan +
           static_cast<double>(schedule.barriers) * cal.barrier_us;
}

KernelCost
GemmCostModel::estimate(const GemmShape &shape, GemmKernelKind kind,
                        const CometKernelFeatures &features) const
{
    COMET_CHECK(shape.m > 0 && shape.n > 0 && shape.k > 0);
    const auto &cal = calibration_;
    const double m = static_cast<double>(shape.m);
    const double n = static_cast<double>(shape.n);
    const double k = static_cast<double>(shape.k);

    // Operand precisions (bits) per kernel kind.
    int act_bits = 16, weight_bits = 16;
    switch (kind) {
      case GemmKernelKind::kCublasW16A16: break;
      case GemmKernelKind::kTrtLlmW4A16:
        weight_bits = 4;
        break;
      case GemmKernelKind::kTrtLlmW8A8:
        act_bits = 8;
        weight_bits = 8;
        break;
      case GemmKernelKind::kQserveW4A8:
        act_bits = 8;
        weight_bits = 4;
        break;
      case GemmKernelKind::kCometW4Ax:
        act_bits = 0; // mixed, handled below
        weight_bits = 4;
        break;
      case GemmKernelKind::kOracleW4A4:
        act_bits = 4;
        weight_bits = 4;
        break;
    }
    const double act_bytes =
        kind == GemmKernelKind::kCometW4Ax
            ? features.w4a4_fraction * bytesPerValue(4) +
                  (1.0 - features.w4a4_fraction) * bytesPerValue(8)
            : bytesPerValue(act_bits);

    // Tile-level parallelism: (m, n, k) tiles are independent thread
    // blocks (split-k feeds a reduction).
    const int64_t tiles_mnk =
        ((shape.m + cal.tile_m - 1) / cal.tile_m) *
        ((shape.n + cal.tile_n - 1) / cal.tile_n) *
        ((shape.k + cal.tile_k - 1) / cal.tile_k);
    const int active_sms = static_cast<int>(
        std::min<int64_t>(spec_.num_sms, tiles_mnk));
    const double parallel_fraction =
        static_cast<double>(active_sms) /
        static_cast<double>(spec_.num_sms);

    KernelCost cost;
    cost.launch_us = cal.launch_overhead_us;

    // HBM traffic: activations + weights once each (L2 captures tile
    // reuse at these shapes) + FP16 output.
    const double hbm_bytes = m * k * act_bytes +
                             n * k * bytesPerValue(weight_bits) +
                             m * n * 2.0;
    cost.memory_us =
        hbm_bytes / effectiveBandwidth(active_sms) * 1e6;

    // CUDA-core side work per kernel kind.
    double convert_ops = 0.0;
    switch (kind) {
      case GemmKernelKind::kTrtLlmW4A16:
        // Every weight value is dequantized once per m-tile pass.
        convert_ops = n * k * cal.dequant_ops_per_value *
                      std::ceil(m / static_cast<double>(cal.tile_m));
        break;
      case GemmKernelKind::kTrtLlmW8A8:
        convert_ops = m * k; // per-token activation quantization
        break;
      case GemmKernelKind::kQserveW4A8:
        convert_ops = n * k * cal.qserve_conv_ops_per_value +
                      m * k;
        break;
      case GemmKernelKind::kCometW4Ax:
        convert_ops = m * k * cal.permute_ops_per_value; // permutation
        break;
      default:
        break;
    }
    cost.convert_us = convert_ops /
                      (spec_.cuda_core_ops * parallel_fraction) * 1e6;

    double compute_us = 0.0;
    double smem_us = 0.0;
    if (kind == GemmKernelKind::kCometW4Ax) {
        compute_us = scheduledComputeTime(shape, features,
                                          cal.efficiency_comet,
                                          &cost.sm_utilization);
        // Shared-memory traffic of the COMET tiles is already inside
        // the per-tile pipeline times.
        cost.total_us = cost.launch_us +
                        std::max({cost.memory_us, cost.convert_us,
                                  compute_us});
    } else {
        double efficiency = cal.efficiency_trtllm;
        int compute_bits = 16;
        switch (kind) {
          case GemmKernelKind::kCublasW16A16:
            efficiency = cal.efficiency_cublas;
            compute_bits = 16;
            break;
          case GemmKernelKind::kTrtLlmW4A16:
            compute_bits = 16; // dequantized to FP16 tensor cores
            break;
          case GemmKernelKind::kTrtLlmW8A8:
            compute_bits = 8;
            break;
          case GemmKernelKind::kQserveW4A8:
            efficiency = cal.efficiency_qserve;
            compute_bits = 8;
            break;
          case GemmKernelKind::kOracleW4A4:
            efficiency = cal.efficiency_oracle;
            compute_bits = 4;
            break;
          default:
            break;
        }
        compute_us = computeTime(shape, compute_bits, efficiency,
                                 parallel_fraction);
        // Fragment traffic counts every shared-memory pass: the
        // activation tile re-stages once per n-tile column and the
        // weight tile once per m-tile row, each read kSmemReuse times
        // by the warp grid — the same accounting the COMET per-tile
        // model uses, so baselines and COMET are comparable.
        const double n_tiles =
            std::ceil(n / static_cast<double>(cal.tile_n));
        const double m_tiles =
            std::ceil(m / static_cast<double>(cal.tile_m));
        const double smem_bytes =
            (m * k * act_bytes * n_tiles +
             n * k * bytesPerValue(weight_bits) * m_tiles) *
            kSmemReuse;
        smem_us = smem_bytes /
                  (spec_.smem_bandwidth * parallel_fraction) * 1e6;
        // Mature kernels are fully software-pipelined: the slowest
        // resource bounds throughput.
        cost.total_us =
            cost.launch_us + std::max({cost.memory_us, cost.convert_us,
                                       compute_us + smem_us});
    }
    cost.compute_us = compute_us;
    cost.smem_us = smem_us;
    return cost;
}

} // namespace comet
