#include "comet/gpusim/roofline.h"

#include <algorithm>

#include "comet/common/status.h"

namespace comet {

double
rooflineAttainable(double peak_ops, double bandwidth, double intensity)
{
    COMET_CHECK(peak_ops > 0 && bandwidth > 0 && intensity > 0);
    return std::min(peak_ops, intensity * bandwidth);
}

OperatorPoint
analyzeActActOperator(const GpuSpec &spec, int kv_bits)
{
    OperatorPoint point;
    point.name = "act-act (attention)";
    point.act_bits = kv_bits;
    point.weight_bits = 0;
    const double kv_bytes = static_cast<double>(kv_bits) / 8.0;
    point.intensity = 2.0 / kv_bytes;
    // Attention score/value products run on whatever unit matches the
    // dequantized operand precision; FP16 tensor cores are the ceiling.
    const double peak = spec.fp16_tensor_ops;
    point.attainable_ops =
        rooflineAttainable(peak, spec.hbm_bandwidth, point.intensity);
    point.memory_bound = point.attainable_ops < peak;
    return point;
}

OperatorPoint
analyzeWeightActOperator(const GpuSpec &spec, int act_bits,
                         int weight_bits, int64_t batch)
{
    COMET_CHECK(batch > 0);
    OperatorPoint point;
    point.name = "weight-act (GEMM, batch " + std::to_string(batch) +
                 ")";
    point.act_bits = act_bits;
    point.weight_bits = weight_bits;
    const double w_bytes = static_cast<double>(weight_bits) / 8.0;
    point.intensity = 2.0 * static_cast<double>(batch) / w_bytes;
    const int compute_bits = std::max(act_bits, weight_bits);
    const double peak = spec.tensorOps(compute_bits >= 16 ? 16
                                       : compute_bits >= 8 ? 8
                                                           : 4);
    point.attainable_ops =
        rooflineAttainable(peak, spec.hbm_bandwidth, point.intensity);
    point.memory_bound = point.attainable_ops < peak;
    return point;
}

double
ridgeIntensity(const GpuSpec &spec, int precision_bits)
{
    return spec.tensorOps(precision_bits) / spec.hbm_bandwidth;
}

} // namespace comet
