/**
 * @file
 * Whole-kernel simulation conveniences built on the cost model.
 *
 * The Figure 9 / 13 / 14 benches need the same operations: estimate a
 * set of kernels on a GEMM shape, normalize against a baseline, and
 * enumerate the named ablation variants of the W4Ax kernel. This
 * header packages those so benches stay declarative.
 */
#pragma once

#include <string>
#include <vector>

#include "comet/gpusim/cost_model.h"

namespace comet {

/** A named W4Ax kernel variant used by the ablation studies. */
struct W4AxVariant {
    std::string name;
    CometKernelFeatures features;
};

/** The Figure 13 ablation set: full kernel plus one feature removed at
 * a time. */
std::vector<W4AxVariant> figure13Variants();

/** The Figure 14 progression: naive mapping, +remapping, +tile
 * decomposition (the full kernel). */
std::vector<W4AxVariant> figure14Variants();

/**
 * Facade over GemmCostModel for comparative experiments.
 */
class KernelSimulator
{
  public:
    explicit KernelSimulator(GpuSpec spec = GpuSpec::a100Sxm480G(),
                             CostModelCalibration calibration = {});

    const GemmCostModel &model() const { return model_; }

    /** Latency of one kernel on one shape, microseconds. */
    double latencyUs(const GemmShape &shape, GemmKernelKind kind,
                     const CometKernelFeatures &features = {}) const;

    /** Speedup of @p kind over @p baseline on @p shape (>1 = faster). */
    double speedup(const GemmShape &shape, GemmKernelKind baseline,
                   GemmKernelKind kind,
                   const CometKernelFeatures &features = {}) const;

    /** Latency of a W4Ax variant, microseconds. */
    double variantLatencyUs(const GemmShape &shape,
                            const W4AxVariant &variant) const;

  private:
    GemmCostModel model_;
};

} // namespace comet
