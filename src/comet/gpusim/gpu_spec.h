/**
 * @file
 * GPU hardware specification used by the performance model.
 *
 * The reproduction has no physical GPU, so every performance experiment
 * runs against an analytic/discrete-event model parameterized by this
 * spec. Numbers for the A100-80G-SXM4 follow the paper's Section 2.3:
 * 80 GB HBM at 2.0 TB/s, 312 TFLOPS FP16 / 624 TOPS INT8 / 1248 TOPS
 * INT4 tensor cores, and CUDA cores roughly 32x slower than the INT8
 * tensor cores for scalar integer work.
 */
#pragma once

#include <string>

namespace comet {

/** Static description of one GPU model. */
struct GpuSpec {
    std::string name;

    int num_sms = 0;

    /** HBM capacity in bytes. */
    double hbm_capacity_bytes = 0.0;

    /** Sustained HBM bandwidth, bytes/second. */
    double hbm_bandwidth = 0.0;

    /** Tensor-core peak throughput per precision, ops/second (one
     * multiply-accumulate counts as two ops). @{ */
    double fp16_tensor_ops = 0.0;
    double int8_tensor_ops = 0.0;
    double int4_tensor_ops = 0.0;
    /** @} */

    /** CUDA-core scalar integer throughput, ops/second; bounds data
     * conversion and permutation work. */
    double cuda_core_ops = 0.0;

    /** Aggregate shared-memory bandwidth, bytes/second (all SMs). */
    double smem_bandwidth = 0.0;

    /** Per-GPU interconnect (NVLink) bandwidth, bytes/second; used by
     * the tensor-parallel all-reduce model (comet::tp). */
    double nvlink_bandwidth = 0.0;

    /** Per-hop interconnect latency, microseconds: the fixed cost of
     * one collective round trip between neighbouring devices (link
     * traversal + switch + kernel handoff). A ring all-reduce pays
     * 2*(N-1) of these, a direct exchange pays one — the term that
     * decides the ring/direct crossover in tp::InterconnectModel. */
    double nvlink_latency_us = 0.0;

    /** Tensor-core throughput for @p precision_bits (4, 8 or 16). */
    double tensorOps(int precision_bits) const;

    /** The NVIDIA A100-80G-SXM4, the paper's evaluation platform. */
    static GpuSpec a100Sxm480G();

    /**
     * An H100-SXM5-80G-class GPU (the paper's Section 4.3
     * "next-generation" target). Hopper drops the INT4 tensor cores,
     * so 4-bit operands execute on the INT8 units after conversion —
     * modeled by int4_tensor_ops == int8_tensor_ops. Numbers are the
     * public dense (non-sparse) figures.
     */
    static GpuSpec h100Sxm80G();
};

} // namespace comet
