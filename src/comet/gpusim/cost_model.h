/**
 * @file
 * Analytic GEMM kernel cost model for the A100-class GPU simulator.
 *
 * Every kernel-level and end-to-end performance figure in the paper is
 * regenerated through this model. It combines:
 *
 *  - a roofline-style memory/compute bound per GEMM,
 *  - per-kernel CUDA-core side work (dequantization for W4A16, INT4->8
 *    conversion for W4A8/W4Ax, channel permutation for FMPQ),
 *  - shared-memory fragment traffic (doubled when weight interleaving
 *    is disabled, reproducing the Figure 6 bank conflicts),
 *  - the software-pipeline composition from kernel/pipeline.h (stages
 *    overlap when the pipeline is on, serialize when off), and
 *  - for mixed-precision kernels, the discrete SM-scheduler simulation
 *    from sm_scheduler.h, which turns the per-tile duration mix into a
 *    makespan under the chosen scheduling strategy.
 *
 * Calibration constants (efficiencies, launch overhead) are fitted so
 * the *relative* kernel ordering and speedup magnitudes track the
 * paper's measurements; they are collected in CostModelCalibration and
 * documented in EXPERIMENTS.md.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comet/gpusim/gpu_spec.h"
#include "comet/gpusim/sm_scheduler.h"
#include "comet/kernel/pipeline.h"
#include "comet/quant/fmpq.h"

namespace comet {

/** Logical GEMM problem: O[M,N] = X[M,K] * W[N,K]^T. */
struct GemmShape {
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;

    double
    ops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
               static_cast<double>(k);
    }
};

/** The GEMM kernels compared in the paper's evaluation. */
enum class GemmKernelKind {
    kCublasW16A16 = 0, ///< FP16 cuBLAS baseline
    kTrtLlmW4A16,      ///< TensorRT-LLM weight-only INT4
    kTrtLlmW8A8,       ///< TensorRT-LLM SmoothQuant-style INT8
    kQserveW4A8,       ///< QServe W4A8 (per-channel INT8 activations)
    kCometW4Ax,        ///< this paper's mixed W4A4/W4A8 kernel
    kOracleW4A4,       ///< CUTLASS best-case pure W4A4 (upper bound)
};

/** Returns a short display name, e.g. "cuBLAS-W16A16". */
const char *gemmKernelKindName(GemmKernelKind kind);

/** Feature switches of the COMET-W4Ax kernel (ablations of Figures 13
 * and 14). Ignored for the other kernel kinds. */
struct CometKernelFeatures {
    bool software_pipeline = true;
    bool weight_interleaving = true;
    bool fast_conversion = true;
    SchedulingStrategy scheduling = SchedulingStrategy::kTaskStealing;
    /** Fraction of k-blocks quantized W4A4 (paper evaluates 0.75 as the
     * conservative lower bound). */
    double w4a4_fraction = 0.75;
};

/** Fitted constants of the cost model. */
struct CostModelCalibration {
    /** Achievable fraction of peak HBM bandwidth. */
    double memory_efficiency = 0.85;
    /** SMs needed to saturate HBM; below this, bandwidth scales down. */
    int bandwidth_saturation_sms = 32;
    /** Achievable fraction of tensor-core peak per kernel family.
     * cuBLAS's generic tiles trail TRT-LLM's tuned LLM kernels. @{ */
    double efficiency_cublas = 0.55;
    double efficiency_trtllm = 0.62;
    double efficiency_qserve = 0.62;
    double efficiency_comet = 0.60;
    double efficiency_oracle = 0.62;
    /** @} */
    /** Fixed per-kernel launch + framework overhead, microseconds. */
    double launch_overhead_us = 18.0;
    /** CUDA-core ops per dequantized W4A16 weight value. */
    double dequant_ops_per_value = 6.0;
    /** CUDA-core ops per value for QServe's INT4->INT8 weight path. */
    double qserve_conv_ops_per_value = 2.0;
    /** CUDA-core ops per value, COMET fast conversion (3 instructions
     * per 8 values, measured from the bit-exact emulation). */
    double fast_conv_ops_per_value = 0.375;
    /** CUDA-core ops per value, naive conversion (the ~10 arithmetic
     * instructions of Figure 7(a) plus the sub-word insertion SASS the
     * compiler emits around them). */
    double naive_conv_ops_per_value = 28.0;
    /** Fraction of the mma duration's CUDA-core issue slots the
     * pipeline can dedicate to conversion before it spills onto the
     * critical path. */
    double conv_hide_budget = 0.3;
    /** Cost of one inter-SM synchronization barrier, microseconds. */
    double barrier_us = 0.05;
    /** CUDA-core ops per activation value for channel permutation
     * (paper reports permutation at ~0.7% of runtime). */
    double permute_ops_per_value = 1.0;
    /** Tile extents used by COMET (fixed at 128^3 in the paper). @{ */
    int64_t tile_m = 128;
    int64_t tile_n = 128;
    int64_t tile_k = 128;
    /** @} */
    /** Scheduler knobs for the task-stealing policy. */
    int steal_split = 4;
    double steal_overhead = 0.03;
};

/** Stage-level timing result for one kernel invocation. */
struct KernelCost {
    double total_us = 0.0;
    double memory_us = 0.0;   ///< HBM traffic time
    double compute_us = 0.0;  ///< tensor-core time (after scheduling)
    double convert_us = 0.0;  ///< CUDA-core side work
    double smem_us = 0.0;     ///< shared-memory fragment traffic
    double launch_us = 0.0;
    double sm_utilization = 1.0; ///< from the scheduler, COMET only
};

/**
 * The GEMM cost model bound to one GPU spec.
 */
class GemmCostModel
{
  public:
    explicit GemmCostModel(GpuSpec spec,
                           CostModelCalibration calibration = {});

    const GpuSpec &spec() const { return spec_; }
    const CostModelCalibration &calibration() const
    {
        return calibration_;
    }

    /**
     * Estimates one kernel invocation.
     *
     * @param shape    GEMM extents
     * @param kind     which kernel
     * @param features COMET feature switches (kCometW4Ax only)
     */
    KernelCost estimate(const GemmShape &shape, GemmKernelKind kind,
                        const CometKernelFeatures &features = {}) const;

  private:
    /** Tensor-core time of a uniform-precision GEMM at the given peak
     * efficiency, accounting for tile-level parallelism limits. */
    double computeTime(const GemmShape &shape, int precision_bits,
                       double efficiency, double parallel_fraction) const;

    /** Effective HBM bandwidth at the given SM occupancy. */
    double effectiveBandwidth(int active_sms) const;

    /** Mixed-precision tensor-core time via the SM scheduler. */
    double scheduledComputeTime(const GemmShape &shape,
                                const CometKernelFeatures &features,
                                double efficiency,
                                double *utilization) const;

    GpuSpec spec_;
    CostModelCalibration calibration_;
};

} // namespace comet
