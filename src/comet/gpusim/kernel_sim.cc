#include "comet/gpusim/kernel_sim.h"

namespace comet {

std::vector<W4AxVariant>
figure13Variants()
{
    std::vector<W4AxVariant> variants;
    variants.push_back({"COMET-W4Ax (full)", CometKernelFeatures{}});

    CometKernelFeatures no_pipe;
    no_pipe.software_pipeline = false;
    variants.push_back({"W4Ax w/o software pipeline", no_pipe});

    CometKernelFeatures no_interleave;
    no_interleave.weight_interleaving = false;
    variants.push_back({"W4Ax w/o weight interleaving", no_interleave});

    CometKernelFeatures no_fast;
    no_fast.fast_conversion = false;
    variants.push_back({"W4Ax w/o fast conversion", no_fast});
    return variants;
}

std::vector<W4AxVariant>
figure14Variants()
{
    std::vector<W4AxVariant> variants;

    CometKernelFeatures naive;
    naive.scheduling = SchedulingStrategy::kNaiveSync;
    variants.push_back({"W4Ax w/o optimization", naive});

    CometKernelFeatures barrier_min;
    barrier_min.scheduling = SchedulingStrategy::kBarrierMinimized;
    variants.push_back({"W4Ax w/ barrier minimization", barrier_min});

    CometKernelFeatures remap;
    remap.scheduling = SchedulingStrategy::kTileRemapping;
    variants.push_back({"W4Ax w/ remapping", remap});

    variants.push_back({"COMET-W4Ax (task stealing)",
                        CometKernelFeatures{}});
    return variants;
}

KernelSimulator::KernelSimulator(GpuSpec spec,
                                 CostModelCalibration calibration)
    : model_(std::move(spec), calibration)
{
}

double
KernelSimulator::latencyUs(const GemmShape &shape, GemmKernelKind kind,
                           const CometKernelFeatures &features) const
{
    return model_.estimate(shape, kind, features).total_us;
}

double
KernelSimulator::speedup(const GemmShape &shape, GemmKernelKind baseline,
                         GemmKernelKind kind,
                         const CometKernelFeatures &features) const
{
    return latencyUs(shape, baseline) /
           latencyUs(shape, kind, features);
}

double
KernelSimulator::variantLatencyUs(const GemmShape &shape,
                                  const W4AxVariant &variant) const
{
    return latencyUs(shape, GemmKernelKind::kCometW4Ax,
                     variant.features);
}

} // namespace comet
