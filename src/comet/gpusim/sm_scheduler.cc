#include "comet/gpusim/sm_scheduler.h"

#include <algorithm>
#include <queue>

#include "comet/common/status.h"
#include "comet/obs/metrics.h"
#include "comet/obs/trace_session.h"

namespace comet {

const char *
schedulingStrategyName(SchedulingStrategy strategy)
{
    switch (strategy) {
      case SchedulingStrategy::kNaiveSync: return "naive-sync";
      case SchedulingStrategy::kBarrierMinimized: return "barrier-min";
      case SchedulingStrategy::kTileRemapping: return "tile-remap";
      case SchedulingStrategy::kTaskStealing: return "task-steal";
    }
    return "?";
}

double
ScheduleResult::utilization() const
{
    if (makespan <= 0.0 || sm_busy.empty())
        return 1.0;
    double busy = 0.0;
    for (double b : sm_busy)
        busy += b;
    return busy / (makespan * static_cast<double>(sm_busy.size()));
}

namespace {

/** Waves of num_sms tiles with a barrier after each wave. */
ScheduleResult
scheduleNaiveSync(const std::vector<TileWork> &tiles, int num_sms)
{
    ScheduleResult result;
    result.sm_busy.assign(static_cast<size_t>(num_sms), 0.0);
    for (size_t i = 0; i < tiles.size();
         i += static_cast<size_t>(num_sms)) {
        double wave_max = 0.0;
        for (int s = 0; s < num_sms; ++s) {
            const size_t idx = i + static_cast<size_t>(s);
            if (idx >= tiles.size())
                break;
            result.sm_busy[static_cast<size_t>(s)] +=
                tiles[idx].duration;
            wave_max = std::max(wave_max, tiles[idx].duration);
        }
        result.makespan += wave_max;
        ++result.barriers;
    }
    for (const TileWork &tile : tiles)
        result.total_work += tile.duration;
    return result;
}

/** Static cyclic binding (tile i -> SM i % num_sms), no per-wave
 * barriers; makespan is the busiest SM. */
ScheduleResult
scheduleBarrierMinimized(const std::vector<TileWork> &tiles, int num_sms)
{
    ScheduleResult result;
    result.sm_busy.assign(static_cast<size_t>(num_sms), 0.0);
    for (size_t i = 0; i < tiles.size(); ++i) {
        result.sm_busy[i % static_cast<size_t>(num_sms)] +=
            tiles[i].duration;
        result.total_work += tiles[i].duration;
    }
    for (double busy : result.sm_busy)
        result.makespan = std::max(result.makespan, busy);
    result.barriers = 1; // only the final pre-writeback barrier
    return result;
}

/**
 * Tile remapping (Figure 8(d)): tiles are dealt to SMs round-robin
 * *per precision class*, so every SM receives a near-equal share of
 * INT4 and INT8 work. This matches the paper's "distribute the INT4
 * and INT8 mma computations as evenly as possible" — a static
 * remapping, not an idealized optimal packing, so a residual
 * imbalance of up to one tile per class remains (the gap tile
 * decomposition closes).
 */
ScheduleResult
scheduleRemapping(const std::vector<TileWork> &tiles, int num_sms)
{
    ScheduleResult result;
    result.sm_busy.assign(static_cast<size_t>(num_sms), 0.0);
    size_t next_int4 = 0, next_int8 = 0;
    for (const TileWork &tile : tiles) {
        size_t &cursor = tile.precision == BlockPrecision::kInt4
                             ? next_int4
                             : next_int8;
        result.sm_busy[cursor % static_cast<size_t>(num_sms)] +=
            tile.duration;
        ++cursor;
        result.total_work += tile.duration;
    }
    for (double busy : result.sm_busy)
        result.makespan = std::max(result.makespan, busy);
    result.barriers = 1;
    return result;
}

/**
 * Tile decomposition / task stealing (Figure 8(e)): on top of the
 * remapped schedule, idle SMs steal fractions of the remaining tiles
 * near the kernel tail. Stealing is opportunistic — an SM only takes
 * work it would otherwise idle through — so it can only improve the
 * makespan; each stolen fragment pays a reduction overhead, and a
 * tile splits into at most steal_split fragments.
 */
ScheduleResult
scheduleTaskStealing(const std::vector<TileWork> &tiles, int num_sms,
                     int steal_split, double steal_overhead)
{
    ScheduleResult result = scheduleRemapping(tiles, num_sms);
    if (tiles.empty())
        return result;

    // Work above the balanced waterline migrates to idle SMs,
    // inflated by the per-steal reduction overhead.
    const double target =
        result.total_work / static_cast<double>(num_sms);
    double transferred = 0.0;
    double max_tile = 0.0;
    for (double busy : result.sm_busy)
        transferred += std::max(0.0, busy - target);
    for (const TileWork &tile : tiles)
        max_tile = std::max(max_tile, tile.duration);

    const double inflated =
        result.total_work + transferred * steal_overhead;
    // A tile fragments at most steal_split ways, bounding how finely
    // the tail can be balanced.
    const double balanced = std::max(
        inflated / static_cast<double>(num_sms),
        max_tile / static_cast<double>(steal_split));
    if (balanced < result.makespan) {
        result.makespan = balanced;
        result.total_work = inflated;
        std::fill(result.sm_busy.begin(), result.sm_busy.end(),
                  inflated / static_cast<double>(num_sms));
    }
    return result;
}

} // namespace

ScheduleResult
scheduleTiles(const std::vector<TileWork> &tiles,
              const SchedulerConfig &config, SchedulingStrategy strategy)
{
    COMET_SPAN("gpusim/schedule_tiles");
    static obs::Counter &tiles_counter =
        obs::MetricsRegistry::global().counter(
            "gpusim.tiles_scheduled");
    tiles_counter.add(static_cast<int64_t>(tiles.size()));
    COMET_CHECK(config.num_sms > 0);
    if (tiles.empty()) {
        ScheduleResult empty;
        empty.sm_busy.assign(static_cast<size_t>(config.num_sms), 0.0);
        return empty;
    }
    switch (strategy) {
      case SchedulingStrategy::kNaiveSync:
        return scheduleNaiveSync(tiles, config.num_sms);
      case SchedulingStrategy::kBarrierMinimized:
        return scheduleBarrierMinimized(tiles, config.num_sms);
      case SchedulingStrategy::kTileRemapping:
        return scheduleRemapping(tiles, config.num_sms);
      case SchedulingStrategy::kTaskStealing:
        COMET_CHECK(config.steal_split >= 1);
        return scheduleTaskStealing(tiles, config.num_sms,
                                    config.steal_split,
                                    config.steal_overhead);
    }
    COMET_CHECK_MSG(false, "unknown scheduling strategy");
    return {};
}

std::vector<TileWork>
buildGemmTiles(int64_t m, int64_t n, int64_t k, int64_t tile_m,
               int64_t tile_n, int64_t tile_k,
               const std::vector<BlockPrecision> &k_block_precisions,
               int64_t block_size, double int4_tile_us,
               double int8_tile_us)
{
    COMET_CHECK(m > 0 && n > 0 && k > 0);
    COMET_CHECK(tile_m > 0 && tile_n > 0 && tile_k > 0);
    COMET_CHECK(block_size > 0 && block_size % tile_k == 0);
    COMET_CHECK(static_cast<int64_t>(k_block_precisions.size()) ==
                (k + block_size - 1) / block_size);

    const int64_t m_tiles = (m + tile_m - 1) / tile_m;
    const int64_t n_tiles = (n + tile_n - 1) / tile_n;
    const int64_t k_tiles = (k + tile_k - 1) / tile_k;

    std::vector<TileWork> tiles;
    tiles.reserve(static_cast<size_t>(m_tiles * n_tiles * k_tiles));
    // Iteration order mirrors the kernel's issue order: the k split is
    // innermost (each (m, n, k) tile is its own thread block feeding
    // the cross-tile reduction), so consecutive tiles alternate
    // precision when k blocks do — reproducing the pathological
    // precision/SM correlation of Figure 8(b) under cyclic binding.
    for (int64_t mt = 0; mt < m_tiles; ++mt) {
        for (int64_t nt = 0; nt < n_tiles; ++nt) {
            for (int64_t kt = 0; kt < k_tiles; ++kt) {
                const int64_t block = (kt * tile_k) / block_size;
                const BlockPrecision precision =
                    k_block_precisions[static_cast<size_t>(block)];
                const double duration =
                    precision == BlockPrecision::kInt4 ? int4_tile_us
                                                       : int8_tile_us;
                tiles.push_back(TileWork{duration, precision});
            }
        }
    }
    return tiles;
}

} // namespace comet
