#include "comet/gpusim/gpu_spec.h"

#include "comet/common/status.h"

namespace comet {

double
GpuSpec::tensorOps(int precision_bits) const
{
    switch (precision_bits) {
      case 4: return int4_tensor_ops;
      case 8: return int8_tensor_ops;
      case 16: return fp16_tensor_ops;
      default:
        COMET_CHECK_MSG(false, "unsupported tensor-core precision");
        return 0.0;
    }
}

GpuSpec
GpuSpec::a100Sxm480G()
{
    GpuSpec spec;
    spec.name = "NVIDIA A100-80GB-SXM4";
    spec.num_sms = 108;
    spec.hbm_capacity_bytes = 80.0e9;
    spec.hbm_bandwidth = 2.0e12;      // 2.0 TB/s (paper Section 2.3)
    spec.fp16_tensor_ops = 312.0e12;  // 312 TFLOPS
    spec.int8_tensor_ops = 624.0e12;  // 624 TOPS
    spec.int4_tensor_ops = 1248.0e12; // 1248 TOPS
    // Paper Section 4.3: INT8 tensor core is 32x the CUDA cores.
    spec.cuda_core_ops = spec.int8_tensor_ops / 32.0;
    // 108 SMs x ~128 B/clk x 1.41 GHz.
    spec.smem_bandwidth = 19.5e12;
    spec.nvlink_bandwidth = 600.0e9; // NVLink 3
    spec.nvlink_latency_us = 1.5;    // per-hop collective round
    return spec;
}

GpuSpec
GpuSpec::h100Sxm80G()
{
    GpuSpec spec;
    spec.name = "NVIDIA H100-80GB-SXM5";
    spec.num_sms = 132;
    spec.hbm_capacity_bytes = 80.0e9;
    spec.hbm_bandwidth = 3.35e12;
    spec.fp16_tensor_ops = 989.0e12;  // dense FP16/BF16 tensor core
    spec.int8_tensor_ops = 1979.0e12; // dense INT8/FP8
    // No INT4 tensor cores on Hopper: 4-bit operands convert to INT8
    // (or FP8) and run at the INT8 rate.
    spec.int4_tensor_ops = spec.int8_tensor_ops;
    spec.cuda_core_ops = spec.int8_tensor_ops / 32.0;
    spec.smem_bandwidth = 33.0e12;
    spec.nvlink_bandwidth = 900.0e9; // NVLink 4
    spec.nvlink_latency_us = 1.0;    // NVSwitch generation ahead
    return spec;
}

} // namespace comet
