/**
 * @file
 * Roofline analysis of LLM operators (paper Section 2.3, Figure 2).
 *
 * The paper motivates W4A4KV4 with a roofline argument: the
 * activation-activation operators of attention have a fixed arithmetic
 * intensity around 1 op/byte (memory-bound at any batch size, so KV
 * quantization translates directly into speedup), while weight-
 * activation GEMMs have intensity proportional to the batched token
 * count (compute-bound at large batch, so low-precision tensor cores
 * translate directly into speedup).
 */
#pragma once

#include <string>
#include <vector>

#include "comet/gpusim/gpu_spec.h"

namespace comet {

/** Attainable throughput (ops/s) at a given arithmetic intensity under
 * the classic roofline: min(peak, intensity * bandwidth). */
double rooflineAttainable(double peak_ops, double bandwidth,
                          double intensity);

/** One analyzed operator point on the roofline. */
struct OperatorPoint {
    std::string name;
    int act_bits = 16;       ///< activation / KV precision
    int weight_bits = 16;    ///< weight precision (weight-act only)
    double intensity = 0.0;  ///< ops per HBM byte
    double attainable_ops = 0.0;
    bool memory_bound = false;
};

/**
 * Analyzes the attention activation-activation operator (e.g. Q*K^T)
 * at the given KV precision: per output element one MAC reads one KV
 * value, so intensity = 2 / kv_bytes.
 */
OperatorPoint analyzeActActOperator(const GpuSpec &spec, int kv_bits);

/**
 * Analyzes a decode-phase weight-activation GEMM at the given batch
 * size and precisions: weights dominate traffic, so intensity is
 * approximately 2 * batch / weight_bytes.
 */
OperatorPoint analyzeWeightActOperator(const GpuSpec &spec, int act_bits,
                                       int weight_bits, int64_t batch);

/** The ridge intensity where an operator transitions from memory- to
 * compute-bound for the given compute precision. */
double ridgeIntensity(const GpuSpec &spec, int precision_bits);

} // namespace comet
