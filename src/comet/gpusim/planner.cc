#include "comet/gpusim/planner.h"

#include <algorithm>

#include "comet/common/table.h"
#include "comet/model/layer_shapes.h"
#include "comet/obs/trace_session.h"
#include "comet/tp/interconnect.h"
#include "comet/tp/shard.h"

namespace comet {

CompilePlanner::CompilePlanner(GpuSpec spec,
                               CostModelCalibration calibration)
    : model_(std::move(spec), calibration)
{
}

ModelPlan
CompilePlanner::plan(const LlmConfig &model, int64_t batch,
                     double w4a4_fraction, int tensor_parallel) const
{
    COMET_SPAN("gpusim/plan");
    COMET_CHECK(batch > 0);
    COMET_CHECK(w4a4_fraction >= 0.0 && w4a4_fraction <= 1.0);
    const Status tp_ok = tp::validateTpDegree(model, tensor_parallel);
    COMET_CHECK_MSG(tp_ok.isOk(), tp_ok.message().c_str());

    ModelPlan result;
    result.model_name = model.name;
    result.batch = batch;
    result.tensor_parallel = tensor_parallel;

    const auto tp_degree = static_cast<int64_t>(tensor_parallel);
    const auto &cal = model_.calibration();
    double naive_total = 0.0;
    for (const LayerGemm &gemm : decoderLayerGemms(model, batch)) {
        LayerPlan layer;
        layer.name = gemm.name;
        layer.shape = gemm.shape;
        // Megatron sharding, matching ServingEngine: the block's
        // first projection splits its output features, the second its
        // input channels.
        if (gemm.name == "qkv_proj" || gemm.name == "gate_up_proj" ||
            gemm.name == "up_proj") {
            layer.shape.n =
                std::max<int64_t>(layer.shape.n / tp_degree, 1);
        } else {
            layer.shape.k =
                std::max<int64_t>(layer.shape.k / tp_degree, 1);
        }
        layer.total_tiles =
            ((layer.shape.m + cal.tile_m - 1) / cal.tile_m) *
            ((layer.shape.n + cal.tile_n - 1) / cal.tile_n) *
            ((layer.shape.k + cal.tile_k - 1) / cal.tile_k);
        layer.w4a4_tile_fraction = w4a4_fraction;

        double best = 0.0;
        for (SchedulingStrategy strategy :
             {SchedulingStrategy::kNaiveSync,
              SchedulingStrategy::kBarrierMinimized,
              SchedulingStrategy::kTileRemapping,
              SchedulingStrategy::kTaskStealing}) {
            CometKernelFeatures features;
            features.scheduling = strategy;
            features.w4a4_fraction = w4a4_fraction;
            const KernelCost cost = model_.estimate(
                layer.shape, GemmKernelKind::kCometW4Ax, features);
            if (strategy == SchedulingStrategy::kNaiveSync)
                layer.naive_us = cost.total_us;
            if (best == 0.0 || cost.total_us < best) {
                best = cost.total_us;
                layer.strategy = strategy;
                layer.predicted_us = cost.total_us;
                layer.sm_utilization = cost.sm_utilization;
            }
        }
        naive_total += layer.naive_us;
        result.step_gemm_us += layer.predicted_us;
        result.layers.push_back(std::move(layer));
    }

    result.bottleneck_layer = 0;
    for (size_t i = 1; i < result.layers.size(); ++i) {
        if (result.layers[i].predicted_us >
            result.layers[result.bottleneck_layer].predicted_us) {
            result.bottleneck_layer = i;
        }
    }
    result.speedup_over_naive =
        result.step_gemm_us > 0.0 ? naive_total / result.step_gemm_us
                                  : 1.0;
    if (tensor_parallel > 1) {
        const tp::InterconnectModel link(model_.spec());
        const double tensor_bytes = static_cast<double>(batch) *
                                    static_cast<double>(
                                        model.hidden_size) *
                                    2.0;
        result.allreduce_us =
            2.0 * link.allReduceUs(tensor_bytes, tensor_parallel);
    }
    return result;
}

std::string
CompilePlanner::report(const ModelPlan &plan)
{
    Table table({"layer GEMM", "shape (MxNxK)", "tiles",
                 "chosen schedule", "predicted (us)", "SM util",
                 "vs naive"});
    for (size_t i = 0; i < plan.layers.size(); ++i) {
        const LayerPlan &layer = plan.layers[i];
        std::string name = layer.name;
        if (i == plan.bottleneck_layer)
            name += " *";
        table.addRow(
            {name,
             std::to_string(layer.shape.m) + "x" +
                 std::to_string(layer.shape.n) + "x" +
                 std::to_string(layer.shape.k),
             std::to_string(layer.total_tiles),
             schedulingStrategyName(layer.strategy),
             formatDouble(layer.predicted_us, 1),
             formatPercent(layer.sm_utilization),
             formatSpeedup(layer.naive_us / layer.predicted_us)});
    }
    std::string out = "compile plan: " + plan.model_name +
                      ", decode batch " +
                      std::to_string(plan.batch);
    if (plan.tensor_parallel > 1) {
        out += ", TP " + std::to_string(plan.tensor_parallel);
    }
    out += "\n";
    out += table.render();
    if (plan.tensor_parallel > 1) {
        out += "tensor parallel " +
               std::to_string(plan.tensor_parallel) + ": +" +
               formatDouble(plan.allreduce_us, 1) +
               " us/layer all-reduce\n";
    }
    out += "per-layer GEMM time " +
           formatDouble(plan.step_gemm_us, 1) +
           " us; scheduling buys " +
           formatSpeedup(plan.speedup_over_naive) +
           " over naive mapping; * marks the bottleneck layer\n";
    return out;
}

} // namespace comet
