/**
 * @file
 * Synthetic zero-shot task suite (Table 2).
 *
 * The paper evaluates five common-sense benchmarks (PIQA, ARC-e,
 * ARC-c, HellaSwag, WinoGrande). With no benchmark data available, the
 * substitute generates multiple-choice tasks *from the teacher model*:
 * a context is sampled from the teacher, the label candidate is a
 * continuation token sampled from the teacher's next-token
 * distribution, and distractors are drawn either uniformly (easy
 * tasks) or from the teacher's own high-probability alternatives (hard
 * tasks, standing in for ARC-c). A model scores each candidate by its
 * log-likelihood as the continuation — exactly the lm-eval-harness
 * protocol — so quantization-induced likelihood distortion lowers
 * accuracy, preserving the relative ordering Table 2 reports.
 */
#pragma once

#include <string>
#include <vector>

#include "comet/common/rng.h"
#include "comet/model/tiny_transformer.h"

namespace comet {

/** One multiple-choice example. */
struct ZeroshotExample {
    std::vector<int32_t> context;
    std::vector<int32_t> candidates; ///< single-token continuations
    int label = 0;                   ///< index into candidates
};

/** A named task (one synthetic analogue of a Table 2 benchmark). */
struct ZeroshotTask {
    std::string name;
    std::vector<ZeroshotExample> examples;
};

/** Generation parameters of one synthetic task. */
struct ZeroshotTaskConfig {
    std::string name;
    int num_examples = 60;
    int64_t context_length = 24;
    int num_candidates = 4;
    /** Distractors from the teacher's top-k (hard) vs uniform (easy). */
    bool hard_distractors = false;
    uint64_t seed = 99;
};

/** Builds one task by sampling from the teacher. */
ZeroshotTask buildZeroshotTask(const TinyTransformer &teacher,
                               const ZeroshotTaskConfig &config);

/** The five-task suite mirroring Table 2's columns. */
std::vector<ZeroshotTask> buildZeroshotSuite(
    const TinyTransformer &teacher, uint64_t seed = 1234);

/** Accuracy of a model (+ optional simulator) on one task. */
double evaluateZeroshotAccuracy(const TinyTransformer &model,
                                QuantSimulator *sim,
                                const ZeroshotTask &task);

} // namespace comet
