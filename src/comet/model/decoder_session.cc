#include "comet/model/decoder_session.h"

#include <algorithm>
#include <cmath>

#include "comet/kernel/gemm_ref.h"

namespace comet {

namespace {

/** RoPE on one row vector at absolute position @p pos; must match
 * the batched applyRope in tiny_transformer.cc exactly. */
void
ropeRow(Tensor &row, int64_t heads, int64_t head_dim, int64_t pos)
{
    for (int64_t h = 0; h < heads; ++h) {
        for (int64_t d = 0; d < head_dim / 2; ++d) {
            const double theta =
                static_cast<double>(pos) *
                std::pow(10000.0, -2.0 * static_cast<double>(d) /
                                      static_cast<double>(head_dim));
            const double c = std::cos(theta), s = std::sin(theta);
            const int64_t base = h * head_dim;
            const float x0 = row.at(0, base + 2 * d);
            const float x1 = row.at(0, base + 2 * d + 1);
            row.at(0, base + 2 * d) =
                static_cast<float>(x0 * c - x1 * s);
            row.at(0, base + 2 * d + 1) =
                static_cast<float>(x0 * s + x1 * c);
        }
    }
}

float
silu(float x)
{
    return static_cast<float>(x / (1.0 + std::exp(-x)));
}

} // namespace

DecoderSession::DecoderSession(const TinyTransformer &model,
                               std::optional<KvQuantConfig> kv_quant)
    : model_(model), kv_quant_(kv_quant)
{
    const auto &config = model_.config();
    attn_config_.num_heads = config.num_heads;
    attn_config_.num_kv_heads = config.num_kv_heads;
    attn_config_.head_dim = config.headDim();
    attn_config_.chunk_tokens = 64;
    caches_.resize(static_cast<size_t>(config.num_layers));
    if (kv_quant_)
        quantizer_ = std::make_unique<KvCacheQuantizer>(*kv_quant_);
    ensureCapacity(16);
}

void
DecoderSession::ensureCapacity(int64_t tokens)
{
    if (tokens <= capacity_)
        return;
    int64_t new_capacity = std::max<int64_t>(capacity_, 16);
    while (new_capacity < tokens)
        new_capacity *= 2;
    const int64_t kv_dim = attn_config_.kvDim();
    for (LayerCache &cache : caches_) {
        Tensor k(new_capacity, kv_dim);
        Tensor v(new_capacity, kv_dim);
        for (int64_t t = 0; t < position_; ++t) {
            for (int64_t c = 0; c < kv_dim; ++c) {
                k.at(t, c) = cache.k.at(t, c);
                v.at(t, c) = cache.v.at(t, c);
            }
        }
        cache.k = std::move(k);
        cache.v = std::move(v);
    }
    capacity_ = new_capacity;
}

std::vector<float>
DecoderSession::step(int32_t token)
{
    const auto &config = model_.config();
    COMET_CHECK(token >= 0 && token < config.vocab_size);
    ensureCapacity(position_ + 1);

    const int64_t d = config.hidden_size;
    const int64_t kv_dim = attn_config_.kvDim();

    Tensor x(1, d);
    for (int64_t c = 0; c < d; ++c)
        x.at(0, c) = model_.embedding().at(token, c);

    for (int64_t l = 0; l < config.num_layers; ++l) {
        LayerCache &cache = caches_[static_cast<size_t>(l)];

        // --- Attention block ---
        const Tensor h =
            model_.rmsNormRows(x, model_.attnNormGain(l));
        Tensor q = gemmFloat(h, model_.weight({l, WeightKind::kQ}));
        Tensor k_row =
            gemmFloat(h, model_.weight({l, WeightKind::kK}));
        const Tensor v_row =
            gemmFloat(h, model_.weight({l, WeightKind::kV}));
        ropeRow(q, config.num_heads, config.headDim(), position_);
        ropeRow(k_row, config.num_kv_heads, config.headDim(),
                position_);
        for (int64_t c = 0; c < kv_dim; ++c) {
            cache.k.at(position_, c) = k_row.at(0, c);
            cache.v.at(position_, c) = v_row.at(0, c);
        }

        // Attend over the cache [0, position_].
        const int64_t tokens = position_ + 1;
        Tensor k_view(tokens, kv_dim);
        Tensor v_view(tokens, kv_dim);
        for (int64_t t = 0; t < tokens; ++t) {
            for (int64_t c = 0; c < kv_dim; ++c) {
                k_view.at(t, c) = cache.k.at(t, c);
                v_view.at(t, c) = cache.v.at(t, c);
            }
        }
        std::vector<float> q_vec(static_cast<size_t>(d));
        for (int64_t c = 0; c < d; ++c)
            q_vec[static_cast<size_t>(c)] = q.at(0, c);

        std::vector<float> attn;
        if (quantizer_) {
            // The stored cache is packed INT; attention dequantizes
            // on the fly (group scales re-derived as the open group
            // grows — the dynamic behaviour of the real KV4 cache).
            attn = decodeAttentionQuantized(
                attn_config_, q_vec, quantizer_->quantize(k_view),
                quantizer_->quantize(v_view), *quantizer_);
        } else {
            attn = decodeAttentionOnline(attn_config_, q_vec, k_view,
                                         v_view);
        }
        Tensor attn_row(1, d);
        for (int64_t c = 0; c < d; ++c)
            attn_row.at(0, c) = attn[static_cast<size_t>(c)];
        const Tensor o =
            gemmFloat(attn_row, model_.weight({l, WeightKind::kO}));
        for (int64_t c = 0; c < d; ++c)
            x.at(0, c) += o.at(0, c);

        // --- MLP block ---
        const Tensor m = model_.rmsNormRows(x, model_.mlpNormGain(l));
        const Tensor up =
            gemmFloat(m, model_.weight({l, WeightKind::kUp}));
        Tensor inter(1, config.intermediate_size);
        if (config.gated_mlp) {
            const Tensor gate =
                gemmFloat(m, model_.weight({l, WeightKind::kGate}));
            for (int64_t c = 0; c < config.intermediate_size; ++c)
                inter.at(0, c) = silu(gate.at(0, c)) * up.at(0, c);
        } else {
            for (int64_t c = 0; c < config.intermediate_size; ++c)
                inter.at(0, c) = std::max(up.at(0, c), 0.0f);
        }
        const Tensor down =
            gemmFloat(inter, model_.weight({l, WeightKind::kDown}));
        for (int64_t c = 0; c < d; ++c)
            x.at(0, c) += down.at(0, c);
    }

    const Tensor normed =
        model_.rmsNormRows(x, model_.finalNormGain());
    const Tensor logits = gemmFloat(normed, model_.embedding());
    ++position_;

    std::vector<float> out(static_cast<size_t>(config.vocab_size));
    for (int64_t v = 0; v < config.vocab_size; ++v)
        out[static_cast<size_t>(v)] = logits.at(0, v);
    return out;
}

std::vector<float>
DecoderSession::prefill(const std::vector<int32_t> &tokens)
{
    COMET_CHECK(!tokens.empty());
    std::vector<float> logits;
    for (int32_t token : tokens)
        logits = step(token);
    return logits;
}

std::vector<int32_t>
DecoderSession::generate(const std::vector<int32_t> &prompt,
                         int64_t new_tokens, Rng &rng)
{
    std::vector<int32_t> sequence = prompt;
    std::vector<float> logits = prefill(prompt);
    for (int64_t i = 0; i < new_tokens; ++i) {
        // Temperature-1 sampling over the softmax of the logits.
        double max_logit = logits[0];
        for (float v : logits)
            max_logit = std::max(max_logit, static_cast<double>(v));
        std::vector<double> probs(logits.size());
        double sum = 0.0;
        for (size_t v = 0; v < logits.size(); ++v) {
            probs[v] = std::exp(static_cast<double>(logits[v]) -
                                max_logit);
            sum += probs[v];
        }
        double u = rng.uniform() * sum;
        int32_t pick = 0;
        for (size_t v = 0; v < probs.size(); ++v) {
            u -= probs[v];
            if (u <= 0.0) {
                pick = static_cast<int32_t>(v);
                break;
            }
        }
        sequence.push_back(pick);
        logits = step(pick);
    }
    return sequence;
}

double
DecoderSession::kvCacheBytes() const
{
    const double bits =
        kv_quant_ ? static_cast<double>(kv_quant_->bits) : 16.0;
    return 2.0 * static_cast<double>(model_.config().num_layers) *
           static_cast<double>(attn_config_.kvDim()) *
           static_cast<double>(position_) * bits / 8.0;
}

} // namespace comet
