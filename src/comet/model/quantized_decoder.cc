#include "comet/model/quantized_decoder.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "comet/runtime/thread_pool.h"

namespace comet {

namespace {

/** RoPE on one row at absolute position @p pos (matches
 * tiny_transformer.cc). */
void
ropeRow(Tensor &row, int64_t heads, int64_t head_dim, int64_t pos)
{
    for (int64_t h = 0; h < heads; ++h) {
        for (int64_t d = 0; d < head_dim / 2; ++d) {
            const double theta =
                static_cast<double>(pos) *
                std::pow(10000.0, -2.0 * static_cast<double>(d) /
                                      static_cast<double>(head_dim));
            const double c = std::cos(theta), s = std::sin(theta);
            const int64_t base = h * head_dim;
            const float x0 = row.at(0, base + 2 * d);
            const float x1 = row.at(0, base + 2 * d + 1);
            row.at(0, base + 2 * d) =
                static_cast<float>(x0 * c - x1 * s);
            row.at(0, base + 2 * d + 1) =
                static_cast<float>(x0 * s + x1 * c);
        }
    }
}

float
silu(float x)
{
    return static_cast<float>(x / (1.0 + std::exp(-x)));
}

} // namespace

QuantizedDecoder::QuantizedDecoder(const TinyTransformer &model,
                                   const CalibrationData &calibration,
                                   QuantizedDecoderConfig config)
    : model_(model), config_(config),
      kv_quantizer_(config.kv)
{
    const auto &mc = model_.config();
    attn_config_.num_heads = mc.num_heads;
    attn_config_.num_kv_heads = mc.num_kv_heads;
    attn_config_.head_dim = mc.headDim();
    attn_config_.chunk_tokens = 64;
    caches_.resize(static_cast<size_t>(mc.num_layers));

    W4AxGemmConfig gemm_config;
    gemm_config.tile_m = config_.tile_m;
    gemm_config.tile_n = config_.tile_n;
    gemm_config.tile_k = config_.tile_k;
    gemm_config.threads = config_.gemm_threads;

    // Calibrate one FMPQ quantizer per (layer, site), then pack every
    // weight in its feeding site's permuted block layout. The
    // calibration sweeps are independent per (layer, site) and fan
    // out across the runtime pool into index-addressed slots, so the
    // site order (and every quantizer) matches the sequential sweep
    // exactly.
    const int64_t num_sites = mc.num_layers * kNumActSites;
    std::vector<std::optional<FmpqActivationQuantizer>> calibrated(
        static_cast<size_t>(num_sites));
    parallelFor(0, num_sites, 1, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
            const int64_t l = i / kNumActSites;
            const auto act_site =
                static_cast<ActSite>(i % kNumActSites);
            calibrated[static_cast<size_t>(i)] =
                FmpqActivationQuantizer::calibrate(
                    calibration.activations(l, act_site),
                    config_.fmpq);
        }
    });
    sites_.reserve(static_cast<size_t>(num_sites));
    for (int64_t i = 0; i < num_sites; ++i)
        sites_.push_back(
            SiteOps{std::move(*calibrated[static_cast<size_t>(i)])});
    for (int64_t l = 0; l < mc.num_layers; ++l) {
        LayerOps ops;
        const auto &qkv = site(l, ActSite::kQkv);
        for (WeightKind kind :
             {WeightKind::kQ, WeightKind::kK, WeightKind::kV}) {
            ops.attn.emplace_back(
                qkv.quantizeWeight(model_.weight({l, kind})),
                qkv.blockPrecisions(), gemm_config);
        }
        const auto &o_site = site(l, ActSite::kO);
        ops.o.emplace_back(
            o_site.quantizeWeight(model_.weight({l, WeightKind::kO})),
            o_site.blockPrecisions(), gemm_config);
        const auto &mlp_site = site(l, ActSite::kMlp);
        if (mc.gated_mlp) {
            ops.mlp.emplace_back(
                mlp_site.quantizeWeight(
                    model_.weight({l, WeightKind::kGate})),
                mlp_site.blockPrecisions(), gemm_config);
        }
        ops.mlp.emplace_back(
            mlp_site.quantizeWeight(
                model_.weight({l, WeightKind::kUp})),
            mlp_site.blockPrecisions(), gemm_config);
        const auto &down_site = site(l, ActSite::kDown);
        ops.down.emplace_back(
            down_site.quantizeWeight(
                model_.weight({l, WeightKind::kDown})),
            down_site.blockPrecisions(), gemm_config);
        layers_.push_back(std::move(ops));
    }
    ensureCapacity(16);
}

const FmpqActivationQuantizer &
QuantizedDecoder::site(int64_t layer, ActSite act_site) const
{
    return sites_[static_cast<size_t>(layer * kNumActSites +
                                      static_cast<int>(act_site))]
        .quantizer;
}

double
QuantizedDecoder::w4a4ComputeFraction() const
{
    double sum = 0.0;
    for (const SiteOps &ops : sites_)
        sum += ops.quantizer.w4a4ComputeFraction();
    return sum / static_cast<double>(sites_.size());
}

Tensor
QuantizedDecoder::runLinear(int64_t layer, ActSite act_site,
                            const W4AxGemm &gemm,
                            const Tensor &h) const
{
    return gemm.run(site(layer, act_site).quantize(h));
}

void
QuantizedDecoder::ensureCapacity(int64_t tokens)
{
    if (tokens <= capacity_)
        return;
    int64_t new_capacity = std::max<int64_t>(capacity_, 16);
    while (new_capacity < tokens)
        new_capacity *= 2;
    const int64_t kv_dim = attn_config_.kvDim();
    for (LayerCache &cache : caches_) {
        Tensor k(new_capacity, kv_dim);
        Tensor v(new_capacity, kv_dim);
        for (int64_t t = 0; t < position_; ++t) {
            for (int64_t c = 0; c < kv_dim; ++c) {
                k.at(t, c) = cache.k.at(t, c);
                v.at(t, c) = cache.v.at(t, c);
            }
        }
        cache.k = std::move(k);
        cache.v = std::move(v);
    }
    capacity_ = new_capacity;
}

std::vector<float>
QuantizedDecoder::step(int32_t token)
{
    const auto &mc = model_.config();
    COMET_CHECK(token >= 0 && token < mc.vocab_size);
    ensureCapacity(position_ + 1);

    const int64_t d = mc.hidden_size;
    const int64_t kv_dim = attn_config_.kvDim();

    Tensor x(1, d);
    for (int64_t c = 0; c < d; ++c)
        x.at(0, c) = model_.embedding().at(token, c);

    for (int64_t l = 0; l < mc.num_layers; ++l) {
        LayerCache &cache = caches_[static_cast<size_t>(l)];
        const LayerOps &ops = layers_[static_cast<size_t>(l)];

        // --- Attention block (packed W4Ax projections) ---
        const Tensor h =
            model_.rmsNormRows(x, model_.attnNormGain(l));
        Tensor q = runLinear(l, ActSite::kQkv, ops.attn[0], h);
        Tensor k_row = runLinear(l, ActSite::kQkv, ops.attn[1], h);
        const Tensor v_row =
            runLinear(l, ActSite::kQkv, ops.attn[2], h);
        ropeRow(q, mc.num_heads, mc.headDim(), position_);
        ropeRow(k_row, mc.num_kv_heads, mc.headDim(), position_);
        for (int64_t c = 0; c < kv_dim; ++c) {
            cache.k.at(position_, c) = k_row.at(0, c);
            cache.v.at(position_, c) = v_row.at(0, c);
        }

        const int64_t tokens = position_ + 1;
        Tensor k_view(tokens, kv_dim);
        Tensor v_view(tokens, kv_dim);
        for (int64_t t = 0; t < tokens; ++t) {
            for (int64_t c = 0; c < kv_dim; ++c) {
                k_view.at(t, c) = cache.k.at(t, c);
                v_view.at(t, c) = cache.v.at(t, c);
            }
        }
        std::vector<float> q_vec(static_cast<size_t>(d));
        for (int64_t c = 0; c < d; ++c)
            q_vec[static_cast<size_t>(c)] = q.at(0, c);
        const std::vector<float> attn = decodeAttentionQuantized(
            attn_config_, q_vec, kv_quantizer_.quantize(k_view),
            kv_quantizer_.quantize(v_view), kv_quantizer_);

        Tensor attn_row(1, d);
        for (int64_t c = 0; c < d; ++c)
            attn_row.at(0, c) = attn[static_cast<size_t>(c)];
        const Tensor o =
            runLinear(l, ActSite::kO, ops.o[0], attn_row);
        for (int64_t c = 0; c < d; ++c)
            x.at(0, c) += o.at(0, c);

        // --- MLP block ---
        const Tensor m = model_.rmsNormRows(x, model_.mlpNormGain(l));
        Tensor inter(1, mc.intermediate_size);
        if (mc.gated_mlp) {
            const Tensor gate =
                runLinear(l, ActSite::kMlp, ops.mlp[0], m);
            const Tensor up =
                runLinear(l, ActSite::kMlp, ops.mlp[1], m);
            for (int64_t c = 0; c < mc.intermediate_size; ++c)
                inter.at(0, c) = silu(gate.at(0, c)) * up.at(0, c);
        } else {
            const Tensor up =
                runLinear(l, ActSite::kMlp, ops.mlp[0], m);
            for (int64_t c = 0; c < mc.intermediate_size; ++c)
                inter.at(0, c) = std::max(up.at(0, c), 0.0f);
        }
        const Tensor down =
            runLinear(l, ActSite::kDown, ops.down[0], inter);
        for (int64_t c = 0; c < d; ++c)
            x.at(0, c) += down.at(0, c);
    }

    const Tensor normed =
        model_.rmsNormRows(x, model_.finalNormGain());
    // The LM head stays FP16 in every configuration (engine
    // convention). Vocabulary rows are independent dot products; the
    // fan-out writes disjoint columns, bit-identical for any pool
    // size.
    Tensor logits(1, mc.vocab_size);
    parallelFor(0, mc.vocab_size, 64, [&](int64_t v_begin,
                                          int64_t v_end) {
        for (int64_t v = v_begin; v < v_end; ++v) {
            double sum = 0.0;
            for (int64_t c = 0; c < d; ++c) {
                sum += static_cast<double>(normed.at(0, c)) *
                       model_.embedding().at(v, c);
            }
            logits.at(0, v) = static_cast<float>(sum);
        }
    });
    ++position_;

    std::vector<float> out(static_cast<size_t>(mc.vocab_size));
    for (int64_t v = 0; v < mc.vocab_size; ++v)
        out[static_cast<size_t>(v)] = logits.at(0, v);
    return out;
}

std::vector<float>
QuantizedDecoder::prefill(const std::vector<int32_t> &tokens)
{
    COMET_CHECK(!tokens.empty());
    std::vector<float> logits;
    for (int32_t token : tokens)
        logits = step(token);
    return logits;
}

} // namespace comet
