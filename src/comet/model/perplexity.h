/**
 * @file
 * The Table 1 accuracy harness: quantization schemes, calibration,
 * quantized-model construction and perplexity evaluation.
 *
 * For each scheme of Table 1 this builds (a) a weight-transformed copy
 * of the teacher model and (b) a runtime QuantSimulator that fake-
 * quantizes activations and the KV cache, then scores the pair by
 * perplexity on sequences sampled from the teacher. Absolute values
 * differ from WikiText2, but the ordering and relative degradation —
 * what the paper's Table 1 demonstrates — carry over.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comet/model/tiny_transformer.h"
#include "comet/quant/fmpq.h"
#include "comet/quant/kv_quant.h"

namespace comet {

/** The quantization configurations evaluated in Table 1. */
enum class QuantScheme {
    kFp16 = 0,
    kSmoothQuantW8A8,
    kGptqW4A16,
    kAwqW4A16,
    kOmniquantW4A16,
    kFmpqW4Ax,       ///< FMPQ activations, FP16 KV cache
    kOmniquantW4A4,  ///< aggressive full W4A4 (the cautionary row)
    kQoqW4A8Kv4,     ///< QServe's algorithm
    kFmpqW4AxKv4,    ///< the full COMET configuration
    /** Extra (not a Table 1 row): Hadamard-rotation W4A4 in the
     * QuaRot/SpinQuant style — the alternative outlier treatment the
     * paper's Section 2.2 discusses ([4], [32]). */
    kQuarotW4A4,
};

/** Display name matching the Table 1 row labels. */
const char *quantSchemeName(QuantScheme scheme);

/** Precision column of Table 1 for a scheme (e.g. "W4A16"). */
const char *quantSchemePrecision(QuantScheme scheme);

/** All schemes in Table 1 row order. */
std::vector<QuantScheme> table1Schemes();

/** A set of evaluation/calibration token sequences. */
struct Dataset {
    std::vector<std::vector<int32_t>> sequences;

    int64_t
    totalTokens() const
    {
        int64_t n = 0;
        for (const auto &s : sequences)
            n += static_cast<int64_t>(s.size());
        return n;
    }
};

/** Samples @p count sequences of @p length tokens from the teacher. */
Dataset sampleDataset(const TinyTransformer &teacher, int count,
                      int64_t length, Rng &rng);

/**
 * Calibration activations collected from the teacher: one matrix
 * [tokens, channels] per (layer, activation site).
 */
class CalibrationData
{
  public:
    /** Runs the teacher over the calibration set, recording every
     * intercepted activation (rows capped per site). */
    static CalibrationData collect(const TinyTransformer &model,
                                   const Dataset &calibration,
                                   int64_t max_rows_per_site = 256);

    /** The recorded activations feeding (layer, site). */
    const Tensor &activations(int64_t layer, ActSite site) const;

  private:
    std::map<std::pair<int64_t, int>, Tensor> data_;
};

/**
 * A flexible QuantSimulator driven by std::function hooks; all the
 * Table 1 runtime behaviours are instances of this.
 */
class HookQuantSimulator : public QuantSimulator
{
  public:
    using ActHook =
        std::function<Tensor(const ActivationSite &, const Tensor &)>;

    /** Installs the activation hook (identity when unset). */
    void setActHook(ActHook hook) { act_hook_ = std::move(hook); }

    /** Enables KV-cache fake quantization with the given config. */
    void
    setKvQuantizer(const KvQuantConfig &config)
    {
        kv_quantizer_ = std::make_unique<KvCacheQuantizer>(config);
    }

    Tensor transformActivation(const ActivationSite &site,
                               const Tensor &x) override;
    Tensor transformKv(int64_t layer, bool is_key,
                       const Tensor &kv) override;

  private:
    ActHook act_hook_;
    std::unique_ptr<KvCacheQuantizer> kv_quantizer_;
};

/** A quantized model: transformed weights plus runtime simulator. */
struct QuantizedModel {
    TinyTransformer model;
    std::shared_ptr<QuantSimulator> simulator; ///< null = none

    QuantSimulator *
    sim() const
    {
        return simulator.get();
    }
};

/** FMPQ deployment statistics aggregated over all activation sites
 * (the Section 6.2 "% of activations in 4-bit" claims). */
struct FmpqModelStats {
    double int4_block_fraction = 1.0;  ///< mean over sites
    double w4a4_compute_fraction = 1.0;
};

/**
 * Builds the quantized variant of the teacher for one scheme.
 *
 * @param teacher       the full-precision model
 * @param scheme        which Table 1 row
 * @param calibration   calibration activations (collected once)
 * @param fmpq_stats    optional out-param, filled for FMPQ schemes
 */
QuantizedModel buildQuantizedModel(const TinyTransformer &teacher,
                                   QuantScheme scheme,
                                   const CalibrationData &calibration,
                                   FmpqModelStats *fmpq_stats = nullptr);

/** Perplexity of a model (+ optional simulator) over a dataset. */
double evaluatePerplexity(const TinyTransformer &model,
                          QuantSimulator *sim, const Dataset &dataset);

} // namespace comet
