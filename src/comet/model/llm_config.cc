#include "comet/model/llm_config.h"

#include "comet/common/status.h"

namespace comet {

namespace {

LlmConfig
make(std::string name, int64_t hidden, int64_t inter, int64_t layers,
     int64_t heads, int64_t kv_heads, int64_t vocab, bool gated)
{
    LlmConfig config;
    config.name = std::move(name);
    config.hidden_size = hidden;
    config.intermediate_size = inter;
    config.num_layers = layers;
    config.num_heads = heads;
    config.num_kv_heads = kv_heads;
    config.vocab_size = vocab;
    config.gated_mlp = gated;
    return config;
}

} // namespace

int64_t
LlmConfig::parameterCount() const
{
    const int64_t head_dim = headDim();
    // Attention: Q and O are hidden x hidden; K and V are
    // (kv_heads * head_dim) x hidden.
    const int64_t attn = 2 * hidden_size * hidden_size +
                         2 * num_kv_heads * head_dim * hidden_size;
    // MLP: gated models have gate + up + down, plain models up + down.
    const int64_t mlp_mats = gated_mlp ? 3 : 2;
    const int64_t mlp = mlp_mats * hidden_size * intermediate_size;
    const int64_t per_layer = attn + mlp + 2 * hidden_size; // + norms
    const int64_t embeddings = 2 * vocab_size * hidden_size;
    return num_layers * per_layer + embeddings + hidden_size;
}

double
LlmConfig::weightBytes(double bits_per_weight) const
{
    return static_cast<double>(parameterCount()) * bits_per_weight /
           8.0;
}

double
LlmConfig::kvBytesPerSequence(int64_t tokens,
                              double bits_per_value) const
{
    // K and V, per layer, kv_heads * head_dim channels each.
    const double values = 2.0 * static_cast<double>(num_layers) *
                          static_cast<double>(num_kv_heads) *
                          static_cast<double>(headDim()) *
                          static_cast<double>(tokens);
    return values * bits_per_value / 8.0;
}

LlmConfig
LlmConfig::llama1_13b()
{
    return make("LLaMA-1-13B", 5120, 13824, 40, 40, 40, 32000, true);
}

LlmConfig
LlmConfig::llama1_30b()
{
    return make("LLaMA-1-30B", 6656, 17920, 60, 52, 52, 32000, true);
}

LlmConfig
LlmConfig::llama1_65b()
{
    return make("LLaMA-1-65B", 8192, 22016, 80, 64, 64, 32000, true);
}

LlmConfig
LlmConfig::llama2_7b()
{
    return make("LLaMA-2-7B", 4096, 11008, 32, 32, 32, 32000, true);
}

LlmConfig
LlmConfig::llama2_13b()
{
    return make("LLaMA-2-13B", 5120, 13824, 40, 40, 40, 32000, true);
}

LlmConfig
LlmConfig::llama2_70b()
{
    return make("LLaMA-2-70B", 8192, 28672, 80, 64, 8, 32000, true);
}

LlmConfig
LlmConfig::llama3_8b()
{
    return make("LLaMA-3-8B", 4096, 14336, 32, 32, 8, 128256, true);
}

LlmConfig
LlmConfig::llama3_70b()
{
    return make("LLaMA-3-70B", 8192, 28672, 80, 64, 8, 128256, true);
}

LlmConfig
LlmConfig::mistral_7b()
{
    return make("Mistral-7B", 4096, 14336, 32, 32, 8, 32000, true);
}

LlmConfig
LlmConfig::opt_13b()
{
    return make("OPT-13B", 5120, 20480, 40, 40, 40, 50272, false);
}

LlmConfig
LlmConfig::qwen2_72b()
{
    return make("Qwen2-72B", 8192, 29568, 80, 64, 8, 152064, true);
}

std::vector<LlmConfig>
LlmConfig::paperModels()
{
    return {llama1_13b(), llama1_30b(), llama1_65b(), llama2_7b(),
            llama2_13b(), llama2_70b(), llama3_8b(), llama3_70b(),
            mistral_7b(), opt_13b(), qwen2_72b()};
}

LlmConfig
LlmConfig::byName(const std::string &name)
{
    for (const LlmConfig &config : paperModels()) {
        if (config.name == name)
            return config;
    }
    COMET_CHECK_MSG(false, ("unknown model: " + name).c_str());
    return {};
}

} // namespace comet
