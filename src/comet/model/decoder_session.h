/**
 * @file
 * Incremental decoding with a (quantizable) KV cache.
 *
 * TinyTransformer::forward() recomputes the whole prefix every call —
 * fine for the PTQ harness, but not how serving works. DecoderSession
 * is the real thing: it feeds one token at a time, caches each
 * layer's K/V, and attends over the cache with the online-softmax
 * kernel from comet/attention. With a KvQuantConfig attached, the
 * cache is held in packed INT form and dequantized on the fly during
 * attention — the end-to-end W4A4KV4 inference path of the paper,
 * exercised numerically on the tiny model.
 *
 * Invariant (tested): with an FP16 cache, the session's logits match
 * TinyTransformer::forward() exactly up to float reordering.
 */
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "comet/attention/decode_attention.h"
#include "comet/model/tiny_transformer.h"
#include "comet/quant/kv_quant.h"

namespace comet {

/**
 * A single-sequence incremental decoder over a TinyTransformer.
 */
class DecoderSession
{
  public:
    /**
     * Opens a session. When @p kv_quant is set, the per-layer KV
     * caches are stored quantized (e.g. the paper's channel-wise
     * asymmetric INT4) and attention reads them through on-the-fly
     * dequantization.
     */
    explicit DecoderSession(const TinyTransformer &model,
                            std::optional<KvQuantConfig> kv_quant =
                                std::nullopt);

    /** Tokens consumed so far. */
    int64_t position() const { return position_; }

    /**
     * Feeds one token; returns the next-token logits [vocab].
     */
    std::vector<float> step(int32_t token);

    /** Feeds a whole prompt; returns the logits after its last
     * token. */
    std::vector<float> prefill(const std::vector<int32_t> &tokens);

    /**
     * Greedy/sampled generation: feeds @p prompt then samples
     * @p new_tokens continuations at temperature 1.
     */
    std::vector<int32_t> generate(const std::vector<int32_t> &prompt,
                                  int64_t new_tokens, Rng &rng);

    /** Bytes the KV cache of this session would occupy at its storage
     * precision (all layers). */
    double kvCacheBytes() const;

  private:
    struct LayerCache {
        Tensor k{1, 1}; ///< [capacity, kv_dim]; rows [0, position)
        Tensor v{1, 1};
    };

    void ensureCapacity(int64_t tokens);

    const TinyTransformer &model_;
    std::optional<KvQuantConfig> kv_quant_;
    std::unique_ptr<KvCacheQuantizer> quantizer_;
    AttentionConfig attn_config_;
    std::vector<LayerCache> caches_;
    int64_t capacity_ = 0;
    int64_t position_ = 0;
};

} // namespace comet
