/**
 * @file
 * Architectures of the LLMs evaluated in the paper.
 *
 * Only the structural parameters matter for the reproduction: they
 * determine the GEMM shapes (kernel benches), the weight/KV memory
 * footprints (serving benches), and the model labels in the output
 * tables. Parameters follow the public model cards.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace comet {

/** Structural description of one transformer LLM. */
struct LlmConfig {
    std::string name;
    int64_t hidden_size = 0;
    int64_t intermediate_size = 0;
    int64_t num_layers = 0;
    int64_t num_heads = 0;
    int64_t num_kv_heads = 0;  ///< < num_heads for GQA models
    int64_t vocab_size = 0;
    bool gated_mlp = true;     ///< SwiGLU (LLaMA-style) vs plain (OPT)

    int64_t
    headDim() const
    {
        return hidden_size / num_heads;
    }

    /** Total parameter count (weights only, embeddings included). */
    int64_t parameterCount() const;

    /** Bytes of weight storage at the given precision. */
    double weightBytes(double bits_per_weight) const;

    /** Bytes of KV cache for one sequence of @p tokens at the given
     * precision. */
    double kvBytesPerSequence(int64_t tokens, double bits_per_value) const;

    /** @name The paper's model zoo @{ */
    static LlmConfig llama1_13b();
    static LlmConfig llama1_30b();
    static LlmConfig llama1_65b();
    static LlmConfig llama2_7b();
    static LlmConfig llama2_13b();
    static LlmConfig llama2_70b();
    static LlmConfig llama3_8b();
    static LlmConfig llama3_70b();
    static LlmConfig mistral_7b();
    static LlmConfig opt_13b();
    static LlmConfig qwen2_72b();
    /** @} */

    /** All eleven models of Table 1, in the paper's column order. */
    static std::vector<LlmConfig> paperModels();

    /** Looks a model up by its table name (e.g. "LLaMA-3-8B"). */
    static LlmConfig byName(const std::string &name);
};

} // namespace comet
