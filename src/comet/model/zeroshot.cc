#include "comet/model/zeroshot.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace comet {

namespace {

/** Next-token probability distribution at the last context position. */
std::vector<double>
nextTokenDistribution(const TinyTransformer &model,
                      const std::vector<int32_t> &context,
                      QuantSimulator *sim)
{
    const Tensor logits = model.forward(context, sim);
    const int64_t last = static_cast<int64_t>(context.size()) - 1;
    const int64_t vocab = model.config().vocab_size;
    std::vector<double> probs(static_cast<size_t>(vocab));
    double max_val = logits.at(last, 0);
    for (int64_t v = 0; v < vocab; ++v)
        max_val = std::max(max_val,
                           static_cast<double>(logits.at(last, v)));
    double sum = 0.0;
    for (int64_t v = 0; v < vocab; ++v) {
        probs[static_cast<size_t>(v)] =
            std::exp(static_cast<double>(logits.at(last, v)) - max_val);
        sum += probs[static_cast<size_t>(v)];
    }
    for (double &p : probs)
        p /= sum;
    return probs;
}

int32_t
sampleFrom(const std::vector<double> &probs, Rng &rng)
{
    double u = rng.uniform();
    for (size_t v = 0; v < probs.size(); ++v) {
        u -= probs[v];
        if (u <= 0.0)
            return static_cast<int32_t>(v);
    }
    return static_cast<int32_t>(probs.size() - 1);
}

} // namespace

ZeroshotTask
buildZeroshotTask(const TinyTransformer &teacher,
                  const ZeroshotTaskConfig &config)
{
    COMET_CHECK(config.num_candidates >= 2);
    Rng rng(config.seed);
    ZeroshotTask task;
    task.name = config.name;
    task.examples.reserve(static_cast<size_t>(config.num_examples));

    const int64_t vocab = teacher.config().vocab_size;
    for (int i = 0; i < config.num_examples; ++i) {
        ZeroshotExample example;
        example.context =
            teacher.sampleSequence(config.context_length, rng);
        const std::vector<double> probs =
            nextTokenDistribution(teacher, example.context, nullptr);

        const int32_t label_token = sampleFrom(probs, rng);
        example.candidates.push_back(label_token);

        if (config.hard_distractors) {
            // Distractors = the teacher's highest-probability tokens
            // other than the label (near-misses; ARC-c style).
            std::vector<int32_t> order(static_cast<size_t>(vocab));
            std::iota(order.begin(), order.end(), 0);
            std::sort(order.begin(), order.end(),
                      [&](int32_t a, int32_t b) {
                          return probs[static_cast<size_t>(a)] >
                                 probs[static_cast<size_t>(b)];
                      });
            for (int32_t token : order) {
                if (static_cast<int>(example.candidates.size()) >=
                    config.num_candidates)
                    break;
                if (token != label_token)
                    example.candidates.push_back(token);
            }
        } else {
            while (static_cast<int>(example.candidates.size()) <
                   config.num_candidates) {
                const auto token = static_cast<int32_t>(
                    rng.uniformInt(static_cast<uint64_t>(vocab)));
                if (token != label_token &&
                    std::find(example.candidates.begin(),
                              example.candidates.end(),
                              token) == example.candidates.end()) {
                    example.candidates.push_back(token);
                }
            }
        }
        // Shuffle so the label is not always candidate 0.
        std::vector<size_t> perm(example.candidates.size());
        std::iota(perm.begin(), perm.end(), 0);
        rng.shuffle(perm);
        std::vector<int32_t> shuffled(example.candidates.size());
        for (size_t j = 0; j < perm.size(); ++j)
            shuffled[j] = example.candidates[perm[j]];
        example.label = static_cast<int>(
            std::find(shuffled.begin(), shuffled.end(), label_token) -
            shuffled.begin());
        example.candidates = std::move(shuffled);
        task.examples.push_back(std::move(example));
    }
    return task;
}

std::vector<ZeroshotTask>
buildZeroshotSuite(const TinyTransformer &teacher, uint64_t seed)
{
    std::vector<ZeroshotTaskConfig> configs(5);
    configs[0] = {"PIQA-syn", 60, 20, 2, false, seed + 1};
    configs[1] = {"ARC-e-syn", 60, 16, 4, false, seed + 2};
    configs[2] = {"ARC-c-syn", 60, 16, 4, true, seed + 3};
    configs[3] = {"HellaSwag-syn", 60, 28, 4, false, seed + 4};
    configs[4] = {"Winogrande-syn", 60, 24, 2, true, seed + 5};

    std::vector<ZeroshotTask> suite;
    suite.reserve(configs.size());
    for (const auto &config : configs)
        suite.push_back(buildZeroshotTask(teacher, config));
    return suite;
}

double
evaluateZeroshotAccuracy(const TinyTransformer &model,
                         QuantSimulator *sim, const ZeroshotTask &task)
{
    COMET_CHECK(!task.examples.empty());
    int correct = 0;
    for (const ZeroshotExample &example : task.examples) {
        const std::vector<double> probs =
            nextTokenDistribution(model, example.context, sim);
        int best = 0;
        for (size_t c = 1; c < example.candidates.size(); ++c) {
            if (probs[static_cast<size_t>(example.candidates[c])] >
                probs[static_cast<size_t>(
                    example.candidates[static_cast<size_t>(best)])]) {
                best = static_cast<int>(c);
            }
        }
        if (best == example.label)
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(task.examples.size());
}

} // namespace comet
