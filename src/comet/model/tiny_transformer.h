/**
 * @file
 * A small, real decoder-only transformer used for the accuracy
 * experiments (Tables 1 and 2).
 *
 * The paper evaluates quantization accuracy on LLaMA-family
 * checkpoints, which are not available in this environment. The
 * substitute is a from-scratch float transformer (RMSNorm, RoPE, GQA
 * attention, SwiGLU MLP, tied embeddings) whose RMSNorm gains carry
 * *planted outlier channels*, reproducing the activation statistics
 * that make LLM quantization hard (Section 3.1). A randomly
 * initialized "teacher" instance defines the data distribution
 * (sequences are sampled from it), and quantized variants are scored
 * by perplexity/accuracy on that data — preserving the paper's
 * *relative* quantization-quality ordering.
 *
 * Quantization plugs in two ways:
 *  - offline weight transforms (transformedWeights), for weight-only
 *    methods and SmoothQuant/QoQ weight processing;
 *  - a runtime QuantSimulator that intercepts linear-layer inputs and
 *    the KV tensors, for activation and KV-cache fake quantization.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comet/common/rng.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** Architecture and outlier-planting parameters. */
struct TinyTransformerConfig {
    int64_t vocab_size = 512;
    int64_t hidden_size = 256;
    int64_t num_heads = 4;
    int64_t num_kv_heads = 4;
    int64_t num_layers = 4;
    int64_t intermediate_size = 512;
    /** SwiGLU (LLaMA-style) when true; plain ReLU MLP (OPT-style)
     * when false — gate weights are absent in the plain variant. */
    bool gated_mlp = true;
    /** Fraction of hidden channels planted as outliers. */
    double outlier_fraction = 0.02;
    /** Gain of the planted outlier channels. */
    double outlier_scale = 25.0;
    uint64_t seed = 7;

    int64_t
    headDim() const
    {
        return hidden_size / num_heads;
    }
};

/** Activation interception points (one per shared linear input). */
enum class ActSite {
    kQkv = 0, ///< input of the Q/K/V projections
    kO,       ///< input of the output projection
    kMlp,     ///< input of the gate/up projections
    kDown,    ///< input of the down projection
};

/** Number of distinct ActSite values. */
inline constexpr int kNumActSites = 4;

/** Weight matrices of one decoder layer, for offline transforms. */
enum class WeightKind {
    kQ = 0,
    kK,
    kV,
    kO,
    kGate,
    kUp,
    kDown,
};

/** Identifies one linear layer instance in the model. */
struct LinearSite {
    int64_t layer = 0;
    WeightKind kind = WeightKind::kQ;
};

/** Identifies one activation interception point. */
struct ActivationSite {
    int64_t layer = 0;
    ActSite site = ActSite::kQkv;
};

/**
 * Runtime quantization hook. The default implementation is the
 * identity (full-precision inference); fake quantizers override the
 * relevant methods.
 */
class QuantSimulator
{
  public:
    virtual ~QuantSimulator() = default;

    /** Transforms a linear-layer input [tokens, channels] before the
     * matching GEMMs. */
    virtual Tensor
    transformActivation(const ActivationSite &, const Tensor &x)
    {
        return x;
    }

    /** Transforms a K or V tensor [tokens, kv_channels] before it is
     * consumed by attention (i.e. what the KV cache would hold). */
    virtual Tensor
    transformKv(int64_t, bool, const Tensor &kv)
    {
        return kv;
    }
};

/**
 * The tiny transformer. Instances are immutable after construction;
 * quantized variants are new instances produced by
 * transformedWeights().
 */
class TinyTransformer
{
  public:
    /** Builds a randomly initialized model with planted outliers. */
    static TinyTransformer random(const TinyTransformerConfig &config);

    const TinyTransformerConfig &config() const { return config_; }

    /** The planted outlier channel indices (hidden dimension). */
    const std::vector<int64_t> &
    outlierChannels() const
    {
        return outlier_channels_;
    }

    /**
     * Full forward pass over a token sequence (causal attention);
     * returns logits [tokens, vocab].
     */
    Tensor forward(const std::vector<int32_t> &tokens,
                   QuantSimulator *sim = nullptr) const;

    /** Sum of next-token negative log likelihoods over the sequence
     * (positions 1..T-1) and the number of predicted tokens. */
    std::pair<double, int64_t>
    sequenceNll(const std::vector<int32_t> &tokens,
                QuantSimulator *sim = nullptr) const;

    /** Samples a sequence from the model autoregressively (temperature
     * 1), starting from a random BOS token. */
    std::vector<int32_t> sampleSequence(int64_t length, Rng &rng) const;

    /**
     * Returns a copy of the model with every linear weight replaced by
     * @p transform(site, weight). Norm gains and embeddings are
     * unchanged (weight-only PTQ leaves them in high precision).
     */
    TinyTransformer transformedWeights(
        const std::function<Tensor(const LinearSite &, const Tensor &)>
            &transform) const;

    /** Read access to one linear weight (for calibrators). */
    const Tensor &weight(const LinearSite &site) const;

    /** The (tied) embedding / LM-head matrix [vocab, hidden]. */
    const Tensor &embedding() const { return embedding_; }

    /** Norm gains, for incremental decoders. @{ */
    const std::vector<float> &attnNormGain(int64_t layer) const;
    const std::vector<float> &mlpNormGain(int64_t layer) const;
    const std::vector<float> &
    finalNormGain() const
    {
        return final_norm_gain_;
    }
    /** @} */

    /** RMS-normalizes each row of x with the given gains (exposed for
     * incremental decoders that must match forward() exactly). */
    Tensor rmsNormRows(const Tensor &x,
                       const std::vector<float> &gain) const
    {
        return rmsNorm(x, gain);
    }

  private:
    struct LayerWeights {
        Tensor wq, wk, wv, wo;
        Tensor w_gate, w_up, w_down;
        std::vector<float> attn_norm_gain;
        std::vector<float> mlp_norm_gain;
    };

    TinyTransformer() = default;

    /** RMS-normalizes each row of x with the given gains. */
    Tensor rmsNorm(const Tensor &x,
                   const std::vector<float> &gain) const;

    TinyTransformerConfig config_;
    Tensor embedding_; ///< [vocab, hidden]; also the (tied) LM head
    std::vector<LayerWeights> layers_;
    std::vector<float> final_norm_gain_;
    std::vector<int64_t> outlier_channels_;
};

} // namespace comet
