#include "comet/model/layer_shapes.h"

namespace comet {

std::vector<LayerGemm>
decoderLayerGemms(const LlmConfig &config, int64_t m_tokens)
{
    COMET_CHECK(m_tokens > 0);
    const int64_t head_dim = config.headDim();
    std::vector<LayerGemm> gemms;
    // Fused QKV projection: hidden -> (q + k + v) heads.
    const int64_t qkv_out =
        (config.num_heads + 2 * config.num_kv_heads) * head_dim;
    gemms.push_back(
        {"qkv_proj", {m_tokens, qkv_out, config.hidden_size}});
    gemms.push_back(
        {"o_proj",
         {m_tokens, config.hidden_size, config.hidden_size}});
    if (config.gated_mlp) {
        // Fused gate+up projection.
        gemms.push_back({"gate_up_proj",
                         {m_tokens, 2 * config.intermediate_size,
                          config.hidden_size}});
    } else {
        gemms.push_back({"up_proj",
                         {m_tokens, config.intermediate_size,
                          config.hidden_size}});
    }
    gemms.push_back({"down_proj",
                     {m_tokens, config.hidden_size,
                      config.intermediate_size}});
    return gemms;
}

std::vector<LayerGemm>
figure9Shapes(int64_t m_tokens)
{
    // Representative LLaMA projection shapes (N x K), labeled the way
    // the paper's Figure 9 x-axis abbreviates them.
    return {
        {"4Kx4K", {m_tokens, 4096, 4096}},
        {"5Kx5K", {m_tokens, 5120, 5120}},
        {"13.5Kx5K", {m_tokens, 13824, 5120}},
        {"5Kx13.5K", {m_tokens, 5120, 13824}},
        {"8Kx8K", {m_tokens, 8192, 8192}},
        {"28Kx8K", {m_tokens, 28672, 8192}},
        {"8Kx28K", {m_tokens, 8192, 28672}},
        {"12Kx4K", {m_tokens, 12288, 4096}},
    };
}

} // namespace comet
