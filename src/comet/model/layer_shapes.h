/**
 * @file
 * GEMM shape enumeration for transformer layers.
 *
 * The kernel benches and the serving engine both need the exact linear
 * layer shapes of each model: QKV / output projections and the MLP
 * matrices, for prefill (M = batch * seq) and decode (M = batch).
 */
#pragma once

#include <string>
#include <vector>

#include "comet/gpusim/cost_model.h"
#include "comet/model/llm_config.h"

namespace comet {

/** One linear layer's GEMM, with a label for reporting. */
struct LayerGemm {
    std::string name;   ///< e.g. "qkv_proj"
    GemmShape shape;
};

/** The per-decoder-layer GEMMs at the given batched token count
 * (M = tokens processed together: batch for decode, batch * seqlen for
 * prefill). */
std::vector<LayerGemm> decoderLayerGemms(const LlmConfig &config,
                                         int64_t m_tokens);

/** The weight-activation GEMM shapes used by the Figure 9 kernel
 * sweep: representative LLaMA projection shapes, labeled as in the
 * paper (e.g. "13.5Kx5K"). M is supplied by the bench per batch. */
std::vector<LayerGemm> figure9Shapes(int64_t m_tokens);

} // namespace comet
