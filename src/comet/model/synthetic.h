/**
 * @file
 * Synthetic activation and weight generation with planted outlier
 * structure.
 *
 * The paper's algorithm rests on an empirical property of LLM
 * activations (Section 3.1, Figure 3): a small set of channels (<1%)
 * carries values 10-100x larger than typical, and the set is stable
 * across tokens. No model checkpoints are available here, so the
 * reproduction *plants* exactly that structure: a fixed set of outlier
 * channels per "layer", each with a large per-channel gain, on top of
 * an iid Gaussian base. Profiles for the models shown in Figure 3 set
 * the outlier density and magnitude per model family.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comet/common/rng.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** Parameters of one synthetic activation distribution. */
struct SyntheticActivationConfig {
    int64_t channels = 4096;
    /** Fraction of channels that are outliers (paper: usually <1%). */
    double outlier_fraction = 0.006;
    /** Mean magnitude ratio of outlier channels to normal ones
     * (paper: tenfold to a hundredfold). */
    double outlier_scale = 40.0;
    /** Stddev of the log-gain of outlier channels (heavy tail). */
    double outlier_log_sigma = 0.4;
    /** Base per-value standard deviation. */
    double base_std = 1.0;
    uint64_t seed = 1;
};

/**
 * A fixed synthetic activation distribution: the outlier channel set
 * and per-channel gains are chosen once from the seed, then any number
 * of token batches can be sampled from it.
 */
class SyntheticActivationModel
{
  public:
    explicit SyntheticActivationModel(SyntheticActivationConfig config);

    const SyntheticActivationConfig &config() const { return config_; }

    /** The planted outlier channel indices, ascending. */
    const std::vector<int64_t> &
    outlierChannels() const
    {
        return outlier_channels_;
    }

    /** Per-channel gains (1.0 for normal channels). */
    const std::vector<float> &gains() const { return gains_; }

    /** Samples a [tokens, channels] activation matrix. */
    Tensor sample(int64_t tokens, Rng &rng) const;

  private:
    SyntheticActivationConfig config_;
    std::vector<int64_t> outlier_channels_;
    std::vector<float> gains_;
};

/** Figure 3 activation profiles for the models shown there. @{ */
SyntheticActivationConfig llama7bActivationProfile();
SyntheticActivationConfig opt13bActivationProfile();
SyntheticActivationConfig qwen72bActivationProfile();
/** @} */

/** Samples a Gaussian weight matrix [out, in] with stddev
 * 1/sqrt(in) (roughly unit-gain initialization). */
Tensor sampleWeights(int64_t out, int64_t in, Rng &rng);

} // namespace comet
