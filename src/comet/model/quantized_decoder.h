/**
 * @file
 * W4A4KV4 inference through the real packed kernels.
 *
 * Everything the paper's system does at serving time, executed for
 * real on the tiny model: every linear layer runs as a packed
 * mixed-precision W4Ax GEMM (FMPQ-calibrated per activation site,
 * INT4 weights in the interleaved layout, runtime per-token
 * activation quantization), and the KV cache is held in channel-wise
 * asymmetric INT4 with on-the-fly dequantizing attention. Only the
 * norms, the nonlinearity, RoPE and the softmax stay in float —
 * exactly the precision boundary of the paper's framework.
 *
 * Verified (tests) against the fake-quantization reference: the
 * packed integer path and the dequantize-then-float-GEMM path agree
 * to float rounding.
 */
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "comet/attention/decode_attention.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/perplexity.h"
#include "comet/model/tiny_transformer.h"
#include "comet/quant/fmpq.h"
#include "comet/quant/kv_quant.h"

namespace comet {

/** Build options for the quantized decoder. */
struct QuantizedDecoderConfig {
    QuantizedDecoderConfig() { fmpq.block_size = 16; }

    FmpqConfig fmpq;
    KvQuantConfig kv{4, 32, true};
    /** Tile extents of the packed GEMMs (must satisfy the W4AxGemm
     * constraints against fmpq.block_size). */
    int64_t tile_m = 16;
    int64_t tile_n = 16;
    int64_t tile_k = 16;
    /** Parallelism of the packed GEMMs (W4AxGemmConfig::threads):
     * 0 = every runtime-pool slot, 1 = sequential. Results are
     * bit-identical either way. */
    int gemm_threads = 0;
};

/**
 * An incremental decoder whose linear layers execute as packed W4Ax
 * GEMMs.
 */
class QuantizedDecoder
{
  public:
    /**
     * Quantizes @p model: calibrates one FMPQ quantizer per
     * activation site from @p calibration and packs every weight
     * matrix into its site's layout.
     */
    QuantizedDecoder(const TinyTransformer &model,
                     const CalibrationData &calibration,
                     QuantizedDecoderConfig config = {});

    int64_t position() const { return position_; }

    /** Mean W4A4 compute fraction across all sites (Section 6.2). */
    double w4a4ComputeFraction() const;

    /** Feeds one token; returns next-token logits [vocab]. */
    std::vector<float> step(int32_t token);

    /** Feeds a prompt; returns the logits after its last token. */
    std::vector<float> prefill(const std::vector<int32_t> &tokens);

  private:
    struct SiteOps {
        FmpqActivationQuantizer quantizer;
    };

    struct LayerOps {
        std::vector<W4AxGemm> attn; ///< q, k, v (QKV-site layout)
        std::vector<W4AxGemm> o;    ///< o (O-site layout)
        std::vector<W4AxGemm> mlp;  ///< [gate,] up (MLP-site layout)
        std::vector<W4AxGemm> down; ///< down (Down-site layout)
    };

    /** Quantizes the 1-row activation at @p site and runs @p gemm. */
    Tensor runLinear(int64_t layer, ActSite site,
                     const W4AxGemm &gemm, const Tensor &h) const;

    const FmpqActivationQuantizer &site(int64_t layer,
                                        ActSite act_site) const;

    const TinyTransformer &model_;
    QuantizedDecoderConfig config_;
    std::vector<SiteOps> sites_; ///< [layer * kNumActSites + site]
    std::vector<LayerOps> layers_;
    KvCacheQuantizer kv_quantizer_;
    AttentionConfig attn_config_;

    struct LayerCache {
        Tensor k{1, 1};
        Tensor v{1, 1};
    };
    std::vector<LayerCache> caches_;
    int64_t capacity_ = 0;
    int64_t position_ = 0;

    void ensureCapacity(int64_t tokens);
};

} // namespace comet
