#include "comet/model/tiny_transformer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "comet/kernel/gemm_ref.h"
#include "comet/model/synthetic.h"

namespace comet {

namespace {

/** Applies rotary position embedding in place to [tokens, heads, dim]
 * laid out as a rank-2 [tokens, heads*dim] tensor. */
void
applyRope(Tensor &x, int64_t heads, int64_t head_dim)
{
    COMET_CHECK(head_dim % 2 == 0);
    const int64_t tokens = x.rows();
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t h = 0; h < heads; ++h) {
            for (int64_t d = 0; d < head_dim / 2; ++d) {
                const double theta =
                    static_cast<double>(t) *
                    std::pow(10000.0, -2.0 * static_cast<double>(d) /
                                          static_cast<double>(head_dim));
                const double c = std::cos(theta), s = std::sin(theta);
                const int64_t base = h * head_dim;
                const float x0 = x.at(t, base + 2 * d);
                const float x1 = x.at(t, base + 2 * d + 1);
                x.at(t, base + 2 * d) =
                    static_cast<float>(x0 * c - x1 * s);
                x.at(t, base + 2 * d + 1) =
                    static_cast<float>(x0 * s + x1 * c);
            }
        }
    }
}

/** Numerically stable softmax over a row span, in double. */
void
softmaxInPlace(std::vector<double> &row)
{
    double max_val = row[0];
    for (double v : row)
        max_val = std::max(max_val, v);
    double sum = 0.0;
    for (double &v : row) {
        v = std::exp(v - max_val);
        sum += v;
    }
    for (double &v : row)
        v /= sum;
}

float
silu(float x)
{
    return static_cast<float>(x / (1.0 + std::exp(-x)));
}

} // namespace

TinyTransformer
TinyTransformer::random(const TinyTransformerConfig &config)
{
    COMET_CHECK(config.hidden_size % config.num_heads == 0);
    COMET_CHECK(config.num_heads % config.num_kv_heads == 0);

    TinyTransformer model;
    model.config_ = config;
    Rng rng(config.seed);

    model.embedding_ = sampleWeights(config.vocab_size,
                                     config.hidden_size, rng);
    // Scale embeddings up so logits have useful dynamic range.
    for (int64_t i = 0; i < model.embedding_.numel(); ++i)
        model.embedding_[i] *= 4.0f;

    // Choose the planted outlier channels once for the whole model —
    // real LLM outlier channels are largely consistent across layers.
    const auto num_outliers = static_cast<int64_t>(std::llround(
        config.outlier_fraction *
        static_cast<double>(config.hidden_size)));
    std::vector<int64_t> ids(
        static_cast<size_t>(config.hidden_size));
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    model.outlier_channels_.assign(ids.begin(),
                                   ids.begin() + num_outliers);
    std::sort(model.outlier_channels_.begin(),
              model.outlier_channels_.end());

    auto make_gain = [&](double layer_jitter) {
        std::vector<float> gain(
            static_cast<size_t>(config.hidden_size));
        for (auto &g : gain)
            g = static_cast<float>(rng.gaussian(1.0, 0.1));
        for (int64_t c : model.outlier_channels_) {
            gain[static_cast<size_t>(c)] = static_cast<float>(
                config.outlier_scale *
                rng.logNormal(layer_jitter, 0.25));
        }
        return gain;
    };

    const int64_t kv_dim = config.num_kv_heads * config.headDim();
    for (int64_t l = 0; l < config.num_layers; ++l) {
        LayerWeights layer;
        layer.wq = sampleWeights(config.hidden_size,
                                 config.hidden_size, rng);
        layer.wk = sampleWeights(kv_dim, config.hidden_size, rng);
        layer.wv = sampleWeights(kv_dim, config.hidden_size, rng);
        layer.wo = sampleWeights(config.hidden_size,
                                 config.hidden_size, rng);
        if (config.gated_mlp) {
            layer.w_gate = sampleWeights(config.intermediate_size,
                                         config.hidden_size, rng);
        }
        layer.w_up = sampleWeights(config.intermediate_size,
                                   config.hidden_size, rng);
        layer.w_down = sampleWeights(config.hidden_size,
                                     config.intermediate_size, rng);
        layer.attn_norm_gain = make_gain(0.0);
        layer.mlp_norm_gain = make_gain(0.1);
        model.layers_.push_back(std::move(layer));
    }
    model.final_norm_gain_.assign(
        static_cast<size_t>(config.hidden_size), 1.0f);
    return model;
}

Tensor
TinyTransformer::rmsNorm(const Tensor &x,
                         const std::vector<float> &gain) const
{
    const int64_t tokens = x.rows(), channels = x.cols();
    COMET_CHECK(static_cast<int64_t>(gain.size()) == channels);
    Tensor out(tokens, channels);
    for (int64_t t = 0; t < tokens; ++t) {
        double ms = 0.0;
        for (int64_t c = 0; c < channels; ++c)
            ms += static_cast<double>(x.at(t, c)) * x.at(t, c);
        const double inv =
            1.0 / std::sqrt(ms / static_cast<double>(channels) + 1e-6);
        for (int64_t c = 0; c < channels; ++c) {
            out.at(t, c) = static_cast<float>(
                x.at(t, c) * inv * gain[static_cast<size_t>(c)]);
        }
    }
    return out;
}

Tensor
TinyTransformer::forward(const std::vector<int32_t> &tokens,
                         QuantSimulator *sim) const
{
    COMET_CHECK(!tokens.empty());
    const auto T = static_cast<int64_t>(tokens.size());
    const int64_t d = config_.hidden_size;
    const int64_t head_dim = config_.headDim();
    const int64_t heads = config_.num_heads;
    const int64_t kv_heads = config_.num_kv_heads;
    const int64_t group = heads / kv_heads;

    Tensor x(T, d);
    for (int64_t t = 0; t < T; ++t) {
        const int32_t id = tokens[static_cast<size_t>(t)];
        COMET_CHECK(id >= 0 && id < config_.vocab_size);
        for (int64_t c = 0; c < d; ++c)
            x.at(t, c) = embedding_.at(id, c);
    }

    for (int64_t l = 0; l < config_.num_layers; ++l) {
        const LayerWeights &layer =
            layers_[static_cast<size_t>(l)];

        // --- Attention block ---
        Tensor h = rmsNorm(x, layer.attn_norm_gain);
        if (sim != nullptr)
            h = sim->transformActivation({l, ActSite::kQkv}, h);
        Tensor q = gemmFloat(h, layer.wq);
        Tensor k = gemmFloat(h, layer.wk);
        Tensor v = gemmFloat(h, layer.wv);
        applyRope(q, heads, head_dim);
        applyRope(k, kv_heads, head_dim);
        if (sim != nullptr) {
            k = sim->transformKv(l, true, k);
            v = sim->transformKv(l, false, v);
        }

        Tensor attn_out(T, d);
        const double inv_sqrt =
            1.0 / std::sqrt(static_cast<double>(head_dim));
        std::vector<double> scores;
        for (int64_t head = 0; head < heads; ++head) {
            const int64_t kv_head = head / group;
            const int64_t q_base = head * head_dim;
            const int64_t kv_base = kv_head * head_dim;
            for (int64_t t = 0; t < T; ++t) {
                scores.assign(static_cast<size_t>(t + 1), 0.0);
                for (int64_t s = 0; s <= t; ++s) {
                    double dot = 0.0;
                    for (int64_t c = 0; c < head_dim; ++c) {
                        dot += static_cast<double>(
                                   q.at(t, q_base + c)) *
                               k.at(s, kv_base + c);
                    }
                    scores[static_cast<size_t>(s)] = dot * inv_sqrt;
                }
                softmaxInPlace(scores);
                for (int64_t c = 0; c < head_dim; ++c) {
                    double acc = 0.0;
                    for (int64_t s = 0; s <= t; ++s) {
                        acc += scores[static_cast<size_t>(s)] *
                               v.at(s, kv_base + c);
                    }
                    attn_out.at(t, q_base + c) =
                        static_cast<float>(acc);
                }
            }
        }
        if (sim != nullptr) {
            attn_out =
                sim->transformActivation({l, ActSite::kO}, attn_out);
        }
        Tensor o = gemmFloat(attn_out, layer.wo);
        for (int64_t i = 0; i < x.numel(); ++i)
            x[i] += o[i];

        // --- MLP block ---
        Tensor m = rmsNorm(x, layer.mlp_norm_gain);
        if (sim != nullptr)
            m = sim->transformActivation({l, ActSite::kMlp}, m);
        Tensor up = gemmFloat(m, layer.w_up);
        Tensor inter(T, config_.intermediate_size);
        if (config_.gated_mlp) {
            Tensor gate = gemmFloat(m, layer.w_gate);
            for (int64_t i = 0; i < inter.numel(); ++i)
                inter[i] = silu(gate[i]) * up[i];
        } else {
            // OPT-style plain MLP with ReLU.
            for (int64_t i = 0; i < inter.numel(); ++i)
                inter[i] = std::max(up[i], 0.0f);
        }
        if (sim != nullptr) {
            inter =
                sim->transformActivation({l, ActSite::kDown}, inter);
        }
        Tensor down = gemmFloat(inter, layer.w_down);
        for (int64_t i = 0; i < x.numel(); ++i)
            x[i] += down[i];
    }

    const Tensor normed = rmsNorm(x, final_norm_gain_);
    return gemmFloat(normed, embedding_); // tied LM head
}

std::pair<double, int64_t>
TinyTransformer::sequenceNll(const std::vector<int32_t> &tokens,
                             QuantSimulator *sim) const
{
    COMET_CHECK(tokens.size() >= 2);
    const Tensor logits = forward(tokens, sim);
    const auto T = static_cast<int64_t>(tokens.size());
    double nll = 0.0;
    std::vector<double> row(static_cast<size_t>(config_.vocab_size));
    for (int64_t t = 0; t + 1 < T; ++t) {
        for (int64_t v = 0; v < config_.vocab_size; ++v)
            row[static_cast<size_t>(v)] = logits.at(t, v);
        softmaxInPlace(row);
        const int32_t target = tokens[static_cast<size_t>(t + 1)];
        const double p = std::max(
            row[static_cast<size_t>(target)], 1e-12);
        nll -= std::log(p);
    }
    return {nll, T - 1};
}

std::vector<int32_t>
TinyTransformer::sampleSequence(int64_t length, Rng &rng) const
{
    COMET_CHECK(length >= 2);
    std::vector<int32_t> tokens;
    tokens.push_back(static_cast<int32_t>(
        rng.uniformInt(static_cast<uint64_t>(config_.vocab_size))));
    std::vector<double> row(static_cast<size_t>(config_.vocab_size));
    while (static_cast<int64_t>(tokens.size()) < length) {
        const Tensor logits = forward(tokens);
        const int64_t last =
            static_cast<int64_t>(tokens.size()) - 1;
        for (int64_t v = 0; v < config_.vocab_size; ++v)
            row[static_cast<size_t>(v)] = logits.at(last, v);
        softmaxInPlace(row);
        double u = rng.uniform();
        int32_t pick = 0;
        for (int64_t v = 0; v < config_.vocab_size; ++v) {
            u -= row[static_cast<size_t>(v)];
            if (u <= 0.0) {
                pick = static_cast<int32_t>(v);
                break;
            }
        }
        tokens.push_back(pick);
    }
    return tokens;
}

TinyTransformer
TinyTransformer::transformedWeights(
    const std::function<Tensor(const LinearSite &, const Tensor &)>
        &transform) const
{
    TinyTransformer copy = *this;
    for (int64_t l = 0; l < config_.num_layers; ++l) {
        LayerWeights &layer = copy.layers_[static_cast<size_t>(l)];
        layer.wq = transform({l, WeightKind::kQ}, layer.wq);
        layer.wk = transform({l, WeightKind::kK}, layer.wk);
        layer.wv = transform({l, WeightKind::kV}, layer.wv);
        layer.wo = transform({l, WeightKind::kO}, layer.wo);
        if (config_.gated_mlp) {
            layer.w_gate =
                transform({l, WeightKind::kGate}, layer.w_gate);
        }
        layer.w_up = transform({l, WeightKind::kUp}, layer.w_up);
        layer.w_down = transform({l, WeightKind::kDown}, layer.w_down);
    }
    return copy;
}

const std::vector<float> &
TinyTransformer::attnNormGain(int64_t layer) const
{
    COMET_CHECK(layer >= 0 && layer < config_.num_layers);
    return layers_[static_cast<size_t>(layer)].attn_norm_gain;
}

const std::vector<float> &
TinyTransformer::mlpNormGain(int64_t layer) const
{
    COMET_CHECK(layer >= 0 && layer < config_.num_layers);
    return layers_[static_cast<size_t>(layer)].mlp_norm_gain;
}

const Tensor &
TinyTransformer::weight(const LinearSite &site) const
{
    COMET_CHECK(site.layer >= 0 && site.layer < config_.num_layers);
    const LayerWeights &layer =
        layers_[static_cast<size_t>(site.layer)];
    switch (site.kind) {
      case WeightKind::kQ: return layer.wq;
      case WeightKind::kK: return layer.wk;
      case WeightKind::kV: return layer.wv;
      case WeightKind::kO: return layer.wo;
      case WeightKind::kGate:
        COMET_CHECK_MSG(config_.gated_mlp,
                        "plain-MLP models have no gate projection");
        return layer.w_gate;
      case WeightKind::kUp: return layer.w_up;
      case WeightKind::kDown: return layer.w_down;
    }
    COMET_CHECK_MSG(false, "bad weight kind");
    return layers_.front().wq;
}

} // namespace comet
