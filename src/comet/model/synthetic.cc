#include "comet/model/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace comet {

SyntheticActivationModel::SyntheticActivationModel(
    SyntheticActivationConfig config)
    : config_(config)
{
    COMET_CHECK(config_.channels > 0);
    COMET_CHECK(config_.outlier_fraction >= 0.0 &&
                config_.outlier_fraction < 1.0);

    Rng rng(config_.seed);
    const auto num_outliers = static_cast<int64_t>(
        std::llround(config_.outlier_fraction *
                     static_cast<double>(config_.channels)));

    // Choose the outlier channel set by shuffling channel ids.
    std::vector<int64_t> ids(static_cast<size_t>(config_.channels));
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    outlier_channels_.assign(ids.begin(),
                             ids.begin() + num_outliers);
    std::sort(outlier_channels_.begin(), outlier_channels_.end());

    gains_.assign(static_cast<size_t>(config_.channels), 1.0f);
    for (int64_t c : outlier_channels_) {
        // Log-normal around the configured scale: some channels reach
        // the "hundredfold" regime the paper describes.
        const double gain =
            config_.outlier_scale *
            rng.logNormal(0.0, config_.outlier_log_sigma);
        gains_[static_cast<size_t>(c)] = static_cast<float>(gain);
    }
}

Tensor
SyntheticActivationModel::sample(int64_t tokens, Rng &rng) const
{
    COMET_CHECK(tokens > 0);
    Tensor x(tokens, config_.channels);
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t c = 0; c < config_.channels; ++c) {
            x.at(t, c) = static_cast<float>(
                rng.gaussian(0.0, config_.base_std) *
                gains_[static_cast<size_t>(c)]);
        }
    }
    return x;
}

SyntheticActivationConfig
llama7bActivationProfile()
{
    SyntheticActivationConfig config;
    config.channels = 4096;
    config.outlier_fraction = 0.006;
    config.outlier_scale = 40.0;
    config.seed = 0x11a3a7;
    return config;
}

SyntheticActivationConfig
opt13bActivationProfile()
{
    // OPT models show denser, larger outliers (LLM.int8 observations).
    SyntheticActivationConfig config;
    config.channels = 5120;
    config.outlier_fraction = 0.01;
    config.outlier_scale = 60.0;
    config.seed = 0x0913b;
    return config;
}

SyntheticActivationConfig
qwen72bActivationProfile()
{
    SyntheticActivationConfig config;
    config.channels = 8192;
    config.outlier_fraction = 0.004;
    config.outlier_scale = 35.0;
    config.seed = 0x9e272;
    return config;
}

Tensor
sampleWeights(int64_t out, int64_t in, Rng &rng)
{
    COMET_CHECK(out > 0 && in > 0);
    Tensor w(out, in);
    const double std = 1.0 / std::sqrt(static_cast<double>(in));
    for (int64_t i = 0; i < out; ++i) {
        for (int64_t j = 0; j < in; ++j)
            w.at(i, j) = static_cast<float>(rng.gaussian(0.0, std));
    }
    return w;
}

} // namespace comet
