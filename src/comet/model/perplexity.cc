#include "comet/model/perplexity.h"

#include <algorithm>
#include <cmath>

#include "comet/quant/qoq.h"
#include "comet/quant/rotation.h"
#include "comet/quant/quantizer.h"
#include "comet/quant/weight_quant.h"

namespace comet {

namespace {

/** FMPQ block size for the tiny model. The paper uses k = 128 on
 * 4096+-channel models; scaling the ratio down to the tiny model's
 * 64-256-channel layers gives 16-channel blocks, preserving the
 * blocks-per-layer granularity the algorithm needs to isolate
 * outliers. */
constexpr int64_t kTinyBlockSize = 16;

/** Weight-quantizer group size for the tiny model. */
constexpr int64_t kTinyGroupSize = 16;

/** The activation site feeding each weight matrix. */
ActSite
actSiteOf(WeightKind kind)
{
    switch (kind) {
      case WeightKind::kQ:
      case WeightKind::kK:
      case WeightKind::kV:
        return ActSite::kQkv;
      case WeightKind::kO:
        return ActSite::kO;
      case WeightKind::kGate:
      case WeightKind::kUp:
        return ActSite::kMlp;
      case WeightKind::kDown:
        return ActSite::kDown;
    }
    COMET_CHECK_MSG(false, "bad weight kind");
    return ActSite::kQkv;
}

const std::vector<ActSite> kAllActSites = {
    ActSite::kQkv, ActSite::kO, ActSite::kMlp, ActSite::kDown};

} // namespace

const char *
quantSchemeName(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::kFp16: return "Full Precision";
      case QuantScheme::kSmoothQuantW8A8: return "SmoothQuant";
      case QuantScheme::kGptqW4A16: return "GPTQ";
      case QuantScheme::kAwqW4A16: return "AWQ";
      case QuantScheme::kOmniquantW4A16: return "Omniquant";
      case QuantScheme::kFmpqW4Ax: return "FMPQ";
      case QuantScheme::kOmniquantW4A4: return "Omniquant";
      case QuantScheme::kQoqW4A8Kv4: return "QoQ";
      case QuantScheme::kFmpqW4AxKv4: return "FMPQ";
      case QuantScheme::kQuarotW4A4: return "QuaRot-lite";
    }
    return "?";
}

const char *
quantSchemePrecision(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::kFp16: return "FP16";
      case QuantScheme::kSmoothQuantW8A8: return "W8A8";
      case QuantScheme::kGptqW4A16: return "W4A16";
      case QuantScheme::kAwqW4A16: return "W4A16";
      case QuantScheme::kOmniquantW4A16: return "W4A16";
      case QuantScheme::kFmpqW4Ax: return "W4Ax";
      case QuantScheme::kOmniquantW4A4: return "W4A4";
      case QuantScheme::kQoqW4A8Kv4: return "W4A8 KV4";
      case QuantScheme::kFmpqW4AxKv4: return "W4AxKV4";
      case QuantScheme::kQuarotW4A4: return "W4A4 (rot)";
    }
    return "?";
}

std::vector<QuantScheme>
table1Schemes()
{
    return {QuantScheme::kFp16,          QuantScheme::kSmoothQuantW8A8,
            QuantScheme::kGptqW4A16,     QuantScheme::kAwqW4A16,
            QuantScheme::kOmniquantW4A16, QuantScheme::kFmpqW4Ax,
            QuantScheme::kOmniquantW4A4,  QuantScheme::kQoqW4A8Kv4,
            QuantScheme::kFmpqW4AxKv4};
}

Dataset
sampleDataset(const TinyTransformer &teacher, int count, int64_t length,
              Rng &rng)
{
    Dataset dataset;
    dataset.sequences.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        dataset.sequences.push_back(teacher.sampleSequence(length, rng));
    return dataset;
}

CalibrationData
CalibrationData::collect(const TinyTransformer &model,
                         const Dataset &calibration,
                         int64_t max_rows_per_site)
{
    /** Records every intercepted activation, capped per site. */
    class Collector : public QuantSimulator
    {
      public:
        explicit Collector(int64_t cap) : cap_(cap) {}

        Tensor
        transformActivation(const ActivationSite &site,
                            const Tensor &x) override
        {
            auto &rows = rows_[{site.layer,
                                static_cast<int>(site.site)}];
            for (int64_t t = 0;
                 t < x.rows() &&
                 static_cast<int64_t>(rows.size()) < cap_;
                 ++t) {
                std::vector<float> row(
                    static_cast<size_t>(x.cols()));
                for (int64_t c = 0; c < x.cols(); ++c)
                    row[static_cast<size_t>(c)] = x.at(t, c);
                rows.push_back(std::move(row));
            }
            return x;
        }

        std::map<std::pair<int64_t, int>,
                 std::vector<std::vector<float>>>
            rows_;

      private:
        int64_t cap_;
    };

    Collector collector(max_rows_per_site);
    for (const auto &sequence : calibration.sequences)
        model.forward(sequence, &collector);

    CalibrationData data;
    for (auto &[key, rows] : collector.rows_) {
        COMET_CHECK(!rows.empty());
        Tensor t(static_cast<int64_t>(rows.size()),
                 static_cast<int64_t>(rows.front().size()));
        for (int64_t r = 0; r < t.rows(); ++r) {
            for (int64_t c = 0; c < t.cols(); ++c) {
                t.at(r, c) =
                    rows[static_cast<size_t>(r)]
                        [static_cast<size_t>(c)];
            }
        }
        data.data_.emplace(key, std::move(t));
    }
    return data;
}

const Tensor &
CalibrationData::activations(int64_t layer, ActSite site) const
{
    const auto it = data_.find({layer, static_cast<int>(site)});
    COMET_CHECK_MSG(it != data_.end(),
                    "no calibration data for this site");
    return it->second;
}

Tensor
HookQuantSimulator::transformActivation(const ActivationSite &site,
                                        const Tensor &x)
{
    return act_hook_ ? act_hook_(site, x) : x;
}

Tensor
HookQuantSimulator::transformKv(int64_t, bool, const Tensor &kv)
{
    return kv_quantizer_ ? kv_quantizer_->fakeQuantize(kv) : kv;
}

namespace {

/** Weight-only transform wrappers. */
QuantizedModel
buildWeightOnly(const TinyTransformer &teacher, QuantScheme scheme,
                const CalibrationData &calibration)
{
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = kTinyGroupSize;
    auto transform = [&](const LinearSite &site, const Tensor &w) {
        const Tensor &acts =
            calibration.activations(site.layer, actSiteOf(site.kind));
        switch (scheme) {
          case QuantScheme::kGptqW4A16:
            return gptqQuantizeWeight(w, acts, config);
          case QuantScheme::kAwqW4A16:
            return awqQuantizeWeight(w, acts, config);
          default:
            return omniquantQuantizeWeightLet(w, acts, config);
        }
    };
    return {teacher.transformedWeights(transform), nullptr};
}

/** SmoothQuant W8A8: shared per-site smoothing factors migrate outlier
 * magnitude into the weights; both sides quantize to INT8. */
QuantizedModel
buildSmoothQuant(const TinyTransformer &teacher,
                 const CalibrationData &calibration)
{
    const auto &config = teacher.config();
    constexpr float kAlpha = 0.5f;

    // factors[layer][site][channel]
    std::map<std::pair<int64_t, int>, std::vector<float>> factors;
    for (int64_t l = 0; l < config.num_layers; ++l) {
        for (ActSite site : kAllActSites) {
            const Tensor &acts = calibration.activations(l, site);
            const int64_t channels = acts.cols();
            // Per-channel |act| max.
            std::vector<float> a_max(
                static_cast<size_t>(channels), 0.0f);
            for (int64_t t = 0; t < acts.rows(); ++t) {
                for (int64_t c = 0; c < channels; ++c) {
                    a_max[static_cast<size_t>(c)] = std::max(
                        a_max[static_cast<size_t>(c)],
                        std::fabs(acts.at(t, c)));
                }
            }
            // Per-channel |w| max across every matrix fed by the site.
            std::vector<float> w_max(
                static_cast<size_t>(channels), 0.0f);
            for (WeightKind kind :
                 {WeightKind::kQ, WeightKind::kK, WeightKind::kV,
                  WeightKind::kO, WeightKind::kGate, WeightKind::kUp,
                  WeightKind::kDown}) {
                if (actSiteOf(kind) != site)
                    continue;
                if (kind == WeightKind::kGate &&
                    !teacher.config().gated_mlp)
                    continue; // plain-MLP models have no gate
                const Tensor &w = teacher.weight({l, kind});
                for (int64_t n = 0; n < w.rows(); ++n) {
                    for (int64_t c = 0; c < channels; ++c) {
                        w_max[static_cast<size_t>(c)] = std::max(
                            w_max[static_cast<size_t>(c)],
                            std::fabs(w.at(n, c)));
                    }
                }
            }
            std::vector<float> s(static_cast<size_t>(channels));
            for (size_t c = 0; c < s.size(); ++c) {
                const float a = std::max(a_max[c], 1e-5f);
                const float w = std::max(w_max[c], 1e-5f);
                s[c] = std::max(std::pow(a, kAlpha) /
                                    std::pow(w, 1.0f - kAlpha),
                                1e-5f);
            }
            factors[{l, static_cast<int>(site)}] = std::move(s);
        }
    }

    auto weight_transform = [&](const LinearSite &site,
                                const Tensor &w) {
        const auto &s =
            factors.at({site.layer,
                        static_cast<int>(actSiteOf(site.kind))});
        Tensor scaled(w.rows(), w.cols());
        for (int64_t n = 0; n < w.rows(); ++n) {
            for (int64_t c = 0; c < w.cols(); ++c) {
                scaled.at(n, c) =
                    w.at(n, c) * s[static_cast<size_t>(c)];
            }
        }
        return fakeQuantPerRow(scaled, 8);
    };

    auto sim = std::make_shared<HookQuantSimulator>();
    // The hook captures the factor table by value so the simulator
    // outlives this builder.
    sim->setActHook([factors](const ActivationSite &site,
                              const Tensor &x) {
        const auto &s = factors.at(
            {site.layer, static_cast<int>(site.site)});
        Tensor smoothed(x.rows(), x.cols());
        for (int64_t t = 0; t < x.rows(); ++t) {
            for (int64_t c = 0; c < x.cols(); ++c) {
                smoothed.at(t, c) =
                    x.at(t, c) / s[static_cast<size_t>(c)];
            }
        }
        return fakeQuantPerRow(smoothed, 8);
    });
    return {teacher.transformedWeights(weight_transform),
            std::move(sim)};
}

/** FMPQ schemes: OmniQuant-style W4 weights + per-site FMPQ
 * activations (+ optional KV4). */
QuantizedModel
buildFmpq(const TinyTransformer &teacher,
          const CalibrationData &calibration, bool quantize_kv,
          FmpqModelStats *stats)
{
    const auto &config = teacher.config();
    WeightQuantConfig w_config;
    w_config.bits = 4;
    w_config.group_size = kTinyGroupSize;

    FmpqConfig fmpq_config;
    fmpq_config.block_size = kTinyBlockSize;

    auto quantizers = std::make_shared<
        std::map<std::pair<int64_t, int>, FmpqActivationQuantizer>>();
    double int4_fraction_sum = 0.0;
    int64_t sites = 0;
    for (int64_t l = 0; l < config.num_layers; ++l) {
        for (ActSite site : kAllActSites) {
            auto quantizer = FmpqActivationQuantizer::calibrate(
                calibration.activations(l, site), fmpq_config);
            int4_fraction_sum += quantizer.int4BlockFraction();
            ++sites;
            quantizers->emplace(
                std::make_pair(l, static_cast<int>(site)),
                std::move(quantizer));
        }
    }
    if (stats != nullptr) {
        stats->int4_block_fraction =
            int4_fraction_sum / static_cast<double>(sites);
        stats->w4a4_compute_fraction = stats->int4_block_fraction;
    }

    auto sim = std::make_shared<HookQuantSimulator>();
    sim->setActHook([quantizers](const ActivationSite &site,
                                 const Tensor &x) {
        return quantizers
            ->at({site.layer, static_cast<int>(site.site)})
            .fakeQuantize(x);
    });
    if (quantize_kv)
        sim->setKvQuantizer(KvQuantConfig{4, 64, true});

    auto weight_transform = [&](const LinearSite &site,
                                const Tensor &w) {
        return omniquantQuantizeWeightLet(
            w, calibration.activations(site.layer,
                                       actSiteOf(site.kind)),
            w_config);
    };
    return {teacher.transformedWeights(weight_transform),
            std::move(sim)};
}

} // namespace

QuantizedModel
buildQuantizedModel(const TinyTransformer &teacher, QuantScheme scheme,
                    const CalibrationData &calibration,
                    FmpqModelStats *fmpq_stats)
{
    switch (scheme) {
      case QuantScheme::kFp16:
        return {teacher, nullptr};

      case QuantScheme::kSmoothQuantW8A8:
        return buildSmoothQuant(teacher, calibration);

      case QuantScheme::kGptqW4A16:
      case QuantScheme::kAwqW4A16:
      case QuantScheme::kOmniquantW4A16:
        return buildWeightOnly(teacher, scheme, calibration);

      case QuantScheme::kFmpqW4Ax:
        return buildFmpq(teacher, calibration, false, fmpq_stats);

      case QuantScheme::kFmpqW4AxKv4:
        return buildFmpq(teacher, calibration, true, fmpq_stats);

      case QuantScheme::kOmniquantW4A4: {
        WeightQuantConfig w_config;
        w_config.bits = 4;
        w_config.group_size = kTinyGroupSize;
        auto model = teacher.transformedWeights(
            [&](const LinearSite &, const Tensor &w) {
                return omniquantQuantizeWeight(w, w_config);
            });
        auto sim = std::make_shared<HookQuantSimulator>();
        sim->setActHook([](const ActivationSite &, const Tensor &x) {
            return fakeQuantPerRow(x, 4); // no outlier handling
        });
        return {std::move(model), std::move(sim)};
      }

      case QuantScheme::kQuarotW4A4: {
        RotatedQuantConfig rot_config;
        rot_config.weight_group_size = kTinyGroupSize;
        auto model = teacher.transformedWeights(
            [&](const LinearSite &, const Tensor &w) {
                return rotatedQuantizeWeight(w, rot_config);
            });
        auto sim = std::make_shared<HookQuantSimulator>();
        sim->setActHook([rot_config](const ActivationSite &,
                                     const Tensor &x) {
            return rotatedFakeQuantActivations(x, rot_config);
        });
        return {std::move(model), std::move(sim)};
      }

      case QuantScheme::kQoqW4A8Kv4: {
        QoqConfig qoq_config;
        qoq_config.group_size = kTinyGroupSize;
        auto model = teacher.transformedWeights(
            [&](const LinearSite &site, const Tensor &w) {
                return QoqLayer::calibrate(
                           w,
                           calibration.activations(
                               site.layer, actSiteOf(site.kind)),
                           qoq_config)
                    .quantizedWeight();
            });
        auto sim = std::make_shared<HookQuantSimulator>();
        sim->setActHook([](const ActivationSite &, const Tensor &x) {
            return fakeQuantPerRow(x, 8);
        });
        sim->setKvQuantizer(KvQuantConfig{4, 64, true});
        return {std::move(model), std::move(sim)};
      }
    }
    COMET_CHECK_MSG(false, "unknown quantization scheme");
    return {teacher, nullptr};
}

double
evaluatePerplexity(const TinyTransformer &model, QuantSimulator *sim,
                   const Dataset &dataset)
{
    double nll = 0.0;
    int64_t tokens = 0;
    for (const auto &sequence : dataset.sequences) {
        const auto [seq_nll, seq_tokens] =
            model.sequenceNll(sequence, sim);
        nll += seq_nll;
        tokens += seq_tokens;
    }
    COMET_CHECK(tokens > 0);
    return std::exp(nll / static_cast<double>(tokens));
}

} // namespace comet
