/**
 * @file
 * Deterministic interconnect cost model for intra-replica tensor
 * parallelism (DESIGN.md Section 16).
 *
 * The model prices the two collectives Megatron-style sharding needs —
 * all-reduce after every row-parallel GEMM, all-gather after a
 * column-parallel one — over an NVLink-class clique of N identical
 * devices, parameterized by the two GpuSpec link constants (paper
 * Section 2.3 platform: 600 GB/s per-GPU NVLink 3 on the A100):
 *
 *  - `nvlink_bandwidth`: per-GPU link bandwidth, bytes/second;
 *  - `nvlink_latency_us`: fixed per-hop collective round cost.
 *
 * Two algorithms are modeled, mirroring the NCCL choice:
 *
 *  - *ring*: reduce-scatter + all-gather in 2*(N-1) hops, each moving
 *    bytes/N per link. Bandwidth-optimal (2*(N-1)/N of the tensor per
 *    link) but pays 2*(N-1) latency hops.
 *  - *direct*: one full-tensor exchange round — every device pushes
 *    its whole partial to all N-1 peers through its serialized link.
 *    A single latency hop, but (N-1) tensor traversals of bandwidth.
 *
 * For N > 2 the two cost lines cross: direct wins small messages
 * (decode-batch activations), ring wins past
 * ringDirectCrossoverBytes(). For N == 2 both move the same bytes and
 * direct's single hop always wins (the crossover is infinite).
 *
 * Every cost is a pure closed-form function of (bytes, degree) and the
 * two spec constants — no clocks, no randomness — so planner and
 * engine decisions built on it replay bit-identically.
 */
#pragma once

#include <vector>

#include "comet/gpusim/gpu_spec.h"

namespace comet {
namespace tp {

/** Collective algorithm the model picked for a message size. */
enum class CollectiveAlgo {
    kRing = 0, ///< reduce-scatter + all-gather ring
    kDirect,   ///< single-round full-partial exchange
};

/** Returns "ring" / "direct". */
const char *collectiveAlgoName(CollectiveAlgo algo);

/**
 * The link cost model of one TP group. Copies the two link constants
 * out of the spec at construction; all methods are const and
 * deterministic.
 */
class InterconnectModel
{
  public:
    /** Builds the model from @p spec's NVLink constants.
     * @pre spec.nvlink_bandwidth > 0 and spec.nvlink_latency_us >= 0. */
    explicit InterconnectModel(const GpuSpec &spec);

    /** Per-GPU link bandwidth, bytes/second. */
    double linkBandwidth() const { return bandwidth_; }

    /** Fixed per-hop collective latency, microseconds. */
    double hopLatencyUs() const { return latency_us_; }

    /** Ring all-reduce of a @p bytes tensor across @p degree devices,
     * microseconds (0 at degree 1). */
    double ringAllReduceUs(double bytes, int degree) const;

    /**
     * Ring all-reduce with an explicit rank ordering: @p ring_order
     * must be a permutation of 0..N-1 (N = its size). The modeled
     * topology is a fully-connected clique of identical links, so the
     * cost is invariant under any permutation — the symmetry the
     * property tests pin.
     */
    double ringAllReduceUs(double bytes,
                           const std::vector<int> &ring_order) const;

    /** Direct (single-round) all-reduce, microseconds. */
    double directAllReduceUs(double bytes, int degree) const;

    /** Cheapest all-reduce: min(ring, direct). */
    double allReduceUs(double bytes, int degree) const;

    /** The algorithm allReduceUs() costs @p bytes at (ties pick
     * direct — fewer hops at equal cost). */
    CollectiveAlgo chooseAllReduce(double bytes, int degree) const;

    /** Ring all-gather of @p bytes_per_rank per device,
     * microseconds. */
    double ringAllGatherUs(double bytes_per_rank, int degree) const;

    /** Direct all-gather (one exchange round), microseconds. */
    double directAllGatherUs(double bytes_per_rank, int degree) const;

    /** Cheapest all-gather: min(ring, direct). */
    double allGatherUs(double bytes_per_rank, int degree) const;

    /**
     * Smallest message size (bytes) from which ring all-reduce is no
     * costlier than direct at @p degree. Infinite for degree <= 2
     * (equal bandwidth terms, direct's single hop always wins);
     * finite and positive for degree > 2.
     */
    double ringDirectCrossoverBytes(int degree) const;

  private:
    double bandwidth_ = 0.0;
    double latency_us_ = 0.0;
};

} // namespace tp
} // namespace comet
