#include "comet/tp/shard.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "comet/chaos/failpoint.h"
#include "comet/kernel/interleave.h"
#include "comet/obs/metrics.h"
#include "comet/obs/trace_session.h"

namespace comet {
namespace tp {

namespace {

obs::Counter &
tpCounter(const char *name)
{
    return obs::MetricsRegistry::global().counter(
        std::string("tp.") + name);
}

/** Byte-copies a [row_count, tile_k] column slice of a packed INT4
 * tensor starting at (whole-byte-aligned) column @p k0. */
Int4Tensor
sliceInt4Columns(const Int4Tensor &src, int64_t k0, int64_t tile_k)
{
    COMET_CHECK(k0 % 2 == 0 && tile_k % 2 == 0);
    Int4Tensor out(src.rows(), tile_k);
    for (int64_t r = 0; r < src.rows(); ++r) {
        std::memcpy(out.rowPtr(r), src.rowPtr(r) + k0 / 2,
                    static_cast<size_t>(tile_k / 2));
    }
    return out;
}

/** Byte-copies a [row_count, tile_k] column slice of an INT8
 * tensor. */
Int8Tensor
sliceInt8Columns(const Int8Tensor &src, int64_t k0, int64_t tile_k)
{
    Int8Tensor out(src.rows(), tile_k);
    for (int64_t r = 0; r < src.rows(); ++r) {
        std::memcpy(out.rowPtr(r), src.rowPtr(r) + k0,
                    static_cast<size_t>(tile_k));
    }
    return out;
}

} // namespace

const char *
tpPartitionName(TpPartition partition)
{
    switch (partition) {
      case TpPartition::kColumn: return "column";
      case TpPartition::kRow: return "row";
    }
    return "?";
}

ShardRange
shardRange(int64_t total, int degree, int rank)
{
    COMET_CHECK(degree >= 1 && rank >= 0 && rank < degree);
    COMET_CHECK_MSG(total % degree == 0,
                    "shardRange requires an even split");
    const int64_t per = total / degree;
    return {rank * per, (rank + 1) * per};
}

Status
validateTpDegree(const LlmConfig &model, int degree)
{
    const auto reject = [&](const char *what, int64_t extent) {
        return Status::invalidArgument(
            "tensor-parallel degree " + std::to_string(degree) +
            " does not divide " + model.name + "'s " + what + " (" +
            std::to_string(extent) +
            "): shard boundaries would cross head or "
            "quantization-group geometry");
    };
    if (degree < 1) {
        return Status::invalidArgument(
            "tensor-parallel degree must be positive, got " +
            std::to_string(degree));
    }
    if (model.num_heads % degree != 0)
        return reject("query head count", model.num_heads);
    if (model.num_kv_heads % degree != 0)
        return reject("KV head count", model.num_kv_heads);
    if (model.hidden_size % degree != 0)
        return reject("hidden size", model.hidden_size);
    if (model.intermediate_size % degree != 0)
        return reject("intermediate size", model.intermediate_size);
    if (model.vocab_size % degree != 0)
        return reject("vocab size", model.vocab_size);
    return Status::ok();
}

Result<ShardedW4AxGemm>
ShardedW4AxGemm::create(const BlockQuantizedWeight &weight,
                        const std::vector<BlockPrecision> &precisions,
                        TpPartition partition, int degree,
                        W4AxGemmConfig config)
{
    if (degree < 1) {
        return Status::invalidArgument(
            "tensor-parallel degree must be positive, got " +
            std::to_string(degree));
    }
    if (weight.block_size <= 0 ||
        weight.in_channels % weight.block_size != 0) {
        return Status::invalidArgument(
            "weight block size must divide its channel count");
    }
    const int64_t num_blocks = weight.in_channels / weight.block_size;
    if (static_cast<int64_t>(precisions.size()) != num_blocks) {
        return Status::invalidArgument(
            "precision map must have one entry per k block");
    }

    ShardedW4AxGemm sharded;
    sharded.partition_ = partition;
    sharded.degree_ = degree;
    sharded.out_features_ = weight.out_features;
    sharded.in_channels_ = weight.in_channels;
    sharded.block_size_ = weight.block_size;
    sharded.tile_k_ = config.tile_k;
    sharded.precisions_ = precisions;

    if (degree == 1) {
        // Degenerate group: the TP=1 operator itself, no collectives.
        RankShard rank;
        rank.gemms.emplace_back(weight, precisions, config);
        rank.n_range = {0, weight.out_features};
        sharded.ranks_.push_back(std::move(rank));
        return sharded;
    }

    if (partition == TpPartition::kColumn) {
        if (weight.out_features % degree != 0) {
            return Status::invalidArgument(
                "column partition needs out_features (" +
                std::to_string(weight.out_features) +
                ") divisible by the TP degree " +
                std::to_string(degree));
        }
        for (int r = 0; r < degree; ++r) {
            const ShardRange range =
                shardRange(weight.out_features, degree, r);
            // Whole packed rows: the shard is a byte-identical slice
            // of the TP=1 layout.
            Int4Tensor data(range.size(), weight.in_channels);
            for (int64_t n = 0; n < range.size(); ++n) {
                std::memcpy(
                    data.rowPtr(n),
                    weight.data.rowPtr(range.begin + n),
                    static_cast<size_t>(weight.data.rowBytes()));
            }
            Tensor scales(range.size(), num_blocks);
            for (int64_t n = 0; n < range.size(); ++n) {
                for (int64_t b = 0; b < num_blocks; ++b) {
                    scales.at(n, b) =
                        weight.scales.at(range.begin + n, b);
                }
            }
            BlockQuantizedWeight slice{range.size(),
                                       weight.in_channels,
                                       weight.block_size,
                                       std::move(data),
                                       std::move(scales)};
            RankShard rank;
            rank.gemms.emplace_back(std::move(slice), precisions,
                                    config);
            rank.n_range = range;
            sharded.ranks_.push_back(std::move(rank));
        }
        return sharded;
    }

    // Row partition: split whole FMPQ channel blocks, then build one
    // single-block operator per owned k tile so the all-reduce can
    // fold contributions in the TP=1 accumulation order.
    if (num_blocks % degree != 0) {
        return Status::invalidArgument(
            "row partition needs the FMPQ block count (" +
            std::to_string(num_blocks) +
            ") divisible by the TP degree " + std::to_string(degree) +
            " so shard boundaries respect quantization groups");
    }
    if (config.tile_k <= 0 || weight.block_size % config.tile_k != 0 ||
        config.tile_k % kInterleaveUnit != 0) {
        return Status::invalidArgument(
            "row partition needs tile_k dividing the quantization "
            "block size and aligned to the interleave unit");
    }
    W4AxGemmConfig tile_config = config;
    for (int r = 0; r < degree; ++r) {
        const ShardRange blocks = shardRange(num_blocks, degree, r);
        RankShard rank;
        for (int64_t k0 = blocks.begin * weight.block_size;
             k0 < blocks.end * weight.block_size;
             k0 += config.tile_k) {
            const int64_t block = k0 / weight.block_size;
            Tensor scales(weight.out_features, 1);
            for (int64_t n = 0; n < weight.out_features; ++n)
                scales.at(n, 0) = weight.scales.at(n, block);
            BlockQuantizedWeight slice{
                weight.out_features, config.tile_k, config.tile_k,
                sliceInt4Columns(weight.data, k0, config.tile_k),
                std::move(scales)};
            rank.gemms.emplace_back(
                std::move(slice),
                std::vector<BlockPrecision>{
                    precisions[static_cast<size_t>(block)]},
                tile_config);
            rank.k_offsets.push_back(k0);
        }
        sharded.ranks_.push_back(std::move(rank));
    }
    return sharded;
}

Tensor
ShardedW4AxGemm::run(const MixedQuantizedActivation &activation,
                     W4AxGemmStats *stats) const
{
    COMET_CHECK(activation.channels == in_channels_);
    COMET_CHECK(activation.block_size == block_size_);
    COMET_CHECK_MSG(activation.precisions == precisions_,
                    "activation block precisions must match the map "
                    "the sharded operator was built for");
    static obs::Counter &shard_runs = tpCounter("shard.runs");
    shard_runs.add(1);

    if (degree_ == 1)
        return ranks_[0].gemms[0].run(activation, stats);

    const int64_t m_dim = activation.tokens;
    Tensor out(m_dim, out_features_);

    if (partition_ == TpPartition::kColumn) {
        // Every rank consumes the replicated activation and emits its
        // own column slice; the all-gather concatenates them.
        std::vector<Tensor> parts;
        parts.reserve(ranks_.size());
        for (const RankShard &rank : ranks_) {
            COMET_SPAN("tp/shard_gemm");
            parts.push_back(rank.gemms[0].run(activation, stats));
        }
        {
            COMET_SPAN("tp/allgather");
            for (size_t r = 0; r < ranks_.size(); ++r) {
                const ShardRange &range = ranks_[r].n_range;
                for (int64_t i = 0; i < m_dim; ++i) {
                    for (int64_t j = 0; j < range.size(); ++j) {
                        out.at(i, range.begin + j) =
                            parts[r].at(i, j);
                    }
                }
            }
            static obs::Counter &count = tpCounter("allgather.count");
            static obs::Counter &bytes = tpCounter("allgather.bytes");
            count.add(1);
            bytes.add(out.numel() * static_cast<int64_t>(sizeof(float)));
        }
        return out;
    }

    // Row partition: each rank computes one contribution tensor per
    // owned k tile from its byte-identical activation slice...
    std::vector<std::pair<int64_t, Tensor>> contributions;
    for (const RankShard &rank : ranks_) {
        COMET_SPAN("tp/shard_gemm");
        for (size_t t = 0; t < rank.gemms.size(); ++t) {
            const int64_t k0 = rank.k_offsets[t];
            const int64_t block = k0 / block_size_;
            const BlockPrecision precision =
                precisions_[static_cast<size_t>(block)];
            Tensor scales(m_dim, 1);
            for (int64_t i = 0; i < m_dim; ++i)
                scales.at(i, 0) = activation.scales.at(i, block);
            MixedQuantizedActivation slice{
                m_dim,
                tile_k_,
                tile_k_,
                {precision},
                precision == BlockPrecision::kInt4
                    ? sliceInt4Columns(activation.int4_data, k0,
                                       tile_k_)
                    : Int4Tensor(m_dim, tile_k_),
                precision == BlockPrecision::kInt8
                    ? sliceInt8Columns(activation.int8_data, k0,
                                       tile_k_)
                    : Int8Tensor(m_dim, tile_k_),
                std::move(scales)};
            contributions.emplace_back(
                k0, rank.gemms[t].run(slice, stats));
        }
    }

    // ...and the modeled all-reduce folds them in ascending global
    // k-tile order — the exact TP=1 addition sequence. A fired
    // tp.allreduce failpoint simulates a degraded-link retry: the
    // fold is discarded and replayed, byte-identically.
    {
        COMET_SPAN("tp/allreduce");
        std::sort(contributions.begin(), contributions.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        const int rounds = COMET_FAILPOINT("tp.allreduce") ? 2 : 1;
        for (int round = 0; round < rounds; ++round) {
            std::fill(out.data(), out.data() + out.numel(), 0.0f);
            for (const auto &[k0, contribution] : contributions) {
                const float *src = contribution.data();
                float *dst = out.data();
                for (int64_t i = 0; i < out.numel(); ++i)
                    dst[i] += src[i];
            }
        }
        static obs::Counter &count = tpCounter("allreduce.count");
        static obs::Counter &bytes = tpCounter("allreduce.bytes");
        count.add(1);
        bytes.add(out.numel() * static_cast<int64_t>(sizeof(float)));
        if (rounds > 1) {
            static obs::Counter &retries =
                tpCounter("allreduce.retries");
            retries.add(1);
        }
    }
    return out;
}

Result<ShardedDecodeAttention>
ShardedDecodeAttention::create(const AttentionConfig &config,
                               int degree)
{
    if (degree < 1) {
        return Status::invalidArgument(
            "tensor-parallel degree must be positive, got " +
            std::to_string(degree));
    }
    if (config.num_heads % degree != 0 ||
        config.num_kv_heads % degree != 0) {
        return Status::invalidArgument(
            "head-sharded attention needs the TP degree " +
            std::to_string(degree) + " to divide both the query (" +
            std::to_string(config.num_heads) + ") and KV (" +
            std::to_string(config.num_kv_heads) + ") head counts");
    }
    ShardedDecodeAttention sharded;
    sharded.config_ = config;
    sharded.degree_ = degree;
    sharded.rank_config_ = config;
    sharded.rank_config_.num_heads = config.num_heads / degree;
    sharded.rank_config_.num_kv_heads = config.num_kv_heads / degree;
    return sharded;
}

std::vector<float>
ShardedDecodeAttention::run(const std::vector<float> &q,
                            const Tensor &k, const Tensor &v) const
{
    COMET_CHECK(static_cast<int64_t>(q.size()) == config_.qDim());
    if (degree_ == 1)
        return decodeAttentionOnline(config_, q, k, v);
    const int64_t tokens = k.shape().dim(0);
    const int64_t q_per_rank = rank_config_.qDim();
    const int64_t kv_per_rank = rank_config_.kvDim();
    std::vector<float> out(static_cast<size_t>(config_.qDim()), 0.0f);
    for (int r = 0; r < degree_; ++r) {
        COMET_SPAN("tp/shard_attention");
        const std::vector<float> q_slice(
            q.begin() + static_cast<size_t>(r * q_per_rank),
            q.begin() + static_cast<size_t>((r + 1) * q_per_rank));
        Tensor k_slice(tokens, kv_per_rank);
        Tensor v_slice(tokens, kv_per_rank);
        const int64_t c0 = r * kv_per_rank;
        for (int64_t t = 0; t < tokens; ++t) {
            for (int64_t c = 0; c < kv_per_rank; ++c) {
                k_slice.at(t, c) = k.at(t, c0 + c);
                v_slice.at(t, c) = v.at(t, c0 + c);
            }
        }
        const std::vector<float> part = decodeAttentionOnline(
            rank_config_, q_slice, k_slice, v_slice);
        std::copy(part.begin(), part.end(),
                  out.begin() + static_cast<size_t>(r * q_per_rank));
    }
    return out;
}

std::vector<float>
ShardedDecodeAttention::runQuantized(
    const std::vector<float> &q, const QuantizedKv &k,
    const QuantizedKv &v, const KvCacheQuantizer &quantizer) const
{
    COMET_CHECK(static_cast<int64_t>(q.size()) == config_.qDim());
    if (degree_ == 1)
        return decodeAttentionQuantized(config_, q, k, v, quantizer);
    COMET_CHECK(k.channels == config_.kvDim() &&
                v.channels == config_.kvDim());
    const int64_t q_per_rank = rank_config_.qDim();
    const int64_t kv_per_rank = rank_config_.kvDim();

    // Per-channel quantization params make any channel slice exact:
    // rank r's packed pages and params are byte-identical slices of
    // the TP=1 cache.
    const auto slice_kv = [&](const QuantizedKv &src, int64_t c0) {
        QuantizedKv out{src.tokens, kv_per_rank, src.group_size,
                        sliceInt8Columns(src.data, c0, kv_per_rank),
                        {}};
        const int64_t groups = src.numGroups();
        out.params.reserve(
            static_cast<size_t>(groups * kv_per_rank));
        for (int64_t g = 0; g < groups; ++g) {
            for (int64_t c = 0; c < kv_per_rank; ++c) {
                out.params.push_back(
                    src.params[static_cast<size_t>(
                        g * src.channels + c0 + c)]);
            }
        }
        return out;
    };

    std::vector<float> out(static_cast<size_t>(config_.qDim()), 0.0f);
    for (int r = 0; r < degree_; ++r) {
        COMET_SPAN("tp/shard_attention");
        const std::vector<float> q_slice(
            q.begin() + static_cast<size_t>(r * q_per_rank),
            q.begin() + static_cast<size_t>((r + 1) * q_per_rank));
        const int64_t c0 = r * kv_per_rank;
        const QuantizedKv k_slice = slice_kv(k, c0);
        const QuantizedKv v_slice = slice_kv(v, c0);
        const std::vector<float> part = decodeAttentionQuantized(
            rank_config_, q_slice, k_slice, v_slice, quantizer);
        std::copy(part.begin(), part.end(),
                  out.begin() + static_cast<size_t>(r * q_per_rank));
    }
    return out;
}

} // namespace tp
} // namespace comet
