#include "comet/tp/interconnect.h"

#include <algorithm>
#include <limits>
#include <set>

#include "comet/common/status.h"

namespace comet {
namespace tp {

const char *
collectiveAlgoName(CollectiveAlgo algo)
{
    switch (algo) {
      case CollectiveAlgo::kRing: return "ring";
      case CollectiveAlgo::kDirect: return "direct";
    }
    return "?";
}

InterconnectModel::InterconnectModel(const GpuSpec &spec)
    : bandwidth_(spec.nvlink_bandwidth),
      latency_us_(spec.nvlink_latency_us)
{
    COMET_CHECK_MSG(bandwidth_ > 0.0,
                    "interconnect model needs a positive link "
                    "bandwidth");
    COMET_CHECK(latency_us_ >= 0.0);
}

double
InterconnectModel::ringAllReduceUs(double bytes, int degree) const
{
    COMET_CHECK(bytes >= 0.0 && degree >= 1);
    if (degree == 1)
        return 0.0;
    const double n = static_cast<double>(degree);
    // Reduce-scatter + all-gather: 2*(N-1) hops of bytes/N each.
    const double wire_bytes = 2.0 * (n - 1.0) / n * bytes;
    return wire_bytes / bandwidth_ * 1e6 +
           2.0 * (n - 1.0) * latency_us_;
}

double
InterconnectModel::ringAllReduceUs(
    double bytes, const std::vector<int> &ring_order) const
{
    const int degree = static_cast<int>(ring_order.size());
    COMET_CHECK(degree >= 1);
    const std::set<int> distinct(ring_order.begin(), ring_order.end());
    COMET_CHECK_MSG(static_cast<int>(distinct.size()) == degree &&
                        *distinct.begin() == 0 &&
                        *distinct.rbegin() == degree - 1,
                    "ring order must be a permutation of 0..N-1");
    // Clique of identical links: every ring ordering costs the same.
    return ringAllReduceUs(bytes, degree);
}

double
InterconnectModel::directAllReduceUs(double bytes, int degree) const
{
    COMET_CHECK(bytes >= 0.0 && degree >= 1);
    if (degree == 1)
        return 0.0;
    const double n = static_cast<double>(degree);
    // One exchange round: each device serializes its full partial to
    // the N-1 peers through its own link.
    return (n - 1.0) * bytes / bandwidth_ * 1e6 + latency_us_;
}

double
InterconnectModel::allReduceUs(double bytes, int degree) const
{
    return std::min(ringAllReduceUs(bytes, degree),
                    directAllReduceUs(bytes, degree));
}

CollectiveAlgo
InterconnectModel::chooseAllReduce(double bytes, int degree) const
{
    return ringAllReduceUs(bytes, degree) <
                   directAllReduceUs(bytes, degree)
               ? CollectiveAlgo::kRing
               : CollectiveAlgo::kDirect;
}

double
InterconnectModel::ringAllGatherUs(double bytes_per_rank,
                                   int degree) const
{
    COMET_CHECK(bytes_per_rank >= 0.0 && degree >= 1);
    if (degree == 1)
        return 0.0;
    const double n = static_cast<double>(degree);
    return (n - 1.0) * bytes_per_rank / bandwidth_ * 1e6 +
           (n - 1.0) * latency_us_;
}

double
InterconnectModel::directAllGatherUs(double bytes_per_rank,
                                     int degree) const
{
    COMET_CHECK(bytes_per_rank >= 0.0 && degree >= 1);
    if (degree == 1)
        return 0.0;
    const double n = static_cast<double>(degree);
    return (n - 1.0) * bytes_per_rank / bandwidth_ * 1e6 +
           latency_us_;
}

double
InterconnectModel::allGatherUs(double bytes_per_rank,
                               int degree) const
{
    return std::min(ringAllGatherUs(bytes_per_rank, degree),
                    directAllGatherUs(bytes_per_rank, degree));
}

double
InterconnectModel::ringDirectCrossoverBytes(int degree) const
{
    COMET_CHECK(degree >= 1);
    if (degree <= 2)
        return std::numeric_limits<double>::infinity();
    const double n = static_cast<double>(degree);
    // Solve ring(B) == direct(B):
    //   2(N-1)/N * B/bw + 2(N-1)L == (N-1) * B/bw + L
    // => B = L * (2N-3) * bw * N / ((N-1)(N-2)), with L in seconds
    //    worth of the 1e6 scaling folded back out.
    return latency_us_ * (2.0 * n - 3.0) * bandwidth_ * n /
           ((n - 1.0) * (n - 2.0) * 1e6);
}

} // namespace tp
} // namespace comet
