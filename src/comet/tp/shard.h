/**
 * @file
 * `comet::tp` — bit-exact Megatron-style sharding of the W4Ax GEMM
 * and decode attention across N simulated devices (DESIGN.md
 * Section 16).
 *
 * Partitioning follows Megatron-LM: the first projection of each
 * decoder block (qkv_proj, gate_up_proj/up_proj) splits its *output*
 * features across ranks (column-parallel; the results concatenate via
 * all-gather), the second (out_proj, down_proj) splits its *input*
 * channels (row-parallel; the per-rank partial sums join via
 * all-reduce). Decode attention shards by heads: each rank owns a
 * contiguous query-head range and, because the degree divides the KV
 * head count, the matching contiguous KV-head range — GQA's
 * h -> h / (heads / kv_heads) mapping never crosses a shard boundary.
 *
 * Shard boundaries respect the quantization group geometry — column
 * splits land on whole out-feature rows of the packed INT4 weight,
 * row splits on whole FMPQ channel blocks — so every per-rank INT4
 * page and scale column is a byte-identical slice of the TP=1 layout.
 *
 * The bit-exactness argument (proved by tests/test_tp.cc):
 *
 *  - Column-parallel: an output element's value depends only on its
 *    own (row, column) dot product and the ascending-k tile
 *    accumulation order, never on how the n dimension is tiled or
 *    split, so each rank's slice equals the TP=1 output's columns
 *    byte for byte and concatenation is exact.
 *  - Row-parallel: summing per-rank *folded* partials would
 *    re-associate float additions (((t0+t1)+(t2+t3)) differs from
 *    ((((0+t0)+t1)+t2)+t3)). Instead each rank emits one contribution
 *    tensor per k *tile* it owns, and the modeled all-reduce folds
 *    the contributions in ascending global k-tile order — literally
 *    the same sequence of float additions the TP=1 kernel performs.
 *    (A tile contribution passes through a 0.0f + term store; an
 *    accumulator that starts at +0.0 can never become -0.0, so the
 *    flattening of a -0.0 term to +0.0 is unobservable.)
 *  - Attention: each head's output depends only on its own query
 *    slice and its KV head's cache columns; a head-range shard
 *    computes exactly the per-head loops of the TP=1 kernel, so the
 *    concatenated outputs (and the per-channel QuantizedKv slices)
 *    match byte for byte.
 *
 * The modeled all-reduce carries the `tp.allreduce` failpoint: a fire
 * simulates one degraded-link retry (the fold is discarded and
 * replayed, `tp.allreduce.retries` ticks) with a byte-identical
 * result — the hook bench_chaos_soak --tp arms.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comet/attention/decode_attention.h"
#include "comet/common/status.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/llm_config.h"
#include "comet/quant/fmpq.h"
#include "comet/quant/kv_quant.h"
#include "comet/tensor/tensor.h"

namespace comet {
namespace tp {

/** Which GEMM dimension a shard splits. */
enum class TpPartition {
    kColumn = 0, ///< split out_features (N); join via all-gather
    kRow,        ///< split in_channels (K); join via all-reduce
};

/** Returns "column" / "row". */
const char *tpPartitionName(TpPartition partition);

/** Contiguous [begin, end) span rank @p rank owns of an evenly split
 * dimension. */
struct ShardRange {
    int64_t begin = 0;
    int64_t end = 0;

    int64_t size() const { return end - begin; }
};

/** The span of @p total owned by @p rank under an even @p degree
 * split. @pre total % degree == 0. */
ShardRange shardRange(int64_t total, int degree, int rank);

/**
 * Validates that @p degree is a legal tensor-parallel degree for
 * @p model: positive, and dividing the query-head, KV-head, hidden,
 * intermediate and vocab extents so every shard boundary lands on
 * head and quantization-group geometry. Returns a descriptive
 * invalid-argument Status otherwise — the misconfiguration surfaces
 * as a clear error, never as a silently misplanned capacity.
 */
Status validateTpDegree(const LlmConfig &model, int degree);

/**
 * A W4Ax GEMM partitioned across a TP group.
 *
 * Column shards hold one W4AxGemm per rank over that rank's
 * out-feature rows; row shards hold one single-block W4AxGemm per
 * (rank, k-tile) so the modeled all-reduce can replay the TP=1
 * accumulation order exactly (see the file comment).
 */
class ShardedW4AxGemm
{
  public:
    /**
     * Builds the sharded operator. Fails with invalid-argument when
     * the split does not respect the geometry: column needs
     * out_features % degree == 0; row needs the FMPQ block count
     * divisible by degree (and the block size tileable, which
     * W4AxGemm itself enforces).
     */
    static Result<ShardedW4AxGemm> create(
        const BlockQuantizedWeight &weight,
        const std::vector<BlockPrecision> &precisions,
        TpPartition partition, int degree, W4AxGemmConfig config = {});

    TpPartition partition() const { return partition_; }
    int degree() const { return degree_; }

    /**
     * Executes the sharded GEMM and joins the per-rank results
     * (all-gather for column, ordered-fold all-reduce for row).
     * Output and accumulated @p stats are bit-identical to the TP=1
     * W4AxGemm::run on the unsharded weight.
     */
    Tensor run(const MixedQuantizedActivation &activation,
               W4AxGemmStats *stats = nullptr) const;

  private:
    ShardedW4AxGemm() = default;

    /** One rank's share of the operator. */
    struct RankShard {
        /** Column: the rank's single row-sliced GEMM. Row: one
         * single-block GEMM per owned k tile, ascending k. */
        std::vector<W4AxGemm> gemms;
        /** Global k offset of each gemm (row shards; bytes for the
         * activation slice). */
        std::vector<int64_t> k_offsets;
        /** The rank's out-feature span (column shards). */
        ShardRange n_range;
    };

    TpPartition partition_ = TpPartition::kColumn;
    int degree_ = 1;
    int64_t out_features_ = 0;
    int64_t in_channels_ = 0;
    int64_t block_size_ = 0;
    int64_t tile_k_ = 0;
    std::vector<BlockPrecision> precisions_;
    std::vector<RankShard> ranks_;
};

/**
 * Head-sharded decode attention across a TP group: rank r runs the
 * TP=1 kernel over its contiguous query/KV head ranges and the
 * outputs concatenate (exact; see the file comment).
 */
class ShardedDecodeAttention
{
  public:
    /** Fails with invalid-argument when @p degree does not divide
     * both head counts. */
    static Result<ShardedDecodeAttention> create(
        const AttentionConfig &config, int degree);

    int degree() const { return degree_; }

    /** The per-rank attention geometry. */
    const AttentionConfig &rankConfig() const { return rank_config_; }

    /** Float-cache path; bit-identical to decodeAttentionOnline on
     * the full config. */
    std::vector<float> run(const std::vector<float> &q,
                           const Tensor &k, const Tensor &v) const;

    /** Quantized-cache path; bit-identical to
     * decodeAttentionQuantized on the full config. */
    std::vector<float> runQuantized(
        const std::vector<float> &q, const QuantizedKv &k,
        const QuantizedKv &v, const KvCacheQuantizer &quantizer) const;

  private:
    ShardedDecodeAttention() = default;

    AttentionConfig config_;
    AttentionConfig rank_config_;
    int degree_ = 1;
};

} // namespace tp
} // namespace comet
