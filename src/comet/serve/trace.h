/**
 * @file
 * Request-trace workloads and latency metrics for the serving engine.
 *
 * The paper's end-to-end numbers are steady-state max-throughput runs;
 * production serving additionally cares about time-to-first-token
 * (TTFT) and time-per-output-token (TPOT) under bursty arrivals — the
 * scheduling-integration direction Section 7 points at (Sarathi-Serve,
 * DistServe). This module adds that dimension: a Poisson arrival
 * generator with length distributions, a trace-driven simulation loop
 * over the engine's step model, and percentile latency metrics.
 *
 * The replay honors the engine's admission policy: under optimistic
 * admission, KV exhaustion mid-decode preempts the latest-arrived
 * running requests (recompute-style — they re-prefill on
 * re-admission), and the preemption/requeue work is surfaced in the
 * metrics. Requests may also carry a client-cancellation deadline.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/common/rng.h"
#include "comet/obs/metrics.h"
#include "comet/serve/engine.h"

namespace comet {

/** One request arrival in a workload trace. */
struct TracedRequest {
    int64_t id = 0;            ///< unique id within the trace
    double arrival_us = 0.0;   ///< absolute arrival time
    int64_t prompt_tokens = 0; ///< prompt length
    int64_t output_tokens = 0; ///< tokens generated before EOS
    /** When > 0, the client abandons the request at this absolute
     * time; the replay drops it (wherever it lives) and counts it. */
    double cancel_us = 0.0;
};

/** Parameters of the synthetic arrival process. */
struct TraceConfig {
    double request_rate_per_s = 2.0; ///< Poisson arrival rate
    int num_requests = 64;           ///< trace length
    /** Mean lengths; samples are geometric-ish around the means,
     * clamped to [16, 4 * mean]. @{ */
    int64_t mean_prompt_tokens = 512;
    int64_t mean_output_tokens = 128;
    /** @} */
    uint64_t seed = 1; ///< RNG seed (traces are deterministic)
};

/** Samples a trace (arrivals sorted by time). */
std::vector<TracedRequest> generateTrace(const TraceConfig &config);

/** Completed-request latency record. */
struct RequestLatency {
    int64_t id = 0;            ///< the completed request's id
    double ttft_us = 0.0;      ///< arrival -> first output token
    double tpot_us = 0.0;      ///< mean time per subsequent token
    double total_us = 0.0;     ///< arrival -> completion
    int64_t output_tokens = 0; ///< tokens actually generated
};

/** Aggregate latency metrics of a trace run. */
struct TraceMetrics {
    /** One latency record per completed request. */
    std::vector<RequestLatency> per_request;
    double makespan_us = 0.0; ///< first arrival -> last completion
    /** Generated tokens over the makespan. */
    double throughput_tokens_per_s = 0.0;
    /** Scheduling observability. @{ */
    int64_t preemptions = 0;       ///< KV-exhaustion evictions
    int64_t reprefill_tokens = 0;  ///< recompute cost of preemption
    int64_t cancelled = 0;         ///< client-abandoned requests
    int64_t rejected = 0;          ///< requests that can never fit
    int64_t peak_running = 0;      ///< max concurrent batch
    int64_t peak_queue_depth = 0;  ///< max requests waiting
    int64_t peak_used_blocks = 0;  ///< max KV blocks in use observed
    int64_t total_kv_blocks = 0;   ///< pool size the replay ran with
    /** Peak used/total KV blocks as a **fraction in [0, 1]** (never a
     * percent) — derived from peak_used_blocks / total_kv_blocks, the
     * same definition SchedulerCounters::peakKvUtilization uses, so
     * the two observability surfaces always agree on units. */
    double peak_kv_utilization = 0.0;
    /** @} */

    /** Percentile over per-request TTFT (p in [0, 100]); NaN when no
     * request completed. */
    double ttftPercentileUs(double p) const;

    /** Percentile over per-request TPOT; NaN when no request
     * completed. */
    double tpotPercentileUs(double p) const;

    /** Several TTFT percentiles at once: sorts the samples a single
     * time (exactPercentiles), element i exactly equal to
     * ttftPercentileUs(ps[i]). All NaN when no request completed. */
    std::vector<double>
    ttftPercentilesUs(const std::vector<double> &ps) const;

    /** Several TPOT percentiles at once; see ttftPercentilesUs. */
    std::vector<double>
    tpotPercentilesUs(const std::vector<double> &ps) const;

    /** SLO attainment: the fraction of completed requests whose TTFT
     * is within @p slo_us, in [0, 1]; NaN when no request completed
     * (mirrors the percentile helpers' empty-set convention). */
    double ttftAttainment(double slo_us) const;

    /** The fraction of completed requests (with >= 2 output tokens,
     * so a mean TPOT exists) whose TPOT is within @p slo_us; NaN
     * when none qualify. */
    double tpotAttainment(double slo_us) const;

    /** Adds the replay's scheduling counters into @p registry under
     * `serve.replay.*` so one dump covers both surfaces (counters are
     * monotonic: repeated replays accumulate). */
    void publishTo(obs::MetricsRegistry &registry) const;
};

/**
 * Replays a trace through the serving engine: a discrete-event loop
 * where each iteration admits newly arrived requests (subject to KV
 * capacity and the batch cap), then advances every running request by
 * one token at the engine's modeled step latency. Prefill waves are
 * charged at the admitted requests' actual prompt lengths, and the
 * prefill itself produces each request's first output token.
 */
TraceMetrics replayTrace(const ServingEngine &engine,
                         const std::vector<TracedRequest> &trace);

/**
 * Merges per-replica trace metrics into one cluster-level rollup:
 * per-request records concatenate, the makespan is the max over
 * parts, throughput is recomputed from total generated tokens over
 * the merged makespan, scheduling counters and KV pool sizes sum,
 * per-replica peaks sum (an upper bound on the cluster-wide peak —
 * replicas do not share a pool, so simultaneous peaks add), and the
 * merged KV utilization is re-derived from the summed peak and pool.
 * An empty input merges to a default TraceMetrics.
 */
TraceMetrics
mergeTraceMetrics(const std::vector<TraceMetrics> &parts);

} // namespace comet
