/**
 * @file
 * Continuous batching scheduler.
 *
 * Implements the iteration-level scheduling used by modern serving
 * systems (and by COMET, Section 5): at every decode step, finished
 * sequences leave the batch, and queued requests are admitted as long
 * as the KV cache can hold them and the batch is below its cap.
 * Admission is FCFS.
 *
 * Two admission policies are supported:
 *
 * - kReserveFullOutput reserves KV blocks for a request's full
 *   prompt + max_output up front, so the pool can never exhaust
 *   mid-decode. Safe but pessimistic: it caps the batch at the
 *   worst-case footprint even though most tokens are not yet
 *   generated.
 * - kOptimisticPreempt (the default; the vLLM/QServe design) admits
 *   on prompt footprint alone, plus a configurable free-block
 *   watermark. When the pool exhausts mid-step, the latest-arrived
 *   running requests are preempted back to the queue
 *   (recompute-style: their blocks are freed and they re-prefill
 *   their full context on re-admission), and the earliest requests
 *   keep making progress. KV exhaustion is thus a recoverable
 *   scheduling event, never an abort.
 *
 * Requests whose prompt + max_output can never fit the pool even
 * running alone are rejected at admission (graceful degradation)
 * instead of blocking the FCFS head forever.
 *
 * ## Chunked prefill (DESIGN.md §14)
 *
 * With BatchSchedulerConfig::chunk_tokens > 0, admission still
 * allocates a request's full (re)prefill KV footprint up front — the
 * same fits checks, the same pages, held across steps — but the
 * prefill *compute* is split into fixed-token chunks that step()
 * interleaves with decode. Each step forms a token-budget knapsack:
 * every decoding request advances one token first (decode steals
 * priority), and the remaining budget is filled with prefill chunks
 * in ascending Request::deadline_us order. Because admission order,
 * KV accounting and preemption order are identical to monolithic
 * mode, the per-request token streams are byte-identical between the
 * two modes; chunking only changes *when* virtual time is charged —
 * which is the point: decode tenants stop stalling behind long
 * prompts.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "comet/kvcache/kv_cache.h"
#include "comet/obs/metrics.h"
#include "comet/serve/request.h"

namespace comet {

/** How admission charges the KV pool for a new request. */
enum class AdmissionPolicy {
    /** Reserve prompt + max_output blocks up front; no preemption
     * ever needed. */
    kReserveFullOutput = 0,
    /** Reserve only the (re)prefill footprint plus the watermark;
     * recover from mid-decode exhaustion by preempting the
     * latest-arrived running requests. */
    kOptimisticPreempt,
};

/** Returns "reserve-full" / "optimistic-preempt". */
const char *admissionPolicyName(AdmissionPolicy policy);

/** Scheduler limits and policy knobs. */
struct BatchSchedulerConfig {
    int64_t max_batch = 256; ///< hard cap on concurrent sequences
    AdmissionPolicy admission = AdmissionPolicy::kOptimisticPreempt;
    /** Free blocks optimistic admission keeps untouched as decode
     * headroom; larger values trade batch size for fewer
     * preemptions. Ignored by kReserveFullOutput. */
    int64_t watermark_blocks = 0;
    /**
     * When true, admission itself credits every admitted request with
     * one generated token: the prefill forward pass produces the
     * request's next output token, the same accounting replayTrace
     * uses for TTFT. A request whose crediting completes it (e.g. a
     * one-token generation) retires at admission without ever
     * entering the decode batch. Off by default — the offline
     * throughput path counts tokens purely through step().
     */
    bool prefill_emits_token = false;
    /**
     * When true, every request that reaches a terminal state
     * (finished, rejected, cancelled) is retained — with its final
     * token counts and state — until the caller collects it via
     * drainRetired(). Event-driven callers (the online server) need
     * the terminal transitions to deliver stream completions; the
     * offline paths leave this off and only read the counters.
     */
    bool collect_retired = false;
    /**
     * Chunked prefill: process at most this many prefill tokens per
     * request per step, interleaved with decode (see the file
     * comment). 0 (the default) keeps monolithic prefill — the whole
     * context is considered processed at admission, exactly the
     * pre-chunking behavior. With chunking on, prefill_emits_token's
     * first-token credit moves from admit() to the step() that
     * completes a request's final chunk.
     */
    int64_t chunk_tokens = 0;
    /**
     * Per-step token budget of the knapsack (decode tokens + prefill
     * chunk tokens); 0 = uncapped. Decode always runs — the budget
     * only limits how many prefill chunk tokens ride along, so a
     * budget smaller than the decode batch simply defers all prefill
     * to later steps. Ignored in monolithic mode.
     */
    int64_t step_token_budget = 0;
};

/** One prefill chunk a step plans to process. */
struct PlannedChunk {
    int64_t id = 0;            ///< the request the chunk belongs to
    int64_t tokens = 0;        ///< chunk length, tokens
    /** Prefilled tokens after this chunk — the KV prefix the chunk's
     * attention reads over (includes any grafted prefix). */
    int64_t context_after = 0;
};

/**
 * The deterministic work plan of the next step(): what decodes and
 * which prefill chunks fill the remaining token budget. Callers that
 * charge virtual time (the online server) cost the plan *before*
 * mutating state; step() recomputes the identical plan internally.
 */
struct StepPlan {
    int64_t decode_batch = 0; ///< requests advancing one token
    /** Sum of contextTokens() over the decode set (mean context is
     * decode_context_sum / decode_batch). */
    int64_t decode_context_sum = 0;
    /** Total prefill tokens across `chunks`. */
    int64_t prefill_tokens = 0;
    /** Planned chunks, in deadline order (see Request::deadline_us). */
    std::vector<PlannedChunk> chunks;

    /** Tokens the step's fused GEMM processes (decode + chunks). */
    int64_t
    gemmTokens() const
    {
        return decode_batch + prefill_tokens;
    }
};

/** Observability counters accumulated over a scheduler's lifetime. */
struct SchedulerCounters {
    int64_t admitted = 0;         ///< admissions incl. re-admissions
    int64_t preemptions = 0;      ///< evictions on KV exhaustion
    /** Context tokens that must be recomputed because their KV was
     * freed by a preemption (the wasted-work cost of optimism). */
    int64_t reprefill_tokens = 0;
    int64_t cancelled = 0;        ///< requests aborted via cancel()
    int64_t rejected = 0;         ///< requests that can never fit
    /** Prefill chunks processed by step() (0 in monolithic mode). */
    int64_t prefill_chunks = 0;
    /** Prefill chunks dropped by the `sched.chunk` failpoint (the
     * chunk is retried on a later step; never lost work). */
    int64_t chunks_dropped = 0;
    /** Context tokens grafted from the prefix cache instead of
     * prefilled (summed over admissions; the flip side of
     * reprefill_tokens — work *saved* rather than wasted). */
    int64_t prefix_matched_tokens = 0;
    int64_t peak_running = 0;     ///< max concurrent batch observed
    int64_t peak_queue_depth = 0; ///< max queue length observed
    int64_t peak_used_blocks = 0; ///< max KV blocks in use observed

    /** Peak KV utilization as a **fraction in [0, 1]** (never a
     * percent): peak_used_blocks over the pool's @p total_blocks.
     * The one shared definition — TraceMetrics::peak_kv_utilization
     * and ThroughputResult::peak_kv_utilization are both derived
     * through it, so every surface reports the same unit. */
    double peakKvUtilization(int64_t total_blocks) const;

    /** Adds these counters into @p registry under
     * `serve.scheduler.*` so the obs dump covers the scheduler
     * without duplicating fields (counters are monotonic; publishing
     * twice accumulates). */
    void publishTo(obs::MetricsRegistry &registry) const;

    /** Zeroes every counter. Engine runs and server sessions call
     * this at start so two back-to-back runs report identical
     * numbers instead of accumulating across runs. */
    void reset();
};

/**
 * FCFS continuous-batching scheduler over a paged KV cache.
 */
class BatchScheduler
{
  public:
    /** Schedules over @p cache (not owned; must outlive the
     * scheduler). */
    BatchScheduler(PagedKvCache *cache, BatchSchedulerConfig config = {});

    /** Enqueues a request (takes a copy; state must be kQueued). */
    void submit(const Request &request);

    /**
     * Admits queued requests into the running batch while capacity
     * lasts; returns the number admitted. Requests that can never fit
     * the pool are rejected (state kRejected, counted) rather than
     * blocking the head. Call once per decode step.
     */
    int64_t admit();

    /**
     * Advances every running request by one generated token,
     * retiring finished ones (their KV blocks are released). When
     * the KV pool exhausts mid-step, the latest-arrived running
     * requests are preempted back to the front of the queue until
     * the append succeeds — never an abort. Returns the number of
     * tokens generated this step.
     *
     * With chunking on (BatchSchedulerConfig::chunk_tokens > 0), the
     * step first executes planStep()'s prefill chunks — each chunk
     * boundary runs the `sched.chunk` failpoint (a fired point drops
     * that chunk for this step; it is re-planned next step) — then
     * decodes the decode set. A request whose final chunk completes
     * receives its prefill_emits_token first-token credit here, and
     * retires immediately when that credit completes it.
     */
    int64_t step();

    /**
     * The deterministic plan the next step() will execute against
     * the current state: the decode set plus — with chunking on —
     * the prefill chunks filling the remaining token budget in
     * deadline order. Pure (const): callers cost the plan, then call
     * step(), which recomputes the identical plan. In monolithic
     * mode the plan is just the decode set with no chunks.
     */
    StepPlan planStep() const;

    /**
     * Aborts a request wherever it lives (queue or running batch),
     * releasing any KV blocks it holds. Fails with kInvalidArgument
     * when the id is not queued or running (e.g. already finished).
     */
    Status cancel(int64_t id);

    /** Currently running requests (the decode batch). */
    const std::vector<Request> &running() const { return running_; }

    /** Lifetime observability counters. */
    const SchedulerCounters &counters() const { return counters_; }

    /** Re-zeroes the observability counters (see
     * SchedulerCounters::reset). Called at the start of every engine
     * run and server session. */
    void resetCounters() { counters_.reset(); }

    /**
     * Returns (and clears) the requests that reached a terminal
     * state — kFinished, kRejected or kCancelled — since the last
     * call, in the order they retired. Always empty unless
     * BatchSchedulerConfig::collect_retired is set.
     */
    std::vector<Request> drainRetired();

    /** Fraction of KV blocks currently in use, in [0, 1]. */
    double kvUtilization() const;

    /** Requests waiting for admission. */
    int64_t queuedCount() const
    {
        return static_cast<int64_t>(queue_.size());
    }
    /** Requests in the running batch. */
    int64_t runningCount() const
    {
        return static_cast<int64_t>(running_.size());
    }
    /** Requests retired so far. */
    int64_t finishedCount() const { return finished_; }

    /** True when no work remains anywhere. */
    bool
    idle() const
    {
        return queue_.empty() && running_.empty();
    }

  private:
    /** Evicts the latest-arrived running request (the back of the
     * batch) back to the front of the queue, freeing its blocks. */
    void preemptBack();

    /** Executes @p plan's prefill chunks (chunked mode only),
     * appending the ids whose prefill completed this step to
     * @p completed; returns the first-token credits granted. */
    int64_t runChunks(const StepPlan &plan,
                      std::vector<int64_t> *completed);

    /** The running request with @p id, or nullptr. */
    Request *findRunning(int64_t id);

    /** Updates the peak-observability counters. */
    void notePeaks();

    /** Records a terminal request for drainRetired() when
     * collect_retired is on. */
    void retire(const Request &request);

    PagedKvCache *cache_;
    BatchSchedulerConfig config_;
    std::deque<Request> queue_;
    std::vector<Request> running_;
    std::vector<Request> retired_;
    int64_t finished_ = 0;
    SchedulerCounters counters_;
};

} // namespace comet
