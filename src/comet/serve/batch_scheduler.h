/**
 * @file
 * Continuous batching scheduler.
 *
 * Implements the iteration-level scheduling used by modern serving
 * systems (and by COMET, Section 5): at every decode step, finished
 * sequences leave the batch, and queued requests are admitted as long
 * as the KV cache can hold their prompt and the batch is below its
 * cap. Admission is FCFS.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "comet/kvcache/kv_cache.h"
#include "comet/serve/request.h"

namespace comet {

/** Scheduler limits. */
struct BatchSchedulerConfig {
    int64_t max_batch = 256; ///< hard cap on concurrent sequences
};

/**
 * FCFS continuous-batching scheduler over a paged KV cache.
 */
class BatchScheduler
{
  public:
    BatchScheduler(PagedKvCache *cache, BatchSchedulerConfig config = {});

    /** Enqueues a request (takes a copy; state must be kQueued). */
    void submit(const Request &request);

    /**
     * Admits queued requests into the running batch while capacity
     * lasts; returns the number admitted. Call once per decode step.
     */
    int64_t admit();

    /**
     * Advances every running request by one generated token,
     * retiring finished ones (their KV blocks are released).
     * Returns the number of tokens generated this step.
     */
    int64_t step();

    /** Currently running requests (the decode batch). */
    const std::vector<Request> &running() const { return running_; }

    int64_t queuedCount() const
    {
        return static_cast<int64_t>(queue_.size());
    }
    int64_t runningCount() const
    {
        return static_cast<int64_t>(running_.size());
    }
    int64_t finishedCount() const { return finished_; }

    /** True when no work remains anywhere. */
    bool
    idle() const
    {
        return queue_.empty() && running_.empty();
    }

  private:
    PagedKvCache *cache_;
    BatchSchedulerConfig config_;
    std::deque<Request> queue_;
    std::vector<Request> running_;
    int64_t finished_ = 0;
};

} // namespace comet
