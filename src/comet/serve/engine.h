/**
 * @file
 * The COMET serving engine and its baseline configurations
 * (paper Section 5 / Figures 10-12, 15).
 *
 * The engine combines the pieces: model geometry (GEMM shapes and
 * weight bytes), the paged KV cache (which sets the achievable batch
 * under the 80 GB budget), the continuous-batching scheduler, and the
 * GEMM cost model (per-step latency). Throughput is measured by
 * simulating full prefill+decode generations, step by step, through
 * the real scheduler — exactly the quantity the paper's end-to-end
 * evaluation reports.
 */
#pragma once

#include <cstdint>
#include <string>

#include <vector>

#include "comet/gpusim/cost_model.h"
#include "comet/gpusim/gpu_spec.h"
#include "comet/model/llm_config.h"
#include "comet/serve/batch_scheduler.h"

namespace comet {

/** The serving configurations compared in Figures 10-12 and 15. */
enum class ServingMode {
    kTrtFp16 = 0,      ///< TRT-LLM FP16 (W16A16, FP16 KV)
    kTrtW4A16,         ///< TRT-LLM weight-only INT4 (FP16 KV)
    kTrtW8A8,          ///< TRT-LLM SmoothQuant (INT8 KV)
    kQserveW4A8Kv4,    ///< QServe (W4A8, INT4 KV)
    kCometW4AxKv4,     ///< COMET, full configuration
    kCometW4AxOnly,    ///< ablation: W4Ax GEMMs, FP16 KV (Figure 15)
    kCometKv4Only,     ///< ablation: FP16 GEMMs, INT4 KV (Figure 15)
};

/** Display name matching the paper's legends. */
const char *servingModeName(ServingMode mode);

/** Precision profile a serving mode implies. */
struct ServingPrecision {
    double weight_bits = 16.0; ///< stored bits per weight element
    double kv_bits = 16.0;     ///< stored bits per KV cache element
    /** Kernel the cost model charges for the linear layers. */
    GemmKernelKind gemm_kind = GemmKernelKind::kCublasW16A16;
};

/** Resolves the precision profile of a mode. */
ServingPrecision servingPrecision(ServingMode mode);

/** Engine construction parameters. */
struct EngineConfig {
    LlmConfig model; ///< model geometry being served
    ServingMode mode = ServingMode::kCometW4AxKv4; ///< system config
    GpuSpec gpu = GpuSpec::a100Sxm480G(); ///< device being modeled
    CostModelCalibration calibration{};   ///< kernel cost calibration
    int64_t input_tokens = 1024; ///< prompt tokens per request
    int64_t output_tokens = 512; ///< generated tokens per request
    /** Generation bound the requests *declare* to admission. Real
     * clients ask for a generous max_tokens and usually hit EOS much
     * earlier; when this exceeds output_tokens, requests still stop
     * at output_tokens but full-output reservation must budget for
     * the declared bound — the gap that makes pessimistic admission
     * waste KV capacity. 0 (default) declares exactly
     * output_tokens. */
    int64_t declared_output_tokens = 0;
    /** Hard batch cap (the paper's systems cap at 256). */
    int64_t max_batch = 256;
    /** Fraction of HBM usable for weights + KV (the rest holds
     * activations, workspace and runtime). */
    double usable_memory_fraction = 0.90;
    /** KV page size in tokens. */
    int64_t kv_block_tokens = 16;
    /** When > 0, trace replay processes prompts in chunks of this
     * many tokens, interleaved with decode iterations of the running
     * batch (Sarathi-Serve-style chunked prefill; the scheduling
     * integration the paper's Section 7 points at). 0 = stall-free
     * whole-prompt prefill. */
    int64_t chunked_prefill_tokens = 0;
    /** Tensor-parallel degree (Megatron-style sharding): weights, KV
     * heads and GEMM extents split across this many identical GPUs;
     * two ring all-reduces per decoder layer join the partial sums.
     * The paper serves on a single GPU (degree 1, the default); the
     * extension quantifies COMET's one-GPU-vs-many-GPU value. */
    int tensor_parallel = 1;
    /** KV admission policy of the scheduler (and trace replay):
     * optimistic admission with preemption-based recovery by
     * default, or pessimistic full-output reservation. */
    AdmissionPolicy admission = AdmissionPolicy::kOptimisticPreempt;
    /** Free-block watermark optimistic admission keeps as decode
     * headroom (see BatchSchedulerConfig::watermark_blocks). */
    int64_t kv_watermark_blocks = 0;
};

/**
 * Returns @p config with usable_memory_fraction shrunk so the KV pool
 * holds exactly @p blocks pages — making the cache, not the batch
 * cap, the limiting resource. An 80 GB A100 fits the full 256-request
 * cap at KV4, so admission-policy and overload behaviour only appear
 * once memory binds; the admission bench and the online-server load
 * generator both construct that regime through this helper.
 */
EngineConfig engineConfigWithKvBlocks(EngineConfig config,
                                      int64_t blocks);

/** Outcome of a throughput measurement. */
struct ThroughputResult {
    double tokens_per_second = 0.0;  ///< generated tokens / wall time
    int64_t batch = 0;               ///< requested batch size
    double decode_step_us = 0.0;     ///< mean decode iteration latency
    double prefill_us = 0.0;         ///< per-sequence prefill latency
    double kv_bytes_per_seq = 0.0;   ///< full KV footprint, one seq
    /** Mean running batch over decode steps — the steady-state batch
     * the admission policy actually sustains. */
    double mean_batch = 0.0;
    int64_t peak_batch = 0;          ///< max concurrent batch observed
    int64_t preemptions = 0;         ///< KV-exhaustion evictions
    int64_t reprefill_tokens = 0;    ///< recompute cost of preemption
    double mean_kv_utilization = 0.0; ///< mean used/total KV blocks
    double peak_kv_utilization = 0.0; ///< peak used/total KV blocks
};

/**
 * The serving engine / performance simulator.
 */
class ServingEngine
{
  public:
    /** Builds an engine for @p config (resolves the precision
     * profile and cost model once). */
    explicit ServingEngine(EngineConfig config);

    /** The construction parameters. */
    const EngineConfig &config() const { return config_; }

    /** Bytes of weight storage at this mode's precision, per GPU
     * (total divided by the tensor-parallel degree). */
    double weightBytes() const;

    /** Per-decode-step all-reduce time across the TP group,
     * microseconds (0 at degree 1). */
    double allReduceLatencyUs(int64_t m_tokens) const;

    /** Bytes of KV budget left after weights. Fails (returns 0) when
     * the weights alone exceed usable memory. */
    double kvBudgetBytes() const;

    /** Full-model bytes the sharded KV pool holds: the per-GPU budget
     * times the TP degree (each GPU stores 1/tp of every block, so
     * the group jointly caches tp times the per-GPU budget). The
     * scheduler's paged cache — and any component sizing one, like
     * the server's streaming cache — must use this aggregate, not the
     * per-GPU kvBudgetBytes(). */
    double kvPoolBytes() const;

    /** Largest batch the KV budget admits for the configured
     * input+output length (capped at max_batch); 0 when the model
     * does not fit at all. */
    int64_t maxBatchSize() const;

    /** Latency of one decode iteration at the given batch and mean
     * context length, microseconds. */
    double decodeStepLatencyUs(int64_t batch,
                               int64_t context_tokens) const;

    /** Latency of one sequence's prefill at the given batch,
     * microseconds (per-iteration, the batch prefills together; every
     * sequence at the configured input_tokens). */
    double prefillLatencyUs(int64_t batch) const;

    /** Prefill latency of a batch with per-sequence prompt lengths —
     * the honest charge for heterogeneous admission waves and for
     * preempted requests re-prefilling their grown context. */
    double prefillLatencyUs(
        const std::vector<int64_t> &prompt_tokens) const;

    /** GEMM-only latency of processing @p m_tokens tokens through one
     * decode step's linear layers (exposed for chunked prefill). */
    double gemmLatencyUs(int64_t m_tokens) const;

    /** Memory-bound attention time for @p batch sequences with mean
     * context @p context_tokens (exposed for chunked prefill). */
    double attentionReadLatencyUs(int64_t batch,
                                  int64_t context_tokens) const;

    /**
     * Simulates serving `batches * batch` requests of the configured
     * shape through the continuous-batching scheduler and returns the
     * steady-state throughput at the engine's maximum batch size.
     */
    ThroughputResult measureThroughput() const;

    /** Throughput when the batch is pinned to @p batch (Figure 11). */
    ThroughputResult measureThroughputAtBatch(int64_t batch) const;

  private:
    /** Sum of kernel latencies of all decoder-layer GEMMs plus the
     * attention and LM-head contributions for one step. */
    double stepGemmLatencyUs(int64_t m_tokens) const;

    /** Memory-bound attention (act-act) time for one decode step. */
    double attentionLatencyUs(int64_t batch,
                              int64_t context_tokens) const;

    EngineConfig config_;
    ServingPrecision precision_;
    GemmCostModel cost_model_;
    CometKernelFeatures comet_features_;
};

} // namespace comet
