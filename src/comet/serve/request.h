/**
 * @file
 * Serving request abstraction.
 *
 * A request carries a prompt length and a generation target; the batch
 * scheduler moves it through queued -> running -> finished as the
 * continuous-batching loop admits it and generates its tokens.
 */
#pragma once

#include <cstdint>
#include <string>

namespace comet {

/** Lifecycle of a request inside the engine. */
enum class RequestState {
    kQueued = 0,
    kRunning,
    kFinished,
};

/** Returns "queued" / "running" / "finished". */
const char *requestStateName(RequestState state);

/** One generation request. */
struct Request {
    int64_t id = 0;
    int64_t prompt_tokens = 0;
    int64_t max_output_tokens = 0;
    int64_t generated_tokens = 0;
    RequestState state = RequestState::kQueued;

    /** Context length currently attended over. */
    int64_t
    contextTokens() const
    {
        return prompt_tokens + generated_tokens;
    }

    bool
    done() const
    {
        return generated_tokens >= max_output_tokens;
    }
};

} // namespace comet
