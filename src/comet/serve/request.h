/**
 * @file
 * Serving request abstraction.
 *
 * A request carries a prompt length and a generation target; the batch
 * scheduler moves it through queued -> running -> finished as the
 * continuous-batching loop admits it and generates its tokens.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comet/prefix/block_key.h"

namespace comet {

/** Lifecycle of a request inside the engine. */
enum class RequestState {
    kQueued = 0, ///< submitted, waiting for admission
    kRunning,    ///< in the decode batch, holding KV blocks
    kFinished,   ///< generation complete, KV released
    /** Evicted from the running batch on KV exhaustion; back in the
     * queue and will re-prefill its context on re-admission. */
    kPreempted,
    kCancelled, ///< aborted by the client via cancel()
    /** Can never fit the KV pool even running alone; dropped at
     * admission instead of blocking the queue forever. */
    kRejected,
};

/** Returns "queued" / "running" / "finished" / "preempted" /
 * "cancelled" / "rejected". */
const char *requestStateName(RequestState state);

/** One generation request. */
struct Request {
    int64_t id = 0;            ///< caller-assigned unique identifier
    int64_t prompt_tokens = 0; ///< prompt length to prefill
    /** Declared generation bound — what the client asked for and the
     * only output-length information admission can reserve against. */
    int64_t max_output_tokens = 0;
    /** Where generation actually stops (EOS), if known to the
     * workload model; 0 means the request runs to its declared
     * bound. The scheduler never reserves against this — real
     * serving cannot see EOS in advance — it only uses it to decide
     * done(). */
    int64_t eos_output_tokens = 0;
    int64_t generated_tokens = 0; ///< tokens produced so far
    /** Times this request was evicted on KV exhaustion. */
    int64_t preemptions = 0;
    RequestState state = RequestState::kQueued; ///< lifecycle state
    /** Prefix-cache namespace of this request's tenant; -1 opts the
     * request out of prefix caching entirely. */
    int64_t prefix_namespace = -1;
    /** Chained content keys of the prompt's full KV blocks
     * (comet::prefix); empty when opted out or content is unknown. */
    std::vector<prefix::BlockKey> prefix_block_keys;
    /** Tokens whose KV was grafted from the prefix cache at the most
     * recent admission (0 without a hit); prefill accounting
     * subtracts these — they are the tokens honestly not computed. */
    int64_t prefix_matched_tokens = 0;
    /**
     * Chunked-prefill progress (meaningful only when the scheduler
     * runs with BatchSchedulerConfig::chunk_tokens > 0; both stay 0
     * in monolithic mode). `prefill_target_tokens` is the context
     * this admission must (re)compute — prompt plus any
     * pre-preemption generation — and `prefilled_tokens` is how much
     * of it has been processed so far, starting at
     * prefix_matched_tokens after a graft. The KV footprint for the
     * full target is allocated at admission either way; chunking
     * only spreads the *compute* across steps. @{
     */
    int64_t prefill_target_tokens = 0;
    int64_t prefilled_tokens = 0;
    /** @} */
    /**
     * TTFT deadline for chunk ordering, absolute virtual
     * microseconds (arrival + the tenant's TTFT budget); 0 = none.
     * The scheduler fills each step's leftover token budget with
     * prefill chunks in ascending deadline order (ties and
     * deadline-free requests keep FCFS order); it never drops work
     * on a missed deadline — that verdict belongs to admission.
     */
    double deadline_us = 0.0;

    /** Context length currently attended over. */
    int64_t
    contextTokens() const
    {
        return prompt_tokens + generated_tokens;
    }

    /** Tokens this request will actually generate. */
    int64_t
    stopTokens() const
    {
        return eos_output_tokens > 0 ? eos_output_tokens
                                     : max_output_tokens;
    }

    /** True once the request generated its stopping length. */
    bool
    done() const
    {
        return generated_tokens >= stopTokens();
    }

    /** True while a chunked prefill is still in flight (always false
     * in monolithic mode, where the target is reached at admission). */
    bool
    prefilling() const
    {
        return prefilled_tokens < prefill_target_tokens;
    }
};

} // namespace comet
