#include "comet/serve/batch_scheduler.h"

#include <algorithm>
#include <limits>

#include "comet/chaos/failpoint.h"
#include "comet/obs/trace_session.h"

namespace comet {

const char *
admissionPolicyName(AdmissionPolicy policy)
{
    switch (policy) {
      case AdmissionPolicy::kReserveFullOutput:
        return "reserve-full";
      case AdmissionPolicy::kOptimisticPreempt:
        return "optimistic-preempt";
    }
    return "?";
}

double
SchedulerCounters::peakKvUtilization(int64_t total_blocks) const
{
    if (total_blocks <= 0)
        return 0.0;
    return static_cast<double>(peak_used_blocks) /
           static_cast<double>(total_blocks);
}

void
SchedulerCounters::reset()
{
    *this = SchedulerCounters{};
}

void
SchedulerCounters::publishTo(obs::MetricsRegistry &registry) const
{
    registry.counter("serve.scheduler.admitted").add(admitted);
    registry.counter("serve.scheduler.preemptions")
        .add(preemptions);
    registry.counter("serve.scheduler.reprefill_tokens")
        .add(reprefill_tokens);
    registry.counter("serve.scheduler.cancelled").add(cancelled);
    registry.counter("serve.scheduler.rejected").add(rejected);
    registry.counter("serve.scheduler.prefix_matched_tokens")
        .add(prefix_matched_tokens);
    registry.counter("serve.scheduler.prefill_chunks")
        .add(prefill_chunks);
    registry.counter("serve.scheduler.chunks_dropped")
        .add(chunks_dropped);
}

BatchScheduler::BatchScheduler(PagedKvCache *cache,
                               BatchSchedulerConfig config)
    : cache_(cache), config_(config)
{
    COMET_CHECK(cache_ != nullptr);
    COMET_CHECK(config_.max_batch > 0);
    COMET_CHECK(config_.watermark_blocks >= 0);
    COMET_CHECK(config_.chunk_tokens >= 0);
    COMET_CHECK(config_.step_token_budget >= 0);
}

void
BatchScheduler::submit(const Request &request)
{
    COMET_CHECK(request.state == RequestState::kQueued);
    COMET_CHECK(request.prompt_tokens > 0 &&
                request.max_output_tokens > 0);
    queue_.push_back(request);
    notePeaks();
}

int64_t
BatchScheduler::admit()
{
    COMET_SPAN("scheduler/admit");
    // Blocks the running batch will still claim as it decodes; under
    // full reservation, new admissions must leave this headroom
    // untouched so the decode loop can never exhaust the pool.
    int64_t reserved = 0;
    if (config_.admission == AdmissionPolicy::kReserveFullOutput) {
        for (const Request &request : running_) {
            reserved += cache_->blocksForTokens(
                            request.prompt_tokens +
                            request.max_output_tokens) -
                        cache_->blocksForTokens(
                            request.contextTokens());
        }
    }

    int64_t admitted = 0;
    while (!queue_.empty() &&
           runningCount() < config_.max_batch) {
        Request &head = queue_.front();
        // A request that cannot fit even running alone will never be
        // servable: drop it instead of blocking the queue forever.
        if (cache_->blocksForTokens(head.prompt_tokens +
                                    head.max_output_tokens) >
            cache_->totalBlocks()) {
            head.state = RequestState::kRejected;
            ++counters_.rejected;
            retire(head);
            queue_.pop_front();
            continue;
        }
        // Preempted requests re-prefill their whole context (prompt
        // plus the tokens they had already generated).
        const int64_t prefill_tokens = head.contextTokens();
        bool fits;
        if (config_.admission == AdmissionPolicy::kReserveFullOutput) {
            const int64_t need = cache_->blocksForTokens(
                head.prompt_tokens + head.max_output_tokens);
            fits = need + reserved <= cache_->availableBlocks();
            if (fits) {
                reserved += need -
                            cache_->blocksForTokens(prefill_tokens);
            }
        } else {
            // The watermark holds decode headroom, but must not
            // starve an empty system. availableBlocks() counts
            // evictable prefix-cache pages as capacity: cold cached
            // prefixes never crowd out live traffic.
            const int64_t slack =
                running_.empty() ? 0 : config_.watermark_blocks;
            fits = cache_->blocksForTokens(prefill_tokens) + slack <=
                   cache_->availableBlocks();
        }
        if (!fits)
            break; // FCFS: do not skip ahead of the head
        // Prefix-aware admission: graft the cached prompt prefix via
        // COW references and record how many context tokens prefill
        // can skip. Preempted requests re-run the match — their
        // prompt keys still stand, so a re-prefill recovers the hit.
        head.prefix_matched_tokens = 0;
        Status status;
        if (head.prefix_namespace >= 0 &&
            cache_->prefixCacheEnabled() &&
            !head.prefix_block_keys.empty()) {
            Result<int64_t> grafted = cache_->addSequenceWithPrefix(
                head.id, prefill_tokens, head.prefix_namespace,
                head.prefix_block_keys);
            if (grafted.isOk()) {
                head.prefix_matched_tokens = grafted.value();
                counters_.prefix_matched_tokens += grafted.value();
            }
            status = grafted.status();
        } else {
            status = cache_->addSequence(head.id, prefill_tokens);
        }
        if (status.code() == StatusCode::kResourceExhausted) {
            // The fits-check passed but the allocator still failed —
            // only an injected fault (COMET_FAILPOINT "kv.alloc")
            // reaches here today. Exhaustion is recoverable, never an
            // abort: leave the head queued and retry next round.
            break;
        }
        COMET_CHECK(status.isOk()); // guaranteed by the check above
        head.state = RequestState::kRunning;
        if (config_.chunk_tokens > 0) {
            // Chunked mode: the full KV footprint was allocated
            // above (and is held across steps), but the prefill
            // compute happens chunk by chunk in step() — starting
            // past any grafted prefix, whose KV already exists.
            head.prefill_target_tokens = prefill_tokens;
            head.prefilled_tokens = head.prefix_matched_tokens;
        } else {
            head.prefill_target_tokens = 0;
            head.prefilled_tokens = 0;
        }
        running_.push_back(head);
        queue_.pop_front();
        ++admitted;
        ++counters_.admitted;
        if (config_.prefill_emits_token &&
            config_.chunk_tokens <= 0) {
            // The prefill forward pass produces this request's next
            // output token (TTFT accounting); a request completed by
            // that token retires without entering the decode batch.
            Request &fresh = running_.back();
            ++fresh.generated_tokens;
            if (fresh.done()) {
                fresh.state = RequestState::kFinished;
                cache_->removeSequence(fresh.id);
                ++finished_;
                if (config_.admission ==
                    AdmissionPolicy::kReserveFullOutput) {
                    // All its blocks are free again: return the
                    // future claim added above so it stops gating
                    // the rest of this admission round.
                    reserved -=
                        cache_->blocksForTokens(
                            fresh.prompt_tokens +
                            fresh.max_output_tokens) -
                        cache_->blocksForTokens(prefill_tokens);
                }
                retire(fresh);
                running_.pop_back();
            }
        }
    }
    notePeaks();
    return admitted;
}

void
BatchScheduler::preemptBack()
{
    COMET_SPAN("scheduler/preempt");
    COMET_CHECK(!running_.empty());
    Request victim = running_.back();
    running_.pop_back();
    cache_->removeSequence(victim.id);
    victim.state = RequestState::kPreempted;
    ++victim.preemptions;
    ++counters_.preemptions;
    // Recompute-style preemption: everything cached must be
    // re-prefetched through the model on re-admission.
    counters_.reprefill_tokens += victim.contextTokens();
    // Victims are evicted latest-arrived first, and running_ is in
    // arrival order, so push_front restores FCFS order in the queue.
    queue_.push_front(victim);
}

StepPlan
BatchScheduler::planStep() const
{
    StepPlan plan;
    for (const Request &request : running_) {
        if (!request.prefilling()) {
            ++plan.decode_batch;
            plan.decode_context_sum += request.contextTokens();
        }
    }
    if (config_.chunk_tokens <= 0)
        return plan;
    // The knapsack: decode steals priority (each decoding request
    // advances one token regardless), and whatever budget remains is
    // filled with prefill chunks in ascending deadline order. A
    // deadline of 0 sorts last; ties keep running_ (FCFS) order.
    int64_t budget =
        config_.step_token_budget > 0
            ? std::max<int64_t>(0, config_.step_token_budget -
                                       plan.decode_batch)
            : std::numeric_limits<int64_t>::max();
    std::vector<size_t> order;
    for (size_t i = 0; i < running_.size(); ++i) {
        if (running_[i].prefilling())
            order.push_back(i);
    }
    const auto effective = [&](size_t i) {
        const double deadline = running_[i].deadline_us;
        return deadline > 0.0
                   ? deadline
                   : std::numeric_limits<double>::infinity();
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return effective(a) < effective(b);
                     });
    for (size_t index : order) {
        if (budget <= 0)
            break;
        const Request &request = running_[index];
        const int64_t take =
            std::min({config_.chunk_tokens,
                      request.prefill_target_tokens -
                          request.prefilled_tokens,
                      budget});
        PlannedChunk chunk;
        chunk.id = request.id;
        chunk.tokens = take;
        chunk.context_after = request.prefilled_tokens + take;
        plan.chunks.push_back(chunk);
        plan.prefill_tokens += take;
        budget -= take;
    }
    return plan;
}

Request *
BatchScheduler::findRunning(int64_t id)
{
    for (Request &request : running_) {
        if (request.id == id)
            return &request;
    }
    return nullptr;
}

int64_t
BatchScheduler::runChunks(const StepPlan &plan,
                          std::vector<int64_t> *completed)
{
    int64_t generated = 0;
    for (const PlannedChunk &chunk : plan.chunks) {
        COMET_SPAN("scheduler/chunk");
        // Chaos hook: drop this chunk at its boundary — as if its
        // launch was lost — so cancels, preemptions and grafts can
        // interleave at chunk edges. The prefill simply resumes from
        // the same offset on a later step; no work is ever lost.
        if (COMET_FAILPOINT("sched.chunk")) {
            ++counters_.chunks_dropped;
            continue;
        }
        Request *request = findRunning(chunk.id);
        if (request == nullptr) {
            // Evicted between planning and execution (the
            // sched.preempt failpoint); re-planned after re-admission.
            continue;
        }
        request->prefilled_tokens += chunk.tokens;
        ++counters_.prefill_chunks;
        COMET_CHECK(request->prefilled_tokens <=
                    request->prefill_target_tokens);
        if (request->prefilling())
            continue;
        // This step costed the request as a prefill chunk; it joins
        // the decode set on the *next* step.
        completed->push_back(request->id);
        if (!config_.prefill_emits_token)
            continue;
        // The final chunk's forward pass produces the request's next
        // output token — the same credit monolithic admission grants
        // (TTFT accounting), without a cache append.
        ++request->generated_tokens;
        ++generated;
        if (request->done()) {
            request->state = RequestState::kFinished;
            cache_->removeSequence(request->id);
            ++finished_;
            retire(*request);
            for (auto it = running_.begin(); it != running_.end();
                 ++it) {
                if (it->id == request->id) {
                    running_.erase(it);
                    break;
                }
            }
        }
    }
    return generated;
}

int64_t
BatchScheduler::step()
{
    COMET_SPAN("scheduler/step");
    // Chaos hook: force one spurious eviction before the step, as if
    // the pool had exhausted — the victim re-prefills on re-admission
    // exactly like a genuine preemption.
    if (COMET_FAILPOINT("sched.preempt") && !running_.empty())
        preemptBack();
    int64_t generated = 0;
    std::vector<int64_t> completed_prefills;
    if (config_.chunk_tokens > 0)
        generated += runChunks(planStep(), &completed_prefills);
    std::vector<Request> still_running;
    still_running.reserve(running_.size());
    size_t i = 0;
    while (i < running_.size()) {
        Request &request = running_[i];
        if (request.prefilling() ||
            std::find(completed_prefills.begin(),
                      completed_prefills.end(),
                      request.id) != completed_prefills.end()) {
            // Mid-prefill (holding its KV pages but decoding
            // nothing), or its final chunk completed *this* step —
            // either way it joins the decode set next step.
            still_running.push_back(request);
            ++i;
            continue;
        }
        Status status = cache_->appendToken(request.id);
        // KV exhaustion mid-step: free blocks by preempting the
        // latest-arrived requests (which have not been stepped yet
        // this iteration) until the append succeeds.
        while (status.code() == StatusCode::kResourceExhausted &&
               running_.size() > i + 1) {
            preemptBack();
            status = cache_->appendToken(request.id);
        }
        if (status.code() == StatusCode::kResourceExhausted) {
            // No later victim left: the pool is held by requests
            // already stepped this iteration. Yield this request too;
            // it re-prefills once the survivors retire.
            preemptBack(); // running_[i] is the back here
            break;
        }
        COMET_CHECK_MSG(status.isOk(), status.message().c_str());
        ++request.generated_tokens;
        ++generated;
        if (request.done()) {
            request.state = RequestState::kFinished;
            cache_->removeSequence(request.id);
            ++finished_;
            retire(request);
        } else {
            still_running.push_back(request);
        }
        ++i;
    }
    running_ = std::move(still_running);
    notePeaks();
    return generated;
}

Status
BatchScheduler::cancel(int64_t id)
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->id == id) {
            it->state = RequestState::kCancelled;
            retire(*it);
            queue_.erase(it);
            ++counters_.cancelled;
            return Status::ok();
        }
    }
    for (auto it = running_.begin(); it != running_.end(); ++it) {
        if (it->id == id) {
            cache_->removeSequence(id);
            it->state = RequestState::kCancelled;
            retire(*it);
            running_.erase(it);
            ++counters_.cancelled;
            return Status::ok();
        }
    }
    return Status::invalidArgument(
        "cancel: request is not queued or running");
}

std::vector<Request>
BatchScheduler::drainRetired()
{
    std::vector<Request> drained;
    drained.swap(retired_);
    return drained;
}

void
BatchScheduler::retire(const Request &request)
{
    if (config_.collect_retired)
        retired_.push_back(request);
}

double
BatchScheduler::kvUtilization() const
{
    const int64_t total = cache_->totalBlocks();
    if (total == 0)
        return 0.0;
    return static_cast<double>(total - cache_->freeBlocks()) /
           static_cast<double>(total);
}

void
BatchScheduler::notePeaks()
{
    counters_.peak_running =
        std::max(counters_.peak_running, runningCount());
    counters_.peak_queue_depth =
        std::max(counters_.peak_queue_depth, queuedCount());
    counters_.peak_used_blocks =
        std::max(counters_.peak_used_blocks,
                 cache_->totalBlocks() - cache_->freeBlocks());
}

} // namespace comet
