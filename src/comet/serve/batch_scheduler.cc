#include "comet/serve/batch_scheduler.h"

#include <algorithm>

namespace comet {

BatchScheduler::BatchScheduler(PagedKvCache *cache,
                               BatchSchedulerConfig config)
    : cache_(cache), config_(config)
{
    COMET_CHECK(cache_ != nullptr);
    COMET_CHECK(config_.max_batch > 0);
}

void
BatchScheduler::submit(const Request &request)
{
    COMET_CHECK(request.state == RequestState::kQueued);
    COMET_CHECK(request.prompt_tokens > 0 &&
                request.max_output_tokens > 0);
    queue_.push_back(request);
}

int64_t
BatchScheduler::admit()
{
    // Blocks the running batch will still claim as it decodes; new
    // admissions must leave this headroom untouched or the decode
    // loop could exhaust the pool mid-step.
    int64_t reserved = 0;
    for (const Request &request : running_) {
        reserved += cache_->blocksForTokens(
                        request.prompt_tokens +
                        request.max_output_tokens) -
                    cache_->blocksForTokens(request.contextTokens());
    }

    int64_t admitted = 0;
    while (!queue_.empty() &&
           runningCount() < config_.max_batch) {
        Request &head = queue_.front();
        const int64_t need = cache_->blocksForTokens(
            head.prompt_tokens + head.max_output_tokens);
        if (need + reserved > cache_->freeBlocks())
            break; // FCFS: do not skip ahead of the head
        const Status status =
            cache_->addSequence(head.id, head.prompt_tokens);
        COMET_CHECK(status.isOk());
        reserved += need - cache_->blocksForTokens(head.prompt_tokens);
        head.state = RequestState::kRunning;
        running_.push_back(head);
        queue_.pop_front();
        ++admitted;
    }
    return admitted;
}

int64_t
BatchScheduler::step()
{
    int64_t generated = 0;
    std::vector<Request> still_running;
    still_running.reserve(running_.size());
    for (Request &request : running_) {
        const Status status = cache_->appendToken(request.id);
        COMET_CHECK_MSG(status.isOk(),
                        "KV pool exhausted mid-step despite admission "
                        "reservation");
        ++request.generated_tokens;
        ++generated;
        if (request.done()) {
            request.state = RequestState::kFinished;
            cache_->removeSequence(request.id);
            ++finished_;
        } else {
            still_running.push_back(request);
        }
    }
    running_ = std::move(still_running);
    return generated;
}

} // namespace comet
