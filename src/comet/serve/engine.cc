#include "comet/serve/engine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "comet/chaos/failpoint.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/model/layer_shapes.h"
#include "comet/obs/metrics.h"
#include "comet/obs/obs.h"
#include "comet/obs/trace_session.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/batch_scheduler.h"
#include "comet/tp/interconnect.h"

namespace comet {

namespace {

/** Effective stored bits per INT4 weight including group scales
 * (FP16 scale per 128-value group). */
constexpr double kInt4WeightBits = 4.25;

/** Per-layer attention kernel launch overhead, microseconds. */
constexpr double kAttnLaunchUs = 4.0;

/** Fraction of FP16 peak reachable by the (FlashAttention-style)
 * prefill attention kernels. */
constexpr double kPrefillAttnEfficiency = 0.5;

} // namespace

const char *
servingModeName(ServingMode mode)
{
    switch (mode) {
      case ServingMode::kTrtFp16: return "TRT-LLM-FP16";
      case ServingMode::kTrtW4A16: return "TRT-LLM-W4A16";
      case ServingMode::kTrtW8A8: return "TRT-LLM-W8A8";
      case ServingMode::kQserveW4A8Kv4: return "QServe";
      case ServingMode::kCometW4AxKv4: return "COMET";
      case ServingMode::kCometW4AxOnly: return "COMET-W4Ax";
      case ServingMode::kCometKv4Only: return "COMET-KV4";
    }
    return "?";
}

ServingPrecision
servingPrecision(ServingMode mode)
{
    switch (mode) {
      case ServingMode::kTrtFp16:
        return {16.0, 16.0, GemmKernelKind::kCublasW16A16};
      case ServingMode::kTrtW4A16:
        return {kInt4WeightBits, 16.0, GemmKernelKind::kTrtLlmW4A16};
      case ServingMode::kTrtW8A8:
        return {8.0, 8.0, GemmKernelKind::kTrtLlmW8A8};
      case ServingMode::kQserveW4A8Kv4:
        return {kInt4WeightBits, 4.0, GemmKernelKind::kQserveW4A8};
      case ServingMode::kCometW4AxKv4:
        return {kInt4WeightBits, 4.0, GemmKernelKind::kCometW4Ax};
      case ServingMode::kCometW4AxOnly:
        return {kInt4WeightBits, 16.0, GemmKernelKind::kCometW4Ax};
      case ServingMode::kCometKv4Only:
        // "KV quantization only within the COMET system": weights stay
        // INT4 (no activation quantization, so GEMMs run the W4A16
        // path) and only the cache drops to 4 bits.
        return {kInt4WeightBits, 4.0, GemmKernelKind::kTrtLlmW4A16};
    }
    return {};
}

EngineConfig
engineConfigWithKvBlocks(EngineConfig config, int64_t blocks)
{
    COMET_CHECK(blocks > 0);
    KvCacheConfig probe_config;
    probe_config.bits_per_value =
        servingPrecision(config.mode).kv_bits;
    probe_config.block_tokens = config.kv_block_tokens;
    probe_config.memory_budget_bytes = 1e9;
    const PagedKvCache probe(config.model, probe_config);
    const double weights = ServingEngine(config).weightBytes();
    // Half a block of headroom: the fraction is later inverted as
    // fraction * hbm - weights and floored into whole blocks, and a
    // bare N blocks can round-trip to N-1 through that arithmetic.
    // Each GPU stores 1/tp of every block (head sharding), so only
    // blocks/tp full-model bytes must fit beside this GPU's weight
    // shard — sizing against the whole pool would hand a TP=N engine
    // N times the requested capacity and silently fork its admission
    // stream from the TP=1 run.
    const auto tp = static_cast<double>(config.tensor_parallel);
    config.usable_memory_fraction =
        (weights + probe.blockBytes() *
                       (static_cast<double>(blocks) + 0.5) / tp) /
        config.gpu.hbm_capacity_bytes;
    probe_config.memory_budget_bytes =
        std::max(ServingEngine(config).kvPoolBytes(), 1.0);
    const PagedKvCache check(config.model, probe_config);
    COMET_CHECK_MSG(check.totalBlocks() == blocks,
                    "KV fraction did not round-trip to the "
                    "requested block count");
    return config;
}

ServingEngine::ServingEngine(EngineConfig config)
    : config_(std::move(config)),
      precision_(servingPrecision(config_.mode)),
      cost_model_(config_.gpu, config_.calibration)
{
    COMET_CHECK(config_.input_tokens > 0 && config_.output_tokens > 0);
    COMET_CHECK(config_.max_batch > 0);
    COMET_CHECK_MSG(config_.tensor_parallel >= 1,
                    "tensor_parallel must be positive");
    COMET_CHECK_MSG(config_.model.num_kv_heads %
                            config_.tensor_parallel ==
                        0,
                    "tensor_parallel must divide the KV head count");
    // In deployment FMPQ pushes more than 84% of GEMM compute into
    // W4A4 (Section 6.2); the kernel benches use 0.75 as the stated
    // lower bound, the end-to-end engine uses the deployed figure.
    comet_features_.w4a4_fraction = 0.84;
}

double
ServingEngine::weightBytes() const
{
    return config_.model.weightBytes(precision_.weight_bits) /
           static_cast<double>(config_.tensor_parallel);
}

double
ServingEngine::allReduceLatencyUs(int64_t m_tokens) const
{
    const int tp = config_.tensor_parallel;
    if (tp == 1)
        return 0.0;
    // Two all-reduces per decoder layer (after the attention output
    // and MLP down projections), each costed by the interconnect
    // model at the cheaper of its ring/direct algorithms for the
    // step's FP16 activation tensor.
    const tp::InterconnectModel link(config_.gpu);
    const double tensor_bytes =
        static_cast<double>(m_tokens) *
        static_cast<double>(config_.model.hidden_size) * 2.0;
    double total = 2.0 * link.allReduceUs(tensor_bytes, tp) *
                   static_cast<double>(config_.model.num_layers);
    // A fired tp.allreduce failpoint in the cost path models a
    // degraded link: the step's collectives run at half bandwidth.
    if (COMET_FAILPOINT("tp.allreduce")) {
        static obs::Counter &degraded =
            obs::MetricsRegistry::global().counter(
                "tp.allreduce.degraded");
        degraded.add(1);
        total *= 2.0;
    }
    return total;
}

double
ServingEngine::kvBudgetBytes() const
{
    const double usable = config_.gpu.hbm_capacity_bytes *
                          config_.usable_memory_fraction;
    return std::max(0.0, usable - weightBytes());
}

double
ServingEngine::kvPoolBytes() const
{
    // Each GPU stores 1/tp of every sequence's KV (head sharding), so
    // the per-GPU budget admits tp times as many full-model blocks.
    return kvBudgetBytes() *
           static_cast<double>(config_.tensor_parallel);
}

int64_t
ServingEngine::maxBatchSize() const
{
    const double budget = kvBudgetBytes();
    if (budget <= 0.0)
        return 0;
    KvCacheConfig cache_config;
    cache_config.bits_per_value = precision_.kv_bits;
    cache_config.block_tokens = config_.kv_block_tokens;
    cache_config.memory_budget_bytes = kvPoolBytes();
    const PagedKvCache cache(config_.model, cache_config);
    const int64_t blocks_per_seq = cache.blocksForTokens(
        config_.input_tokens + config_.output_tokens);
    if (blocks_per_seq == 0)
        return config_.max_batch;
    return std::min(config_.max_batch,
                    cache.totalBlocks() / blocks_per_seq);
}

double
ServingEngine::stepGemmLatencyUs(int64_t m_tokens) const
{
    const auto tp = static_cast<int64_t>(config_.tensor_parallel);
    double per_layer = 0.0;
    for (const LayerGemm &gemm :
         decoderLayerGemms(config_.model, m_tokens)) {
        // Megatron sharding: the first projection of each block is
        // column-parallel (N / tp), the second row-parallel (K / tp).
        GemmShape shape = gemm.shape;
        if (gemm.name == "qkv_proj" || gemm.name == "gate_up_proj" ||
            gemm.name == "up_proj") {
            shape.n = std::max<int64_t>(shape.n / tp, 1);
        } else {
            shape.k = std::max<int64_t>(shape.k / tp, 1);
        }
        per_layer += cost_model_
                         .estimate(shape, precision_.gemm_kind,
                                   comet_features_)
                         .total_us;
    }
    double total =
        per_layer * static_cast<double>(config_.model.num_layers);
    // LM head runs in FP16 in every configuration (column-parallel
    // under TP).
    total += cost_model_
                 .estimate({m_tokens,
                            std::max<int64_t>(
                                config_.model.vocab_size / tp, 1),
                            config_.model.hidden_size},
                           GemmKernelKind::kCublasW16A16)
                 .total_us;
    total += allReduceLatencyUs(m_tokens);
    return total;
}

double
ServingEngine::attentionLatencyUs(int64_t batch,
                                  int64_t context_tokens) const
{
    // Memory-bound act-act operator (Figure 2): the decode step
    // streams this GPU's shard of every running sequence's KV cache
    // (heads split across the TP group).
    const double kv_bytes =
        config_.model.kvBytesPerSequence(context_tokens,
                                         precision_.kv_bits) *
        static_cast<double>(batch) /
        static_cast<double>(config_.tensor_parallel);
    const double bandwidth = config_.gpu.hbm_bandwidth *
                             config_.calibration.memory_efficiency;
    return kv_bytes / bandwidth * 1e6 +
           static_cast<double>(config_.model.num_layers) *
               kAttnLaunchUs;
}

double
ServingEngine::gemmLatencyUs(int64_t m_tokens) const
{
    return stepGemmLatencyUs(m_tokens);
}

double
ServingEngine::attentionReadLatencyUs(int64_t batch,
                                      int64_t context_tokens) const
{
    return attentionLatencyUs(batch, context_tokens);
}

double
ServingEngine::decodeStepLatencyUs(int64_t batch,
                                   int64_t context_tokens) const
{
    COMET_CHECK(batch > 0);
    return stepGemmLatencyUs(batch) +
           attentionLatencyUs(batch, context_tokens);
}

double
ServingEngine::prefillLatencyUs(int64_t batch) const
{
    return prefillLatencyUs(std::vector<int64_t>(
        static_cast<size_t>(batch), config_.input_tokens));
}

double
ServingEngine::prefillLatencyUs(
    const std::vector<int64_t> &prompt_tokens) const
{
    if (prompt_tokens.empty())
        return 0.0;
    // Per-request prefill accounting fans out across the runtime
    // pool; partials fold in ascending chunk order (and are exact
    // integer-valued doubles), so the totals match the sequential
    // sweep bit-for-bit for any pool size.
    struct PrefillSums {
        int64_t m = 0;
        double sq_sum = 0.0;
    };
    const PrefillSums sums = parallelReduceOrdered(
        0, static_cast<int64_t>(prompt_tokens.size()), 32,
        PrefillSums{},
        [&](int64_t begin, int64_t end) {
            PrefillSums partial;
            for (int64_t i = begin; i < end; ++i) {
                const int64_t tokens =
                    prompt_tokens[static_cast<size_t>(i)];
                partial.m += tokens;
                partial.sq_sum += static_cast<double>(tokens) *
                                  static_cast<double>(tokens);
            }
            return partial;
        },
        [](PrefillSums acc, const PrefillSums &partial) {
            acc.m += partial.m;
            acc.sq_sum += partial.sq_sum;
            return acc;
        });
    const int64_t m = sums.m;
    const double sq_sum = sums.sq_sum;
    double total = stepGemmLatencyUs(m);
    // Causal prefill attention: ~L_i^2 * d MACs per layer per head
    // group for each sequence, compute-bound at these lengths.
    const double attn_ops =
        static_cast<double>(config_.model.num_layers) * 2.0 *
        sq_sum / 2.0 *
        static_cast<double>(config_.model.hidden_size) * 2.0;
    total += attn_ops /
             (config_.gpu.fp16_tensor_ops * kPrefillAttnEfficiency) *
             1e6;
    return total;
}

ThroughputResult
ServingEngine::measureThroughput() const
{
    return measureThroughputAtBatch(maxBatchSize());
}

ThroughputResult
ServingEngine::measureThroughputAtBatch(int64_t batch) const
{
    obs::configureFromEnv();
    COMET_SPAN("engine/measure");
    ThroughputResult result;
    if (batch <= 0)
        return result;

    KvCacheConfig cache_config;
    cache_config.bits_per_value = precision_.kv_bits;
    cache_config.block_tokens = config_.kv_block_tokens;
    cache_config.memory_budget_bytes =
        std::max(kvPoolBytes(),
                 1.0); // pinned-batch runs may exceed the auto budget
    PagedKvCache cache(config_.model, cache_config);

    BatchSchedulerConfig sched_config;
    sched_config.max_batch = batch;
    sched_config.admission = config_.admission;
    sched_config.watermark_blocks = config_.kv_watermark_blocks;
    BatchScheduler scheduler(&cache, sched_config);
    // Every run starts its counters from zero — the published
    // per-run numbers must be identical for identical back-to-back
    // runs, never an accumulation across them.
    scheduler.resetCounters();
    for (int64_t i = 0; i < batch; ++i) {
        Request request;
        request.id = i;
        request.prompt_tokens = config_.input_tokens;
        request.max_output_tokens =
            std::max(config_.output_tokens,
                     config_.declared_output_tokens);
        request.eos_output_tokens = config_.output_tokens;
        scheduler.submit(request);
    }

    // The decode GEMM cost only depends on the running batch size;
    // cache it across steps.
    std::map<int64_t, double> gemm_cache;
    auto cached_gemm = [&](int64_t m) {
        auto it = gemm_cache.find(m);
        if (it == gemm_cache.end())
            it = gemm_cache.emplace(m, stepGemmLatencyUs(m)).first;
        return it->second;
    };

    double total_us = 0.0;
    int64_t generated = 0;
    double decode_us_sum = 0.0;
    int64_t decode_steps = 0;
    double batch_sum = 0.0;
    double util_sum = 0.0;
    while (!scheduler.idle()) {
        COMET_SPAN("engine/step");
        int64_t admitted = 0;
        {
            COMET_SPAN("engine/admit");
            admitted = scheduler.admit();
        }
        if (admitted > 0) {
            COMET_SPAN("engine/prefill");
            // Charge the admitted wave's real (re)prefill footprint:
            // preempted requests recompute prompt + generated.
            std::vector<int64_t> prefill_tokens;
            prefill_tokens.reserve(static_cast<size_t>(admitted));
            const auto &running_now = scheduler.running();
            for (size_t i = running_now.size() -
                            static_cast<size_t>(admitted);
                 i < running_now.size(); ++i) {
                prefill_tokens.push_back(
                    running_now[i].contextTokens());
            }
            result.prefill_us = prefillLatencyUs(prefill_tokens);
            total_us += result.prefill_us;
        }
        if (scheduler.runningCount() == 0) {
            // Nothing fits — the workload cannot be served.
            break;
        }
        COMET_SPAN("engine/decode_step");
        const int64_t running = scheduler.runningCount();
        // Per-request context accounting for the step, fanned out
        // across the pool (ordered reduction over exact integer
        // values — identical to the sequential sum).
        const auto &running_requests = scheduler.running();
        const double context_sum = parallelReduceOrdered(
            0, static_cast<int64_t>(running_requests.size()), 32,
            0.0,
            [&](int64_t begin, int64_t end) {
                double partial = 0.0;
                for (int64_t i = begin; i < end; ++i) {
                    partial += static_cast<double>(
                        running_requests[static_cast<size_t>(i)]
                            .contextTokens());
                }
                return partial;
            },
            [](double acc, double partial) { return acc + partial; });
        const auto mean_context = static_cast<int64_t>(
            context_sum / static_cast<double>(running));
        const double step_us =
            cached_gemm(running) +
            attentionLatencyUs(running, mean_context);
        total_us += step_us;
        decode_us_sum += step_us;
        ++decode_steps;
        batch_sum += static_cast<double>(running);
        util_sum += scheduler.kvUtilization();
        generated += scheduler.step();
    }

    result.batch = batch;
    const SchedulerCounters &counters = scheduler.counters();
    result.peak_batch = counters.peak_running;
    result.preemptions = counters.preemptions;
    result.reprefill_tokens = counters.reprefill_tokens;
    if (decode_steps > 0) {
        result.mean_batch =
            batch_sum / static_cast<double>(decode_steps);
        result.mean_kv_utilization =
            util_sum / static_cast<double>(decode_steps);
    }
    result.peak_kv_utilization =
        counters.peakKvUtilization(cache.totalBlocks());
    counters.publishTo(obs::MetricsRegistry::global());
    result.kv_bytes_per_seq = config_.model.kvBytesPerSequence(
        config_.input_tokens + config_.output_tokens,
        precision_.kv_bits);
    if (total_us > 0.0 && generated > 0) {
        result.tokens_per_second =
            static_cast<double>(generated) / (total_us * 1e-6);
        result.decode_step_us =
            decode_steps > 0 ? decode_us_sum /
                                   static_cast<double>(decode_steps)
                             : 0.0;
    }
    return result;
}

} // namespace comet
