#include "comet/serve/request.h"

namespace comet {

const char *
requestStateName(RequestState state)
{
    switch (state) {
      case RequestState::kQueued: return "queued";
      case RequestState::kRunning: return "running";
      case RequestState::kFinished: return "finished";
      case RequestState::kPreempted: return "preempted";
      case RequestState::kCancelled: return "cancelled";
      case RequestState::kRejected: return "rejected";
    }
    return "?";
}

} // namespace comet
