#include "comet/serve/trace.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "comet/common/stats.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/obs/obs.h"
#include "comet/obs/trace_session.h"

namespace comet {

namespace {

/** Geometric-ish length around a mean, clamped to [16, 4 * mean]. */
int64_t
sampleLength(Rng &rng, int64_t mean)
{
    const double u = std::max(rng.uniform(), 1e-12);
    const double value = -std::log(u) * static_cast<double>(mean);
    // Round to nearest: truncation would bias sampled lengths low.
    return std::clamp<int64_t>(std::llround(value), 16, 4 * mean);
}

double
percentileOrNan(std::vector<double> values, double p)
{
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return exactPercentile(std::move(values), p);
}

/** Multi-quantile variant: sorts the samples once. */
std::vector<double>
percentilesOrNan(std::vector<double> values,
                 const std::vector<double> &ps)
{
    if (values.empty()) {
        return std::vector<double>(
            ps.size(), std::numeric_limits<double>::quiet_NaN());
    }
    return exactPercentiles(std::move(values), ps);
}

} // namespace

std::vector<TracedRequest>
generateTrace(const TraceConfig &config)
{
    COMET_CHECK(config.request_rate_per_s > 0.0);
    COMET_CHECK(config.num_requests > 0);
    Rng rng(config.seed);
    std::vector<TracedRequest> trace;
    trace.reserve(static_cast<size_t>(config.num_requests));
    double clock_us = 0.0;
    for (int i = 0; i < config.num_requests; ++i) {
        // Exponential inter-arrival gaps (Poisson process).
        const double u = std::max(rng.uniform(), 1e-12);
        clock_us += -std::log(u) / config.request_rate_per_s * 1e6;
        TracedRequest request;
        request.id = i;
        request.arrival_us = clock_us;
        request.prompt_tokens =
            sampleLength(rng, config.mean_prompt_tokens);
        request.output_tokens =
            sampleLength(rng, config.mean_output_tokens);
        trace.push_back(request);
    }
    return trace;
}

double
TraceMetrics::ttftPercentileUs(double p) const
{
    std::vector<double> values;
    values.reserve(per_request.size());
    for (const RequestLatency &latency : per_request)
        values.push_back(latency.ttft_us);
    return percentileOrNan(std::move(values), p);
}

double
TraceMetrics::tpotPercentileUs(double p) const
{
    std::vector<double> values;
    values.reserve(per_request.size());
    for (const RequestLatency &latency : per_request)
        values.push_back(latency.tpot_us);
    return percentileOrNan(std::move(values), p);
}

std::vector<double>
TraceMetrics::ttftPercentilesUs(const std::vector<double> &ps) const
{
    std::vector<double> values;
    values.reserve(per_request.size());
    for (const RequestLatency &latency : per_request)
        values.push_back(latency.ttft_us);
    return percentilesOrNan(std::move(values), ps);
}

std::vector<double>
TraceMetrics::tpotPercentilesUs(const std::vector<double> &ps) const
{
    std::vector<double> values;
    values.reserve(per_request.size());
    for (const RequestLatency &latency : per_request)
        values.push_back(latency.tpot_us);
    return percentilesOrNan(std::move(values), ps);
}

double
TraceMetrics::ttftAttainment(double slo_us) const
{
    if (per_request.empty())
        return std::numeric_limits<double>::quiet_NaN();
    int64_t met = 0;
    for (const RequestLatency &latency : per_request) {
        if (latency.ttft_us <= slo_us)
            ++met;
    }
    return static_cast<double>(met) /
           static_cast<double>(per_request.size());
}

double
TraceMetrics::tpotAttainment(double slo_us) const
{
    int64_t eligible = 0;
    int64_t met = 0;
    for (const RequestLatency &latency : per_request) {
        if (latency.output_tokens < 2)
            continue;
        ++eligible;
        if (latency.tpot_us <= slo_us)
            ++met;
    }
    if (eligible == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(met) /
           static_cast<double>(eligible);
}

void
TraceMetrics::publishTo(obs::MetricsRegistry &registry) const
{
    registry.counter("serve.replay.completed")
        .add(static_cast<int64_t>(per_request.size()));
    registry.counter("serve.replay.preemptions").add(preemptions);
    registry.counter("serve.replay.reprefill_tokens")
        .add(reprefill_tokens);
    registry.counter("serve.replay.cancelled").add(cancelled);
    registry.counter("serve.replay.rejected").add(rejected);
}

TraceMetrics
mergeTraceMetrics(const std::vector<TraceMetrics> &parts)
{
    TraceMetrics merged;
    int64_t tokens = 0;
    for (const TraceMetrics &part : parts) {
        merged.per_request.insert(merged.per_request.end(),
                                  part.per_request.begin(),
                                  part.per_request.end());
        merged.makespan_us =
            std::max(merged.makespan_us, part.makespan_us);
        for (const RequestLatency &latency : part.per_request)
            tokens += latency.output_tokens;
        merged.preemptions += part.preemptions;
        merged.reprefill_tokens += part.reprefill_tokens;
        merged.cancelled += part.cancelled;
        merged.rejected += part.rejected;
        merged.peak_running += part.peak_running;
        merged.peak_queue_depth += part.peak_queue_depth;
        merged.peak_used_blocks += part.peak_used_blocks;
        merged.total_kv_blocks += part.total_kv_blocks;
    }
    if (merged.makespan_us > 0.0)
        merged.throughput_tokens_per_s =
            static_cast<double>(tokens) /
            (merged.makespan_us * 1e-6);
    if (merged.total_kv_blocks > 0)
        merged.peak_kv_utilization =
            static_cast<double>(merged.peak_used_blocks) /
            static_cast<double>(merged.total_kv_blocks);
    return merged;
}

TraceMetrics
replayTrace(const ServingEngine &engine,
            const std::vector<TracedRequest> &trace)
{
    COMET_CHECK(!trace.empty());
    // `COMET_TRACE=<out.json>` turns any replay into a span trace,
    // no matter which binary hosts it (one-shot, then free).
    obs::configureFromEnv();
    COMET_SPAN("replay");
    const EngineConfig &config = engine.config();
    const ServingPrecision precision =
        servingPrecision(config.mode);
    const int64_t chunk = config.chunked_prefill_tokens;
    const bool reserve_full =
        config.admission == AdmissionPolicy::kReserveFullOutput;

    KvCacheConfig cache_config;
    cache_config.bits_per_value = precision.kv_bits;
    cache_config.block_tokens = config.kv_block_tokens;
    cache_config.memory_budget_bytes =
        std::max(engine.kvBudgetBytes(), 1.0);
    PagedKvCache cache(config.model, cache_config);

    /** A queued request: fresh from the trace, or preempted and
     * waiting to re-prefill its grown context. */
    struct Pending {
        TracedRequest request;
        int64_t generated = 0; ///< tokens generated before preemption
        double first_token_us = 0.0;
    };

    struct Running {
        TracedRequest request;
        /** Tokens this admission must (re)prefill: the prompt plus
         * whatever the request had generated before a preemption. */
        int64_t prefill_target = 0;
        int64_t prefilled = 0;
        int64_t generated = 0;
        double first_token_us = 0.0;

        bool
        decoding() const
        {
            return prefilled >= prefill_target;
        }
    };

    std::deque<Pending> pending;
    for (const TracedRequest &request : trace)
        pending.push_back({request, 0, 0.0});
    std::vector<Running> running;
    TraceMetrics metrics;
    double clock_us = 0.0;
    int64_t generated_total = 0;

    const auto notePeaks = [&] {
        metrics.peak_running =
            std::max(metrics.peak_running,
                     static_cast<int64_t>(running.size()));
        int64_t waiting = 0;
        for (const Pending &p : pending) {
            if (p.request.arrival_us <= clock_us)
                ++waiting;
        }
        metrics.peak_queue_depth =
            std::max(metrics.peak_queue_depth, waiting);
        // Track the peak in blocks; the fraction is derived once at
        // the end so it is structurally the same used/total ratio
        // SchedulerCounters::peakKvUtilization reports.
        metrics.peak_used_blocks =
            std::max(metrics.peak_used_blocks,
                     cache.totalBlocks() - cache.freeBlocks());
    };

    const auto finishRequest = [&](const Running &r) {
        cache.removeSequence(r.request.id);
        RequestLatency latency;
        latency.id = r.request.id;
        latency.output_tokens = r.generated;
        latency.ttft_us = r.first_token_us - r.request.arrival_us;
        latency.total_us = clock_us - r.request.arrival_us;
        latency.tpot_us =
            r.generated > 1
                ? (clock_us - r.first_token_us) /
                      static_cast<double>(r.generated - 1)
                : 0.0;
        metrics.per_request.push_back(latency);
    };

    /** Evicts the latest-arrived running request back to the queue
     * head (recompute-style preemption). */
    const auto preemptBack = [&] {
        COMET_SPAN("replay/preempt");
        COMET_CHECK(!running.empty());
        const Running victim = running.back();
        running.pop_back();
        cache.removeSequence(victim.request.id);
        ++metrics.preemptions;
        metrics.reprefill_tokens +=
            victim.request.prompt_tokens + victim.generated;
        // running is in arrival order and victims are taken latest
        // first, so push_front restores FCFS order.
        pending.push_front({victim.request, victim.generated,
                            victim.first_token_us});
    };

    while (!pending.empty() || !running.empty()) {
        COMET_SPAN("replay/step");
        // Client cancellations: drop abandoned requests wherever
        // they live, releasing any KV blocks they hold.
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->request.cancel_us > 0.0 &&
                it->request.cancel_us <= clock_us) {
                ++metrics.cancelled;
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
        for (auto it = running.begin(); it != running.end();) {
            if (it->request.cancel_us > 0.0 &&
                it->request.cancel_us <= clock_us) {
                cache.removeSequence(it->request.id);
                ++metrics.cancelled;
                it = running.erase(it);
            } else {
                ++it;
            }
        }
        if (pending.empty() && running.empty())
            break;

        // Admit arrived requests while capacity lasts (FCFS,
        // honoring the engine's admission policy).
        int64_t reserved = 0;
        if (reserve_full) {
            for (const Running &r : running) {
                reserved +=
                    cache.blocksForTokens(r.request.prompt_tokens +
                                          r.request.output_tokens) -
                    cache.blocksForTokens(
                        cache.sequenceTokens(r.request.id));
            }
        }
        int64_t admitted = 0;
        std::vector<int64_t> admitted_prefill_tokens;
        {
        COMET_SPAN("replay/admit");
        while (!pending.empty() &&
               pending.front().request.arrival_us <= clock_us &&
               static_cast<int64_t>(running.size()) <
                   config.max_batch) {
            const Pending &head = pending.front();
            const int64_t full_need = cache.blocksForTokens(
                head.request.prompt_tokens +
                head.request.output_tokens);
            // Graceful degradation: a request that cannot fit even
            // alone is dropped, not left to block the queue forever.
            if (full_need > cache.totalBlocks()) {
                ++metrics.rejected;
                pending.pop_front();
                continue;
            }
            const int64_t target =
                head.request.prompt_tokens + head.generated;
            bool fits;
            if (reserve_full) {
                fits = full_need + reserved <= cache.freeBlocks();
                if (fits) {
                    reserved +=
                        full_need - cache.blocksForTokens(target);
                }
            } else {
                // The watermark holds decode headroom, but must not
                // starve an empty system.
                const int64_t slack =
                    running.empty() ? 0
                                    : config.kv_watermark_blocks;
                fits = cache.blocksForTokens(target) + slack <=
                       cache.freeBlocks();
            }
            if (!fits)
                break;
            COMET_CHECK(
                cache.addSequence(head.request.id, target).isOk());
            Running r;
            r.request = head.request;
            r.prefill_target = target;
            r.generated = head.generated;
            r.first_token_us = head.first_token_us;
            // Non-chunked mode: the whole context is processed as
            // one blocking prefill at admission.
            if (chunk <= 0) {
                r.prefilled = target;
                admitted_prefill_tokens.push_back(target);
            }
            running.push_back(r);
            pending.pop_front();
            ++admitted;
        }
        } // replay/admit
        if (admitted > 0 && chunk <= 0) {
            COMET_SPAN("replay/prefill");
            // Charge the wave's actual (re)prefill token counts, not
            // the engine's configured workload shape.
            clock_us +=
                engine.prefillLatencyUs(admitted_prefill_tokens);
            // The prefill's own forward pass produces each admitted
            // request's next output token — no extra decode step.
            std::vector<Running> still_running;
            still_running.reserve(running.size());
            for (size_t i = 0; i < running.size(); ++i) {
                Running &r = running[i];
                const bool fresh =
                    i >= running.size() -
                             static_cast<size_t>(admitted);
                if (!fresh) {
                    still_running.push_back(std::move(r));
                    continue;
                }
                ++r.generated;
                ++generated_total;
                if (r.generated == 1)
                    r.first_token_us = clock_us;
                if (r.generated >= r.request.output_tokens)
                    finishRequest(r);
                else
                    still_running.push_back(std::move(r));
            }
            running = std::move(still_running);
        }
        notePeaks();

        if (running.empty()) {
            // Idle until the next arrival (pending may have drained
            // through cancellation or rejection).
            if (pending.empty())
                break;
            clock_us = std::max(
                clock_us, pending.front().request.arrival_us);
            continue;
        }

        // --- One fused iteration ---
        // Decode tokens for every decoding request, plus (in chunked
        // mode) a budget of prompt tokens taken FCFS from prefilling
        // requests and piggybacked onto the same GEMM launches.
        COMET_SPAN("replay/decode");
        int64_t decode_batch = 0;
        double context_sum = 0.0;
        for (const Running &r : running) {
            if (r.decoding()) {
                ++decode_batch;
                context_sum += static_cast<double>(
                    r.request.prompt_tokens + r.generated);
            }
        }
        int64_t chunk_tokens = 0;
        double chunk_attention_us = 0.0;
        if (chunk > 0) {
            int64_t budget = chunk;
            for (Running &r : running) {
                if (budget <= 0)
                    break;
                if (r.decoding())
                    continue;
                const int64_t take = std::min(
                    budget, r.prefill_target - r.prefilled);
                r.prefilled += take;
                budget -= take;
                chunk_tokens += take;
                // The chunk attends over this request's growing
                // prefix (memory-bound read of its partial cache).
                chunk_attention_us += engine.attentionReadLatencyUs(
                    1, std::max<int64_t>(r.prefilled, 1));
            }
        }

        double step_us = 0.0;
        const int64_t gemm_tokens = decode_batch + chunk_tokens;
        if (gemm_tokens > 0)
            step_us += engine.gemmLatencyUs(gemm_tokens);
        if (decode_batch > 0) {
            step_us += engine.attentionReadLatencyUs(
                decode_batch,
                static_cast<int64_t>(
                    context_sum /
                    static_cast<double>(decode_batch)));
        }
        step_us += chunk_attention_us;
        if (gemm_tokens == 0) {
            // Nothing to do (should not happen, defensive).
            clock_us += 1.0;
            continue;
        }
        clock_us += step_us;

        // Advance decoding requests by one token each; on KV
        // exhaustion, preempt the latest-arrived requests (not yet
        // stepped this iteration) instead of aborting.
        std::vector<Running> still_running;
        still_running.reserve(running.size());
        size_t i = 0;
        while (i < running.size()) {
            Running &r = running[i];
            if (!r.decoding()) {
                still_running.push_back(std::move(r));
                ++i;
                continue;
            }
            Status status = cache.appendToken(r.request.id);
            while (status.code() ==
                       StatusCode::kResourceExhausted &&
                   running.size() > i + 1) {
                preemptBack();
                status = cache.appendToken(r.request.id);
            }
            if (status.code() == StatusCode::kResourceExhausted) {
                // This request is the latest survivor; yield it too
                // and let the already-stepped ones retire first.
                preemptBack(); // running[i] is the back here
                break;
            }
            COMET_CHECK_MSG(status.isOk(),
                            status.message().c_str());
            ++r.generated;
            ++generated_total;
            if (r.generated == 1)
                r.first_token_us = clock_us;
            if (r.generated >= r.request.output_tokens)
                finishRequest(r);
            else
                still_running.push_back(std::move(r));
            ++i;
        }
        running = std::move(still_running);
        notePeaks();
    }

    metrics.makespan_us = clock_us;
    metrics.throughput_tokens_per_s =
        clock_us > 0.0 ? static_cast<double>(generated_total) /
                             (clock_us * 1e-6)
                       : 0.0;
    metrics.total_kv_blocks = cache.totalBlocks();
    // The one place the fraction is computed (units: [0, 1], the
    // SchedulerCounters::peakKvUtilization definition).
    metrics.peak_kv_utilization =
        metrics.total_kv_blocks > 0
            ? static_cast<double>(metrics.peak_used_blocks) /
                  static_cast<double>(metrics.total_kv_blocks)
            : 0.0;
    metrics.publishTo(obs::MetricsRegistry::global());
    return metrics;
}

} // namespace comet
