#include "comet/serve/trace.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "comet/common/stats.h"
#include "comet/kvcache/kv_cache.h"

namespace comet {

namespace {

/** Geometric-ish length around a mean, clamped to [16, 4 * mean]. */
int64_t
sampleLength(Rng &rng, int64_t mean)
{
    const double u = std::max(rng.uniform(), 1e-12);
    const double value = -std::log(u) * static_cast<double>(mean);
    return std::clamp<int64_t>(static_cast<int64_t>(value), 16,
                               4 * mean);
}

} // namespace

std::vector<TracedRequest>
generateTrace(const TraceConfig &config)
{
    COMET_CHECK(config.request_rate_per_s > 0.0);
    COMET_CHECK(config.num_requests > 0);
    Rng rng(config.seed);
    std::vector<TracedRequest> trace;
    trace.reserve(static_cast<size_t>(config.num_requests));
    double clock_us = 0.0;
    for (int i = 0; i < config.num_requests; ++i) {
        // Exponential inter-arrival gaps (Poisson process).
        const double u = std::max(rng.uniform(), 1e-12);
        clock_us += -std::log(u) / config.request_rate_per_s * 1e6;
        TracedRequest request;
        request.id = i;
        request.arrival_us = clock_us;
        request.prompt_tokens =
            sampleLength(rng, config.mean_prompt_tokens);
        request.output_tokens =
            sampleLength(rng, config.mean_output_tokens);
        trace.push_back(request);
    }
    return trace;
}

double
TraceMetrics::ttftPercentileUs(double p) const
{
    std::vector<double> values;
    values.reserve(per_request.size());
    for (const RequestLatency &latency : per_request)
        values.push_back(latency.ttft_us);
    return exactPercentile(std::move(values), p);
}

double
TraceMetrics::tpotPercentileUs(double p) const
{
    std::vector<double> values;
    values.reserve(per_request.size());
    for (const RequestLatency &latency : per_request)
        values.push_back(latency.tpot_us);
    return exactPercentile(std::move(values), p);
}

TraceMetrics
replayTrace(const ServingEngine &engine,
            const std::vector<TracedRequest> &trace)
{
    COMET_CHECK(!trace.empty());
    const EngineConfig &config = engine.config();
    const ServingPrecision precision =
        servingPrecision(config.mode);
    const int64_t chunk = config.chunked_prefill_tokens;

    KvCacheConfig cache_config;
    cache_config.bits_per_value = precision.kv_bits;
    cache_config.block_tokens = config.kv_block_tokens;
    cache_config.memory_budget_bytes =
        std::max(engine.kvBudgetBytes(), 1.0);
    PagedKvCache cache(config.model, cache_config);

    struct Running {
        TracedRequest request;
        int64_t prefilled = 0; ///< prompt tokens processed so far
        int64_t generated = 0;
        double first_token_us = 0.0;

        bool
        decoding() const
        {
            return prefilled >= request.prompt_tokens;
        }
    };

    std::deque<TracedRequest> pending(trace.begin(), trace.end());
    std::vector<Running> running;
    TraceMetrics metrics;
    double clock_us = 0.0;
    int64_t generated_total = 0;

    while (!pending.empty() || !running.empty()) {
        // Admit arrived requests while capacity lasts (FCFS,
        // reserving full prompt+output like the engine scheduler).
        int64_t reserved = 0;
        for (const Running &r : running) {
            reserved +=
                cache.blocksForTokens(r.request.prompt_tokens +
                                      r.request.output_tokens) -
                cache.blocksForTokens(r.request.prompt_tokens +
                                      r.generated);
        }
        int64_t admitted = 0;
        while (!pending.empty() &&
               pending.front().arrival_us <= clock_us &&
               static_cast<int64_t>(running.size()) <
                   config.max_batch) {
            const TracedRequest &head = pending.front();
            const int64_t need = cache.blocksForTokens(
                head.prompt_tokens + head.output_tokens);
            if (need + reserved > cache.freeBlocks())
                break;
            COMET_CHECK(cache
                            .addSequence(head.id,
                                         head.prompt_tokens)
                            .isOk());
            reserved +=
                need - cache.blocksForTokens(head.prompt_tokens);
            Running r;
            r.request = head;
            // Non-chunked mode: the whole prompt is processed as one
            // blocking prefill at admission.
            if (chunk <= 0)
                r.prefilled = head.prompt_tokens;
            running.push_back(r);
            pending.pop_front();
            ++admitted;
        }
        if (admitted > 0 && chunk <= 0)
            clock_us += engine.prefillLatencyUs(admitted);

        if (running.empty()) {
            // Idle until the next arrival.
            COMET_CHECK(!pending.empty());
            clock_us =
                std::max(clock_us, pending.front().arrival_us);
            continue;
        }

        // --- One fused iteration ---
        // Decode tokens for every decoding request, plus (in chunked
        // mode) a budget of prompt tokens taken FCFS from prefilling
        // requests and piggybacked onto the same GEMM launches.
        int64_t decode_batch = 0;
        double context_sum = 0.0;
        for (const Running &r : running) {
            if (r.decoding()) {
                ++decode_batch;
                context_sum += static_cast<double>(
                    r.request.prompt_tokens + r.generated);
            }
        }
        int64_t chunk_tokens = 0;
        double chunk_attention_us = 0.0;
        if (chunk > 0) {
            int64_t budget = chunk;
            for (Running &r : running) {
                if (budget <= 0)
                    break;
                if (r.decoding())
                    continue;
                const int64_t take = std::min(
                    budget, r.request.prompt_tokens - r.prefilled);
                r.prefilled += take;
                budget -= take;
                chunk_tokens += take;
                // The chunk attends over this request's growing
                // prefix (memory-bound read of its partial cache).
                chunk_attention_us += engine.attentionReadLatencyUs(
                    1, std::max<int64_t>(r.prefilled, 1));
            }
        }

        double step_us = 0.0;
        const int64_t gemm_tokens = decode_batch + chunk_tokens;
        if (gemm_tokens > 0)
            step_us += engine.gemmLatencyUs(gemm_tokens);
        if (decode_batch > 0) {
            step_us += engine.attentionReadLatencyUs(
                decode_batch,
                static_cast<int64_t>(
                    context_sum /
                    static_cast<double>(decode_batch)));
        }
        step_us += chunk_attention_us;
        if (gemm_tokens == 0) {
            // Nothing to do (should not happen, defensive).
            clock_us += 1.0;
            continue;
        }
        clock_us += step_us;

        // Advance decoding requests by one token each.
        std::vector<Running> still_running;
        still_running.reserve(running.size());
        for (Running &r : running) {
            if (!r.decoding()) {
                still_running.push_back(std::move(r));
                continue;
            }
            COMET_CHECK(cache.appendToken(r.request.id).isOk());
            ++r.generated;
            ++generated_total;
            if (r.generated == 1)
                r.first_token_us = clock_us;
            if (r.generated >= r.request.output_tokens) {
                cache.removeSequence(r.request.id);
                RequestLatency latency;
                latency.id = r.request.id;
                latency.output_tokens = r.generated;
                latency.ttft_us =
                    r.first_token_us - r.request.arrival_us;
                latency.total_us = clock_us - r.request.arrival_us;
                latency.tpot_us =
                    r.generated > 1
                        ? (clock_us - r.first_token_us) /
                              static_cast<double>(r.generated - 1)
                        : 0.0;
                metrics.per_request.push_back(latency);
            } else {
                still_running.push_back(std::move(r));
            }
        }
        running = std::move(still_running);
    }

    metrics.makespan_us = clock_us;
    metrics.throughput_tokens_per_s =
        clock_us > 0.0 ? static_cast<double>(generated_total) /
                             (clock_us * 1e-6)
                       : 0.0;
    return metrics;
}

} // namespace comet
