#include "comet/kernel/int4_pack.h"

namespace comet {

uint32_t
packInt4x8(const std::array<int8_t, 8> &values)
{
    uint32_t word = 0;
    for (int i = 0; i < 8; ++i) {
        const uint32_t nibble = static_cast<uint32_t>(values[static_cast<size_t>(i)]) & 0xf;
        word |= nibble << (4 * i);
    }
    return word;
}

std::array<int8_t, 8>
unpackInt4x8(uint32_t word)
{
    std::array<int8_t, 8> values{};
    for (int i = 0; i < 8; ++i) {
        const uint32_t nibble = (word >> (4 * i)) & 0xf;
        values[static_cast<size_t>(i)] = static_cast<int8_t>(
            nibble >= 8 ? static_cast<int>(nibble) - 16
                        : static_cast<int>(nibble));
    }
    return values;
}

uint32_t
packInt8x4(const std::array<int8_t, 4> &values)
{
    uint32_t word = 0;
    for (int i = 0; i < 4; ++i) {
        word |= (static_cast<uint32_t>(values[static_cast<size_t>(i)]) &
                 0xff)
                << (8 * i);
    }
    return word;
}

std::array<int8_t, 4>
unpackInt8x4(uint32_t word)
{
    std::array<int8_t, 4> values{};
    for (int i = 0; i < 4; ++i)
        values[static_cast<size_t>(i)] =
            static_cast<int8_t>((word >> (8 * i)) & 0xff);
    return values;
}

int32_t
dp4a(uint32_t a, uint32_t b, int32_t acc)
{
    const auto av = unpackInt8x4(a);
    const auto bv = unpackInt8x4(b);
    for (int i = 0; i < 4; ++i) {
        acc += static_cast<int32_t>(av[static_cast<size_t>(i)]) *
               static_cast<int32_t>(bv[static_cast<size_t>(i)]);
    }
    return acc;
}

int32_t
dp8a4(uint32_t a, uint32_t b, int32_t acc)
{
    const auto av = unpackInt4x8(a);
    const auto bv = unpackInt4x8(b);
    for (int i = 0; i < 8; ++i) {
        acc += static_cast<int32_t>(av[static_cast<size_t>(i)]) *
               static_cast<int32_t>(bv[static_cast<size_t>(i)]);
    }
    return acc;
}

} // namespace comet
