#include "comet/kernel/int4_pack.h"

#include "comet/common/status.h"

namespace comet {

uint32_t
packInt4x8(const std::array<int8_t, 8> &values)
{
    uint32_t word = 0;
    for (int i = 0; i < 8; ++i) {
        const int8_t v = values[static_cast<size_t>(i)];
        // Masking an out-of-range value to a nibble would silently
        // alias it onto another INT4 value (e.g. 9 -> -7), corrupting
        // the packed word; make that a hard error instead.
        COMET_CHECK_MSG(v >= -8 && v <= 7,
                        "INT4 pack value outside [-8, 7]");
        const uint32_t nibble = static_cast<uint32_t>(v) & 0xf;
        word |= nibble << (4 * i);
    }
    return word;
}

std::array<int8_t, 8>
unpackInt4x8(uint32_t word)
{
    std::array<int8_t, 8> values{};
    for (int i = 0; i < 8; ++i) {
        const uint32_t nibble = (word >> (4 * i)) & 0xf;
        values[static_cast<size_t>(i)] = static_cast<int8_t>(
            nibble >= 8 ? static_cast<int>(nibble) - 16
                        : static_cast<int>(nibble));
    }
    return values;
}

uint32_t
packInt8x4(const std::array<int8_t, 4> &values)
{
    // No range check needed: the int8_t parameter type makes values
    // outside [-128, 127] unrepresentable, so no caller can corrupt a
    // neighboring byte lane (callers quantizing from wider types must
    // clamp before narrowing — see clampInt8 in tensor/packed.h).
    uint32_t word = 0;
    for (int i = 0; i < 4; ++i) {
        word |= (static_cast<uint32_t>(values[static_cast<size_t>(i)]) &
                 0xff)
                << (8 * i);
    }
    return word;
}

std::array<int8_t, 4>
unpackInt8x4(uint32_t word)
{
    std::array<int8_t, 4> values{};
    for (int i = 0; i < 4; ++i)
        values[static_cast<size_t>(i)] =
            static_cast<int8_t>((word >> (8 * i)) & 0xff);
    return values;
}

int32_t
dp4a(uint32_t a, uint32_t b, int32_t acc)
{
    const auto av = unpackInt8x4(a);
    const auto bv = unpackInt8x4(b);
    for (int i = 0; i < 4; ++i) {
        acc += static_cast<int32_t>(av[static_cast<size_t>(i)]) *
               static_cast<int32_t>(bv[static_cast<size_t>(i)]);
    }
    return acc;
}

int32_t
dp8a4(uint32_t a, uint32_t b, int32_t acc)
{
    const auto av = unpackInt4x8(a);
    const auto bv = unpackInt4x8(b);
    for (int i = 0; i < 8; ++i) {
        acc += static_cast<int32_t>(av[static_cast<size_t>(i)]) *
               static_cast<int32_t>(bv[static_cast<size_t>(i)]);
    }
    return acc;
}

} // namespace comet
