/**
 * @file
 * FP4 (E2M1) support and fast FP4->INT8 conversion (paper Section 4.3,
 * last paragraph).
 *
 * The paper notes its conversion design "is also adaptable for
 * efficient FP4-to-INT8 conversion on next-generation GPUs such as
 * H100": the sign and mantissa bits stay in place while the exponent
 * bits become shift amounts. This module implements the E2M1 format
 * and that conversion for real:
 *
 *  - E2M1 encodes sign (1 bit), exponent (2 bits, bias 1), mantissa
 *    (1 bit). Representable magnitudes: 0, 0.5, 1, 1.5, 2, 3, 4, 6.
 *  - Doubling every representable value yields an integer
 *    (0,1,2,3,4,6,8,12), so FP4 widens *exactly* to INT8 as
 *    2x(value); the factor 2 folds into the scale just like the x16
 *    factor of the INT4 zero-extension trick.
 */
#pragma once

#include <array>
#include <cstdint>

#include "comet/kernel/convert.h"

namespace comet {

/** Multiplier introduced by the exact FP4->INT8 widening. */
inline constexpr int32_t kFp4ConvMultiplier = 2;

/** Largest representable E2M1 magnitude. */
inline constexpr float kFp4Max = 6.0f;

/** Decodes one 4-bit E2M1 code (low nibble) to its float value. */
float decodeFp4(uint8_t code);

/** Encodes @p value to the nearest representable E2M1 code
 * (round-to-nearest magnitude, saturating at +-6). */
uint8_t encodeFp4(float value);

/**
 * Widens one E2M1 code to a signed INT8 equal to exactly
 * kFp4ConvMultiplier * decodeFp4(code), using the paper's scheme:
 * place the mantissa (with implicit leading one for normals) and
 * shift by the exponent. The optional counter records the emulated
 * instructions (2-3: extract, shift, sign select).
 */
int8_t fp4ToInt8(uint8_t code, InstructionCounter *counter = nullptr);

/** Packs eight E2M1 codes into a register word (code i -> bits
 * [4i, 4i+4)). */
uint32_t packFp4x8(const std::array<uint8_t, 8> &codes);

/** Unpacks a register word into eight E2M1 codes. */
std::array<uint8_t, 8> unpackFp4x8(uint32_t word);

/**
 * Converts a packed FP4 register word (8 codes) into two packed INT8
 * register words holding 2x the decoded values, in order
 * (lo = codes 0..3, hi = codes 4..7).
 */
ConvertedPair fp4RegisterToInt8(uint32_t word,
                                InstructionCounter *counter = nullptr);

} // namespace comet
