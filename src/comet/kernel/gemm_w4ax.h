/**
 * @file
 * The COMET-W4Ax mixed-precision GEMM (paper Section 4), emulated
 * bit-exactly.
 *
 * The kernel multiplies FMPQ-quantized activations (a mix of INT4 and
 * INT8 channel blocks) against block-wise INT4 weights:
 *
 *  - INT4 activation blocks run the W4A4 path (INT4 mma directly);
 *  - INT8 activation blocks run the W4A8 path: the weights of those
 *    blocks are stored in the prepared (interleaved + location-switched)
 *    layout and widened on the fly with the 2-instruction fast
 *    conversion, whose x16 factor is folded into the block scale.
 *
 * Computation is organized in (tile_m x tile_n x tile_k) tiles exactly
 * like the GPU kernel (128^3 in the paper); each tile's precision is
 * decided by the activation block covering its k-range. The class also
 * reports per-run statistics (tile precision mix, conversion
 * instructions) consumed by tests and the ablation benches.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/kernel/convert.h"
#include "comet/quant/fmpq.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** Tile configuration of the W4Ax kernel. */
struct W4AxGemmConfig {
    int64_t tile_m = 128;
    int64_t tile_n = 128;
    int64_t tile_k = 128;
    /** When false the W4A8 path widens weights with the naive
     * conversion (numerically identical; only the instruction count
     * changes). Exists for the Figure 13 ablation. */
    bool use_fast_conversion = true;
    /** Host parallelism of the emulation (the GPU analogy: thread
     * blocks run concurrently). Output tiles are partitioned along
     * the n dimension and executed on the comet::runtime pool, so
     * results and statistics are bit-identical for any value.
     * 1 = sequential on the caller; 0 = use every pool slot
     * (COMET_THREADS); k > 1 = cap the run at k executor slots. */
    int threads = 1;
};

/** Observed execution statistics of one W4Ax GEMM run. */
struct W4AxGemmStats {
    int64_t int4_tiles = 0;  ///< tiles executed on the W4A4 path
    int64_t int8_tiles = 0;  ///< tiles executed on the W4A8 path
    int64_t conversion_instructions = 0;
    int64_t int4_mac_ops = 0; ///< multiply-accumulates, W4A4 path
    int64_t int8_mac_ops = 0; ///< multiply-accumulates, W4A8 path

    double
    w4a4TileFraction() const
    {
        const int64_t total = int4_tiles + int8_tiles;
        return total == 0 ? 1.0
                          : static_cast<double>(int4_tiles) /
                                static_cast<double>(total);
    }
};

/**
 * A W4Ax GEMM operator bound to one quantized weight matrix.
 *
 * Construction performs the offline layout work (packing the W4A8
 * blocks into the prepared layout); run() executes the kernel against
 * runtime activations.
 */
class W4AxGemm
{
  public:
    /**
     * Binds the operator to a quantized weight and the activation
     * block-precision map it will be used with.
     *
     * @pre weight block size matches the precision map
     *      (weight.in_channels / weight.block_size precisions).
     */
    W4AxGemm(BlockQuantizedWeight weight,
             std::vector<BlockPrecision> precisions,
             W4AxGemmConfig config = {});

    const W4AxGemmConfig &config() const { return config_; }

    /**
     * Executes the mixed-precision GEMM and returns the dequantized
     * float output [tokens, out_features].
     *
     * @pre activation block structure (size, count, precisions) matches
     *      the one this operator was built for.
     */
    Tensor run(const MixedQuantizedActivation &activation,
               W4AxGemmStats *stats = nullptr) const;

  private:
    BlockQuantizedWeight weight_;
    std::vector<BlockPrecision> precisions_;
    W4AxGemmConfig config_;
    /** Weights in prepared layout, used by INT8 blocks. */
    Int4Tensor prepared_;
};

/**
 * Golden model for W4AxGemm::run — dequantizes both operands to float
 * and multiplies. Bit-level kernels are verified against this.
 */
Tensor gemmW4AxReference(const MixedQuantizedActivation &activation,
                         const BlockQuantizedWeight &weight);

} // namespace comet
