#include "comet/kernel/interleave.h"

#include <algorithm>
#include <map>
#include <set>

#include "comet/kernel/convert.h"
#include "comet/kernel/int4_pack.h"
#include "comet/simd/simd.h"

namespace comet {

int64_t
interleavedIndex(int64_t logical_index)
{
    const int64_t unit = logical_index / kInterleaveUnit;
    const int64_t offset = logical_index % kInterleaveUnit;
    // Within a unit: v0..v3 -> slots 0..3, v8..v11 -> slots 4..7,
    // v4..v7 -> slots 8..11, v12..v15 -> slots 12..15. Applying the
    // same mapping twice returns the original index (self-inverse):
    // the mapping swaps the two middle quads.
    int64_t slot;
    if (offset < 4)
        slot = offset;            // v0..v3   stay
    else if (offset < 8)
        slot = offset + 4;        // v4..v7   -> 8..11
    else if (offset < 12)
        slot = offset - 4;        // v8..v11  -> 4..7
    else
        slot = offset;            // v12..v15 stay
    return unit * kInterleaveUnit + slot;
}

Int4Tensor
interleaveWeights(const Int4Tensor &weights)
{
    COMET_CHECK_MSG(weights.cols() % kInterleaveUnit == 0,
                    "columns must be a multiple of the interleave unit");
    // interleavedIndex always moves whole nibble *pairs* (the swapped
    // quads start at even offsets), so the per-value mapping is a pure
    // byte permutation within each 8-byte unit — exactly
    // simd::interleaveUnits. Rows are stored contiguously and every
    // row is a whole number of units, so one span covers the tensor.
    Int4Tensor out(weights.rows(), weights.cols());
    const int64_t units = weights.rows() * weights.rowBytes() / 8;
    simd::interleaveUnits(weights.data(), units, out.data());
    return out;
}

Int4Tensor
deinterleaveWeights(const Int4Tensor &weights)
{
    // interleavedIndex is self-inverse, so the same transform undoes it.
    return interleaveWeights(weights);
}

Int4Tensor
prepareWeightsForW4A8(const Int4Tensor &weights)
{
    // Interleave, then location-switch every register word in place
    // (each word holds 8 values, so the word count is bytes / 4).
    Int4Tensor out = interleaveWeights(weights);
    const int64_t words = out.rows() * out.rowBytes() / 4;
    simd::locationSwitchWords(out.data(), words, out.data());
    return out;
}

SmemSimResult
simulateWarpLoad(const std::vector<WarpAccess> &accesses)
{
    constexpr int64_t kBanks = 32;
    constexpr int64_t kWordBytes = 4;

    SmemSimResult result;
    // bank -> set of distinct word addresses requested in that bank.
    std::map<int64_t, std::set<int64_t>> bank_words;
    for (const WarpAccess &access : accesses) {
        COMET_CHECK(access.bytes > 0);
        const int64_t first_word = access.byte_address / kWordBytes;
        const int64_t last_word =
            (access.byte_address + access.bytes - 1) / kWordBytes;
        for (int64_t w = first_word; w <= last_word; ++w) {
            ++result.word_touches;
            bank_words[w % kBanks].insert(w);
        }
    }
    result.wavefronts = 1;
    for (const auto &[bank, words] : bank_words) {
        result.wavefronts = std::max(
            result.wavefronts, static_cast<int64_t>(words.size()));
    }
    result.conflicts = result.wavefronts - 1;
    return result;
}

std::vector<WarpAccess>
naiveW4A8AccessPattern(int threads)
{
    // Thread t needs INT4 values 4t .. 4t+7, i.e. 4 bytes starting at
    // byte 2t: misaligned for odd t and overlapping its neighbours
    // (paper Figure 6(a): T0 loads b0~b7 while T1 loads b4~b11).
    std::vector<WarpAccess> accesses;
    accesses.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t)
        accesses.push_back(WarpAccess{t, 2 * t, 4});
    return accesses;
}

std::vector<WarpAccess>
interleavedW4A8AccessPattern(int threads)
{
    // Thread t reads its whole 8-value group as the aligned word t
    // (paper Figure 6(b): T0 uses addresses 0~3 and 8~11, stored
    // contiguously after interleaving).
    std::vector<WarpAccess> accesses;
    accesses.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t)
        accesses.push_back(WarpAccess{t, 4 * t, 4});
    return accesses;
}

int
naiveW4A8LdmatrixCount()
{
    // The overlapping ranges cannot be fetched as one ldmatrix: the
    // instruction hands each thread one aligned 32-bit word, so the
    // naive layout needs two issues (one per half of the fragment).
    return 2;
}

int
interleavedW4A8LdmatrixCount()
{
    return 1;
}

} // namespace comet
