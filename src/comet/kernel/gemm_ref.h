/**
 * @file
 * Reference GEMM implementations.
 *
 * Convention everywhere in comet: activations X are [M, K] = [tokens,
 * in_channels], weights W are [N, K] = [out_features, in_channels], and
 * a linear layer computes O = X * W^T, i.e. O[m][n] = dot(X[m], W[n]).
 *
 * gemmFloat is the golden model the packed-integer kernels are verified
 * against; the integer references implement the plain (non-interleaved,
 * naively-converted) quantized GEMMs used as baselines.
 */
#pragma once

#include "comet/quant/quantizer.h"
#include "comet/tensor/packed.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** O = X * W^T in float. X: [M, K], W: [N, K], O: [M, N]. */
Tensor gemmFloat(const Tensor &x, const Tensor &w);

/**
 * W8A8 reference: integer accumulation of per-row-quantized operands,
 * dequantized with out[m][n] = acc * scale_a[m] * scale_w[n].
 */
Tensor gemmInt8(const QuantizedInt8 &a, const QuantizedInt8 &w);

/** W4A4 reference with per-row scales. */
Tensor gemmInt4(const QuantizedInt4 &a, const QuantizedInt4 &w);

} // namespace comet
