/**
 * @file
 * Timing model of the SIMT-enhanced software pipeline (paper
 * Section 4.2, Figure 5(c)).
 *
 * A W4Ax tile iterates over k-steps; each step (1) loads the next
 * activation/weight fragments from global memory into a shared-memory
 * buffer, (2) optionally converts/permutes them on the CUDA cores,
 * (3) moves fragments to registers (ldmatrix), and (4) issues the mma.
 * COMET overlaps these with two levels of double buffering so that in
 * steady state the slowest *resource* — the memory system, the CUDA
 * cores, or the tensor cores — bounds throughput, rather than the sum
 * of all stages.
 *
 * This header contains only the closed-form stage algebra; the gpusim
 * cost model supplies the stage times for concrete tiles and GPUs.
 */
#pragma once

#include <cstdint>

namespace comet {

/** Per-k-step stage durations of one tile, in arbitrary time units
 * (the cost model uses microseconds). */
struct StageTimes {
    double global_load = 0.0; ///< HBM -> shared memory
    double smem_load = 0.0;   ///< ldmatrix, shared memory -> registers
    double convert = 0.0;     ///< CUDA-core dequant / permutation
    double mma = 0.0;         ///< tensor-core compute
};

/** Pipelining strategy of the kernel. */
enum class PipelineMode {
    /** No overlap: stages run back-to-back each iteration (the
     * "w/o software pipeline" ablation of Figure 13). */
    kSerial,
    /** COMET's two-level overlap: global loads run under
     * transform+compute, and double buffering overlaps the CUDA-core
     * transform with tensor-core compute. */
    kSimtEnhanced,
};

/** Duration of one steady-state iteration under the given mode. */
double pipelineIterationTime(const StageTimes &stages, PipelineMode mode);

/**
 * Total duration of @p iterations k-steps, including pipeline fill
 * (one full serial pass) for the overlapped mode.
 * @pre iterations >= 1.
 */
double pipelineTime(const StageTimes &stages, PipelineMode mode,
                    int64_t iterations);

} // namespace comet
