/**
 * @file
 * Fast INT4-to-INT8 conversion (paper Section 4.3, Figure 7).
 *
 * The W4A8 path must widen packed INT4 weights to INT8 on the CUDA cores
 * before the INT8 tensor core can consume them. A naive conversion
 * needs a shift + 4-bit sign extension per value — the PTX ISA has no
 * 4-bit shift/sign-extend, so each value costs on the order of ten
 * instructions. COMET's fast path replaces this with two ideas:
 *
 *  1. *Location switch*: weights are stored with their nibbles
 *     pre-permuted (done once, offline) so that a single mask extracts
 *     a whole lane group in the order the mma expects.
 *  2. *Zero extension*: instead of sign-extending the nibble into the
 *     low bits of a byte, the nibble is placed in the *high* bits and
 *     the low bits are zero-filled. Interpreted as signed INT8 this
 *     yields exactly 16x the INT4 value, so dividing the scale by 16
 *     restores numerical equivalence at zero instruction cost.
 *
 * The fast path costs 2 logical instructions per output register versus
 * ~10 per *value* for the naive path; both are implemented here exactly,
 * with an instruction counter so the claim is testable.
 */
#pragma once

#include <cstdint>

namespace comet {

/** Multiplying factor introduced by zero extension: converted INT8
 * values equal kFastConvMultiplier * (true INT4 value). Scales of
 * fast-converted operands must be divided by this. */
inline constexpr int32_t kFastConvMultiplier = 16;

/** Counts the emulated SIMT instructions a conversion routine issues.
 * Purely observational — routines behave identically with or without
 * a counter attached. */
class InstructionCounter
{
  public:
    /** Records @p n issued instructions. */
    void
    add(int64_t n)
    {
        count_ += n;
    }

    int64_t count() const { return count_; }

    void reset() { count_ = 0; }

  private:
    int64_t count_ = 0;
};

/** Two packed-INT8 register words produced by widening one packed-INT4
 * register word (8 values -> 2x4 values). */
struct ConvertedPair {
    uint32_t lo; ///< values 0..3
    uint32_t hi; ///< values 4..7
};

/**
 * Naive conversion: per nibble, isolate, shift into place and
 * sign-extend. Output bytes hold the *true* INT4 values (no x16
 * factor). Costs ~10 instructions per value.
 *
 * @param word     packed INT4 register (nibble i = value i)
 * @param counter  optional instruction counter
 */
ConvertedPair naiveInt4ToInt8(uint32_t word,
                              InstructionCounter *counter = nullptr);

/**
 * The offline "location switch": permutes the nibbles of a packed INT4
 * register from logical order [v0..v7] into the storage order the fast
 * conversion expects (v0,v4,v1,v5,v2,v6,v3,v7 — even/odd lane
 * interleaving). Applied once when the weight tensor is prepared, never
 * on the critical path.
 */
uint32_t locationSwitch(uint32_t word);

/** Inverse of locationSwitch (for tests and tooling). */
uint32_t locationSwitchInverse(uint32_t word);

/**
 * Fast conversion of a location-switched register: two mask/shift ops
 * produce two packed-INT8 registers whose bytes equal 16x the true
 * INT4 values, in logical order (lo = 16*[v0..v3], hi = 16*[v4..v7]).
 * Costs exactly 2 instructions.
 *
 * @param switched_word  output of locationSwitch()
 * @param counter        optional instruction counter
 */
ConvertedPair fastInt4ToInt8(uint32_t switched_word,
                             InstructionCounter *counter = nullptr);

} // namespace comet
