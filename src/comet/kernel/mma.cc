#include "comet/kernel/mma.h"

#include <vector>

#include "comet/kernel/int4_pack.h"
#include "comet/kernel/interleave.h"
#include "comet/simd/simd.h"

namespace comet {

void
mmaInt8(AccumTile &acc, const Int8Tensor &a, int64_t a_row0,
        const Int8Tensor &b, int64_t b_row0, int64_t k0, int64_t k_len)
{
    COMET_CHECK(k0 % 4 == 0 && k_len % 4 == 0);
    for (int64_t i = 0; i < acc.m(); ++i) {
        const int8_t *a_row = a.rowPtr(a_row0 + i) + k0;
        for (int64_t j = 0; j < acc.n(); ++j) {
            acc.at(i, j) += simd::dotInt8(
                a_row, b.rowPtr(b_row0 + j) + k0, k_len);
        }
    }
}

void
mmaInt4(AccumTile &acc, const Int4Tensor &a, int64_t a_row0,
        const Int4Tensor &b, int64_t b_row0, int64_t k0, int64_t k_len)
{
    COMET_CHECK(k0 % 8 == 0 && k_len % 8 == 0);
    for (int64_t i = 0; i < acc.m(); ++i) {
        const uint8_t *a_row = a.rowPtr(a_row0 + i) + k0 / 2;
        for (int64_t j = 0; j < acc.n(); ++j) {
            acc.at(i, j) += simd::dotInt4(
                a_row, b.rowPtr(b_row0 + j) + k0 / 2, k_len);
        }
    }
}

void
mmaW4A8Prepared(AccumTile &acc, const Int8Tensor &a, int64_t a_row0,
                const Int4Tensor &w_prepared, int64_t w_row0, int64_t k0,
                int64_t k_len, InstructionCounter *counter)
{
    COMET_CHECK(k0 % kInterleaveUnit == 0 &&
                k_len % kInterleaveUnit == 0);
    // Fast-widened weights for one row's k-chunk, in logical activation
    // order (fastWidenW4A8 emits the dp4a word sequence k, k+4, k+8,
    // k+12 per unit). Values are 16x the true INT4 values, exactly as
    // fastInt4ToInt8 produces them; callers divide the scale fixup out.
    std::vector<int8_t> widened(static_cast<size_t>(k_len));
    for (int64_t j = 0; j < acc.n(); ++j) {
        // Widen this weight row's k-chunk once; the converted bytes
        // are reused across all m rows of the accumulator, so
        // conversion cost amortizes exactly as it does on the GPU
        // (conversion happens once per shared-memory tile). The fast
        // conversion costs 3 emulated instructions per register word
        // (shl+and for lo, and for hi — see fastInt4ToInt8).
        simd::fastWidenW4A8(w_prepared.rowPtr(w_row0 + j) + k0 / 2,
                            k_len, widened.data());
        if (counter != nullptr)
            counter->add(3 * (k_len / 8));
        for (int64_t i = 0; i < acc.m(); ++i) {
            acc.at(i, j) += simd::dotInt8(a.rowPtr(a_row0 + i) + k0,
                                          widened.data(), k_len);
        }
    }
}

} // namespace comet
