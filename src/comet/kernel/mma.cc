#include "comet/kernel/mma.h"

#include "comet/kernel/int4_pack.h"
#include "comet/kernel/interleave.h"

namespace comet {

void
mmaInt8(AccumTile &acc, const Int8Tensor &a, int64_t a_row0,
        const Int8Tensor &b, int64_t b_row0, int64_t k0, int64_t k_len)
{
    COMET_CHECK(k0 % 4 == 0 && k_len % 4 == 0);
    for (int64_t i = 0; i < acc.m(); ++i) {
        for (int64_t j = 0; j < acc.n(); ++j) {
            int32_t sum = acc.at(i, j);
            for (int64_t k = k0; k < k0 + k_len; k += 4) {
                sum = dp4a(a.loadWord(a_row0 + i, k),
                           b.loadWord(b_row0 + j, k), sum);
            }
            acc.at(i, j) = sum;
        }
    }
}

void
mmaInt4(AccumTile &acc, const Int4Tensor &a, int64_t a_row0,
        const Int4Tensor &b, int64_t b_row0, int64_t k0, int64_t k_len)
{
    COMET_CHECK(k0 % 8 == 0 && k_len % 8 == 0);
    for (int64_t i = 0; i < acc.m(); ++i) {
        for (int64_t j = 0; j < acc.n(); ++j) {
            int32_t sum = acc.at(i, j);
            for (int64_t k = k0; k < k0 + k_len; k += 8) {
                sum = dp8a4(a.loadWord(a_row0 + i, k),
                            b.loadWord(b_row0 + j, k), sum);
            }
            acc.at(i, j) = sum;
        }
    }
}

void
mmaW4A8Prepared(AccumTile &acc, const Int8Tensor &a, int64_t a_row0,
                const Int4Tensor &w_prepared, int64_t w_row0, int64_t k0,
                int64_t k_len, InstructionCounter *counter)
{
    COMET_CHECK(k0 % kInterleaveUnit == 0 &&
                k_len % kInterleaveUnit == 0);
    for (int64_t j = 0; j < acc.n(); ++j) {
        // Widen this weight row's k-chunk once per unit; the converted
        // registers are reused across all m rows of the accumulator, so
        // conversion cost amortizes exactly as it does on the GPU
        // (conversion happens once per shared-memory tile).
        for (int64_t k = k0; k < k0 + k_len; k += kInterleaveUnit) {
            // Unit storage words 0 and 1.
            const ConvertedPair w0 = fastInt4ToInt8(
                w_prepared.loadWord(w_row0 + j, k), counter);
            const ConvertedPair w1 = fastInt4ToInt8(
                w_prepared.loadWord(w_row0 + j, k + 8), counter);
            // Interleaved layout: word0 = v[k..k+3], v[k+8..k+11];
            //                     word1 = v[k+4..k+7], v[k+12..k+15].
            for (int64_t i = 0; i < acc.m(); ++i) {
                int32_t sum = acc.at(i, j);
                sum = dp4a(a.loadWord(a_row0 + i, k), w0.lo, sum);
                sum = dp4a(a.loadWord(a_row0 + i, k + 4), w1.lo, sum);
                sum = dp4a(a.loadWord(a_row0 + i, k + 8), w0.hi, sum);
                sum = dp4a(a.loadWord(a_row0 + i, k + 12), w1.hi, sum);
                acc.at(i, j) = sum;
            }
        }
    }
}

} // namespace comet
