#include "comet/kernel/gemm_w4ax.h"

#include <algorithm>

#include "comet/kernel/int4_pack.h"
#include "comet/kernel/interleave.h"
#include "comet/kernel/mma.h"
#include "comet/obs/metrics.h"
#include "comet/obs/trace_session.h"
#include "comet/runtime/thread_pool.h"
#include "comet/simd/simd.h"

namespace comet {

namespace {

/** Publishes one run's tile tallies to the global registry (cached
 * references: the registration mutex is paid once per process). */
void
publishTileCounters(int64_t int4_tiles, int64_t int8_tiles)
{
    static obs::Counter &int4_counter =
        obs::MetricsRegistry::global().counter(
            "kernel.w4ax.int4_tiles");
    static obs::Counter &int8_counter =
        obs::MetricsRegistry::global().counter(
            "kernel.w4ax.int8_tiles");
    if (int4_tiles > 0)
        int4_counter.add(int4_tiles);
    if (int8_tiles > 0)
        int8_counter.add(int8_tiles);
}

} // namespace

W4AxGemm::W4AxGemm(BlockQuantizedWeight weight,
                   std::vector<BlockPrecision> precisions,
                   W4AxGemmConfig config)
    : weight_(std::move(weight)), precisions_(std::move(precisions)),
      config_(config), prepared_(prepareWeightsForW4A8(weight_.data))
{
    COMET_CHECK(weight_.block_size > 0);
    COMET_CHECK_MSG(static_cast<int64_t>(precisions_.size()) ==
                        weight_.in_channels / weight_.block_size,
                    "precision map must have one entry per k block");
    COMET_CHECK(config_.tile_m > 0 && config_.tile_n > 0 &&
                config_.tile_k > 0);
    COMET_CHECK_MSG(weight_.block_size % config_.tile_k == 0,
                    "tile_k must divide the quantization block size so "
                    "every tile has a single precision");
    COMET_CHECK_MSG(config_.tile_k % kInterleaveUnit == 0,
                    "tile_k must be a multiple of the interleave unit");
}

Tensor
W4AxGemm::run(const MixedQuantizedActivation &activation,
              W4AxGemmStats *stats) const
{
    COMET_CHECK(activation.channels == weight_.in_channels);
    COMET_CHECK(activation.block_size == weight_.block_size);
    COMET_CHECK_MSG(activation.precisions == precisions_,
                    "activation block precisions must match the map the "
                    "operator was built for");

    const int64_t m_dim = activation.tokens;
    const int64_t n_dim = weight_.out_features;
    const int64_t k_dim = weight_.in_channels;

    Tensor out(m_dim, n_dim);

    // The n dimension partitions across the runtime pool: every chunk
    // owns a disjoint set of output columns, so the emulation is
    // race-free and bit-identical for any thread count (tile
    // iteration order within a column set is unchanged).
    COMET_CHECK(config_.threads >= 0);
    const auto worker = [&](int64_t n_begin, int64_t n_end,
                            W4AxGemmStats *thread_stats,
                            InstructionCounter *counter) {
    for (int64_t m0 = 0; m0 < m_dim; m0 += config_.tile_m) {
        const int64_t mm = std::min(config_.tile_m, m_dim - m0);
        for (int64_t n0 = n_begin; n0 < n_end; n0 += config_.tile_n) {
            const int64_t nn = std::min(config_.tile_n, n_dim - n0);
            for (int64_t k0 = 0; k0 < k_dim; k0 += config_.tile_k) {
                COMET_KERNEL_SPAN("w4ax/tile");
                const int64_t kk = std::min(config_.tile_k, k_dim - k0);
                const int64_t block = k0 / weight_.block_size;
                const bool is_int4 =
                    precisions_[static_cast<size_t>(block)] ==
                    BlockPrecision::kInt4;

                AccumTile acc(mm, nn);
                float conv_fixup = 1.0f;
                if (is_int4) {
                    mmaInt4(acc, activation.int4_data, m0, weight_.data,
                            n0, k0, kk);
                } else if (config_.use_fast_conversion) {
                    mmaW4A8Prepared(acc, activation.int8_data, m0,
                                    prepared_, n0, k0, kk, counter);
                    conv_fixup =
                        1.0f / static_cast<float>(kFastConvMultiplier);
                } else {
                    // Ablation path: widen the plain-layout weights with
                    // the naive per-nibble conversion, then run the
                    // INT8 mma. Numerically identical, far costlier.
                    Int8Tensor widened(nn, kk);
                    for (int64_t j = 0; j < nn; ++j) {
                        for (int64_t k = 0; k < kk; k += 8) {
                            const ConvertedPair pair = naiveInt4ToInt8(
                                weight_.data.loadWord(n0 + j, k0 + k),
                                counter);
                            widened.storeWord(j, k, pair.lo);
                            widened.storeWord(j, k + 4, pair.hi);
                        }
                    }
                    // The widened tile is indexed from local k 0 while
                    // the activation stays at global k0, so contract
                    // manually with the same span dot mmaInt8 uses.
                    for (int64_t i = 0; i < mm; ++i) {
                        const int8_t *a_row =
                            activation.int8_data.rowPtr(m0 + i) + k0;
                        for (int64_t j = 0; j < nn; ++j) {
                            acc.at(i, j) = simd::dotInt8(
                                a_row, widened.rowPtr(j), kk);
                        }
                    }
                }

                if (thread_stats != nullptr) {
                    (is_int4 ? thread_stats->int4_tiles
                             : thread_stats->int8_tiles) += 1;
                    (is_int4 ? thread_stats->int4_mac_ops
                             : thread_stats->int8_mac_ops) +=
                        mm * nn * kk;
                }

                for (int64_t i = 0; i < mm; ++i) {
                    const float a_scale =
                        activation.scales.at(m0 + i, block) * conv_fixup;
                    for (int64_t j = 0; j < nn; ++j) {
                        out.at(m0 + i, n0 + j) +=
                            static_cast<float>(acc.at(i, j)) * a_scale *
                            weight_.scales.at(n0 + j, block);
                    }
                }
            }
        }
    }
    }; // worker

    if (config_.threads == 1) {
        InstructionCounter counter;
        // Route through a local stats block so the registry counters
        // tick even when the caller passes no stats sink.
        W4AxGemmStats run_stats;
        worker(0, n_dim, &run_stats, &counter);
        publishTileCounters(run_stats.int4_tiles, run_stats.int8_tiles);
        if (stats != nullptr) {
            stats->int4_tiles += run_stats.int4_tiles;
            stats->int8_tiles += run_stats.int8_tiles;
            stats->int4_mac_ops += run_stats.int4_mac_ops;
            stats->int8_mac_ops += run_stats.int8_mac_ops;
            // Accumulate (like the threaded path below does): callers
            // summing several gemms into one sink — sharded TP runs —
            // must not see the last gemm overwrite the total.
            stats->conversion_instructions += counter.count();
        }
        return out;
    }

    // Partition whole n-tiles across the runtime pool, one tile strip
    // per chunk. Chunk boundaries are clamped to n_dim on both ends,
    // so a ragged final tile (n_dim % tile_n != 0) gets exactly the
    // leftover columns. Stats accumulate into chunk-indexed slots and
    // reduce in ascending chunk order, so the totals match the
    // sequential path bit-for-bit for any pool size.
    const int64_t n_tiles =
        (n_dim + config_.tile_n - 1) / config_.tile_n;
    std::vector<W4AxGemmStats> chunk_stats(
        static_cast<size_t>(n_tiles));
    std::vector<InstructionCounter> counters(
        static_cast<size_t>(n_tiles));
    ThreadPool::global().parallelForChunks(
        0, n_tiles, 1,
        [&](int64_t tile_begin, int64_t tile_end, int64_t chunk) {
            const int64_t n_begin =
                std::min(tile_begin * config_.tile_n, n_dim);
            const int64_t n_end =
                std::min(tile_end * config_.tile_n, n_dim);
            worker(n_begin, n_end,
                   &chunk_stats[static_cast<size_t>(chunk)],
                   &counters[static_cast<size_t>(chunk)]);
        },
        config_.threads);
    int64_t run_int4_tiles = 0;
    int64_t run_int8_tiles = 0;
    for (int64_t c = 0; c < n_tiles; ++c) {
        const W4AxGemmStats &cs =
            chunk_stats[static_cast<size_t>(c)];
        run_int4_tiles += cs.int4_tiles;
        run_int8_tiles += cs.int8_tiles;
        if (stats != nullptr) {
            stats->int4_tiles += cs.int4_tiles;
            stats->int8_tiles += cs.int8_tiles;
            stats->int4_mac_ops += cs.int4_mac_ops;
            stats->int8_mac_ops += cs.int8_mac_ops;
            stats->conversion_instructions +=
                counters[static_cast<size_t>(c)].count();
        }
    }
    publishTileCounters(run_int4_tiles, run_int8_tiles);
    return out;
}

Tensor
gemmW4AxReference(const MixedQuantizedActivation &activation,
                  const BlockQuantizedWeight &weight)
{
    const Tensor a = dequantize(activation);
    const Tensor w = dequantize(weight);
    COMET_CHECK(a.cols() == w.cols());
    const int64_t m_dim = a.rows(), n_dim = w.rows(), k_dim = a.cols();
    Tensor out(m_dim, n_dim);
    // Rows of the output are independent; each chunk computes its rows
    // exactly as the sequential loop would, so the result is
    // bit-identical for any pool size.
    parallelFor(0, m_dim, 1, [&](int64_t m_begin, int64_t m_end) {
        for (int64_t m = m_begin; m < m_end; ++m) {
            for (int64_t n = 0; n < n_dim; ++n) {
                double sum = 0.0;
                for (int64_t k = 0; k < k_dim; ++k)
                    sum += static_cast<double>(a.at(m, k)) *
                           w.at(n, k);
                out.at(m, n) = static_cast<float>(sum);
            }
        }
    });
    return out;
}

} // namespace comet
