/**
 * @file
 * Weight interleaving for W4A8 GEMM (paper Section 4.3, Figure 6) and a
 * shared-memory bank-conflict simulator to verify its effect.
 *
 * In a typical W8A8 kernel, `ldmatrix` hands each thread a contiguous
 * 32-bit word of weights. When the weights are INT4, a thread feeding
 * the same INT8 mma needs *eight* values (still 32 bits after widening,
 * but only 16 bits in storage), and consecutive threads' value ranges
 * overlap (T0 needs v0..v7, T1 needs v4..v11, ...), producing misaligned
 * accesses, shared-memory bank conflicts, and two ldmatrix issues per
 * thread.
 *
 * COMET rearranges each 16-value unit so that thread t's eight values
 * are stored contiguously as one aligned 32-bit word:
 *   unit word 0 = v0..v3, v8..v11   (thread T0)
 *   unit word 1 = v4..v7, v12..v15  (thread T1)
 * This removes all conflicts and halves the ldmatrix count. The
 * interleaving here is the exact byte-level transform, and the simulator
 * reproduces the conflict counts on a 32-bank shared memory model.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/tensor/packed.h"

namespace comet {

/** Number of INT4 values per interleave unit (two 32-bit words). */
inline constexpr int64_t kInterleaveUnit = 16;

/**
 * Maps a logical value index within a row to its storage index in the
 * interleaved layout. Self-inverse within each 16-value unit.
 */
int64_t interleavedIndex(int64_t logical_index);

/** Interleaves every row of an INT4 weight tensor.
 * @pre cols % kInterleaveUnit == 0. */
Int4Tensor interleaveWeights(const Int4Tensor &weights);

/** Undoes interleaveWeights (the mapping is self-inverse). */
Int4Tensor deinterleaveWeights(const Int4Tensor &weights);

/**
 * Fully prepares an INT4 weight tensor for the W4A8 fast path: applies
 * the 16-value interleave, then the per-register location switch
 * required by fastInt4ToInt8(). This is the offline layout COMET stores
 * W4A8-destined weights in.
 */
Int4Tensor prepareWeightsForW4A8(const Int4Tensor &weights);

/** One thread's shared-memory access within a warp-synchronous load. */
struct WarpAccess {
    int thread = 0;
    int64_t byte_address = 0;
    int bytes = 4;
};

/** Outcome of simulating one warp-wide shared-memory load. */
struct SmemSimResult {
    /** 4-byte shared-memory words touched, summed over threads (an
     * unaligned 4-byte access touches two words). */
    int64_t word_touches = 0;
    /** Serialized wavefronts = max over banks of distinct word rows
     * addressed in that bank; 1 means conflict-free. */
    int64_t wavefronts = 0;
    /** wavefronts - 1: extra serialized passes caused by conflicts. */
    int64_t conflicts = 0;
};

/**
 * Simulates one warp-synchronous load against a 32-bank x 4-byte
 * shared memory. Threads accessing the same word are broadcast
 * (no conflict); distinct words in the same bank serialize.
 */
SmemSimResult simulateWarpLoad(const std::vector<WarpAccess> &accesses);

/** Access pattern of the *naive* W4A8 weight load for @p threads
 * threads: thread t reads 4 bytes at byte offset 2t (overlapping,
 * misaligned). */
std::vector<WarpAccess> naiveW4A8AccessPattern(int threads);

/** Access pattern of the *interleaved* W4A8 weight load: thread t reads
 * the aligned 32-bit word t. */
std::vector<WarpAccess> interleavedW4A8AccessPattern(int threads);

/** Number of ldmatrix issues per thread needed to gather its eight
 * INT4 values under each layout. @{ */
int naiveW4A8LdmatrixCount();
int interleavedW4A8LdmatrixCount();
/** @} */

} // namespace comet
