#include "comet/kernel/pipeline.h"

#include <algorithm>

#include "comet/common/status.h"

namespace comet {

double
pipelineIterationTime(const StageTimes &stages, PipelineMode mode)
{
    const double serial = stages.global_load + stages.smem_load +
                          stages.convert + stages.mma;
    if (mode == PipelineMode::kSerial)
        return serial;
    // Steady state of the two-level overlap: the async-copy engine
    // streams the next buffer (global_load), the CUDA cores transform
    // the current one (convert), and the warps issue ldmatrix + mma
    // from the previous one. Each resource works concurrently, so the
    // slowest one sets the cadence.
    return std::max({stages.global_load, stages.convert,
                     stages.smem_load + stages.mma});
}

double
pipelineTime(const StageTimes &stages, PipelineMode mode,
             int64_t iterations)
{
    COMET_CHECK(iterations >= 1);
    const double iter = pipelineIterationTime(stages, mode);
    if (mode == PipelineMode::kSerial)
        return static_cast<double>(iterations) * iter;
    // Fill: the first fragment must traverse every stage before the
    // overlap is established.
    const double fill = stages.global_load + stages.smem_load +
                        stages.convert + stages.mma;
    return fill + static_cast<double>(iterations - 1) * iter;
}

} // namespace comet
