/**
 * @file
 * Register-level packing of sub-byte integers (paper Section 4.3).
 *
 * The W4Ax kernel moves data through 32-bit registers exactly as the GPU
 * does: eight INT4 values or four INT8 values per register. These
 * helpers pack/unpack such register words and are the substrate for the
 * fast-conversion and interleaving code. Nibble/byte order is
 * little-endian: value i occupies bits [4*i, 4*i+4) (INT4) or
 * [8*i, 8*i+8) (INT8).
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace comet {

/** Packs eight signed INT4 values (each in [-8, 7]) into one register
 * word; value i lands in bits [4i, 4i+4). Aborts on out-of-range
 * values — silently masking them would corrupt the packed lanes. */
uint32_t packInt4x8(const std::array<int8_t, 8> &values);

/** Unpacks a register word into eight sign-extended INT4 values. */
std::array<int8_t, 8> unpackInt4x8(uint32_t word);

/** Packs four signed INT8 values into one register word; value i lands
 * in bits [8i, 8i+8). */
uint32_t packInt8x4(const std::array<int8_t, 4> &values);

/** Unpacks a register word into four INT8 values. */
std::array<int8_t, 4> unpackInt8x4(uint32_t word);

/**
 * Emulates the CUDA dp4a instruction: per-byte signed multiply of two
 * packed INT8 register words, accumulated into @p acc.
 */
int32_t dp4a(uint32_t a, uint32_t b, int32_t acc);

/**
 * Emulates the INT4 dot-product path of the INT4 tensor core: per-nibble
 * signed multiply of two packed INT4 register words (8 products),
 * accumulated into @p acc.
 */
int32_t dp8a4(uint32_t a, uint32_t b, int32_t acc);

} // namespace comet
