/**
 * @file
 * Emulated tensor-core matrix-multiply-accumulate tiles.
 *
 * These functions reproduce, on the CPU, the numerics of the A100 mma
 * paths the W4Ax kernel issues:
 *
 *  - mmaInt8: INT8 x INT8 -> INT32, the W8A8/W4A8 compute instruction
 *    (mma.m16n8k32 in the paper; here generic over the k extent).
 *  - mmaInt4: INT4 x INT4 -> INT32, the W4A4 compute instruction.
 *  - mmaW4A8Prepared: the full W4A8 path — packed INT4 weights in the
 *    prepared (interleaved + location-switched) layout are widened with
 *    the 2-instruction fast conversion and consumed by the INT8 path.
 *    The accumulator comes back scaled by kFastConvMultiplier (16);
 *    callers fold 1/16 into the scale exactly as the paper describes.
 *
 * All three operate on the packed register words via dp4a/dp8a4, so the
 * bit-level layout machinery is exercised end to end.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/kernel/convert.h"
#include "comet/tensor/packed.h"

namespace comet {

/** An INT32 accumulator tile of logical extent m x n. */
class AccumTile
{
  public:
    AccumTile(int64_t m, int64_t n)
        : m_(m), n_(n), acc_(static_cast<size_t>(m * n), 0)
    {
        COMET_CHECK(m > 0 && n > 0);
    }

    int64_t m() const { return m_; }
    int64_t n() const { return n_; }

    int32_t &
    at(int64_t i, int64_t j)
    {
        COMET_CHECK(i >= 0 && i < m_ && j >= 0 && j < n_);
        return acc_[static_cast<size_t>(i * n_ + j)];
    }

    int32_t
    at(int64_t i, int64_t j) const
    {
        COMET_CHECK(i >= 0 && i < m_ && j >= 0 && j < n_);
        return acc_[static_cast<size_t>(i * n_ + j)];
    }

    void
    reset()
    {
        std::fill(acc_.begin(), acc_.end(), 0);
    }

  private:
    int64_t m_;
    int64_t n_;
    std::vector<int32_t> acc_;
};

/**
 * INT8 mma: acc[i][j] += dot(a[a_row0+i, k0:k0+k_len],
 *                            b[b_row0+j, k0:k0+k_len]).
 * Consumes packed 32-bit words through dp4a. @pre k0 and k_len are
 * multiples of 4.
 */
void mmaInt8(AccumTile &acc, const Int8Tensor &a, int64_t a_row0,
             const Int8Tensor &b, int64_t b_row0, int64_t k0,
             int64_t k_len);

/**
 * INT4 mma: same contraction with both operands packed INT4.
 * @pre k0 and k_len are multiples of 8.
 */
void mmaInt4(AccumTile &acc, const Int4Tensor &a, int64_t a_row0,
             const Int4Tensor &b, int64_t b_row0, int64_t k0,
             int64_t k_len);

/**
 * W4A8 mma with fast weight widening. @p w_prepared must be in the
 * prepareWeightsForW4A8() layout. The returned accumulator values are
 * kFastConvMultiplier times the true dot products.
 *
 * @pre k0 and k_len are multiples of kInterleaveUnit (16).
 * @param counter optional counter of emulated conversion instructions.
 */
void mmaW4A8Prepared(AccumTile &acc, const Int8Tensor &a, int64_t a_row0,
                     const Int4Tensor &w_prepared, int64_t w_row0,
                     int64_t k0, int64_t k_len,
                     InstructionCounter *counter = nullptr);

} // namespace comet
