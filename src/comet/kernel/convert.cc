#include "comet/kernel/convert.h"

#include "comet/kernel/int4_pack.h"

namespace comet {

namespace {

/** Adds to the counter if one is attached. */
inline void
count(InstructionCounter *counter, int64_t n)
{
    if (counter != nullptr)
        counter->add(n);
}

} // namespace

ConvertedPair
naiveInt4ToInt8(uint32_t word, InstructionCounter *counter)
{
    // Emulates the instruction-by-instruction naive widening. PTX has
    // no 4-bit funnel shift or sign extension, so each nibble is
    // extracted, tested, extended and re-inserted individually. The
    // counter mirrors the per-value cost the paper cites (~10).
    uint32_t lo = 0, hi = 0;
    for (int i = 0; i < 8; ++i) {
        uint32_t nibble = word >> (4 * i); // shr
        nibble &= 0xf;                     // and
        count(counter, 2);

        uint32_t sign = nibble & 0x8;      // and
        uint32_t ext = sign ? 0xf0u : 0u;  // setp + sel
        uint32_t byte = nibble | ext;      // or
        count(counter, 4);

        // Insert into the destination byte lane: shift + or, plus the
        // lane bookkeeping (mask of the target byte, register select)
        // that a real SASS sequence spends on sub-word placement.
        const int lane = i % 4;
        uint32_t placed = byte << (8 * lane); // shl
        if (i < 4)
            lo |= placed;                     // or
        else
            hi |= placed;                     // or
        count(counter, 4);
    }
    return ConvertedPair{lo, hi};
}

uint32_t
locationSwitch(uint32_t word)
{
    // Storage nibble 2k   <- logical nibble k      (k = 0..3)
    // Storage nibble 2k+1 <- logical nibble k + 4
    uint32_t out = 0;
    for (int k = 0; k < 4; ++k) {
        const uint32_t even = (word >> (4 * k)) & 0xf;
        const uint32_t odd = (word >> (4 * (k + 4))) & 0xf;
        out |= even << (4 * (2 * k));
        out |= odd << (4 * (2 * k + 1));
    }
    return out;
}

uint32_t
locationSwitchInverse(uint32_t word)
{
    uint32_t out = 0;
    for (int k = 0; k < 4; ++k) {
        const uint32_t even = (word >> (4 * (2 * k))) & 0xf;
        const uint32_t odd = (word >> (4 * (2 * k + 1))) & 0xf;
        out |= even << (4 * k);
        out |= odd << (4 * (k + 4));
    }
    return out;
}

ConvertedPair
fastInt4ToInt8(uint32_t switched_word, InstructionCounter *counter)
{
    // Zero extension into the high nibble of each byte: a signed INT8
    // byte whose high nibble is the INT4 value and whose low nibble is
    // zero equals exactly 16x the INT4 value. The location switch has
    // already placed logical values 0..3 in even nibble slots and 4..7
    // in odd slots, so two masks produce both registers in order.
    const uint32_t lo = (switched_word << 4) & 0xf0f0f0f0u; // shl + and
    count(counter, 2);
    const uint32_t hi = switched_word & 0xf0f0f0f0u;        // and
    count(counter, 1);
    return ConvertedPair{lo, hi};
}

} // namespace comet
