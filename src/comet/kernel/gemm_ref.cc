#include "comet/kernel/gemm_ref.h"

#include "comet/runtime/thread_pool.h"

namespace comet {

Tensor
gemmFloat(const Tensor &x, const Tensor &w)
{
    COMET_CHECK(x.shape().rank() == 2 && w.shape().rank() == 2);
    COMET_CHECK_MSG(x.cols() == w.cols(),
                    "inner dimensions must match (X [M,K], W [N,K])");
    const int64_t m_dim = x.rows(), n_dim = w.rows(), k_dim = x.cols();
    Tensor out(m_dim, n_dim);
    // Output rows are independent; chunk bodies run the sequential
    // per-row loop unchanged, so results are bit-identical for any
    // pool size.
    parallelFor(0, m_dim, 1, [&](int64_t m_begin, int64_t m_end) {
        for (int64_t m = m_begin; m < m_end; ++m) {
            for (int64_t n = 0; n < n_dim; ++n) {
                double sum = 0.0;
                for (int64_t k = 0; k < k_dim; ++k)
                    sum += static_cast<double>(x.at(m, k)) *
                           w.at(n, k);
                out.at(m, n) = static_cast<float>(sum);
            }
        }
    });
    return out;
}

Tensor
gemmInt8(const QuantizedInt8 &a, const QuantizedInt8 &w)
{
    COMET_CHECK(a.data.cols() == w.data.cols());
    const int64_t m_dim = a.data.rows();
    const int64_t n_dim = w.data.rows();
    const int64_t k_dim = a.data.cols();
    Tensor out(m_dim, n_dim);
    parallelFor(0, m_dim, 1, [&](int64_t m_begin, int64_t m_end) {
        for (int64_t m = m_begin; m < m_end; ++m) {
            for (int64_t n = 0; n < n_dim; ++n) {
                int64_t acc = 0;
                for (int64_t k = 0; k < k_dim; ++k) {
                    acc += static_cast<int64_t>(a.data.get(m, k)) *
                           w.data.get(n, k);
                }
                out.at(m, n) =
                    static_cast<float>(acc) *
                    a.row_params[static_cast<size_t>(m)].scale *
                    w.row_params[static_cast<size_t>(n)].scale;
            }
        }
    });
    return out;
}

Tensor
gemmInt4(const QuantizedInt4 &a, const QuantizedInt4 &w)
{
    COMET_CHECK(a.data.cols() == w.data.cols());
    const int64_t m_dim = a.data.rows();
    const int64_t n_dim = w.data.rows();
    const int64_t k_dim = a.data.cols();
    Tensor out(m_dim, n_dim);
    parallelFor(0, m_dim, 1, [&](int64_t m_begin, int64_t m_end) {
        for (int64_t m = m_begin; m < m_end; ++m) {
            for (int64_t n = 0; n < n_dim; ++n) {
                int64_t acc = 0;
                for (int64_t k = 0; k < k_dim; ++k) {
                    acc += static_cast<int64_t>(a.data.get(m, k)) *
                           w.data.get(n, k);
                }
                out.at(m, n) =
                    static_cast<float>(acc) *
                    a.row_params[static_cast<size_t>(m)].scale *
                    w.row_params[static_cast<size_t>(n)].scale;
            }
        }
    });
    return out;
}

} // namespace comet
