#include "comet/kernel/fp4.h"

#include <cmath>

#include "comet/common/status.h"
#include "comet/kernel/int4_pack.h"

namespace comet {

namespace {

/** The eight non-negative E2M1 magnitudes, indexed by (exp << 1) |
 * mantissa. */
constexpr float kMagnitudes[8] = {0.0f, 0.5f, 1.0f, 1.5f,
                                  2.0f, 3.0f, 4.0f, 6.0f};

inline void
count(InstructionCounter *counter, int64_t n)
{
    if (counter != nullptr)
        counter->add(n);
}

} // namespace

float
decodeFp4(uint8_t code)
{
    COMET_CHECK(code <= 0xf);
    const float magnitude = kMagnitudes[code & 0x7];
    return (code & 0x8) ? -magnitude : magnitude;
}

uint8_t
encodeFp4(float value)
{
    const uint8_t sign = value < 0.0f ? 0x8 : 0x0;
    const float magnitude = std::fabs(value);
    // Nearest representable magnitude; ties round to the larger one
    // (matches round-half-away for this monotone table).
    uint8_t best = 0;
    float best_err = magnitude; // distance to 0
    for (uint8_t i = 1; i < 8; ++i) {
        const float err = std::fabs(magnitude - kMagnitudes[i]);
        if (err < best_err ||
            (err == best_err && kMagnitudes[i] < kMagnitudes[best])) {
            best = i;
            best_err = err;
        }
    }
    return sign | best;
}

int8_t
fp4ToInt8(uint8_t code, InstructionCounter *counter)
{
    COMET_CHECK(code <= 0xf);
    const uint8_t exponent = (code >> 1) & 0x3; // extract: shr + and
    const uint8_t mantissa = code & 0x1;
    count(counter, 2);

    // 2x the decoded magnitude as an integer. Subnormal (e = 0):
    // 2 * m * 0.5 = m. Normal (e > 0): 2 * (2 + m) * 2^(e-1) / 2 =
    // (2 + m) << (e - 1) — the "exponent bits become shift amounts"
    // scheme the paper describes.
    int32_t magnitude;
    if (exponent == 0) {
        magnitude = mantissa;
    } else {
        magnitude = (2 + mantissa) << (exponent - 1); // or + shl
    }
    count(counter, 1);

    // Sign select (one predicated negate).
    const int32_t value = (code & 0x8) ? -magnitude : magnitude;
    count(counter, 1);
    return static_cast<int8_t>(value);
}

uint32_t
packFp4x8(const std::array<uint8_t, 8> &codes)
{
    uint32_t word = 0;
    for (int i = 0; i < 8; ++i) {
        COMET_CHECK(codes[static_cast<size_t>(i)] <= 0xf);
        word |= static_cast<uint32_t>(codes[static_cast<size_t>(i)])
                << (4 * i);
    }
    return word;
}

std::array<uint8_t, 8>
unpackFp4x8(uint32_t word)
{
    std::array<uint8_t, 8> codes{};
    for (int i = 0; i < 8; ++i)
        codes[static_cast<size_t>(i)] =
            static_cast<uint8_t>((word >> (4 * i)) & 0xf);
    return codes;
}

ConvertedPair
fp4RegisterToInt8(uint32_t word, InstructionCounter *counter)
{
    const std::array<uint8_t, 8> codes = unpackFp4x8(word);
    std::array<int8_t, 4> lo{}, hi{};
    for (int i = 0; i < 4; ++i) {
        lo[static_cast<size_t>(i)] =
            fp4ToInt8(codes[static_cast<size_t>(i)], counter);
        hi[static_cast<size_t>(i)] =
            fp4ToInt8(codes[static_cast<size_t>(i + 4)], counter);
    }
    return ConvertedPair{packInt8x4(lo), packInt8x4(hi)};
}

} // namespace comet
