#include "comet/attention/decode_attention.h"

#include <algorithm>
#include <cmath>

#include "comet/runtime/thread_pool.h"

namespace comet {

namespace {

void
validate(const AttentionConfig &config, const std::vector<float> &q,
         int64_t k_cols, int64_t v_cols)
{
    COMET_CHECK(config.num_heads > 0 && config.num_kv_heads > 0 &&
                config.head_dim > 0);
    COMET_CHECK(config.num_heads % config.num_kv_heads == 0);
    COMET_CHECK(static_cast<int64_t>(q.size()) == config.qDim());
    COMET_CHECK(k_cols == config.kvDim());
    COMET_CHECK(v_cols == config.kvDim());
}

} // namespace

std::vector<float>
decodeAttentionReference(const AttentionConfig &config,
                         const std::vector<float> &q, const Tensor &k,
                         const Tensor &v)
{
    validate(config, q, k.cols(), v.cols());
    COMET_CHECK(k.rows() == v.rows());
    const int64_t tokens = k.rows();
    const int64_t group = config.num_heads / config.num_kv_heads;
    const double inv_sqrt =
        1.0 / std::sqrt(static_cast<double>(config.head_dim));

    std::vector<float> out(static_cast<size_t>(config.qDim()), 0.0f);
    // Heads are independent and write disjoint output slices; each
    // head's computation is the unchanged sequential loop, so the
    // result is bit-identical for any pool size.
    parallelFor(0, config.num_heads, 1, [&](int64_t h_begin,
                                            int64_t h_end) {
        std::vector<double> scores(static_cast<size_t>(tokens));
        for (int64_t h = h_begin; h < h_end; ++h) {
            const int64_t q_base = h * config.head_dim;
            const int64_t kv_base = (h / group) * config.head_dim;
            double max_score = -1e300;
            for (int64_t t = 0; t < tokens; ++t) {
                double dot = 0.0;
                for (int64_t d = 0; d < config.head_dim; ++d) {
                    dot += static_cast<double>(
                               q[static_cast<size_t>(q_base + d)]) *
                           k.at(t, kv_base + d);
                }
                scores[static_cast<size_t>(t)] = dot * inv_sqrt;
                max_score = std::max(max_score,
                                     scores[static_cast<size_t>(t)]);
            }
            double sum = 0.0;
            for (int64_t t = 0; t < tokens; ++t) {
                scores[static_cast<size_t>(t)] = std::exp(
                    scores[static_cast<size_t>(t)] - max_score);
                sum += scores[static_cast<size_t>(t)];
            }
            for (int64_t d = 0; d < config.head_dim; ++d) {
                double acc = 0.0;
                for (int64_t t = 0; t < tokens; ++t) {
                    acc += scores[static_cast<size_t>(t)] *
                           v.at(t, kv_base + d);
                }
                out[static_cast<size_t>(q_base + d)] =
                    static_cast<float>(acc / sum);
            }
        }
    });
    return out;
}

namespace {

/**
 * Shared online-softmax core: streams tokens [0, tokens) in chunks,
 * reading cache values through @p read_k / @p read_v so the same code
 * serves the float and quantized paths.
 */
template <typename ReadK, typename ReadV>
std::vector<float>
onlineCore(const AttentionConfig &config, const std::vector<float> &q,
           int64_t tokens, ReadK read_k, ReadV read_v)
{
    COMET_CHECK(config.chunk_tokens > 0);
    const int64_t group = config.num_heads / config.num_kv_heads;
    const double inv_sqrt =
        1.0 / std::sqrt(static_cast<double>(config.head_dim));

    std::vector<float> out(static_cast<size_t>(config.qDim()), 0.0f);
    // Heads parallelize across the runtime pool: each head streams
    // the cache with its own running state and writes a disjoint
    // output slice, so the result is bit-identical for any pool size.
    parallelFor(0, config.num_heads, 1, [&](int64_t h_begin,
                                            int64_t h_end) {
    std::vector<double> acc(static_cast<size_t>(config.head_dim));
    std::vector<double> chunk_scores(
        static_cast<size_t>(config.chunk_tokens));

    for (int64_t h = h_begin; h < h_end; ++h) {
        const int64_t q_base = h * config.head_dim;
        const int64_t kv_base = (h / group) * config.head_dim;

        // Running state of the online softmax.
        double running_max = -1e300;
        double running_sum = 0.0;
        std::fill(acc.begin(), acc.end(), 0.0);

        for (int64_t t0 = 0; t0 < tokens;
             t0 += config.chunk_tokens) {
            const int64_t t1 =
                std::min(t0 + config.chunk_tokens, tokens);

            // Chunk scores and chunk max.
            double chunk_max = -1e300;
            for (int64_t t = t0; t < t1; ++t) {
                double dot = 0.0;
                for (int64_t d = 0; d < config.head_dim; ++d) {
                    dot += static_cast<double>(
                               q[static_cast<size_t>(q_base + d)]) *
                           read_k(t, kv_base + d);
                }
                const double s = dot * inv_sqrt;
                chunk_scores[static_cast<size_t>(t - t0)] = s;
                chunk_max = std::max(chunk_max, s);
            }

            // Rescale the running state to the new max.
            const double new_max = std::max(running_max, chunk_max);
            const double rescale = std::exp(running_max - new_max);
            running_sum *= rescale;
            for (double &a : acc)
                a *= rescale;

            // Fold the chunk in.
            for (int64_t t = t0; t < t1; ++t) {
                const double w = std::exp(
                    chunk_scores[static_cast<size_t>(t - t0)] -
                    new_max);
                running_sum += w;
                for (int64_t d = 0; d < config.head_dim; ++d) {
                    acc[static_cast<size_t>(d)] +=
                        w * read_v(t, kv_base + d);
                }
            }
            running_max = new_max;
        }

        COMET_CHECK(running_sum > 0.0);
        for (int64_t d = 0; d < config.head_dim; ++d) {
            out[static_cast<size_t>(q_base + d)] = static_cast<float>(
                acc[static_cast<size_t>(d)] / running_sum);
        }
    }
    }); // per-head parallelFor
    return out;
}

} // namespace

std::vector<float>
decodeAttentionOnline(const AttentionConfig &config,
                      const std::vector<float> &q, const Tensor &k,
                      const Tensor &v)
{
    validate(config, q, k.cols(), v.cols());
    COMET_CHECK(k.rows() == v.rows());
    return onlineCore(
        config, q, k.rows(),
        [&](int64_t t, int64_t c) {
            return static_cast<double>(k.at(t, c));
        },
        [&](int64_t t, int64_t c) {
            return static_cast<double>(v.at(t, c));
        });
}

std::vector<float>
decodeAttentionQuantized(const AttentionConfig &config,
                         const std::vector<float> &q,
                         const QuantizedKv &k, const QuantizedKv &v,
                         const KvCacheQuantizer &quantizer)
{
    validate(config, q, k.channels, v.channels);
    COMET_CHECK(k.tokens == v.tokens);
    COMET_CHECK(quantizer.config().group_size == k.group_size);

    // Dequantize each cache once up front through the vectorized
    // span path instead of widening per (token, channel) read: the
    // per-value affine transform is identical, and the old inner-loop
    // lookup repeated the same dequantization for every head of a KV
    // group. The float values streamed into the online softmax are
    // bit-identical either way.
    const Tensor k_float = quantizer.dequantize(k);
    const Tensor v_float = quantizer.dequantize(v);
    return onlineCore(
        config, q, k.tokens,
        [&](int64_t t, int64_t c) {
            return static_cast<double>(k_float.at(t, c));
        },
        [&](int64_t t, int64_t c) {
            return static_cast<double>(v_float.at(t, c));
        });
}

std::vector<std::vector<float>>
decodeAttentionOnlineBatch(const AttentionConfig &config,
                           const std::vector<DecodeBatchItem> &batch)
{
    for (const DecodeBatchItem &item : batch) {
        COMET_CHECK(item.q != nullptr && item.k != nullptr &&
                    item.v != nullptr);
    }
    std::vector<std::vector<float>> out(batch.size());
    // One chunk per sequence: the per-sequence computation is exactly
    // decodeAttentionOnline (whose inner per-head parallelFor runs
    // inline when nested), so batched and one-at-a-time results are
    // identical for any pool size.
    parallelFor(
        0, static_cast<int64_t>(batch.size()), 1,
        [&](int64_t b_begin, int64_t b_end) {
            for (int64_t b = b_begin; b < b_end; ++b) {
                const DecodeBatchItem &item =
                    batch[static_cast<size_t>(b)];
                out[static_cast<size_t>(b)] = decodeAttentionOnline(
                    config, *item.q, *item.k, *item.v);
            }
        });
    return out;
}

double
decodeAttentionKvBytes(const AttentionConfig &config, int64_t tokens,
                       double bits_per_value)
{
    COMET_CHECK(tokens >= 0);
    // K and V, every kv head, every channel, every cached token.
    return 2.0 * static_cast<double>(tokens) *
           static_cast<double>(config.kvDim()) * bits_per_value / 8.0;
}

} // namespace comet
