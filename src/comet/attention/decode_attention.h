/**
 * @file
 * Decode-phase attention over a (quantized) KV cache.
 *
 * The paper's Section 7 names attention-kernel optimization as the
 * next step after the W4Ax GEMM work, and its Figure 2 analysis shows
 * the decode attention (activation-activation) operator is memory-
 * bound — the reason the KV cache can be quantized to 4 bits "without
 * considering the quantized granularity". This module implements that
 * operator for real:
 *
 *  - a reference float implementation (naive softmax),
 *  - an online-softmax (FlashDecoding-style) blocked implementation
 *    that streams the KV cache in chunks with running max/sum rescaling
 *    — the algorithmic transformation the paper cites ([9], [52]) —
 *    numerically equivalent to the reference, and
 *  - a quantized-cache path that consumes QuantizedKv directly,
 *    dequantizing each streamed value on the fly (what a fused KV4
 *    attention kernel does).
 *
 * Layouts: Q is [heads * head_dim] for one token; K and V are
 * [tokens, kv_heads * head_dim] (the cache), GQA maps query head h to
 * kv head h / (heads / kv_heads).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/quant/kv_quant.h"
#include "comet/tensor/tensor.h"

namespace comet {

/** Geometry of one attention invocation. */
struct AttentionConfig {
    int64_t num_heads = 8;
    int64_t num_kv_heads = 8;
    int64_t head_dim = 64;
    /** KV chunk length for the online-softmax path. */
    int64_t chunk_tokens = 64;

    int64_t
    qDim() const
    {
        return num_heads * head_dim;
    }

    int64_t
    kvDim() const
    {
        return num_kv_heads * head_dim;
    }
};

/**
 * Reference decode attention for one query token: full scores,
 * two-pass softmax in double precision. O(tokens * heads * head_dim).
 *
 * @param q  query vector [heads * head_dim] (RoPE already applied)
 * @param k  key cache [tokens, kv_heads * head_dim]
 * @param v  value cache, same shape as k
 * @return   attention output [heads * head_dim]
 */
std::vector<float> decodeAttentionReference(
    const AttentionConfig &config, const std::vector<float> &q,
    const Tensor &k, const Tensor &v);

/**
 * Online-softmax decode attention: streams the cache in
 * config.chunk_tokens chunks keeping a running (max, sum, accumulator)
 * per head — one pass over the KV cache, constant extra memory.
 * Numerically equivalent to the reference up to float rounding.
 */
std::vector<float> decodeAttentionOnline(const AttentionConfig &config,
                                         const std::vector<float> &q,
                                         const Tensor &k,
                                         const Tensor &v);

/**
 * Online-softmax decode attention reading *quantized* K and V caches:
 * each streamed cache value is dequantized on the fly from its packed
 * INT form (the fused-KV4-attention data path). The result
 * approximates the float-cache output with KV-quantization error
 * only.
 */
std::vector<float> decodeAttentionQuantized(
    const AttentionConfig &config, const std::vector<float> &q,
    const QuantizedKv &k, const QuantizedKv &v,
    const KvCacheQuantizer &quantizer);

/** One sequence of a batched decode-attention step: its query vector
 * and its (float) K/V caches. Pointees must outlive the call. */
struct DecodeBatchItem {
    const std::vector<float> *q = nullptr;
    const Tensor *k = nullptr;
    const Tensor *v = nullptr;
};

/**
 * Batched decode step: runs decodeAttentionOnline for every sequence
 * in @p batch, fanning the independent sequences out across the
 * runtime pool (each sequence may hold a different number of cached
 * tokens — the continuous-batching shape). Outputs are per sequence,
 * bit-identical to calling decodeAttentionOnline one sequence at a
 * time, for any pool size.
 */
std::vector<std::vector<float>> decodeAttentionOnlineBatch(
    const AttentionConfig &config,
    const std::vector<DecodeBatchItem> &batch);

/** Bytes of KV cache read by one decode-attention invocation at the
 * given storage precision (the Figure 2 traffic term). */
double decodeAttentionKvBytes(const AttentionConfig &config,
                              int64_t tokens, double bits_per_value);

} // namespace comet
