/**
 * @file
 * Content keys for the quantized prefix cache.
 *
 * A prompt is keyed at KV-page granularity: every *full* block of
 * block_tokens prompt tokens gets one 64-bit chained key. Key i hashes
 * the block's token ids *and* key i-1, so a single key equality test
 * certifies the entire prefix up to and including block i — the radix
 * index (radix_index.h) can therefore be a flat hash-keyed trie whose
 * lookup is one map probe per block instead of a token-by-token walk.
 *
 * Two design points carry the correctness argument:
 *
 *  - **Quantized content, not raw tokens.** The chain seed mixes in
 *    the cache's quantization geometry (bits per value, page size,
 *    quantization group length). COMET's channel-wise group quantizer
 *    (KvCacheQuantizer) is a deterministic function of the tokens in a
 *    group, so equal token prefixes under equal quantization configs
 *    produce byte-identical quantized KV pages — which is exactly the
 *    equivalence class a key identifies. Changing the quantization
 *    config changes every key, so stale-precision pages can never be
 *    grafted.
 *
 *  - **Namespace isolation.** The per-tenant namespace id is folded
 *    into the chain seed, so the same prompt content under two tenants
 *    yields disjoint key chains. A lookup can only ever traverse nodes
 *    of its own namespace — one tenant's hot prefix is invisible (also
 *    through timing: no shared-node path exists to probe) to another.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace comet {
namespace prefix {

/** The chained content key of one full prompt block. */
using BlockKey = uint64_t;

/** Quantization geometry folded into every key chain; two caches
 * share pages only when all fields match. */
struct KeySpace {
    int64_t namespace_id = 0;    ///< tenant namespace (isolation)
    double bits_per_value = 4.0; ///< KV precision of the pages
    int64_t block_tokens = 16;   ///< tokens per page
    int64_t quant_group_tokens = 64; ///< quantizer group length
};

/** The chain seed of a key space (key "-1" of every chain in it). */
uint64_t keySpaceSeed(const KeySpace &space);

/**
 * Computes the chained keys of every full block of @p token_ids:
 * the result holds token_ids.size() / block_tokens keys (the trailing
 * partial block of a prompt is never keyed — it is mutable until the
 * sequence's decode appends move past it, so it is not cacheable).
 */
std::vector<BlockKey> chainBlockKeys(const KeySpace &space,
                                     const std::vector<int32_t> &token_ids);

/** One chain link: the key of the block holding @p begin..@p end of
 * @p token_ids, given the previous link (or the space seed). */
BlockKey chainNextKey(BlockKey previous,
                      const std::vector<int32_t> &token_ids,
                      int64_t begin, int64_t end);

} // namespace prefix
} // namespace comet
