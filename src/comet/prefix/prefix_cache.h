/**
 * @file
 * The prefix cache: radix index + block references + accounting.
 *
 * PrefixCache is the layer between the pure index (radix_index.h) and
 * the paged KV cache. It pins every indexed page with one allocator
 * reference of its own, so a cached prefix survives the sequences
 * that built it — that reference is what the rest of the stack
 * observes, and what the chaos auditors account for (an index-held
 * block legitimately carries one refcount more than its chain
 * membership explains).
 *
 * Lifecycle of a page:
 *
 *  - **graft** (match): an incoming prompt's key chain is walked
 *    through the index; matched block ids are handed to the caller,
 *    which maps them into the new sequence via addRef — the COW
 *    machinery from lazy forks, unchanged. `COMET_FAILPOINT
 *    ("prefix.graft")` sits on this path: a fired graft is a forced
 *    miss, and the request falls back to a full prefill (recoverable
 *    by construction — the cache is an optimization, never load-
 *    bearing for correctness).
 *
 *  - **insert**: after a prompt's blocks exist, its full-block chain
 *    is offered to the index root-first; each newly indexed page
 *    gains the cache's reference. Duplicate keys keep the first
 *    insert (the page already cached serves future matches).
 *
 *  - **evict**: when the KV cache wants memory back, evictOne()
 *    releases the least-recently-used *leaf* page that only the index
 *    still references (refcount 1). Interior nodes and pages mapped
 *    into live sequences are never evicted. Order is deterministic
 *    (logical LRU ticks), so eviction behaves identically across runs
 *    and thread counts.
 *
 * All counters land in the global metrics registry under `prefix.*`
 * and the three operations emit `prefix/lookup`, `prefix/insert`, and
 * `prefix/evict` spans. Not thread-safe — the owning PagedKvCache is
 * the single mutator (itself driven by one scheduler thread).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/prefix/block_key.h"
#include "comet/prefix/radix_index.h"

namespace comet {

class BlockAllocator;

namespace prefix {

/** Lifetime totals of one PrefixCache (also published as prefix.*
 * metrics; kept locally so tests don't depend on the global
 * registry's cross-test accumulation). */
struct PrefixCacheStats {
    int64_t lookups = 0;        ///< match() calls with >= 1 key
    int64_t hits = 0;           ///< lookups matching >= 1 block
    int64_t misses = 0;         ///< lookups matching 0 blocks
    int64_t blocks_matched = 0; ///< pages grafted instead of computed
    int64_t blocks_inserted = 0; ///< pages newly indexed
    int64_t blocks_evicted = 0;  ///< pages released by eviction
    int64_t bytes_saved = 0;     ///< blocks_matched * bytes per page
    int64_t forced_misses = 0;   ///< lookups failed by prefix.graft
};

/**
 * The reference-holding cache over one BlockAllocator (see the file
 * comment). @p block_bytes is the quantized size of one page, used
 * only for the bytes-saved accounting.
 */
class PrefixCache
{
  public:
    /** Binds the cache to @p allocator; @p block_bytes sizes the
     * bytes-saved accounting. Holds no pages until insert(). */
    PrefixCache(BlockAllocator *allocator, int64_t block_bytes);
    /** Releases every cache-held reference (clear()). */
    ~PrefixCache();

    /** Caches hold allocator references and cannot be copied. @{ */
    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;

    /**
     * Longest-prefix match of @p keys in @p namespace_id, capped at
     * @p max_blocks; matched block ids are appended to @p blocks
     * WITHOUT taking references — the caller grafts them (addRef)
     * while mapping its sequence. Returns the number matched (0 when
     * the graft failpoint fires).
     */
    int64_t match(int64_t namespace_id,
                  const std::vector<BlockKey> &keys, int64_t max_blocks,
                  std::vector<int64_t> *blocks);

    /**
     * Offers the chain @p keys -> @p blocks (parallel arrays,
     * root-first) for indexing; every newly indexed page gains the
     * cache's reference. Stops at the first key whose insert fails
     * with a missing parent (cannot happen for chains offered whole).
     * Returns the number of pages newly indexed.
     */
    int64_t insert(int64_t namespace_id,
                   const std::vector<BlockKey> &keys,
                   const std::vector<int64_t> &blocks);

    /**
     * Releases the LRU leaf page only the index still references.
     * Returns false when nothing is evictable (every cached page is
     * mapped into a live sequence or interior to a cached chain).
     */
    bool evictOne();

    /** Pages whose only reference is the index — an upper bound on
     * consecutive successful evictOne() calls, and exactly the count
     * freed by evicting until dry (leaf eviction unblocks parents). */
    int64_t evictableBlocks() const;

    /** Pages currently indexed (each holds one cache reference). */
    int64_t ownedBlocks() const
    {
        return index_.size();
    }

    /** Block ids of every indexed page, ascending (chaos audits). */
    std::vector<int64_t> heldBlocks() const
    {
        return index_.blockIds();
    }

    /** Drops the index and every cache-held reference. */
    void clear();

    /** Lifetime totals (see PrefixCacheStats). */
    const PrefixCacheStats &stats() const
    {
        return stats_;
    }

  private:
    BlockAllocator *allocator_;
    int64_t block_bytes_;
    RadixIndex index_;
    PrefixCacheStats stats_;
};

} // namespace prefix
} // namespace comet
