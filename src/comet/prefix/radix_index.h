/**
 * @file
 * The radix index of cached prompt-block chains.
 *
 * Logically a radix tree over quantized prompt blocks: each node is
 * one cached KV page whose path from the root spells a prompt prefix.
 * Because block keys are *chained* hashes (block_key.h), a node's key
 * already identifies its whole path, so the tree is stored flat — one
 * map probe per block on lookup — while parent links and child counts
 * preserve the structural constraint that matters for eviction: a
 * node may only leave the index when it has no children (evicting an
 * interior node would orphan the longer prefixes hanging off it).
 *
 * The index stores block *ids* only; it never touches an allocator.
 * The owner (PagedKvCache via prefix::PrefixCache) holds one
 * reference on every indexed block and decides evictability from the
 * allocator's refcounts. Recency is a logical LRU tick bumped on
 * every touch, so eviction order is a deterministic function of the
 * operation history — a requirement of the serving stack's
 * bit-identical replay guarantee, which wall-clock recency would
 * break.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "comet/prefix/block_key.h"

namespace comet {
namespace prefix {

/** One cached page in the index. */
struct IndexNode {
    BlockKey key = 0;        ///< chained content key (path identity)
    BlockKey parent = 0;     ///< parent key; 0 = child of the root
    int64_t block = -1;      ///< physical KV block id
    int64_t namespace_id = 0; ///< owning tenant namespace
    int64_t depth = 0;       ///< blocks from the root (0-based)
    int64_t children = 0;    ///< live child nodes
    int64_t last_use = 0;    ///< logical LRU tick of the last touch
};

/**
 * The flat-stored radix tree (see the file comment). Not thread-safe;
 * owned and driven by the cache owner's single mutator.
 */
class RadixIndex
{
  public:
    /** Nodes (= cached pages) currently in the index. */
    int64_t size() const
    {
        return static_cast<int64_t>(nodes_.size());
    }

    /**
     * Longest-prefix match: walks @p keys while each chained key has
     * a node in @p namespace_id, appending the matched block ids to
     * @p blocks (not cleared). Matched nodes' LRU ticks are bumped
     * root-first so a chain never evicts out from under its own
     * match. Returns the number of blocks matched.
     */
    int64_t match(int64_t namespace_id,
                  const std::vector<BlockKey> &keys, int64_t max_blocks,
                  std::vector<int64_t> *blocks);

    /**
     * Inserts a node for @p key (depth @p depth, parent = the key one
     * link up the chain, or 0 for depth 0) holding @p block. Returns
     * false — and changes nothing — when the key is already indexed
     * (two sequences racing the same prompt through one admission
     * wave; the first insert wins) or the parent link is absent (the
     * caller must insert chains root-first).
     */
    bool insert(int64_t namespace_id, BlockKey key, BlockKey parent,
                int64_t depth, int64_t block);

    /**
     * Evicts the least-recently-used leaf whose block satisfies
     * @p evictable, writing its node to @p out. Returns false when no
     * leaf qualifies. Deterministic: ties in last_use break on the
     * key, and the scan order is the (tick, key) LRU set order.
     */
    bool evictLru(const std::function<bool(int64_t)> &evictable,
                  IndexNode *out);

    /** Looks up a node by key; nullptr when absent. */
    const IndexNode *find(BlockKey key) const;

    /** Calls @p fn for every node, in key order (audits). */
    void forEach(const std::function<void(const IndexNode &)> &fn) const;

    /** Block ids of every node, ascending (invariant audits). */
    std::vector<int64_t> blockIds() const;

    /** Removes every node, calling @p released per block id in key
     * order (the owner drops its per-page references there). */
    void clear(const std::function<void(int64_t)> &released);

  private:
    void touch(IndexNode &node);

    std::map<BlockKey, IndexNode> nodes_;
    /** Leaf-only is checked at eviction; the set orders all nodes by
     * recency for the deterministic LRU scan. */
    std::set<std::pair<int64_t, BlockKey>> lru_;
    int64_t tick_ = 0;
};

} // namespace prefix
} // namespace comet
