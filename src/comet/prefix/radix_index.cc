#include "comet/prefix/radix_index.h"

#include <algorithm>

#include "comet/common/status.h"

namespace comet {
namespace prefix {

void
RadixIndex::touch(IndexNode &node)
{
    lru_.erase({node.last_use, node.key});
    node.last_use = ++tick_;
    lru_.insert({node.last_use, node.key});
}

int64_t
RadixIndex::match(int64_t namespace_id, const std::vector<BlockKey> &keys,
                  int64_t max_blocks, std::vector<int64_t> *blocks)
{
    COMET_CHECK(blocks != nullptr);
    int64_t matched = 0;
    for (const BlockKey key : keys) {
        if (matched >= max_blocks) {
            break;
        }
        auto it = nodes_.find(key);
        if (it == nodes_.end() || it->second.namespace_id != namespace_id) {
            // A cross-namespace key collision is astronomically rare
            // (the seeds differ), but a hit here must still be a miss:
            // isolation beats reuse.
            break;
        }
        touch(it->second);
        blocks->push_back(it->second.block);
        ++matched;
    }
    return matched;
}

bool
RadixIndex::insert(int64_t namespace_id, BlockKey key, BlockKey parent,
                   int64_t depth, int64_t block)
{
    COMET_CHECK(key != 0 && block >= 0 && depth >= 0);
    COMET_CHECK((depth == 0) == (parent == 0));
    if (nodes_.count(key) > 0) {
        return false;
    }
    std::map<BlockKey, IndexNode>::iterator parent_it = nodes_.end();
    if (parent != 0) {
        parent_it = nodes_.find(parent);
        if (parent_it == nodes_.end()) {
            return false;
        }
        COMET_CHECK(parent_it->second.depth == depth - 1);
        COMET_CHECK(parent_it->second.namespace_id == namespace_id);
    }
    IndexNode node;
    node.key = key;
    node.parent = parent;
    node.block = block;
    node.namespace_id = namespace_id;
    node.depth = depth;
    node.children = 0;
    node.last_use = ++tick_;
    nodes_.emplace(key, node);
    lru_.insert({node.last_use, key});
    if (parent_it != nodes_.end()) {
        ++parent_it->second.children;
    }
    return true;
}

bool
RadixIndex::evictLru(const std::function<bool(int64_t)> &evictable,
                     IndexNode *out)
{
    COMET_CHECK(out != nullptr);
    for (const auto &entry : lru_) {
        auto it = nodes_.find(entry.second);
        COMET_CHECK(it != nodes_.end());
        IndexNode &node = it->second;
        if (node.children > 0 || !evictable(node.block)) {
            continue;
        }
        *out = node;
        if (node.parent != 0) {
            auto parent_it = nodes_.find(node.parent);
            COMET_CHECK(parent_it != nodes_.end());
            COMET_CHECK(parent_it->second.children > 0);
            --parent_it->second.children;
        }
        lru_.erase(entry);
        nodes_.erase(it);
        return true;
    }
    return false;
}

const IndexNode *
RadixIndex::find(BlockKey key) const
{
    auto it = nodes_.find(key);
    return it == nodes_.end() ? nullptr : &it->second;
}

void
RadixIndex::forEach(const std::function<void(const IndexNode &)> &fn) const
{
    for (const auto &entry : nodes_) {
        fn(entry.second);
    }
}

std::vector<int64_t>
RadixIndex::blockIds() const
{
    std::vector<int64_t> ids;
    ids.reserve(nodes_.size());
    for (const auto &entry : nodes_) {
        ids.push_back(entry.second.block);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

void
RadixIndex::clear(const std::function<void(int64_t)> &released)
{
    for (const auto &entry : nodes_) {
        released(entry.second.block);
    }
    nodes_.clear();
    lru_.clear();
}

} // namespace prefix
} // namespace comet
