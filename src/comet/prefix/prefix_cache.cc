#include "comet/prefix/prefix_cache.h"

#include "comet/chaos/failpoint.h"
#include "comet/kvcache/block_allocator.h"
#include "comet/obs/metrics.h"
#include "comet/obs/trace_session.h"

namespace comet {
namespace prefix {

namespace {

struct PrefixCounters {
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &blocks_matched;
    obs::Counter &blocks_inserted;
    obs::Counter &blocks_evicted;
    obs::Counter &bytes_saved;
    obs::Counter &forced_misses;
};

PrefixCounters &
counters()
{
    auto &reg = obs::MetricsRegistry::global();
    static PrefixCounters c = {
        reg.counter("prefix.hits"),
        reg.counter("prefix.misses"),
        reg.counter("prefix.blocks_matched"),
        reg.counter("prefix.blocks_inserted"),
        reg.counter("prefix.blocks_evicted"),
        reg.counter("prefix.bytes_saved"),
        reg.counter("prefix.forced_misses"),
    };
    return c;
}

} // namespace

PrefixCache::PrefixCache(BlockAllocator *allocator, int64_t block_bytes)
    : allocator_(allocator), block_bytes_(block_bytes)
{
    COMET_CHECK(allocator_ != nullptr);
    COMET_CHECK(block_bytes_ > 0);
}

PrefixCache::~PrefixCache()
{
    clear();
}

int64_t
PrefixCache::match(int64_t namespace_id, const std::vector<BlockKey> &keys,
                   int64_t max_blocks, std::vector<int64_t> *blocks)
{
    if (keys.empty() || max_blocks <= 0) {
        return 0;
    }
    COMET_SPAN("prefix/lookup");
    ++stats_.lookups;
    if (COMET_FAILPOINT("prefix.graft")) {
        // A fired graft is a forced miss: the request computes its
        // full prefill and the cache stays untouched (recoverable).
        ++stats_.misses;
        ++stats_.forced_misses;
        counters().misses.add(1);
        counters().forced_misses.add(1);
        return 0;
    }
    const int64_t matched =
        index_.match(namespace_id, keys, max_blocks, blocks);
    if (matched > 0) {
        ++stats_.hits;
        stats_.blocks_matched += matched;
        stats_.bytes_saved += matched * block_bytes_;
        counters().hits.add(1);
        counters().blocks_matched.add(matched);
        counters().bytes_saved.add(matched * block_bytes_);
    } else {
        ++stats_.misses;
        counters().misses.add(1);
    }
    return matched;
}

int64_t
PrefixCache::insert(int64_t namespace_id, const std::vector<BlockKey> &keys,
                    const std::vector<int64_t> &blocks)
{
    COMET_CHECK(keys.size() == blocks.size());
    if (keys.empty()) {
        return 0;
    }
    COMET_SPAN("prefix/insert");
    int64_t inserted = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
        const BlockKey parent = i == 0 ? 0 : keys[i - 1];
        if (index_.insert(namespace_id, keys[i], parent,
                          static_cast<int64_t>(i), blocks[i])) {
            allocator_->addRef(blocks[i]);
            ++inserted;
        }
    }
    if (inserted > 0) {
        stats_.blocks_inserted += inserted;
        counters().blocks_inserted.add(inserted);
    }
    return inserted;
}

bool
PrefixCache::evictOne()
{
    COMET_SPAN("prefix/evict");
    IndexNode victim;
    const bool evicted = index_.evictLru(
        [this](int64_t block) { return allocator_->refCount(block) == 1; },
        &victim);
    if (!evicted) {
        return false;
    }
    allocator_->release(victim.block);
    ++stats_.blocks_evicted;
    counters().blocks_evicted.add(1);
    return true;
}

int64_t
PrefixCache::evictableBlocks() const
{
    // Index-only pages (refcount 1) form a downward-closed subtree
    // set: a sequence mapping a child page necessarily maps (and so
    // references) every ancestor. Leaf-first eviction therefore
    // reaches all of them, making this count exact, not just a bound.
    int64_t evictable = 0;
    index_.forEach([&](const IndexNode &node) {
        if (allocator_->refCount(node.block) == 1) {
            ++evictable;
        }
    });
    return evictable;
}

void
PrefixCache::clear()
{
    index_.clear([this](int64_t block) { allocator_->release(block); });
}

} // namespace prefix
} // namespace comet
