#include "comet/prefix/block_key.h"

#include <cstring>

#include "comet/common/status.h"

namespace comet {
namespace prefix {

namespace {

/** FNV-1a over 8 bytes at a time with a splitmix-style finalizer —
 * cheap, deterministic across platforms, and well-mixed enough that
 * 64-bit chain collisions are negligible at cache scale. */
uint64_t
mix(uint64_t h, uint64_t value)
{
    h ^= value;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    return h;
}

uint64_t
doubleBits(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "64-bit double");
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

} // namespace

uint64_t
keySpaceSeed(const KeySpace &space)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    h = mix(h, static_cast<uint64_t>(space.namespace_id));
    h = mix(h, doubleBits(space.bits_per_value));
    h = mix(h, static_cast<uint64_t>(space.block_tokens));
    h = mix(h, static_cast<uint64_t>(space.quant_group_tokens));
    // Keep 0 free as the "no parent" sentinel of the radix index.
    return h == 0 ? 0x9e3779b97f4a7c15ull : h;
}

BlockKey
chainNextKey(BlockKey previous, const std::vector<int32_t> &token_ids,
             int64_t begin, int64_t end)
{
    COMET_CHECK(begin >= 0 && begin < end &&
                end <= static_cast<int64_t>(token_ids.size()));
    uint64_t h = mix(previous, 0x636f6d6574ull); // "comet" link tag
    for (int64_t i = begin; i < end; ++i) {
        h = mix(h, static_cast<uint64_t>(static_cast<uint32_t>(
                       token_ids[static_cast<size_t>(i)])));
    }
    return h == 0 ? 0x2545f4914f6cdd1dull : h;
}

std::vector<BlockKey>
chainBlockKeys(const KeySpace &space,
               const std::vector<int32_t> &token_ids)
{
    COMET_CHECK(space.block_tokens > 0);
    const int64_t full_blocks =
        static_cast<int64_t>(token_ids.size()) / space.block_tokens;
    std::vector<BlockKey> keys;
    keys.reserve(static_cast<size_t>(full_blocks));
    BlockKey link = keySpaceSeed(space);
    for (int64_t b = 0; b < full_blocks; ++b) {
        link = chainNextKey(link, token_ids, b * space.block_tokens,
                            (b + 1) * space.block_tokens);
        keys.push_back(link);
    }
    return keys;
}

} // namespace prefix
} // namespace comet
