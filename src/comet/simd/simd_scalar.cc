/**
 * @file
 * Portable scalar backend: the reference semantics every SIMD backend
 * must reproduce bit-for-bit. The loops here are the original
 * per-element emulation loops, hoisted to span level.
 */
#include "comet/simd/simd_internal.h"

#include <cstring>

#include "comet/common/status.h"

namespace comet {
namespace simd {
namespace detail {
namespace scalar {

namespace {

/** Sign-extends a 4-bit two's-complement nibble. */
inline int8_t
signExtend4(uint32_t nibble)
{
    return static_cast<int8_t>(nibble >= 8
                                   ? static_cast<int>(nibble) - 16
                                   : static_cast<int>(nibble));
}

/** Loads a little-endian 32-bit register word from bytes. */
inline uint32_t
loadWordLe(const uint8_t *p)
{
    uint32_t word;
    std::memcpy(&word, p, sizeof(word));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    word = __builtin_bswap32(word);
#endif
    return word;
}

/** Stores a 32-bit register word as little-endian bytes. */
inline void
storeWordLe(uint8_t *p, uint32_t word)
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    word = __builtin_bswap32(word);
#endif
    std::memcpy(p, &word, sizeof(word));
}

} // namespace

void
unpackInt4(const uint8_t *packed, int64_t n, int8_t *out)
{
    for (int64_t i = 0; i < n; i += 2) {
        const uint8_t byte = packed[i / 2];
        out[i] = signExtend4(byte & 0x0f);
        out[i + 1] = signExtend4(static_cast<uint32_t>(byte) >> 4);
    }
}

void
packInt4(const int8_t *values, int64_t n, uint8_t *packed)
{
    for (int64_t i = 0; i < n; i += 2) {
        const int8_t lo = values[i], hi = values[i + 1];
        COMET_CHECK_MSG(lo >= -8 && lo <= 7 && hi >= -8 && hi <= 7,
                        "INT4 pack value outside [-8, 7]");
        packed[i / 2] = static_cast<uint8_t>(
            (static_cast<uint8_t>(lo) & 0x0f) |
            (static_cast<uint8_t>(hi) << 4));
    }
}

void
locationSwitchWords(const uint8_t *in, int64_t n_words, uint8_t *out)
{
    for (int64_t w = 0; w < n_words; ++w) {
        const uint32_t word = loadWordLe(in + 4 * w);
        // Spread the low/high 16-bit halves so logical nibbles 0..3
        // land in even slots and 4..7 in odd slots (see convert.cc).
        uint32_t lo = word & 0xffffu;
        uint32_t hi = word >> 16;
        lo = (lo | (lo << 8)) & 0x00ff00ffu;
        lo = (lo | (lo << 4)) & 0x0f0f0f0fu;
        hi = (hi | (hi << 8)) & 0x00ff00ffu;
        hi = (hi | (hi << 4)) & 0x0f0f0f0fu;
        storeWordLe(out + 4 * w, lo | (hi << 4));
    }
}

void
interleaveUnits(const uint8_t *in, int64_t n_units, uint8_t *out)
{
    for (int64_t u = 0; u < n_units; ++u) {
        const uint8_t *src = in + 8 * u;
        uint8_t unit[8] = {src[0], src[1], src[4], src[5],
                           src[2], src[3], src[6], src[7]};
        std::memcpy(out + 8 * u, unit, 8);
    }
}

void
fastWidenW4A8(const uint8_t *prepared, int64_t n_values, int8_t *out)
{
    for (int64_t v = 0; v < n_values; v += 16) {
        const uint8_t *src = prepared + v / 2;
        const uint32_t w0 = loadWordLe(src);
        const uint32_t w1 = loadWordLe(src + 4);
        uint8_t *dst = reinterpret_cast<uint8_t *>(out + v);
        storeWordLe(dst, (w0 << 4) & 0xf0f0f0f0u);
        storeWordLe(dst + 4, (w1 << 4) & 0xf0f0f0f0u);
        storeWordLe(dst + 8, w0 & 0xf0f0f0f0u);
        storeWordLe(dst + 12, w1 & 0xf0f0f0f0u);
    }
}

int32_t
dotInt8(const int8_t *a, const int8_t *b, int64_t n)
{
    int32_t acc = 0;
    for (int64_t i = 0; i < n; ++i) {
        acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
    }
    return acc;
}

int32_t
dotInt4(const uint8_t *a, const uint8_t *b, int64_t n_values)
{
    int32_t acc = 0;
    for (int64_t i = 0; i < n_values; i += 2) {
        const uint8_t ab = a[i / 2], bb = b[i / 2];
        acc += static_cast<int32_t>(signExtend4(ab & 0x0f)) *
               static_cast<int32_t>(signExtend4(bb & 0x0f));
        acc += static_cast<int32_t>(
                   signExtend4(static_cast<uint32_t>(ab) >> 4)) *
               static_cast<int32_t>(
                   signExtend4(static_cast<uint32_t>(bb) >> 4));
    }
    return acc;
}

void
minMaxUpdate(const float *x, int64_t n, float *mins, float *maxs)
{
    for (int64_t i = 0; i < n; ++i) {
        mins[i] = x[i] < mins[i] ? x[i] : mins[i];
        maxs[i] = x[i] > maxs[i] ? x[i] : maxs[i];
    }
}

void
quantizeAffine(const float *x, const float *scales,
               const int32_t *zero_points, int64_t n, int32_t qmin,
               int32_t qmax, int8_t *out)
{
    for (int64_t i = 0; i < n; ++i) {
        // Round half away from zero — the QuantParams::quantize
        // rounding, reproduced operation for operation.
        const float t = x[i] / scales[i];
        int32_t q = static_cast<int32_t>(t >= 0 ? t + 0.5f : t - 0.5f) +
                    zero_points[i];
        q = q < qmin ? qmin : q;
        q = q > qmax ? qmax : q;
        out[i] = static_cast<int8_t>(q);
    }
}

void
dequantAffine(const int8_t *q, const float *scales,
              const int32_t *zero_points, int64_t n, float *out)
{
    for (int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(static_cast<int32_t>(q[i]) -
                                    zero_points[i]) *
                 scales[i];
    }
}

} // namespace scalar
} // namespace detail
} // namespace simd
} // namespace comet
