/**
 * @file
 * AVX2 backend. Every routine is compiled with a per-function target
 * attribute (no global -mavx2), so the translation unit builds on any
 * x86-64 toolchain and the dispatcher only selects these kernels when
 * the running CPU reports AVX2.
 *
 * Bit-identity with the scalar backend is load-bearing: integer
 * routines use exact lane arithmetic, float routines perform the same
 * IEEE operations per lane that the scalar loop performs per element
 * (true division, copysign(0.5) rounding, truncating conversion).
 * Ragged tails fall through to the scalar backend.
 */
#include "comet/simd/simd_internal.h"

#if COMET_SIMD_X86

#include <immintrin.h>

#include "comet/common/status.h"

#define COMET_AVX2 __attribute__((target("avx2")))

namespace comet {
namespace simd {
namespace detail {
namespace avx2 {

namespace {

/** Horizontal sum of the eight 32-bit lanes. */
COMET_AVX2 inline int32_t
hsumEpi32(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i sum = _mm_add_epi32(lo, hi);
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0x4e));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0xb1));
    return _mm_cvtsi128_si32(sum);
}

/** Sign-extends the 4-bit values held in each byte's low nibble. */
COMET_AVX2 inline __m256i
signExtend4(__m256i nibbles)
{
    const __m256i eight = _mm256_set1_epi8(8);
    return _mm256_sub_epi8(_mm256_xor_si256(nibbles, eight), eight);
}

/** Reorders the two unpack(lo/hi) halves into sequential order. @{ */
COMET_AVX2 inline __m256i
seqLo(__m256i il, __m256i ih)
{
    return _mm256_permute2x128_si256(il, ih, 0x20);
}

COMET_AVX2 inline __m256i
seqHi(__m256i il, __m256i ih)
{
    return _mm256_permute2x128_si256(il, ih, 0x31);
}
/** @} */

/** Sum of products of 32 INT8 lanes of @p a and @p b, as 8 INT32
 * partial sums (exact: widen to 16-bit, multiply-add pairs). */
COMET_AVX2 inline __m256i
madd32x8(__m256i a, __m256i b)
{
    const __m256i a_lo =
        _mm256_cvtepi8_epi16(_mm256_castsi256_si128(a));
    const __m256i a_hi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(a, 1));
    const __m256i b_lo =
        _mm256_cvtepi8_epi16(_mm256_castsi256_si128(b));
    const __m256i b_hi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(b, 1));
    return _mm256_add_epi32(_mm256_madd_epi16(a_lo, b_lo),
                            _mm256_madd_epi16(a_hi, b_hi));
}

} // namespace

COMET_AVX2 void
unpackInt4(const uint8_t *packed, int64_t n, int8_t *out)
{
    const __m256i lo_mask = _mm256_set1_epi8(0x0f);
    int64_t v = 0;
    for (; n - v >= 64; v += 64) {
        const __m256i bytes = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(packed + v / 2));
        const __m256i lo =
            signExtend4(_mm256_and_si256(bytes, lo_mask));
        const __m256i hi = signExtend4(_mm256_and_si256(
            _mm256_srli_epi16(bytes, 4), lo_mask));
        const __m256i il = _mm256_unpacklo_epi8(lo, hi);
        const __m256i ih = _mm256_unpackhi_epi8(lo, hi);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + v),
                            seqLo(il, ih));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + v + 32),
                            seqHi(il, ih));
    }
    scalar::unpackInt4(packed + v / 2, n - v, out + v);
}

COMET_AVX2 void
packInt4(const int8_t *values, int64_t n, uint8_t *packed)
{
    const __m256i lo16 = _mm256_set1_epi16(0x000f);
    const __m256i hi16 = _mm256_set1_epi16(0x00f0);
    const __m256i max4 = _mm256_set1_epi8(7);
    const __m256i min4 = _mm256_set1_epi8(-8);
    int64_t v = 0;
    for (; n - v >= 64; v += 64) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + v));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + v + 32));
        const __m256i bad = _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpgt_epi8(a, max4),
                            _mm256_cmpgt_epi8(min4, a)),
            _mm256_or_si256(_mm256_cmpgt_epi8(b, max4),
                            _mm256_cmpgt_epi8(min4, b)));
        COMET_CHECK_MSG(_mm256_movemask_epi8(bad) == 0,
                        "INT4 pack value outside [-8, 7]");
        // Each 16-bit lane holds [odd value | even value]; fold the
        // odd value's low nibble into the even byte's high nibble.
        const __m256i ra = _mm256_or_si256(
            _mm256_and_si256(a, lo16),
            _mm256_and_si256(_mm256_srli_epi16(a, 4), hi16));
        const __m256i rb = _mm256_or_si256(
            _mm256_and_si256(b, lo16),
            _mm256_and_si256(_mm256_srli_epi16(b, 4), hi16));
        // packus interleaves 128-bit lanes; permute restores order.
        const __m256i bytes = _mm256_permute4x64_epi64(
            _mm256_packus_epi16(ra, rb), 0xd8);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(packed + v / 2), bytes);
    }
    scalar::packInt4(values + v, n - v, packed + v / 2);
}

COMET_AVX2 void
locationSwitchWords(const uint8_t *in, int64_t n_words, uint8_t *out)
{
    const __m256i mask16 = _mm256_set1_epi32(0x0000ffff);
    const __m256i mask8 = _mm256_set1_epi32(0x00ff00ff);
    const __m256i mask4 = _mm256_set1_epi32(0x0f0f0f0f);
    int64_t w = 0;
    for (; n_words - w >= 8; w += 8) {
        const __m256i word = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + 4 * w));
        __m256i lo = _mm256_and_si256(word, mask16);
        __m256i hi = _mm256_srli_epi32(word, 16);
        lo = _mm256_and_si256(
            _mm256_or_si256(lo, _mm256_slli_epi32(lo, 8)), mask8);
        lo = _mm256_and_si256(
            _mm256_or_si256(lo, _mm256_slli_epi32(lo, 4)), mask4);
        hi = _mm256_and_si256(
            _mm256_or_si256(hi, _mm256_slli_epi32(hi, 8)), mask8);
        hi = _mm256_and_si256(
            _mm256_or_si256(hi, _mm256_slli_epi32(hi, 4)), mask4);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 4 * w),
            _mm256_or_si256(lo, _mm256_slli_epi32(hi, 4)));
    }
    scalar::locationSwitchWords(in + 4 * w, n_words - w, out + 4 * w);
}

COMET_AVX2 void
interleaveUnits(const uint8_t *in, int64_t n_units, uint8_t *out)
{
    // Per 8-byte unit: swap byte pairs (2,3) <-> (4,5).
    const __m256i pattern = _mm256_setr_epi8(
        0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15, 0, 1, 4,
        5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15);
    int64_t u = 0;
    for (; n_units - u >= 4; u += 4) {
        const __m256i bytes = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + 8 * u));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 8 * u),
                            _mm256_shuffle_epi8(bytes, pattern));
    }
    scalar::interleaveUnits(in + 8 * u, n_units - u, out + 8 * u);
}

COMET_AVX2 void
fastWidenW4A8(const uint8_t *prepared, int64_t n_values, int8_t *out)
{
    const __m256i hi_mask = _mm256_set1_epi8(
        static_cast<char>(0xf0));
    int64_t v = 0;
    for (; n_values - v >= 64; v += 64) {
        const __m256i bytes = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(prepared + v / 2));
        // lo half of each register word: nibble to the high bits of
        // its byte (the 16x zero extension); hi half: already there.
        const __m256i lo = _mm256_and_si256(
            _mm256_slli_epi16(bytes, 4), hi_mask);
        const __m256i hi = _mm256_and_si256(bytes, hi_mask);
        // Per 8-byte unit the output is [lo(unit), hi(unit)]:
        // interleave at 64-bit granularity, then restore unit order.
        const __m256i il = _mm256_unpacklo_epi64(lo, hi);
        const __m256i ih = _mm256_unpackhi_epi64(lo, hi);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + v),
                            seqLo(il, ih));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + v + 32),
                            seqHi(il, ih));
    }
    scalar::fastWidenW4A8(prepared + v / 2, n_values - v, out + v);
}

COMET_AVX2 int32_t
dotInt8(const int8_t *a, const int8_t *b, int64_t n)
{
    __m256i acc = _mm256_setzero_si256();
    int64_t i = 0;
    for (; n - i >= 32; i += 32) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_add_epi32(acc, madd32x8(av, bv));
    }
    return hsumEpi32(acc) + scalar::dotInt8(a + i, b + i, n - i);
}

COMET_AVX2 int32_t
dotInt4(const uint8_t *a, const uint8_t *b, int64_t n_values)
{
    const __m256i lo_mask = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    int64_t v = 0;
    for (; n_values - v >= 64; v += 64) {
        const __m256i ab = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + v / 2));
        const __m256i bb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + v / 2));
        const __m256i a_lo =
            signExtend4(_mm256_and_si256(ab, lo_mask));
        const __m256i a_hi = signExtend4(
            _mm256_and_si256(_mm256_srli_epi16(ab, 4), lo_mask));
        const __m256i b_lo =
            signExtend4(_mm256_and_si256(bb, lo_mask));
        const __m256i b_hi = signExtend4(
            _mm256_and_si256(_mm256_srli_epi16(bb, 4), lo_mask));
        acc = _mm256_add_epi32(acc, madd32x8(a_lo, b_lo));
        acc = _mm256_add_epi32(acc, madd32x8(a_hi, b_hi));
    }
    return hsumEpi32(acc) +
           scalar::dotInt4(a + v / 2, b + v / 2, n_values - v);
}

COMET_AVX2 void
minMaxUpdate(const float *x, int64_t n, float *mins, float *maxs)
{
    int64_t i = 0;
    for (; n - i >= 8; i += 8) {
        const __m256 xv = _mm256_loadu_ps(x + i);
        _mm256_storeu_ps(
            mins + i,
            _mm256_min_ps(xv, _mm256_loadu_ps(mins + i)));
        _mm256_storeu_ps(
            maxs + i,
            _mm256_max_ps(xv, _mm256_loadu_ps(maxs + i)));
    }
    scalar::minMaxUpdate(x + i, n - i, mins + i, maxs + i);
}

COMET_AVX2 void
quantizeAffine(const float *x, const float *scales,
               const int32_t *zero_points, int64_t n, int32_t qmin,
               int32_t qmax, int8_t *out)
{
    const __m256 sign_mask = _mm256_set1_ps(-0.0f);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256i qmin_v = _mm256_set1_epi32(qmin);
    const __m256i qmax_v = _mm256_set1_epi32(qmax);
    int64_t i = 0;
    alignas(32) int32_t lanes[8];
    for (; n - i >= 8; i += 8) {
        const __m256 t = _mm256_div_ps(_mm256_loadu_ps(x + i),
                                       _mm256_loadu_ps(scales + i));
        // Round half away from zero: add copysign(0.5, t), truncate —
        // exactly the scalar (t >= 0 ? t + 0.5f : t - 0.5f) cast.
        const __m256 rounded = _mm256_add_ps(
            t, _mm256_or_ps(_mm256_and_ps(t, sign_mask), half));
        __m256i q = _mm256_add_epi32(
            _mm256_cvttps_epi32(rounded),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(zero_points + i)));
        q = _mm256_min_epi32(_mm256_max_epi32(q, qmin_v), qmax_v);
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), q);
        for (int k = 0; k < 8; ++k)
            out[i + k] = static_cast<int8_t>(lanes[k]);
    }
    scalar::quantizeAffine(x + i, scales + i, zero_points + i, n - i,
                           qmin, qmax, out + i);
}

COMET_AVX2 void
dequantAffine(const int8_t *q, const float *scales,
              const int32_t *zero_points, int64_t n, float *out)
{
    int64_t i = 0;
    for (; n - i >= 8; i += 8) {
        const __m128i q8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(q + i));
        const __m256i q32 = _mm256_cvtepi8_epi32(q8);
        const __m256i zp = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(zero_points + i));
        const __m256 widened =
            _mm256_cvtepi32_ps(_mm256_sub_epi32(q32, zp));
        _mm256_storeu_ps(
            out + i,
            _mm256_mul_ps(widened, _mm256_loadu_ps(scales + i)));
    }
    scalar::dequantAffine(q + i, scales + i, zero_points + i, n - i,
                          out + i);
}

} // namespace avx2
} // namespace detail
} // namespace simd
} // namespace comet

#endif // COMET_SIMD_X86
