/**
 * @file
 * Mode management and dispatch for comet::simd. The active backend is
 * resolved once per process from `COMET_SIMD` and every public routine
 * forwards through a switch; argument-shape invariants are checked
 * here so backends can assume well-formed spans.
 */
#include "comet/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "comet/common/status.h"
#include "comet/simd/simd_internal.h"

#if COMET_SIMD_X86 && defined(__GNUC__)
#define COMET_SIMD_HAVE_CPU_SUPPORTS 1
#else
#define COMET_SIMD_HAVE_CPU_SUPPORTS 0
#endif

namespace comet {
namespace simd {

namespace detail {

bool
avx2Supported()
{
#if COMET_SIMD_HAVE_CPU_SUPPORTS
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
neonSupported()
{
    return COMET_SIMD_AARCH64 != 0;
}

} // namespace detail

namespace {

constexpr Mode kModeUnset = static_cast<Mode>(-1);

std::atomic<Mode> g_mode{kModeUnset};

Mode
bestSupportedMode()
{
    if (detail::avx2Supported()) return Mode::kAvx2;
    if (detail::neonSupported()) return Mode::kNeon;
    return Mode::kScalar;
}

Mode
resolveFromEnv()
{
    const char *env = std::getenv("COMET_SIMD");
    if (env == nullptr || env[0] == '\0') return bestSupportedMode();
    return parseMode(env);
}

/** The active mode, resolving from the environment on first use. */
inline Mode
mode()
{
    Mode m = g_mode.load(std::memory_order_relaxed);
    if (m == kModeUnset) {
        m = resolveFromEnv();
        g_mode.store(m, std::memory_order_relaxed);
    }
    return m;
}

} // namespace

const char *
modeName(Mode m)
{
    switch (m) {
    case Mode::kScalar: return "scalar";
    case Mode::kAvx2: return "avx2";
    case Mode::kNeon: return "neon";
    }
    return "unknown";
}

bool
modeSupported(Mode m)
{
    switch (m) {
    case Mode::kScalar: return true;
    case Mode::kAvx2: return detail::avx2Supported();
    case Mode::kNeon: return detail::neonSupported();
    }
    return false;
}

std::vector<Mode>
supportedModes()
{
    std::vector<Mode> modes{Mode::kScalar};
    if (modeSupported(Mode::kAvx2)) modes.push_back(Mode::kAvx2);
    if (modeSupported(Mode::kNeon)) modes.push_back(Mode::kNeon);
    return modes;
}

Mode
activeMode()
{
    return mode();
}

void
setMode(Mode m)
{
    COMET_CHECK_MSG(modeSupported(m),
                    "COMET_SIMD mode not supported on this machine");
    g_mode.store(m, std::memory_order_relaxed);
}

Mode
parseMode(const char *name)
{
    COMET_CHECK(name != nullptr);
    if (std::strcmp(name, "auto") == 0) return bestSupportedMode();
    for (Mode m : {Mode::kScalar, Mode::kAvx2, Mode::kNeon}) {
        if (std::strcmp(name, modeName(m)) == 0) {
            COMET_CHECK_MSG(
                modeSupported(m),
                "COMET_SIMD requests a backend this machine lacks");
            return m;
        }
    }
    COMET_CHECK_MSG(false, "unknown COMET_SIMD value");
    return Mode::kScalar; // unreachable
}

// Dispatch: one switch per routine. The kAvx2/kNeon cases only exist
// on architectures where the backend compiles; setMode/parseMode
// guarantee the active mode is always a compiled-in backend.
#if COMET_SIMD_X86
#define COMET_SIMD_AVX2_CASE(call)                                    \
    case Mode::kAvx2: return detail::avx2::call
#else
#define COMET_SIMD_AVX2_CASE(call)                                    \
    case Mode::kAvx2: break
#endif
#if COMET_SIMD_AARCH64
#define COMET_SIMD_NEON_CASE(call)                                    \
    case Mode::kNeon: return detail::neon::call
#else
#define COMET_SIMD_NEON_CASE(call)                                    \
    case Mode::kNeon: break
#endif

#define COMET_SIMD_DISPATCH(call)                                     \
    switch (mode()) {                                                 \
        COMET_SIMD_AVX2_CASE(call);                                   \
        COMET_SIMD_NEON_CASE(call);                                   \
    default: break;                                                   \
    }                                                                 \
    return detail::scalar::call

void
unpackInt4(const uint8_t *packed, int64_t n, int8_t *out)
{
    COMET_CHECK(n >= 0 && n % 2 == 0);
    COMET_SIMD_DISPATCH(unpackInt4(packed, n, out));
}

void
packInt4(const int8_t *values, int64_t n, uint8_t *packed)
{
    COMET_CHECK(n >= 0 && n % 2 == 0);
    COMET_SIMD_DISPATCH(packInt4(values, n, packed));
}

void
locationSwitchWords(const uint8_t *in, int64_t n_words, uint8_t *out)
{
    COMET_CHECK(n_words >= 0);
    COMET_SIMD_DISPATCH(locationSwitchWords(in, n_words, out));
}

void
interleaveUnits(const uint8_t *in, int64_t n_units, uint8_t *out)
{
    COMET_CHECK(n_units >= 0);
    COMET_SIMD_DISPATCH(interleaveUnits(in, n_units, out));
}

void
fastWidenW4A8(const uint8_t *prepared, int64_t n_values, int8_t *out)
{
    COMET_CHECK(n_values >= 0 && n_values % 16 == 0);
    COMET_SIMD_DISPATCH(fastWidenW4A8(prepared, n_values, out));
}

int32_t
dotInt8(const int8_t *a, const int8_t *b, int64_t n)
{
    COMET_CHECK(n >= 0);
    COMET_SIMD_DISPATCH(dotInt8(a, b, n));
}

int32_t
dotInt4(const uint8_t *a, const uint8_t *b, int64_t n_values)
{
    COMET_CHECK(n_values >= 0 && n_values % 2 == 0);
    COMET_SIMD_DISPATCH(dotInt4(a, b, n_values));
}

void
minMaxUpdate(const float *x, int64_t n, float *mins, float *maxs)
{
    COMET_CHECK(n >= 0);
    COMET_SIMD_DISPATCH(minMaxUpdate(x, n, mins, maxs));
}

void
quantizeAffine(const float *x, const float *scales,
               const int32_t *zero_points, int64_t n, int32_t qmin,
               int32_t qmax, int8_t *out)
{
    COMET_CHECK(n >= 0 && qmin <= qmax);
    COMET_SIMD_DISPATCH(
        quantizeAffine(x, scales, zero_points, n, qmin, qmax, out));
}

void
dequantAffine(const int8_t *q, const float *scales,
              const int32_t *zero_points, int64_t n, float *out)
{
    COMET_CHECK(n >= 0);
    COMET_SIMD_DISPATCH(dequantAffine(q, scales, zero_points, n, out));
}

} // namespace simd
} // namespace comet
