/**
 * @file
 * AArch64 NEON backend. NEON (Advanced SIMD) is baseline on AArch64,
 * so the whole file is guarded on the target architecture and no
 * runtime feature probe is needed beyond "we compiled for AArch64".
 *
 * Bit-identity with the scalar backend is load-bearing; see
 * simd_avx2.cc for the contract. Notably minMaxUpdate uses explicit
 * compare+select instead of vminq/vmaxq so NaN handling matches the
 * scalar ternaries, and quantizeAffine narrows with the modular
 * (non-saturating) vmovn to match the scalar static_cast.
 */
#include "comet/simd/simd_internal.h"

#if COMET_SIMD_AARCH64

#include <arm_neon.h>

#include "comet/common/status.h"

namespace comet {
namespace simd {
namespace detail {
namespace neon {

namespace {

/** Sign-extends the 4-bit values held in each byte's low nibble. */
inline int8x16_t
signExtend4(uint8x16_t nibbles)
{
    const int8x16_t eight = vdupq_n_s8(8);
    return vsubq_s8(
        veorq_s8(vreinterpretq_s8_u8(nibbles), eight), eight);
}

/** Widening multiply-accumulate of 16 INT8 lanes into int32x4. */
inline int32x4_t
madd16x8(int32x4_t acc, int8x16_t a, int8x16_t b)
{
    const int16x8_t lo = vmull_s8(vget_low_s8(a), vget_low_s8(b));
    const int16x8_t hi = vmull_s8(vget_high_s8(a), vget_high_s8(b));
    return vpadalq_s16(vpadalq_s16(acc, lo), hi);
}

} // namespace

void
unpackInt4(const uint8_t *packed, int64_t n, int8_t *out)
{
    const uint8x16_t lo_mask = vdupq_n_u8(0x0f);
    int64_t v = 0;
    for (; n - v >= 32; v += 32) {
        const uint8x16_t bytes = vld1q_u8(packed + v / 2);
        const int8x16_t lo = signExtend4(vandq_u8(bytes, lo_mask));
        const int8x16_t hi = signExtend4(vshrq_n_u8(bytes, 4));
        vst1q_s8(out + v, vzip1q_s8(lo, hi));
        vst1q_s8(out + v + 16, vzip2q_s8(lo, hi));
    }
    scalar::unpackInt4(packed + v / 2, n - v, out + v);
}

void
packInt4(const int8_t *values, int64_t n, uint8_t *packed)
{
    const int8x16_t max4 = vdupq_n_s8(7);
    const int8x16_t min4 = vdupq_n_s8(-8);
    const uint8x16_t lo_mask = vdupq_n_u8(0x0f);
    int64_t v = 0;
    for (; n - v >= 32; v += 32) {
        const int8x16_t a = vld1q_s8(values + v);
        const int8x16_t b = vld1q_s8(values + v + 16);
        const uint8x16_t bad = vorrq_u8(
            vorrq_u8(vcgtq_s8(a, max4), vcgtq_s8(min4, a)),
            vorrq_u8(vcgtq_s8(b, max4), vcgtq_s8(min4, b)));
        COMET_CHECK_MSG(vmaxvq_u8(bad) == 0,
                        "INT4 pack value outside [-8, 7]");
        const uint8x16_t even = vreinterpretq_u8_s8(vuzp1q_s8(a, b));
        const uint8x16_t odd = vreinterpretq_u8_s8(vuzp2q_s8(a, b));
        vst1q_u8(packed + v / 2,
                 vorrq_u8(vandq_u8(even, lo_mask),
                          vshlq_n_u8(odd, 4)));
    }
    scalar::packInt4(values + v, n - v, packed + v / 2);
}

void
locationSwitchWords(const uint8_t *in, int64_t n_words, uint8_t *out)
{
    const uint32x4_t mask16 = vdupq_n_u32(0x0000ffffu);
    const uint32x4_t mask8 = vdupq_n_u32(0x00ff00ffu);
    const uint32x4_t mask4 = vdupq_n_u32(0x0f0f0f0fu);
    int64_t w = 0;
    for (; n_words - w >= 4; w += 4) {
        const uint32x4_t word =
            vreinterpretq_u32_u8(vld1q_u8(in + 4 * w));
        uint32x4_t lo = vandq_u32(word, mask16);
        uint32x4_t hi = vshrq_n_u32(word, 16);
        lo = vandq_u32(vorrq_u32(lo, vshlq_n_u32(lo, 8)), mask8);
        lo = vandq_u32(vorrq_u32(lo, vshlq_n_u32(lo, 4)), mask4);
        hi = vandq_u32(vorrq_u32(hi, vshlq_n_u32(hi, 8)), mask8);
        hi = vandq_u32(vorrq_u32(hi, vshlq_n_u32(hi, 4)), mask4);
        vst1q_u8(out + 4 * w,
                 vreinterpretq_u8_u32(
                     vorrq_u32(lo, vshlq_n_u32(hi, 4))));
    }
    scalar::locationSwitchWords(in + 4 * w, n_words - w, out + 4 * w);
}

void
interleaveUnits(const uint8_t *in, int64_t n_units, uint8_t *out)
{
    // Per 8-byte unit: swap byte pairs (2,3) <-> (4,5).
    const uint8x16_t pattern = {0, 1, 4,  5,  2,  3,  6,  7,
                                8, 9, 12, 13, 10, 11, 14, 15};
    int64_t u = 0;
    for (; n_units - u >= 2; u += 2) {
        const uint8x16_t bytes = vld1q_u8(in + 8 * u);
        vst1q_u8(out + 8 * u, vqtbl1q_u8(bytes, pattern));
    }
    scalar::interleaveUnits(in + 8 * u, n_units - u, out + 8 * u);
}

void
fastWidenW4A8(const uint8_t *prepared, int64_t n_values, int8_t *out)
{
    const uint8x16_t hi_mask = vdupq_n_u8(0xf0);
    int64_t v = 0;
    for (; n_values - v >= 32; v += 32) {
        const uint8x16_t bytes = vld1q_u8(prepared + v / 2);
        const uint64x2_t lo = vreinterpretq_u64_u8(
            vshlq_n_u8(vandq_u8(bytes, vdupq_n_u8(0x0f)), 4));
        const uint64x2_t hi =
            vreinterpretq_u64_u8(vandq_u8(bytes, hi_mask));
        // Per 16-value unit (one 64-bit lane of input) the output is
        // [lo(unit), hi(unit)]: zip at 64-bit granularity.
        vst1q_s8(out + v, vreinterpretq_s8_u64(vzip1q_u64(lo, hi)));
        vst1q_s8(out + v + 16,
                 vreinterpretq_s8_u64(vzip2q_u64(lo, hi)));
    }
    scalar::fastWidenW4A8(prepared + v / 2, n_values - v, out + v);
}

int32_t
dotInt8(const int8_t *a, const int8_t *b, int64_t n)
{
    int32x4_t acc = vdupq_n_s32(0);
    int64_t i = 0;
    for (; n - i >= 16; i += 16) {
        acc = madd16x8(acc, vld1q_s8(a + i), vld1q_s8(b + i));
    }
    return vaddvq_s32(acc) + scalar::dotInt8(a + i, b + i, n - i);
}

int32_t
dotInt4(const uint8_t *a, const uint8_t *b, int64_t n_values)
{
    const uint8x16_t lo_mask = vdupq_n_u8(0x0f);
    int32x4_t acc = vdupq_n_s32(0);
    int64_t v = 0;
    for (; n_values - v >= 32; v += 32) {
        const uint8x16_t ab = vld1q_u8(a + v / 2);
        const uint8x16_t bb = vld1q_u8(b + v / 2);
        acc = madd16x8(acc, signExtend4(vandq_u8(ab, lo_mask)),
                       signExtend4(vandq_u8(bb, lo_mask)));
        acc = madd16x8(acc, signExtend4(vshrq_n_u8(ab, 4)),
                       signExtend4(vshrq_n_u8(bb, 4)));
    }
    return vaddvq_s32(acc) +
           scalar::dotInt4(a + v / 2, b + v / 2, n_values - v);
}

void
minMaxUpdate(const float *x, int64_t n, float *mins, float *maxs)
{
    int64_t i = 0;
    for (; n - i >= 4; i += 4) {
        const float32x4_t xv = vld1q_f32(x + i);
        const float32x4_t mn = vld1q_f32(mins + i);
        const float32x4_t mx = vld1q_f32(maxs + i);
        // Compare+select (not vminq/vmaxq) so NaN lanes resolve the
        // way the scalar ternaries do: keep the running value.
        vst1q_f32(mins + i, vbslq_f32(vcltq_f32(xv, mn), xv, mn));
        vst1q_f32(maxs + i, vbslq_f32(vcgtq_f32(xv, mx), xv, mx));
    }
    scalar::minMaxUpdate(x + i, n - i, mins + i, maxs + i);
}

void
quantizeAffine(const float *x, const float *scales,
               const int32_t *zero_points, int64_t n, int32_t qmin,
               int32_t qmax, int8_t *out)
{
    const uint32x4_t sign_mask = vdupq_n_u32(0x80000000u);
    const uint32x4_t half_bits =
        vreinterpretq_u32_f32(vdupq_n_f32(0.5f));
    const int32x4_t qmin_v = vdupq_n_s32(qmin);
    const int32x4_t qmax_v = vdupq_n_s32(qmax);
    int64_t i = 0;
    for (; n - i >= 8; i += 8) {
        int32x4_t q[2];
        for (int half = 0; half < 2; ++half) {
            const int64_t base = i + 4 * half;
            const float32x4_t t = vdivq_f32(vld1q_f32(x + base),
                                            vld1q_f32(scales + base));
            // Round half away from zero: add copysign(0.5, t), then
            // truncate — exactly the scalar rounding.
            const float32x4_t rounded = vaddq_f32(
                t, vreinterpretq_f32_u32(vorrq_u32(
                       vandq_u32(vreinterpretq_u32_f32(t), sign_mask),
                       half_bits)));
            int32x4_t qv = vaddq_s32(vcvtq_s32_f32(rounded),
                                     vld1q_s32(zero_points + base));
            q[half] =
                vminq_s32(vmaxq_s32(qv, qmin_v), qmax_v);
        }
        // Modular narrow (vmovn) matches the scalar static_cast.
        vst1_s8(out + i,
                vmovn_s16(vcombine_s16(vmovn_s32(q[0]),
                                       vmovn_s32(q[1]))));
    }
    scalar::quantizeAffine(x + i, scales + i, zero_points + i, n - i,
                           qmin, qmax, out + i);
}

void
dequantAffine(const int8_t *q, const float *scales,
              const int32_t *zero_points, int64_t n, float *out)
{
    int64_t i = 0;
    for (; n - i >= 8; i += 8) {
        const int16x8_t q16 = vmovl_s8(vld1_s8(q + i));
        const int32x4_t lo = vsubq_s32(vmovl_s16(vget_low_s16(q16)),
                                       vld1q_s32(zero_points + i));
        const int32x4_t hi =
            vsubq_s32(vmovl_s16(vget_high_s16(q16)),
                      vld1q_s32(zero_points + i + 4));
        vst1q_f32(out + i, vmulq_f32(vcvtq_f32_s32(lo),
                                     vld1q_f32(scales + i)));
        vst1q_f32(out + i + 4, vmulq_f32(vcvtq_f32_s32(hi),
                                         vld1q_f32(scales + i + 4)));
    }
    scalar::dequantAffine(q + i, scales + i, zero_points + i, n - i,
                          out + i);
}

} // namespace neon
} // namespace detail
} // namespace simd
} // namespace comet

#endif // COMET_SIMD_AARCH64
