/**
 * @file
 * Internal backend declarations for comet::simd. Each backend
 * implements the same signatures as the public API; simd.cc owns the
 * dispatch. Not installed as public API — include simd.h instead.
 */
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#define COMET_SIMD_X86 1
#else
#define COMET_SIMD_X86 0
#endif

#if defined(__aarch64__)
#define COMET_SIMD_AARCH64 1
#else
#define COMET_SIMD_AARCH64 0
#endif

namespace comet {
namespace simd {
namespace detail {

/** Declares one backend's kernel set. @{ */
#define COMET_SIMD_DECLARE_BACKEND(ns)                                     \
    namespace ns {                                                         \
    void unpackInt4(const uint8_t *packed, int64_t n, int8_t *out);        \
    void packInt4(const int8_t *values, int64_t n, uint8_t *packed);       \
    void locationSwitchWords(const uint8_t *in, int64_t n_words,           \
                             uint8_t *out);                                \
    void interleaveUnits(const uint8_t *in, int64_t n_units,               \
                         uint8_t *out);                                    \
    void fastWidenW4A8(const uint8_t *prepared, int64_t n_values,          \
                       int8_t *out);                                       \
    int32_t dotInt8(const int8_t *a, const int8_t *b, int64_t n);          \
    int32_t dotInt4(const uint8_t *a, const uint8_t *b,                    \
                    int64_t n_values);                                     \
    void minMaxUpdate(const float *x, int64_t n, float *mins,              \
                      float *maxs);                                        \
    void quantizeAffine(const float *x, const float *scales,               \
                        const int32_t *zero_points, int64_t n,             \
                        int32_t qmin, int32_t qmax, int8_t *out);          \
    void dequantAffine(const int8_t *q, const float *scales,               \
                       const int32_t *zero_points, int64_t n,              \
                       float *out);                                        \
    }

COMET_SIMD_DECLARE_BACKEND(scalar)
#if COMET_SIMD_X86
COMET_SIMD_DECLARE_BACKEND(avx2)
#endif
#if COMET_SIMD_AARCH64
COMET_SIMD_DECLARE_BACKEND(neon)
#endif

#undef COMET_SIMD_DECLARE_BACKEND
/** @} */

/** True when the running CPU supports AVX2 (false off x86). */
bool avx2Supported();

/** True when NEON is available (true exactly on AArch64 builds). */
bool neonSupported();

} // namespace detail
} // namespace simd
} // namespace comet
