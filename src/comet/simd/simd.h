/**
 * @file
 * Runtime-dispatched SIMD substrate for the emulated sub-byte hot
 * paths.
 *
 * Every sweep, soak and figure bench in this repo bottoms out in the
 * scalar INT4/INT8 emulation loops (nibble pack/unpack, fast
 * conversion, interleaving, KV quant/dequant, dp4a accumulation).
 * This module lifts those inner loops to span-level routines with
 * three backends:
 *
 *  - *scalar*: the always-available portable fallback, byte-for-byte
 *    the same arithmetic the original per-element loops performed;
 *  - *avx2*: x86-64 AVX2 implementations (compiled with per-function
 *    target attributes, selected only when the CPU reports support);
 *  - *neon*: AArch64 NEON implementations (NEON is baseline on
 *    AArch64, so support equals compiling for that architecture).
 *
 * The backend is picked once per process: the `COMET_SIMD`
 * environment variable accepts `scalar`, `avx2`, `neon` or `auto`
 * (the default — best supported backend). Tests and benches can
 * override it with setMode().
 *
 * **Bit-identity guarantee:** every routine produces bit-identical
 * output across all backends. Integer routines are exact by
 * construction; the float routines (quantize/dequantize/min-max)
 * perform the same IEEE operations lane-wise that the scalar code
 * performs element-wise, in an order-insensitive way, so results
 * match to the last bit. The equivalence suite (test_simd.cc) locks
 * this in for every dispatched routine under every supported mode.
 *
 * Data layout conventions match tensor/packed.h: packed INT4 spans
 * are little-endian nibble order (value i of a byte pair occupies the
 * low nibble), and 32-bit "register words" are little-endian byte
 * order in memory.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace comet {
namespace simd {

/** Selectable SIMD backends. */
enum class Mode {
    kScalar = 0, ///< portable fallback, always available
    kAvx2,       ///< x86-64 AVX2
    kNeon,       ///< AArch64 NEON
};

/** Stable lower-case name of a mode ("scalar", "avx2", "neon"). */
const char *modeName(Mode mode);

/** True when @p mode can run on this machine. kScalar always can. */
bool modeSupported(Mode mode);

/** All modes supported on this machine, kScalar first. */
std::vector<Mode> supportedModes();

/**
 * The mode all dispatched routines currently use. Resolved once from
 * `COMET_SIMD` (unset or `auto` picks the best supported backend) on
 * first use, unless overridden via setMode().
 */
Mode activeMode();

/**
 * Overrides the active mode (tests and benches). Aborts if @p mode is
 * not supported on this machine. Not thread-safe against concurrently
 * running dispatched routines; switch modes only between kernels.
 */
void setMode(Mode mode);

/**
 * Parses a `COMET_SIMD` value ("scalar", "avx2", "neon", "auto") to a
 * concrete supported mode. Aborts on an unknown name or an explicitly
 * requested backend the machine cannot run.
 */
Mode parseMode(const char *name);

/**
 * Unpacks @p n packed INT4 values (little-endian nibble order,
 * @p n even) into sign-extended INT8 values.
 */
void unpackInt4(const uint8_t *packed, int64_t n, int8_t *out);

/**
 * Packs @p n INT8 values (each in [-8, 7], @p n even) into n/2 bytes
 * of little-endian nibble storage. Aborts on out-of-range values —
 * silently masking them would corrupt neighboring lanes.
 */
void packInt4(const int8_t *values, int64_t n, uint8_t *packed);

/**
 * Applies the per-register location switch (convert.h) to
 * @p n_words packed-INT4 register words stored little-endian at
 * @p in, writing to @p out. In-place (@p in == @p out) is allowed.
 */
void locationSwitchWords(const uint8_t *in, int64_t n_words,
                         uint8_t *out);

/**
 * Applies the 16-value weight interleave (interleave.h) to
 * @p n_units units of 8 packed bytes each: within every unit, byte
 * pairs (2,3) and (4,5) swap. Self-inverse. @p in and @p out must not
 * partially overlap (@p in == @p out is allowed).
 */
void interleaveUnits(const uint8_t *in, int64_t n_units, uint8_t *out);

/**
 * Fast-widens a prepared (interleaved + location-switched) packed
 * INT4 span to INT8 in logical activation order: for every 16-value
 * unit (8 input bytes, words w0 and w1), emits the 16 bytes
 * [lo(w0), lo(w1), hi(w0), hi(w1)] where lo/hi are the two
 * fastInt4ToInt8() register halves. Output bytes equal
 * kFastConvMultiplier (16x) the true INT4 values, exactly as
 * convert.h documents. @p n_values must be a multiple of 16.
 */
void fastWidenW4A8(const uint8_t *prepared, int64_t n_values,
                   int8_t *out);

/** Dot product of two INT8 spans accumulated in INT32 (the dp4a
 * inner loop, span-level). Exact for any @p n >= 0. */
int32_t dotInt8(const int8_t *a, const int8_t *b, int64_t n);

/**
 * Dot product of two packed INT4 spans (@p n_values values, even,
 * little-endian nibble order) accumulated in INT32 — the dp8a4 inner
 * loop, span-level.
 */
int32_t dotInt4(const uint8_t *a, const uint8_t *b, int64_t n_values);

/**
 * Running per-element min/max update: mins[i] = min(mins[i], x[i])
 * and maxs[i] = max(maxs[i], x[i]) for i in [0, n). The channel-wise
 * KV quantization range pass, vectorized across channels.
 */
void minMaxUpdate(const float *x, int64_t n, float *mins, float *maxs);

/**
 * Per-element affine quantization with clamping:
 * out[i] = clamp(roundHalfAwayFromZero(x[i] / scales[i]) +
 *                zero_points[i], qmin, qmax),
 * bit-identical to QuantParams::quantize followed by std::clamp.
 */
void quantizeAffine(const float *x, const float *scales,
                    const int32_t *zero_points, int64_t n,
                    int32_t qmin, int32_t qmax, int8_t *out);

/**
 * Per-element affine dequantization:
 * out[i] = float(q[i] - zero_points[i]) * scales[i], bit-identical
 * to QuantParams::dequantize.
 */
void dequantAffine(const int8_t *q, const float *scales,
                   const int32_t *zero_points, int64_t n, float *out);

} // namespace simd
} // namespace comet
