/**
 * @file
 * Paged, precision-aware KV cache for one model instance.
 *
 * Tracks per-sequence block chains over a BlockAllocator sized from a
 * byte budget and the cache precision. Halving the KV precision (FP16
 * -> INT8 -> INT4) proportionally multiplies the number of sequences x
 * tokens that fit — the mechanism behind COMET's end-to-end batch-size
 * and throughput gains (Figure 15's COMET-KV4 ablation).
 *
 * The cache accounts memory and block residency exactly; the numeric
 * content of the cache is exercised separately by KvCacheQuantizer.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "comet/common/status.h"
#include "comet/kvcache/block_allocator.h"
#include "comet/model/llm_config.h"
#include "comet/prefix/block_key.h"
#include "comet/prefix/prefix_cache.h"

namespace comet {

/** Sizing parameters of a paged KV cache. */
struct KvCacheConfig {
    double bits_per_value = 16.0; ///< 4 for the COMET KV4 cache
    int64_t block_tokens = 16;    ///< tokens per page
    /** Quantization metadata (scale + zero point) bytes per
     * (channel, token-group); zero-cost for FP16 caches. */
    double quant_metadata_bytes = 4.0;
    /** Tokens sharing one quantization group per channel (the
     * channel-wise group quantizer's group size). */
    int64_t quant_group_tokens = 64;
    double memory_budget_bytes = 0.0;
    /**
     * Enables the automatic prefix cache (comet::prefix): full prompt
     * blocks are indexed by chained content key at admission, and
     * later prompts sharing a prefix graft the cached pages instead
     * of recomputing them. Off by default — with it off, every
     * prefix-aware entry point below behaves exactly like its plain
     * counterpart, and cache behavior is bit-for-bit the seed's.
     */
    bool enable_prefix_cache = false;
};

/**
 * The paged KV cache.
 */
class PagedKvCache
{
  public:
    /** Sizes the block pool from the budget and model geometry. */
    PagedKvCache(const LlmConfig &model, KvCacheConfig config);

    /** Bytes of one block (all layers, K and V, plus quantization
     * metadata). */
    double blockBytes() const { return block_bytes_; }

    int64_t totalBlocks() const { return allocator_.totalBlocks(); }
    int64_t freeBlocks() const { return allocator_.freeBlocks(); }

    /**
     * Blocks obtainable right now: free blocks plus prefix-cache
     * pages evictable on demand (pages only the index references).
     * Admission gates on this, not freeBlocks() — cold cache pages
     * must never crowd out live traffic. Equals freeBlocks() when the
     * prefix cache is off.
     */
    int64_t availableBlocks() const;

    /** Blocks needed to hold @p tokens tokens. */
    int64_t blocksForTokens(int64_t tokens) const;

    /** True when a new sequence of @p tokens tokens fits right now. */
    bool canAdmit(int64_t tokens) const;

    /** Registers a sequence holding @p prompt_tokens tokens.
     * Fails (without side effects) when the pool cannot hold it. */
    Status addSequence(int64_t seq_id, int64_t prompt_tokens);

    /**
     * Prefix-aware addSequence: matches @p block_keys (the prompt's
     * chained full-block content keys, comet::prefix) against the
     * cache in @p namespace_id, grafts the hit via COW references,
     * allocates the rest (evicting cold cache pages on demand), and
     * offers the prompt's full blocks back to the index. Returns the
     * number of *tokens* whose KV was grafted instead of computed —
     * always a multiple of block_tokens, and always strictly less
     * than @p prompt_tokens (the final block recomputes so prefill
     * genuinely produces the first token's logits). Fails without
     * side effects when the pool cannot hold the sequence. With the
     * prefix cache off (or no keys), exactly addSequence.
     */
    Result<int64_t> addSequenceWithPrefix(
        int64_t seq_id, int64_t prompt_tokens, int64_t namespace_id,
        const std::vector<prefix::BlockKey> &block_keys);

    /** Extends a sequence by one generated token, allocating a new
     * block at page boundaries. If the sequence's last block is
     * shared (copy-on-write from a fork) and must grow, it is
     * duplicated first. */
    Status appendToken(int64_t seq_id);

    /**
     * Forks a sequence: the child shares every parent block
     * copy-on-write (vLLM-style prefix sharing, e.g. parallel
     * sampling from one prompt), including a partially filled
     * trailing block. Forking allocates nothing — it cannot fail on
     * resource exhaustion — and the first append into a shared tail
     * pays for the divergence copy (see appendToken). Fails only for
     * unknown parent / duplicate child ids.
     */
    Status forkSequence(int64_t parent_id, int64_t child_id);

    /** Ids of all live sequences, ascending (invariant audits —
     * see comet::chaos). */
    std::vector<int64_t> sequenceIds() const;

    /** Block chain of a sequence in page order (invariant audits). */
    const std::vector<int64_t> &sequenceBlocks(int64_t seq_id) const;

    /** Refcount of physical block @p block, 0 = free (invariant
     * audits: chain refcounts must match COW fork sharing). */
    int
    blockRefCount(int64_t block) const
    {
        return allocator_.refCount(block);
    }

    /** Blocks physically allocated (shared blocks counted once). */
    int64_t
    physicalBlocksInUse() const
    {
        return allocator_.usedBlocks();
    }

    /** Sum of per-sequence block chain lengths (shared blocks counted
     * once per sequence) — the footprint without sharing. */
    int64_t logicalBlocksInUse() const;

    /** Releases all blocks of a sequence. */
    void removeSequence(int64_t seq_id);

    /** Tokens currently cached for a sequence. */
    int64_t sequenceTokens(int64_t seq_id) const;

    int64_t numSequences() const
    {
        return static_cast<int64_t>(sequences_.size());
    }

    /** True when this cache was built with enable_prefix_cache. */
    bool prefixCacheEnabled() const
    {
        return prefix_ != nullptr;
    }

    /** Pages currently held by the prefix index (0 when off). */
    int64_t prefixOwnedBlocks() const
    {
        return prefix_ ? prefix_->ownedBlocks() : 0;
    }

    /** Block ids held by the prefix index, ascending (chaos audits:
     * each carries one refcount beyond its chain memberships). */
    std::vector<int64_t> prefixHeldBlocks() const
    {
        return prefix_ ? prefix_->heldBlocks() : std::vector<int64_t>{};
    }

    /** Lifetime prefix-cache accounting (zeros when off). */
    prefix::PrefixCacheStats prefixStats() const
    {
        return prefix_ ? prefix_->stats() : prefix::PrefixCacheStats{};
    }

    /** Drops every cached prefix page (no-op when off). Live
     * sequences are unaffected — they hold their own references. */
    void clearPrefixCache()
    {
        if (prefix_)
            prefix_->clear();
    }

  private:
    struct SequenceState {
        int64_t tokens = 0;
        std::vector<int64_t> blocks;
    };

    /** allocate(), evicting cold prefix-cache pages on exhaustion. */
    Result<int64_t> allocateEvicting();

    LlmConfig model_;
    KvCacheConfig config_;
    double block_bytes_;
    BlockAllocator allocator_;
    std::map<int64_t, SequenceState> sequences_;
    std::unique_ptr<prefix::PrefixCache> prefix_;
};

} // namespace comet
