/**
 * @file
 * Paged KV-cache block allocator (vLLM-style; paper Section 5 adopts
 * PagedAttention's memory management).
 *
 * The KV cache is carved into fixed-size blocks of block_tokens tokens;
 * sequences own chains of blocks allocated on demand, and blocks are
 * reference-counted so shared prefixes can be mapped copy-on-write.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/common/status.h"

namespace comet {

/**
 * Fixed-pool block allocator with reference counting.
 */
class BlockAllocator
{
  public:
    /** Creates a pool of @p num_blocks blocks, all free. */
    explicit BlockAllocator(int64_t num_blocks);

    int64_t totalBlocks() const { return total_; }
    int64_t freeBlocks() const
    {
        return static_cast<int64_t>(free_list_.size());
    }
    int64_t
    usedBlocks() const
    {
        return total_ - freeBlocks();
    }

    /** Allocates one block (refcount 1); fails when the pool is
     * exhausted. */
    Result<int64_t> allocate();

    /** Increments the refcount of an allocated block (prefix
     * sharing). */
    void addRef(int64_t block);

    /** Decrements the refcount; the block returns to the free list at
     * zero. */
    void release(int64_t block);

    /** Current refcount (0 = free). */
    int refCount(int64_t block) const;

  private:
    int64_t total_;
    std::vector<int> ref_counts_;
    std::vector<int64_t> free_list_;
};

} // namespace comet
