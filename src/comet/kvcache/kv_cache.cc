#include "comet/kvcache/kv_cache.h"

#include <algorithm>
#include <cmath>

namespace comet {

namespace {

int64_t
poolBlocks(const LlmConfig &model, const KvCacheConfig &config,
           double block_bytes)
{
    COMET_CHECK(config.memory_budget_bytes > 0.0);
    (void)model;
    const double blocks = config.memory_budget_bytes / block_bytes;
    COMET_CHECK_MSG(blocks >= 1.0,
                    "KV budget smaller than a single block");
    return static_cast<int64_t>(blocks);
}

double
computeBlockBytes(const LlmConfig &model, const KvCacheConfig &config)
{
    // K and V, every layer, kv_heads * head_dim channels, block_tokens
    // tokens, at bits_per_value — plus per-channel-group quantization
    // metadata for sub-byte caches.
    const double values = 2.0 *
                          static_cast<double>(model.num_layers) *
                          static_cast<double>(model.num_kv_heads) *
                          static_cast<double>(model.headDim()) *
                          static_cast<double>(config.block_tokens);
    double bytes = values * config.bits_per_value / 8.0;
    if (config.bits_per_value < 16.0) {
        // One (scale, zero) pair per channel per quant_group_tokens
        // tokens; a block holds block_tokens/quant_group_tokens of a
        // group per channel.
        const double channels =
            2.0 * static_cast<double>(model.num_layers) *
            static_cast<double>(model.num_kv_heads) *
            static_cast<double>(model.headDim());
        bytes += channels * config.quant_metadata_bytes *
                 static_cast<double>(config.block_tokens) /
                 static_cast<double>(config.quant_group_tokens);
    }
    return bytes;
}

} // namespace

PagedKvCache::PagedKvCache(const LlmConfig &model, KvCacheConfig config)
    : model_(model), config_(config),
      block_bytes_(computeBlockBytes(model, config)),
      allocator_(poolBlocks(model, config, block_bytes_))
{
    COMET_CHECK(config_.block_tokens > 0);
    if (config_.enable_prefix_cache) {
        prefix_ = std::make_unique<prefix::PrefixCache>(
            &allocator_, static_cast<int64_t>(block_bytes_));
    }
}

int64_t
PagedKvCache::availableBlocks() const
{
    return freeBlocks() + (prefix_ ? prefix_->evictableBlocks() : 0);
}

int64_t
PagedKvCache::blocksForTokens(int64_t tokens) const
{
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

bool
PagedKvCache::canAdmit(int64_t tokens) const
{
    return blocksForTokens(tokens) <= availableBlocks();
}

Result<int64_t>
PagedKvCache::allocateEvicting()
{
    Result<int64_t> block = allocator_.allocate();
    while (!block.isOk() && prefix_ && prefix_->evictOne()) {
        block = allocator_.allocate();
    }
    return block;
}

Status
PagedKvCache::addSequence(int64_t seq_id, int64_t prompt_tokens)
{
    return addSequenceWithPrefix(seq_id, prompt_tokens, 0, {}).status();
}

Result<int64_t>
PagedKvCache::addSequenceWithPrefix(
    int64_t seq_id, int64_t prompt_tokens, int64_t namespace_id,
    const std::vector<prefix::BlockKey> &block_keys)
{
    COMET_CHECK(prompt_tokens > 0);
    if (sequences_.count(seq_id) != 0) {
        return Status::invalidArgument("sequence id already present");
    }
    const int64_t needed = blocksForTokens(prompt_tokens);
    if (needed > availableBlocks()) {
        return Status::resourceExhausted(
            "not enough free KV blocks for the prompt");
    }

    SequenceState state;
    state.tokens = prompt_tokens;
    state.blocks.reserve(static_cast<size_t>(needed));

    // Graft the cached prefix: matched pages join the chain by
    // reference (the COW machinery of forkSequence), never by copy.
    // The match is capped one block short of the chain so prefill
    // always computes at least the final block — the pass that
    // produces the first token's logits stays real, and TTFT
    // accounting stays honest.
    int64_t grafted = 0;
    if (prefix_ && !block_keys.empty()) {
        std::vector<int64_t> hit;
        grafted = prefix_->match(namespace_id, block_keys, needed - 1,
                                 &hit);
        for (int64_t block : hit) {
            allocator_.addRef(block);
            state.blocks.push_back(block);
        }
    }
    for (int64_t i = grafted; i < needed; ++i) {
        Result<int64_t> block = allocateEvicting();
        if (!block.isOk()) {
            // The capacity check above normally guarantees success,
            // but an injected allocator fault (COMET_FAILPOINT
            // "kv.alloc") can still fail mid-chain. Roll back so the
            // failure has no side effects, like the early return.
            for (int64_t held : state.blocks)
                allocator_.release(held);
            return block.status();
        }
        state.blocks.push_back(block.value());
    }

    // Offer the prompt's fully-filled blocks back to the index
    // (decode appends only ever touch past the last full prompt
    // block, so these pages are immutable from here on). Already-
    // indexed keys — including every grafted page — are kept as-is.
    if (prefix_ && !block_keys.empty()) {
        const int64_t full =
            std::min(static_cast<int64_t>(block_keys.size()),
                     prompt_tokens / config_.block_tokens);
        prefix_->insert(
            namespace_id,
            {block_keys.begin(), block_keys.begin() + full},
            {state.blocks.begin(), state.blocks.begin() + full});
    }

    sequences_.emplace(seq_id, std::move(state));
    return grafted * config_.block_tokens;
}

Status
PagedKvCache::appendToken(int64_t seq_id)
{
    const auto it = sequences_.find(seq_id);
    if (it == sequences_.end())
        return Status::invalidArgument("unknown sequence id");
    SequenceState &state = it->second;
    if (blocksForTokens(state.tokens + 1) >
        static_cast<int64_t>(state.blocks.size())) {
        Result<int64_t> block = allocateEvicting();
        if (!block.isOk())
            return block.status();
        state.blocks.push_back(block.value());
    } else if (!state.blocks.empty() &&
               allocator_.refCount(state.blocks.back()) > 1) {
        // Copy-on-write: the trailing block is shared with a fork and
        // is about to be written; give this sequence its own copy.
        Result<int64_t> copy = allocateEvicting();
        if (!copy.isOk())
            return copy.status();
        allocator_.release(state.blocks.back());
        state.blocks.back() = copy.value();
    }
    ++state.tokens;
    return Status::ok();
}

Status
PagedKvCache::forkSequence(int64_t parent_id, int64_t child_id)
{
    const auto parent_it = sequences_.find(parent_id);
    if (parent_it == sequences_.end())
        return Status::invalidArgument("unknown parent sequence");
    if (sequences_.count(child_id) != 0)
        return Status::invalidArgument("child id already present");
    const SequenceState &parent = parent_it->second;
    COMET_CHECK(!parent.blocks.empty());

    // Every block is shared, including a partially filled tail; the
    // first writer into the shared tail pays for the divergence copy
    // (appendToken's copy-on-write branch). Forking therefore never
    // allocates and cannot fail on exhaustion.
    SequenceState child;
    child.tokens = parent.tokens;
    child.blocks.reserve(parent.blocks.size());
    for (int64_t block : parent.blocks) {
        allocator_.addRef(block);
        child.blocks.push_back(block);
    }
    sequences_.emplace(child_id, std::move(child));
    return Status::ok();
}

std::vector<int64_t>
PagedKvCache::sequenceIds() const
{
    std::vector<int64_t> ids;
    ids.reserve(sequences_.size());
    for (const auto &[id, state] : sequences_)
        ids.push_back(id);
    return ids;
}

const std::vector<int64_t> &
PagedKvCache::sequenceBlocks(int64_t seq_id) const
{
    const auto it = sequences_.find(seq_id);
    COMET_CHECK_MSG(it != sequences_.end(), "unknown sequence id");
    return it->second.blocks;
}

int64_t
PagedKvCache::logicalBlocksInUse() const
{
    int64_t total = 0;
    for (const auto &[id, state] : sequences_)
        total += static_cast<int64_t>(state.blocks.size());
    return total;
}

void
PagedKvCache::removeSequence(int64_t seq_id)
{
    const auto it = sequences_.find(seq_id);
    COMET_CHECK_MSG(it != sequences_.end(), "unknown sequence id");
    for (int64_t block : it->second.blocks)
        allocator_.release(block);
    sequences_.erase(it);
}

int64_t
PagedKvCache::sequenceTokens(int64_t seq_id) const
{
    const auto it = sequences_.find(seq_id);
    COMET_CHECK_MSG(it != sequences_.end(), "unknown sequence id");
    return it->second.tokens;
}

} // namespace comet
