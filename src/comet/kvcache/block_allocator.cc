#include "comet/kvcache/block_allocator.h"

namespace comet {

BlockAllocator::BlockAllocator(int64_t num_blocks) : total_(num_blocks)
{
    COMET_CHECK(num_blocks > 0);
    ref_counts_.assign(static_cast<size_t>(num_blocks), 0);
    free_list_.reserve(static_cast<size_t>(num_blocks));
    // Hand out low block ids first (LIFO free list, reversed fill).
    for (int64_t b = num_blocks - 1; b >= 0; --b)
        free_list_.push_back(b);
}

Result<int64_t>
BlockAllocator::allocate()
{
    if (free_list_.empty()) {
        return Status::resourceExhausted(
            "KV cache block pool exhausted");
    }
    const int64_t block = free_list_.back();
    free_list_.pop_back();
    ref_counts_[static_cast<size_t>(block)] = 1;
    return block;
}

void
BlockAllocator::addRef(int64_t block)
{
    COMET_CHECK(block >= 0 && block < total_);
    COMET_CHECK_MSG(ref_counts_[static_cast<size_t>(block)] > 0,
                    "addRef on a free block");
    ++ref_counts_[static_cast<size_t>(block)];
}

void
BlockAllocator::release(int64_t block)
{
    COMET_CHECK(block >= 0 && block < total_);
    int &count = ref_counts_[static_cast<size_t>(block)];
    COMET_CHECK_MSG(count > 0, "release on a free block");
    if (--count == 0)
        free_list_.push_back(block);
}

int
BlockAllocator::refCount(int64_t block) const
{
    COMET_CHECK(block >= 0 && block < total_);
    return ref_counts_[static_cast<size_t>(block)];
}

} // namespace comet
