#include "comet/kvcache/block_allocator.h"

#include "comet/chaos/failpoint.h"
#include "comet/obs/metrics.h"

namespace comet {

namespace {

/** Process-wide allocator traffic counters (cached references: the
 * registry mutex is paid once, not per block operation). */
obs::Counter &
blocksAllocatedCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter(
            "kvcache.blocks_allocated");
    return counter;
}

obs::Counter &
blocksReleasedCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter(
            "kvcache.blocks_released");
    return counter;
}

obs::Counter &
allocExhaustedCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter(
            "kvcache.alloc_exhausted");
    return counter;
}

} // namespace

BlockAllocator::BlockAllocator(int64_t num_blocks) : total_(num_blocks)
{
    COMET_CHECK(num_blocks > 0);
    ref_counts_.assign(static_cast<size_t>(num_blocks), 0);
    free_list_.reserve(static_cast<size_t>(num_blocks));
    // Hand out low block ids first (LIFO free list, reversed fill).
    for (int64_t b = num_blocks - 1; b >= 0; --b)
        free_list_.push_back(b);
}

Result<int64_t>
BlockAllocator::allocate()
{
    // Chaos hook: an armed schedule injects a synthetic OOM that is
    // indistinguishable from real exhaustion, driving every consumer
    // down its recovery path (rollback, preemption, re-admission).
    if (COMET_FAILPOINT("kv.alloc")) {
        allocExhaustedCounter().add(1);
        return Status::resourceExhausted(
            "KV cache block pool exhausted (injected)");
    }
    if (free_list_.empty()) {
        allocExhaustedCounter().add(1);
        return Status::resourceExhausted(
            "KV cache block pool exhausted");
    }
    const int64_t block = free_list_.back();
    free_list_.pop_back();
    ref_counts_[static_cast<size_t>(block)] = 1;
    blocksAllocatedCounter().add(1);
    return block;
}

void
BlockAllocator::addRef(int64_t block)
{
    COMET_CHECK(block >= 0 && block < total_);
    COMET_CHECK_MSG(ref_counts_[static_cast<size_t>(block)] > 0,
                    "addRef on a free block");
    ++ref_counts_[static_cast<size_t>(block)];
}

void
BlockAllocator::release(int64_t block)
{
    COMET_CHECK(block >= 0 && block < total_);
    int &count = ref_counts_[static_cast<size_t>(block)];
    COMET_CHECK_MSG(count > 0, "release on a free block");
    if (--count == 0) {
        free_list_.push_back(block);
        blocksReleasedCounter().add(1);
    }
}

int
BlockAllocator::refCount(int64_t block) const
{
    COMET_CHECK(block >= 0 && block < total_);
    return ref_counts_[static_cast<size_t>(block)];
}

} // namespace comet
