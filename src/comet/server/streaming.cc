#include "comet/server/streaming.h"

#include "comet/common/status.h"

namespace comet {
namespace server {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::kNone: return "none";
      case RejectReason::kUnknownTenant: return "unknown-tenant";
      case RejectReason::kQueueFull: return "queue-full";
      case RejectReason::kRateLimited: return "rate-limited";
      case RejectReason::kTooLarge: return "too-large";
      case RejectReason::kDeadlineExpired: return "deadline-expired";
      case RejectReason::kShuttingDown: return "shutting-down";
    }
    return "?";
}

const char *
streamEventKindName(StreamEventKind kind)
{
    switch (kind) {
      case StreamEventKind::kToken: return "token";
      case StreamEventKind::kFinished: return "finished";
      case StreamEventKind::kRejected: return "rejected";
      case StreamEventKind::kCancelled: return "cancelled";
    }
    return "?";
}

TokenStream::TokenStream(Callback callback)
    : callback_(std::move(callback))
{
}

bool
TokenStream::next(StreamEvent *event)
{
    COMET_CHECK(event != nullptr);
    std::unique_lock<std::mutex> lock(mutex_);
    if (callback_)
        return false; // callback mode never buffers
    cv_.wait(lock, [&] {
        return !queue_.empty() || consumed_terminal_;
    });
    if (queue_.empty())
        return false;
    *event = queue_.front();
    queue_.pop_front();
    if (isTerminal(event->kind))
        consumed_terminal_ = true;
    return true;
}

bool
TokenStream::tryNext(StreamEvent *event)
{
    COMET_CHECK(event != nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return false;
    *event = queue_.front();
    queue_.pop_front();
    if (isTerminal(event->kind))
        consumed_terminal_ = true;
    return true;
}

void
TokenStream::requestCancel()
{
    cancel_requested_.store(true, std::memory_order_release);
    std::function<void()> poke;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        poke = cancel_poke_;
    }
    if (poke)
        poke();
}

bool
TokenStream::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

StreamEventKind
TokenStream::terminalKind() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    COMET_CHECK_MSG(done_, "stream has not terminated yet");
    return terminal_kind_;
}

RejectReason
TokenStream::terminalReason() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    COMET_CHECK_MSG(done_, "stream has not terminated yet");
    return terminal_reason_;
}

void
TokenStream::deliver(const StreamEvent &event)
{
    Callback callback;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        COMET_CHECK_MSG(!done_,
                        "deliver() after the terminal event");
        if (event.kind == StreamEventKind::kToken) {
            tokens_.fetch_add(1, std::memory_order_acq_rel);
        } else {
            done_ = true;
            terminal_kind_ = event.kind;
            terminal_reason_ = event.reject_reason;
        }
        if (callback_) {
            callback = callback_;
        } else {
            queue_.push_back(event);
        }
    }
    cv_.notify_all();
    // The callback runs outside the stream lock (single producer, so
    // delivery order is still the event order).
    if (callback)
        callback(event);
}

void
TokenStream::setCancelPoke(std::function<void()> poke)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cancel_poke_ = std::move(poke);
}

} // namespace server
} // namespace comet
