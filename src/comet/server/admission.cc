#include "comet/server/admission.h"

#include <algorithm>

#include "comet/chaos/failpoint.h"
#include "comet/common/status.h"

namespace comet {
namespace server {

FairAdmissionQueue::FairAdmissionQueue(
    std::vector<TenantConfig> tenants)
{
    COMET_CHECK_MSG(!tenants.empty(),
                    "the admission queue needs at least one tenant");
    tenants_.reserve(tenants.size());
    for (TenantConfig &config : tenants) {
        COMET_CHECK_MSG(!config.name.empty(),
                        "tenant names must be non-empty");
        COMET_CHECK_MSG(tenantIndex(config.name) < 0,
                        "tenant names must be unique");
        COMET_CHECK_MSG(config.weight > 0.0,
                        "tenant weights must be positive");
        COMET_CHECK(config.max_queued >= 0);
        COMET_CHECK(config.rate_limit_per_s >= 0.0);
        COMET_CHECK(config.rate_burst > 0.0);
        TenantState state;
        state.config = std::move(config);
        // A full bucket at t = 0: the configured burst is available
        // immediately, then refills at the configured rate.
        state.bucket_tokens = state.config.rate_burst;
        tenants_.push_back(std::move(state));
    }
}

const TenantConfig &
FairAdmissionQueue::tenant(int index) const
{
    COMET_CHECK(index >= 0 && index < numTenants());
    return tenants_[static_cast<size_t>(index)].config;
}

int
FairAdmissionQueue::tenantIndex(const std::string &name) const
{
    for (size_t i = 0; i < tenants_.size(); ++i) {
        if (tenants_[i].config.name == name)
            return static_cast<int>(i);
    }
    return -1;
}

RejectReason
FairAdmissionQueue::offer(PendingRequest request, double now_us)
{
    COMET_CHECK(request.tenant >= 0 &&
                request.tenant < numTenants());
    TenantState &state =
        tenants_[static_cast<size_t>(request.tenant)];
    // Rate limit first (edge policing), then the queue bound.
    if (state.config.rate_limit_per_s > 0.0) {
        COMET_CHECK(now_us >= state.bucket_refill_us);
        state.bucket_tokens = std::min(
            state.config.rate_burst,
            state.bucket_tokens +
                (now_us - state.bucket_refill_us) *
                    state.config.rate_limit_per_s * 1e-6);
        state.bucket_refill_us = now_us;
        if (state.bucket_tokens < 1.0)
            return RejectReason::kRateLimited;
        state.bucket_tokens -= 1.0;
    }
    if (state.config.max_queued > 0 &&
        static_cast<int64_t>(state.queue.size()) >=
            state.config.max_queued) {
        return RejectReason::kQueueFull;
    }
    if (state.queue.empty()) {
        // Re-activation: an idle tenant resumes at the current
        // virtual time instead of cashing in credit accumulated
        // while it had nothing to run.
        state.pass = std::max(state.pass, virtual_pass_);
    }
    state.queue.push_back(std::move(request));
    return RejectReason::kNone;
}

bool
FairAdmissionQueue::pick(double now_us, PendingRequest *out,
                         std::vector<PendingRequest> *expired)
{
    COMET_CHECK(out != nullptr && expired != nullptr);
    for (;;) {
        // Minimum-pass backlogged tenant; index order breaks ties
        // deterministically.
        int best = -1;
        for (int i = 0; i < numTenants(); ++i) {
            const TenantState &state =
                tenants_[static_cast<size_t>(i)];
            if (state.queue.empty())
                continue;
            if (best < 0 ||
                state.pass <
                    tenants_[static_cast<size_t>(best)].pass) {
                best = i;
            }
        }
        if (best < 0)
            return false;
        TenantState &state = tenants_[static_cast<size_t>(best)];
        PendingRequest head = std::move(state.queue.front());
        state.queue.pop_front();
        const double deadline = state.config.admission_deadline_us;
        bool expired_now =
            deadline > 0.0 && now_us > head.arrival_us + deadline;
        // Chaos hook: force an admission-deadline expiry on this
        // pick, as if the request had aged out while queued.
        if (!expired_now && COMET_FAILPOINT("admission.expire"))
            expired_now = true;
        if (expired_now) {
            // Expired while queued: hand it back for rejection and
            // do not charge the tenant — it received no service.
            expired->push_back(std::move(head));
            continue;
        }
        virtual_pass_ = std::max(virtual_pass_, state.pass);
        const double cost =
            static_cast<double>(head.prompt_tokens +
                                head.max_output_tokens);
        state.pass += cost / state.config.weight;
        *out = std::move(head);
        return true;
    }
}

bool
FairAdmissionQueue::removeById(int64_t id, PendingRequest *out)
{
    COMET_CHECK(out != nullptr);
    for (TenantState &state : tenants_) {
        for (auto it = state.queue.begin(); it != state.queue.end();
             ++it) {
            if (it->id == id) {
                *out = std::move(*it);
                state.queue.erase(it);
                return true;
            }
        }
    }
    return false;
}

std::vector<PendingRequest>
FairAdmissionQueue::drainAll()
{
    std::vector<PendingRequest> drained;
    for (TenantState &state : tenants_) {
        for (PendingRequest &request : state.queue)
            drained.push_back(std::move(request));
        state.queue.clear();
    }
    return drained;
}

int64_t
FairAdmissionQueue::queuedCount() const
{
    int64_t total = 0;
    for (const TenantState &state : tenants_)
        total += static_cast<int64_t>(state.queue.size());
    return total;
}

int64_t
FairAdmissionQueue::queuedCount(int tenant) const
{
    COMET_CHECK(tenant >= 0 && tenant < numTenants());
    return static_cast<int64_t>(
        tenants_[static_cast<size_t>(tenant)].queue.size());
}

} // namespace server
} // namespace comet
