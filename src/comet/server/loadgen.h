/**
 * @file
 * Open-loop Poisson load generator for the online server.
 *
 * The generator pre-computes the whole workload from a seed — per
 * tenant, Poisson arrivals (exponential inter-arrival gaps) with
 * uniformly sampled prompt/output lengths — then drives a Server from
 * N concurrent client threads. Open loop: arrival times never react
 * to server progress, so overload shows up as queueing/rejection
 * rather than as a slowed-down generator. Because arrivals are
 * virtual-time stamps and the server is deterministic under its
 * conservative ingress gate, the resulting per-tenant latency report
 * is bit-identical for a fixed seed, any thread interleaving, and
 * either delivery mode (callbacks or pull-iterators).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comet/server/server.h"

namespace comet {
namespace server {

/** One tenant's synthetic workload. */
struct LoadgenTenant {
    /** Admission configuration (also registered with the server). */
    TenantConfig admission;
    /** Poisson arrival rate, requests per virtual second. */
    double arrival_rate_per_s = 10.0;
    /** Requests to generate for this tenant. */
    int64_t requests = 32;
    int64_t prompt_min = 64;   ///< prompt length range, inclusive
    int64_t prompt_max = 256;  ///< prompt length range, inclusive
    int64_t output_min = 8;    ///< actual (EOS) output range
    int64_t output_max = 64;   ///< also the declared max_tokens
    /**
     * Shared-prompt pools: when > 0, every request carries real
     * prompt content (StreamRequest::prompt_ids) whose first
     * prompt_min tokens are drawn from one of this many per-tenant
     * pool prompts, with a unique tail after — the redundancy of
     * real traffic (system prompts, replayed chat history) that the
     * prefix cache exists to exploit. 0 keeps requests content-free
     * (lengths only), exactly the pre-prefix-cache workload.
     */
    int64_t shared_prompt_pools = 0;
};

/** Load-generator parameters. */
struct LoadgenConfig {
    uint64_t seed = 42;   ///< workload seed (bit-stable reports)
    int clients = 4;      ///< concurrent client threads
    /** Deliver through per-request callbacks instead of pull-mode
     * streams (both produce identical reports). */
    bool callbacks = false;
    std::vector<LoadgenTenant> tenants; ///< the workload mix
};

/** One pre-generated request of the open-loop workload, before
 * stream ids are assigned (the request's index in the generated
 * vector becomes its id). */
struct LoadgenRequest {
    int tenant = 0;          ///< tenant index into the config
    double arrival_us = 0.0; ///< virtual arrival time
    int64_t prompt_tokens = 0;          ///< sampled prompt length
    int64_t declared_output_tokens = 0; ///< client-declared bound
    int64_t eos_output_tokens = 0;      ///< actual EOS position
    /** Prompt content (empty unless shared_prompt_pools > 0). */
    std::vector<int32_t> prompt_ids;
};

/** What one request experienced, reduced from its stream events. */
struct RequestOutcome {
    int tenant = 0;              ///< tenant index
    double arrival_us = 0.0;     ///< virtual arrival time
    /** Replica the request was routed to (-1 when driven against a
     * single server, or when it never reached a replica). */
    int replica = -1;
    /** How the stream ended. */
    StreamEventKind terminal = StreamEventKind::kCancelled;
    RejectReason reason = RejectReason::kNone; ///< when rejected
    int64_t tokens = 0;          ///< tokens streamed
    double first_token_us = 0.0; ///< virtual time of token 0
    double last_token_us = 0.0;  ///< virtual time of the last token
};

/** Per-tenant latency/goodput aggregation. */
struct LoadgenTenantReport {
    std::string name;       ///< tenant name
    int64_t submitted = 0;  ///< requests submitted
    int64_t completed = 0;  ///< streams that ended kFinished
    int64_t rejected = 0;   ///< streams that ended kRejected
    int64_t cancelled = 0;  ///< streams that ended kCancelled
    int64_t tokens = 0;     ///< tokens streamed
    double ttft_p50_us = 0.0; ///< median time-to-first-token
    double ttft_p99_us = 0.0; ///< p99 time-to-first-token
    double tpot_p50_us = 0.0; ///< median time-per-output-token
    double tpot_p99_us = 0.0; ///< p99 time-per-output-token
    /** Completions that met every SLO the tenant configured — TTFT
     * and, when set, TPOT (all completions when no SLO is
     * configured; a completion too short to measure TPOT counts as
     * meeting it). */
    int64_t slo_met = 0;
    /** Completions with a measurable TPOT (>= 2 tokens). */
    int64_t tpot_measured = 0;
    /** TPOT-measurable completions that met the tenant's TPOT SLO
     * (all of them when no TPOT SLO is configured). */
    int64_t tpot_slo_met = 0;
    /** Tokens of SLO-meeting completions per virtual second. */
    double goodput_tokens_per_s = 0.0;
};

/** The full loadgen result. */
struct LoadgenReport {
    std::vector<LoadgenTenantReport> tenants; ///< per-tenant rows
    std::vector<RequestOutcome> outcomes; ///< per-request, id order
    double makespan_us = 0.0; ///< final virtual clock
    int64_t submitted = 0;    ///< total requests submitted
    int64_t completed = 0;    ///< total completions
    int64_t rejected = 0;     ///< total rejections observed
    int64_t cancelled = 0;    ///< total cancellations observed
    int64_t tokens = 0;       ///< total tokens streamed
};

/** The server tenant set a loadgen config implies (register these
 * when constructing the Server the generator will drive). */
std::vector<TenantConfig>
loadgenTenants(const LoadgenConfig &config);

/**
 * Pre-computes the whole workload from the config's seed, sorted by
 * (arrival, generation order). Pure function of the config: the
 * single-server driver (runLoadgen) and the cluster driver
 * (cluster::runClusterLoadgen) submit the identical request
 * sequence, which is what makes their token streams comparable.
 */
std::vector<LoadgenRequest>
generateLoadgenWorkload(const LoadgenConfig &config);

/** Reduces one stream event into the outcome slot. Runs either on
 * the server loop thread (callback mode) or a client thread (pull
 * mode); each slot has exactly one writer at a time. */
void recordLoadgenEvent(RequestOutcome *outcome,
                        const StreamEvent &event);

/**
 * Aggregates recorded outcomes into the per-tenant report —
 * percentiles, SLO attainment, goodput. Takes ownership of
 * @p outcomes (they become LoadgenReport::outcomes). Deterministic:
 * a pure function of the outcome vector and @p makespan_us.
 */
LoadgenReport finalizeLoadgenReport(const LoadgenConfig &config,
                                    std::vector<RequestOutcome>
                                        outcomes,
                                    double makespan_us);

/**
 * A deterministic per-replica workload seed: folds @p replica into
 * @p seed with a SplitMix64 round so replica workloads are
 * uncorrelated but reproducible (replica 0 of a 4-replica run always
 * draws the same stream, on every platform). Used by benches that
 * drive per-replica single-server baselines next to a cluster run.
 */
uint64_t deriveReplicaSeed(uint64_t seed, int replica);

/**
 * Runs the workload against @p server: spawns config.clients client
 * threads, submits every pre-generated request through them, streams
 * all tokens back, drains the server, and aggregates the report.
 * The server must have been constructed with loadgenTenants(config)
 * and must not have had clients connected yet.
 */
LoadgenReport runLoadgen(Server *server,
                         const LoadgenConfig &config);

/** Renders the per-tenant report as an aligned text table
 * (deterministic for a fixed seed — the bench diffs two runs). */
std::string renderLoadgenReport(const LoadgenReport &report);

/**
 * The canonical mixed SLO workload: one "longctx" ingestion tenant
 * whose multi-thousand-token prompts monopolize monolithic prefill
 * steps, plus two interactive chat tenants ("chat-a", "chat-b") with
 * tight TTFT/TPOT budgets — the scenario chunked prefill exists for
 * (DESIGN.md §14). Shared by bench_slo_attainment and the
 * chunked-prefill tests; @p smoke shrinks request counts for CI.
 */
LoadgenConfig mixedSloWorkload(uint64_t seed, bool smoke);

} // namespace server
} // namespace comet
