/**
 * @file
 * Per-request token streaming for the online server.
 *
 * Every submitted request gets a TokenStream: the server loop pushes
 * token and terminal events into it (producer side), and the client
 * consumes them either by registering a callback at submission or by
 * pulling with next() from any thread (pull-iterator side). Events
 * carry the server's *virtual* timestamps — the deterministic clock
 * the serving loop advances by modeled step latencies — so latency
 * metrics computed from a stream are bit-stable for a fixed workload
 * seed regardless of host scheduling.
 *
 * A stream terminates exactly once, with kFinished (all tokens
 * generated), kRejected (admission refused it — the explicit
 * backpressure contract: overload rejects with a reason, it never
 * aborts), or kCancelled (client cancel, or server shutdown with
 * cancel-in-flight).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

namespace comet {
namespace server {

/** Why admission refused a request (StreamEventKind::kRejected). */
enum class RejectReason {
    kNone = 0,        ///< not rejected
    kUnknownTenant,   ///< submitted under an unconfigured tenant name
    kQueueFull,       ///< bounded tenant/server queue at capacity
    kRateLimited,     ///< tenant token bucket empty at arrival
    kTooLarge,        ///< prompt + max_output can never fit the pool
    kDeadlineExpired, ///< admission deadline passed while queued
    kShuttingDown,    ///< server draining or stopped
};

/** Returns "none" / "unknown-tenant" / "queue-full" / "rate-limited"
 * / "too-large" / "deadline-expired" / "shutting-down". */
const char *rejectReasonName(RejectReason reason);

/** What a StreamEvent announces. */
enum class StreamEventKind {
    kToken = 0, ///< one generated token
    kFinished,  ///< generation complete (terminal)
    kRejected,  ///< admission refused the request (terminal)
    kCancelled, ///< cancelled by client or shutdown (terminal)
};

/** Returns "token" / "finished" / "rejected" / "cancelled". */
const char *streamEventKindName(StreamEventKind kind);

/** True for the three kinds that end a stream. */
inline bool
isTerminal(StreamEventKind kind)
{
    return kind != StreamEventKind::kToken;
}

/** One unit of streaming progress on a request. */
struct StreamEvent {
    StreamEventKind kind = StreamEventKind::kToken; ///< what happened
    /** 0-based index of the token (kToken only). */
    int64_t token_index = 0;
    /** Virtual server time of the event, microseconds. */
    double virtual_us = 0.0;
    /** Why admission refused the request (kRejected only). */
    RejectReason reject_reason = RejectReason::kNone;
};

/**
 * The per-request event channel between the server loop and a client.
 *
 * Thread-safe single-producer (the server loop) / any-consumer. Two
 * delivery modes, chosen at creation:
 *
 *  - **Callback**: the callback runs inline on the server loop thread
 *    for every event; the pull API then always reports end-of-stream.
 *    Callbacks must be fast and must not call back into the server.
 *  - **Pull**: events buffer internally; next() blocks until the next
 *    event (or returns false once the terminal event was consumed).
 *
 * In both modes the terminal state (done / terminalKind / tokenCount)
 * is queryable at any time.
 */
class TokenStream
{
  public:
    /** Event-delivery callback (runs on the server loop thread). */
    using Callback = std::function<void(const StreamEvent &)>;

    /** Creates a pull-mode stream (no callback). */
    TokenStream() = default;

    /** Creates a callback-mode stream when @p callback is non-empty,
     * a pull-mode stream otherwise. */
    explicit TokenStream(Callback callback);

    /**
     * Pull-iterator: blocks until an event is available and writes it
     * to @p event, returning true; returns false once the terminal
     * event has been consumed (end of stream) — and immediately, in
     * callback mode, where nothing is ever buffered.
     */
    bool next(StreamEvent *event);

    /** Non-blocking next(): returns false when no event is buffered
     * right now (or the stream ended). */
    bool tryNext(StreamEvent *event);

    /**
     * Asks the server to cancel this request. Advisory and
     * asynchronous: the serving loop observes the flag at its next
     * iteration and emits kCancelled; a request that already
     * finished stays finished.
     */
    void requestCancel();

    /** True once requestCancel() was called. */
    bool
    cancelRequested() const
    {
        return cancel_requested_.load(std::memory_order_acquire);
    }

    /** True once the terminal event was delivered (pushed — not
     * necessarily consumed by the pull side yet). */
    bool done() const;

    /** The terminal event kind. @pre done(). */
    StreamEventKind terminalKind() const;

    /** The reject reason of the terminal event (kNone unless the
     * stream ended kRejected). @pre done(). */
    RejectReason terminalReason() const;

    /** Tokens delivered so far. */
    int64_t
    tokenCount() const
    {
        return tokens_.load(std::memory_order_acquire);
    }

    /**
     * Producer side: delivers one event (server loop thread only).
     * Token events bump tokenCount(); the terminal event latches the
     * terminal state. In callback mode the callback runs inline;
     * in pull mode the event is buffered and a waiting next() wakes.
     * @pre the stream has not terminated yet.
     */
    void deliver(const StreamEvent &event);

    /**
     * Registers @p poke to run (under no stream lock) whenever the
     * client requests cancellation — the server installs its
     * wake-the-loop hook here so a cancel interrupts an idle loop.
     */
    void setCancelPoke(std::function<void()> poke);

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<StreamEvent> queue_;
    Callback callback_;
    std::function<void()> cancel_poke_;
    std::atomic<int64_t> tokens_{0};
    std::atomic<bool> cancel_requested_{false};
    bool done_ = false;
    bool consumed_terminal_ = false;
    StreamEventKind terminal_kind_ = StreamEventKind::kFinished;
    RejectReason terminal_reason_ = RejectReason::kNone;
};

/** Shared handle to a stream (held by the client and the server). */
using TokenStreamPtr = std::shared_ptr<TokenStream>;

} // namespace server
} // namespace comet
