#include "comet/server/loadgen.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <tuple>
#include <utility>

#include "comet/common/rng.h"
#include "comet/common/stats.h"
#include "comet/common/status.h"
#include "comet/common/table.h"

namespace comet {
namespace server {

namespace {

int64_t
sampleLength(Rng &rng, int64_t lo, int64_t hi)
{
    COMET_CHECK(lo > 0 && hi >= lo);
    return lo + static_cast<int64_t>(
                    rng.uniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

/** The first @p tokens ids of the deterministic stream seeded with
 * @p seed — pool prompts and unique tails are both "a prefix of a
 * seeded stream", so any two draws from one seed share a prefix by
 * construction and draws from different seeds diverge immediately. */
std::vector<int32_t>
tokenStream(uint64_t seed, int64_t tokens)
{
    Rng rng(seed);
    std::vector<int32_t> ids;
    ids.reserve(static_cast<size_t>(tokens));
    for (int64_t i = 0; i < tokens; ++i)
        ids.push_back(static_cast<int32_t>(rng.uniformInt(32000)));
    return ids;
}

/** p50/p99 of one latency series, sorted once; zeros when empty. */
std::pair<double, double>
p50p99OrZero(const std::vector<double> &values)
{
    if (values.empty())
        return {0.0, 0.0};
    const std::vector<double> ps = exactPercentiles(values,
                                                    {50.0, 99.0});
    return {ps[0], ps[1]};
}

} // namespace

std::vector<LoadgenRequest>
generateLoadgenWorkload(const LoadgenConfig &config)
{
    Rng base(config.seed);
    std::vector<LoadgenRequest> requests;
    for (size_t t = 0; t < config.tenants.size(); ++t) {
        const LoadgenTenant &tenant = config.tenants[t];
        COMET_CHECK(tenant.arrival_rate_per_s > 0.0);
        COMET_CHECK(tenant.requests > 0);
        // One independent stream per tenant, split in tenant order,
        // so adding a tenant never reshuffles the others' workloads.
        Rng rng = base.split();
        double arrival_us = 0.0;
        for (int64_t i = 0; i < tenant.requests; ++i) {
            // Exponential inter-arrival gap (Poisson process).
            const double u = rng.uniform();
            arrival_us += -std::log(1.0 - u) /
                          tenant.arrival_rate_per_s * 1e6;
            LoadgenRequest request;
            request.tenant = static_cast<int>(t);
            request.arrival_us = arrival_us;
            request.prompt_tokens = sampleLength(
                rng, tenant.prompt_min, tenant.prompt_max);
            request.eos_output_tokens = sampleLength(
                rng, tenant.output_min, tenant.output_max);
            // Clients declare the generous bound; EOS lands earlier
            // (the gap optimistic admission exploits).
            request.declared_output_tokens = tenant.output_max;
            if (tenant.shared_prompt_pools > 0) {
                // Shared head (pool prompt), unique tail: the prompt
                // is the pool stream's first prompt_min tokens, then
                // this request's own stream. Pool seeds fold the
                // tenant in so two tenants' pools never share content
                // by accident (isolation is still enforced by key
                // namespaces either way).
                const uint64_t pool = rng.uniformInt(
                    static_cast<uint64_t>(tenant.shared_prompt_pools));
                const uint64_t pool_seed =
                    config.seed * 1000003ull + t * 8191ull + pool;
                request.prompt_ids =
                    tokenStream(pool_seed,
                                std::min(tenant.prompt_min,
                                         request.prompt_tokens));
                const uint64_t tail_seed =
                    config.seed * 6700417ull + t * 524287ull +
                    static_cast<uint64_t>(i) + 1ull;
                const auto tail = tokenStream(
                    tail_seed,
                    request.prompt_tokens -
                        static_cast<int64_t>(request.prompt_ids.size()));
                request.prompt_ids.insert(request.prompt_ids.end(),
                                          tail.begin(), tail.end());
            }
            requests.push_back(request);
        }
    }
    std::stable_sort(requests.begin(), requests.end(),
                     [](const LoadgenRequest &a,
                        const LoadgenRequest &b) {
                         return a.arrival_us < b.arrival_us;
                     });
    return requests;
}

void
recordLoadgenEvent(RequestOutcome *outcome, const StreamEvent &event)
{
    switch (event.kind) {
      case StreamEventKind::kToken:
        if (outcome->tokens == 0)
            outcome->first_token_us = event.virtual_us;
        outcome->last_token_us = event.virtual_us;
        ++outcome->tokens;
        break;
      case StreamEventKind::kFinished:
      case StreamEventKind::kRejected:
      case StreamEventKind::kCancelled:
        outcome->terminal = event.kind;
        outcome->reason = event.reject_reason;
        break;
    }
}

uint64_t
deriveReplicaSeed(uint64_t seed, int replica)
{
    // SplitMix64 round over seed + replica-scaled increment: a
    // platform-stable fold that keeps replica 0's stream distinct
    // from the base seed's own stream.
    uint64_t x = seed + (static_cast<uint64_t>(replica) + 1ull) *
                            0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::vector<TenantConfig>
loadgenTenants(const LoadgenConfig &config)
{
    std::vector<TenantConfig> tenants;
    tenants.reserve(config.tenants.size());
    for (const LoadgenTenant &tenant : config.tenants)
        tenants.push_back(tenant.admission);
    return tenants;
}

LoadgenReport
runLoadgen(Server *server, const LoadgenConfig &config)
{
    COMET_CHECK(server != nullptr);
    COMET_CHECK(config.clients > 0);
    COMET_CHECK(!config.tenants.empty());

    const std::vector<LoadgenRequest> workload =
        generateLoadgenWorkload(config);
    const size_t total = workload.size();
    std::vector<RequestOutcome> outcomes(total);
    for (size_t i = 0; i < total; ++i) {
        outcomes[i].tenant = workload[i].tenant;
        outcomes[i].arrival_us = workload[i].arrival_us;
    }

    // Connect every client before any submission so each handle's
    // ingress horizon gates the virtual clock from the start.
    const size_t clients =
        std::min(static_cast<size_t>(config.clients), total);
    std::vector<Server::Client> handles;
    for (size_t c = 0; c < clients; ++c)
        handles.push_back(server->connect());

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            Server::Client client = handles[c];
            // Round-robin over the arrival-sorted workload keeps
            // each client's submissions in nondecreasing arrival
            // order, as the ingress contract requires.
            std::vector<std::pair<size_t, TokenStreamPtr>> streams;
            for (size_t i = c; i < total; i += clients) {
                const LoadgenRequest &generated = workload[i];
                StreamRequest request;
                request.id = static_cast<int64_t>(i);
                request.tenant =
                    config.tenants[static_cast<size_t>(
                                       generated.tenant)]
                        .admission.name;
                request.prompt_tokens = generated.prompt_tokens;
                request.max_output_tokens =
                    generated.declared_output_tokens;
                request.eos_output_tokens =
                    generated.eos_output_tokens;
                request.arrival_us = generated.arrival_us;
                request.prompt_ids = generated.prompt_ids;
                RequestOutcome *outcome = &outcomes[i];
                if (config.callbacks) {
                    request.callback =
                        [outcome](const StreamEvent &event) {
                            recordLoadgenEvent(outcome, event);
                        };
                }
                TokenStreamPtr stream = client.submit(request);
                if (!config.callbacks)
                    streams.emplace_back(i, std::move(stream));
            }
            // Open loop: everything submitted; release the ingress
            // gate, then stream the responses back.
            client.close();
            for (auto &entry : streams) {
                StreamEvent event;
                while (entry.second->next(&event))
                    recordLoadgenEvent(&outcomes[entry.first],
                                       event);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    // Callback mode: events keep flowing on the loop thread until
    // the drain barrier below synchronizes the outcome slots.
    server->drain();
    return finalizeLoadgenReport(config, std::move(outcomes),
                                 server->virtualClockUs());
}

LoadgenReport
finalizeLoadgenReport(const LoadgenConfig &config,
                      std::vector<RequestOutcome> outcomes,
                      double makespan_us)
{
    LoadgenReport report;
    report.makespan_us = makespan_us;
    report.tenants.resize(config.tenants.size());
    std::vector<std::vector<double>> ttfts(config.tenants.size());
    std::vector<std::vector<double>> tpots(config.tenants.size());
    std::vector<double> slo_tokens(config.tenants.size(), 0.0);
    for (size_t t = 0; t < config.tenants.size(); ++t)
        report.tenants[t].name =
            config.tenants[t].admission.name;
    for (const RequestOutcome &outcome : outcomes) {
        const auto t = static_cast<size_t>(outcome.tenant);
        LoadgenTenantReport &row = report.tenants[t];
        ++row.submitted;
        row.tokens += outcome.tokens;
        switch (outcome.terminal) {
          case StreamEventKind::kFinished: {
            ++row.completed;
            const double ttft =
                outcome.first_token_us - outcome.arrival_us;
            ttfts[t].push_back(ttft);
            const double ttft_slo =
                config.tenants[t].admission.ttft_slo_us;
            const double tpot_slo =
                config.tenants[t].admission.tpot_slo_us;
            bool met = ttft_slo <= 0.0 || ttft <= ttft_slo;
            if (outcome.tokens > 1) {
                const double tpot =
                    (outcome.last_token_us -
                     outcome.first_token_us) /
                    static_cast<double>(outcome.tokens - 1);
                tpots[t].push_back(tpot);
                ++row.tpot_measured;
                if (tpot_slo <= 0.0 || tpot <= tpot_slo)
                    ++row.tpot_slo_met;
                else
                    met = false;
            }
            if (met) {
                ++row.slo_met;
                slo_tokens[t] +=
                    static_cast<double>(outcome.tokens);
            }
            break;
          }
          case StreamEventKind::kRejected:
            ++row.rejected;
            break;
          case StreamEventKind::kCancelled:
            ++row.cancelled;
            break;
          case StreamEventKind::kToken:
            COMET_CHECK_MSG(false,
                            "stream ended without a terminal event");
        }
    }
    for (size_t t = 0; t < config.tenants.size(); ++t) {
        LoadgenTenantReport &row = report.tenants[t];
        std::tie(row.ttft_p50_us, row.ttft_p99_us) =
            p50p99OrZero(ttfts[t]);
        std::tie(row.tpot_p50_us, row.tpot_p99_us) =
            p50p99OrZero(tpots[t]);
        row.goodput_tokens_per_s =
            report.makespan_us > 0.0
                ? slo_tokens[t] / (report.makespan_us * 1e-6)
                : 0.0;
        report.submitted += row.submitted;
        report.completed += row.completed;
        report.rejected += row.rejected;
        report.cancelled += row.cancelled;
        report.tokens += row.tokens;
    }
    report.outcomes = std::move(outcomes);
    return report;
}

std::string
renderLoadgenReport(const LoadgenReport &report)
{
    Table table({"tenant", "submit", "done", "reject", "tokens",
                 "ttft p50 (ms)", "ttft p99 (ms)", "tpot p50 (ms)",
                 "tpot p99 (ms)", "goodput (tok/s)", "slo met",
                 "tpot slo"});
    for (const LoadgenTenantReport &row : report.tenants) {
        table.addRow(
            {row.name, std::to_string(row.submitted),
             std::to_string(row.completed),
             std::to_string(row.rejected),
             std::to_string(row.tokens),
             formatDouble(row.ttft_p50_us * 1e-3, 3),
             formatDouble(row.ttft_p99_us * 1e-3, 3),
             formatDouble(row.tpot_p50_us * 1e-3, 3),
             formatDouble(row.tpot_p99_us * 1e-3, 3),
             formatDouble(row.goodput_tokens_per_s, 1),
             row.completed > 0
                 ? formatPercent(
                       static_cast<double>(row.slo_met) /
                           static_cast<double>(row.completed),
                       1)
                 : "-",
             row.tpot_measured > 0
                 ? formatPercent(
                       static_cast<double>(row.tpot_slo_met) /
                           static_cast<double>(row.tpot_measured),
                       1)
                 : "-"});
    }
    table.addSeparator();
    table.addRow({"total", std::to_string(report.submitted),
                  std::to_string(report.completed),
                  std::to_string(report.rejected),
                  std::to_string(report.tokens), "-", "-", "-", "-",
                  "-", "-", "-"});
    return table.render();
}

LoadgenConfig
mixedSloWorkload(uint64_t seed, bool smoke)
{
    LoadgenConfig config;
    config.seed = seed;
    config.clients = 4;

    // The ingestion tenant: few requests, multi-thousand-token
    // prompts, short outputs. Under monolithic prefill each of its
    // admissions stalls every decoding stream for the whole prompt;
    // under chunked prefill the same work interleaves.
    LoadgenTenant longctx;
    longctx.admission.name = "longctx";
    longctx.admission.weight = 1.0;
    longctx.admission.ttft_slo_us = 5e6; // 5 s: ingestion is patient
    longctx.arrival_rate_per_s = 1.5;
    longctx.requests = smoke ? 6 : 24;
    longctx.prompt_min = 1536;
    longctx.prompt_max = 3072;
    longctx.output_min = 8;
    longctx.output_max = 24;
    config.tenants.push_back(longctx);

    // Two interactive chat tenants with tight tail budgets — the
    // streams whose TPOT p99 monolithic prefill blows up.
    for (const char *name : {"chat-a", "chat-b"}) {
        LoadgenTenant chat;
        chat.admission.name = name;
        chat.admission.weight = 2.0;
        chat.admission.ttft_slo_us = 4e5;  // 400 ms to first token
        chat.admission.tpot_slo_us = 5e4;  // 50 ms per token
        chat.arrival_rate_per_s = 10.0;
        chat.requests = smoke ? 24 : 96;
        chat.prompt_min = 64;
        chat.prompt_max = 192;
        chat.output_min = 24;
        chat.output_max = 96;
        config.tenants.push_back(chat);
    }
    return config;
}

} // namespace server
} // namespace comet
