#include "comet/server/server.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <utility>

#include "comet/chaos/failpoint.h"
#include "comet/common/status.h"
#include "comet/obs/obs.h"
#include "comet/obs/trace_session.h"
#include "comet/runtime/thread_pool.h"

namespace comet {
namespace server {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** Latency histogram buckets, microseconds: 100 us .. 50 s in a
 * 1-2-5 progression (virtual-time TTFT/TPOT span this range across
 * the bench scenarios). */
std::vector<double>
latencyBucketsUs()
{
    return {1e2, 2e2, 5e2, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4,
            1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7};
}

obs::Counter &
serverCounter(const std::string &prefix, const char *name)
{
    return obs::MetricsRegistry::global().counter(prefix + "." +
                                                  name);
}

} // namespace

/**
 * Everything the client threads and the serving loop share. One
 * mutex guards it all — submission is a push + notify, and the loop
 * drains the inbox in batches, so contention is a non-issue at the
 * request rates the virtual-time engine models.
 */
struct Server::Wake {
    std::mutex mutex;
    /** The loop waits here (for work, horizons, cancel pokes). */
    std::condition_variable cv;
    /** drain()/stop() callers wait here for session completion. */
    std::condition_variable done_cv;
    /** Submitted requests the loop has not picked up yet. */
    std::vector<SubmitRecord> inbox;
    /** Per-client ingress horizons (see the server file comment). */
    std::vector<double> horizons;
    bool draining = false;       ///< ingress closed
    bool stop_requested = false; ///< loop asked to exit
    bool cancel_on_stop = false; ///< stop cancels in-flight work
    bool poked = false;          ///< a stream requested cancellation
    bool session_complete = false; ///< all accepted work terminal
    bool loop_exited = false;      ///< the loop thread returned
    int64_t submitted = 0;      ///< submit() calls (any verdict)
    int64_t early_rejected = 0; ///< rejected on the submit path
    // Published snapshots (the loop owns the live state).
    ServerStats stats;
    SchedulerCounters sched;
    double clock_us = 0.0;
    /**
     * Settled horizon: every stream event stamped strictly below
     * this has been delivered (see Server::waitSettled for the
     * caller discipline under which the promise holds). Monotone;
     * advances where the loop can prove no earlier-stamped event is
     * still possible — committed clock jumps, gate parks bounded by
     * the minimum client horizon, and session completion (infinity).
     */
    double settled_us = 0.0;
};

Server::Server(const ServingEngine *engine, ServerConfig config)
    : engine_(engine), config_(std::move(config))
{
    COMET_CHECK(engine_ != nullptr);
    COMET_CHECK(config_.max_batch > 0);
    COMET_CHECK(config_.max_queued_total >= 0);
    COMET_CHECK(config_.chunked_prefill_tokens >= 0);
    COMET_CHECK(config_.step_token_budget >= 0);
    precision_ = servingPrecision(engine_->config().mode);

    KvCacheConfig cache_config;
    cache_config.bits_per_value = precision_.kv_bits;
    cache_config.block_tokens = engine_->config().kv_block_tokens;
    // The paged cache counts full-model blocks, so it must be sized
    // from the TP group's aggregate pool: kvBudgetBytes() alone is
    // the per-GPU shard and would shrink a TP=N server's admission
    // capacity N-fold relative to the engine's own scheduler.
    cache_config.memory_budget_bytes =
        std::max(engine_->kvPoolBytes(), 1.0);
    cache_config.enable_prefix_cache = config_.enable_prefix_cache;
    cache_ = std::make_unique<PagedKvCache>(engine_->config().model,
                                            cache_config);
    key_space_.bits_per_value = cache_config.bits_per_value;
    key_space_.block_tokens = cache_config.block_tokens;
    key_space_.quant_group_tokens = cache_config.quant_group_tokens;

    BatchSchedulerConfig sched_config;
    sched_config.max_batch = config_.max_batch;
    sched_config.admission = config_.admission;
    sched_config.watermark_blocks = config_.kv_watermark_blocks;
    // Online accounting: the prefill forward pass produces the first
    // token (TTFT), and terminal transitions must surface as stream
    // events rather than bare counters.
    sched_config.prefill_emits_token = true;
    sched_config.collect_retired = true;
    sched_config.chunk_tokens = config_.chunked_prefill_tokens;
    sched_config.step_token_budget = config_.step_token_budget;
    scheduler_ =
        std::make_unique<BatchScheduler>(cache_.get(), sched_config);
    scheduler_->resetCounters();

    fair_ = std::make_unique<FairAdmissionQueue>(config_.tenants);

    // One attainment row per tenant, fixed for the session (set up
    // before the loop thread starts; the loop owns stats_ after).
    stats_.tenant_slo.resize(config_.tenants.size());
    for (size_t t = 0; t < config_.tenants.size(); ++t)
        stats_.tenant_slo[t].tenant = config_.tenants[t].name;

    wake_ = std::make_shared<Wake>();
    loop_thread_ = std::thread(&Server::loop, this);
}

Server::~Server() { stop(true); }

Server::Client
Server::connect()
{
    Client client;
    client.server_ = this;
    std::lock_guard<std::mutex> lock(wake_->mutex);
    COMET_CHECK_MSG(!wake_->draining,
                    "connect() on a draining/stopped server");
    client.index_ = wake_->horizons.size();
    // A handle connected mid-session starts at the published virtual
    // clock, never behind it: a new client cannot drag the ingress
    // gate below decisions the loop has already committed (and its
    // submissions cannot carry arrivals in the virtual past).
    wake_->horizons.push_back(wake_->clock_us);
    return client;
}

TokenStreamPtr
Server::Client::submit(const StreamRequest &request)
{
    COMET_CHECK_MSG(valid(), "submit() on an unconnected handle");
    return server_->submitFromClient(index_, request);
}

void
Server::Client::advanceTo(double horizon_us)
{
    COMET_CHECK_MSG(valid(), "advanceTo() on an unconnected handle");
    server_->advanceClient(index_, horizon_us, /*close=*/false);
}

void
Server::Client::close()
{
    COMET_CHECK_MSG(valid(), "close() on an unconnected handle");
    server_->advanceClient(index_, kInfinity, /*close=*/true);
}

TokenStreamPtr
Server::submitFromClient(size_t client, const StreamRequest &request)
{
    COMET_CHECK(request.id >= 0);
    COMET_CHECK(request.prompt_tokens > 0);
    COMET_CHECK(request.max_output_tokens > 0);
    COMET_CHECK(request.eos_output_tokens >= 0);
    COMET_CHECK(request.arrival_us >= 0.0);
    COMET_CHECK_MSG(request.cancel_at_us == 0.0 ||
                        request.cancel_at_us >= request.arrival_us,
                    "cancel_at_us must be 0 or >= arrival_us");

    TokenStreamPtr stream =
        request.callback
            ? std::make_shared<TokenStream>(request.callback)
            : std::make_shared<TokenStream>();
    // Install the loop-wake hook before the request can possibly
    // reach the loop, so no cancellation poke is ever lost.
    std::weak_ptr<Wake> weak = wake_;
    stream->setCancelPoke([weak] {
        if (std::shared_ptr<Wake> wake = weak.lock()) {
            std::lock_guard<std::mutex> lock(wake->mutex);
            wake->poked = true;
            wake->cv.notify_all();
        }
    });

    RejectReason early = RejectReason::kNone;
    double reject_clock_us = 0.0;
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        ++wake_->submitted;
        serverCounter(config_.metrics_prefix, "submitted").add();
        COMET_CHECK(client < wake_->horizons.size());
        double &horizon = wake_->horizons[client];
        if (wake_->draining || horizon == kInfinity) {
            early = RejectReason::kShuttingDown;
        } else if (tenantIndexByName(request.tenant) < 0) {
            early = RejectReason::kUnknownTenant;
        } else {
            COMET_CHECK_MSG(
                request.arrival_us >= horizon,
                "arrival times must be nondecreasing per client");
            horizon = request.arrival_us;
            SubmitRecord record;
            record.arrival_us = request.arrival_us;
            record.cancel_at_us = request.cancel_at_us;
            record.request.id = request.id;
            const int tenant = tenantIndexByName(request.tenant);
            record.request.tenant = tenant;
            record.request.arrival_us = request.arrival_us;
            record.request.prompt_tokens = request.prompt_tokens;
            record.request.max_output_tokens =
                request.max_output_tokens;
            record.request.eos_output_tokens =
                request.eos_output_tokens;
            // Prefix keys are derived here, on the client thread (a
            // pure function of content + tenant key space), so the
            // loop never touches prompt content. The ids are not
            // retained — only the 8-byte-per-block key chain rides
            // along with the request.
            if (config_.enable_prefix_cache &&
                config_.tenants[static_cast<size_t>(tenant)]
                    .prefix_caching &&
                !request.prompt_ids.empty()) {
                COMET_CHECK_MSG(
                    static_cast<int64_t>(request.prompt_ids.size()) ==
                        request.prompt_tokens,
                    "prompt_ids must be prompt_tokens long");
                prefix::KeySpace space = key_space_;
                space.namespace_id = tenant;
                record.request.prefix_block_keys =
                    prefix::chainBlockKeys(space, request.prompt_ids);
            }
            record.request.stream = stream;
            wake_->inbox.push_back(std::move(record));
            wake_->cv.notify_all();
        }
        if (early != RejectReason::kNone) {
            ++wake_->early_rejected;
            serverCounter(config_.metrics_prefix, "rejected").add();
            reject_clock_us = wake_->clock_us;
        }
    }
    if (early != RejectReason::kNone) {
        StreamEvent event;
        event.kind = StreamEventKind::kRejected;
        event.virtual_us = reject_clock_us;
        event.reject_reason = early;
        stream->deliver(event);
    }
    return stream;
}

int
Server::tenantIndexByName(const std::string &name) const
{
    for (size_t i = 0; i < config_.tenants.size(); ++i) {
        if (config_.tenants[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
Server::advanceClient(size_t client, double horizon_us, bool close)
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    COMET_CHECK(client < wake_->horizons.size());
    double &horizon = wake_->horizons[client];
    horizon = std::max(horizon, close ? kInfinity : horizon_us);
    wake_->cv.notify_all();
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(wake_->mutex);
    wake_->draining = true;
    wake_->cv.notify_all();
    wake_->done_cv.wait(
        lock, [&] { return wake_->session_complete; });
}

void
Server::stop(bool cancel_in_flight)
{
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        wake_->draining = true;
        wake_->stop_requested = true;
        // A later stop(true) may tighten an earlier stop(false),
        // never the other way around.
        wake_->cancel_on_stop |= cancel_in_flight;
        wake_->cv.notify_all();
    }
    std::lock_guard<std::mutex> join_lock(join_mutex_);
    if (loop_thread_.joinable())
        loop_thread_.join();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    ServerStats stats = wake_->stats;
    stats.submitted = wake_->submitted;
    stats.rejected += wake_->early_rejected;
    return stats;
}

SchedulerCounters
Server::schedulerCounters() const
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    return wake_->sched;
}

double
Server::virtualClockUs() const
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    return wake_->clock_us;
}

const std::vector<TenantConfig> &
Server::tenants() const
{
    return config_.tenants;
}

void
Server::waitSettled(double virtual_us) const
{
    std::unique_lock<std::mutex> lock(wake_->mutex);
    wake_->done_cv.wait(
        lock, [&] { return wake_->settled_us >= virtual_us; });
}

int64_t
Server::kvTotalBlocks() const
{
    return cache_->totalBlocks();
}

int64_t
Server::kvBlocksForTokens(int64_t tokens) const
{
    return cache_->blocksForTokens(tokens);
}

const PagedKvCache &
Server::kvCacheForAudit() const
{
    // Taking the wake mutex after the loop published completion
    // gives the caller a happens-before edge over every loop-side
    // cache mutation, so the audit reads are race-free.
    std::lock_guard<std::mutex> lock(wake_->mutex);
    COMET_CHECK_MSG(wake_->session_complete,
                    "kvCacheForAudit() requires a drained or "
                    "stopped server");
    return *cache_;
}

// --------------------------------------------------------------------
// Serving loop
// --------------------------------------------------------------------

void
Server::loop()
{
    obs::configureFromEnv();
    COMET_SPAN("server/session");
    for (;;) {
        bool stop_now = false;
        bool cancel_now = false;
        bool drain_now = false;
        std::vector<SubmitRecord> incoming;
        {
            std::unique_lock<std::mutex> lock(wake_->mutex);
            wake_->cv.wait(lock, [&] {
                const bool wake =
                    wake_->stop_requested || wake_->poked ||
                    !wake_->inbox.empty() || !sessionIdle() ||
                    (wake_->draining && !wake_->session_complete);
                // Parked with no pending work: future events can
                // only come from submissions at or beyond the
                // minimum open horizon, so that floor is settled
                // (re-evaluated as client horizons advance).
                if (!wake && !wake_->horizons.empty())
                    advanceSettledLocked(minHorizonLocked());
                return wake;
            });
            incoming.swap(wake_->inbox);
            wake_->poked = false;
            stop_now = wake_->stop_requested;
            cancel_now = wake_->cancel_on_stop;
            drain_now = wake_->draining;
        }
        for (SubmitRecord &record : incoming)
            acceptArrival(std::move(record));
        if (stop_now && cancel_now) {
            cancelEverything();
            publish(/*complete=*/true);
            return;
        }
        processCancellations();
        processDueCancels();
        if (!sessionIdle()) {
            if (!stepOnce()) {
                // A stop-with-cancel interrupted a gate wait.
                cancelEverything();
                publish(/*complete=*/true);
                return;
            }
            publish(/*complete=*/false);
            continue;
        }
        if (drain_now || stop_now) {
            publish(/*complete=*/true);
            if (stop_now)
                return;
            continue;
        }
        publish(/*complete=*/false);
    }
}

void
Server::acceptArrival(SubmitRecord &&record)
{
    const int64_t id = record.request.id;
    COMET_CHECK_MSG(arrivals_.find(id) == arrivals_.end() &&
                        live_.find(id) == live_.end(),
                    "request ids must be unique per session");
    arrival_order_.insert({record.arrival_us, id});
    if (record.cancel_at_us > 0.0)
        cancel_order_.insert({record.cancel_at_us, id});
    arrivals_.emplace(id, std::move(record));
}

double
Server::safeHorizonLocked() const
{
    if (!config_.deterministic_ingress || wake_->draining)
        return kInfinity;
    return minHorizonLocked();
}

double
Server::minHorizonLocked() const
{
    double floor = kInfinity;
    for (double horizon : wake_->horizons)
        floor = std::min(floor, horizon);
    return floor;
}

void
Server::advanceSettledLocked(double settled_us)
{
    if (settled_us > wake_->settled_us) {
        wake_->settled_us = settled_us;
        wake_->done_cv.notify_all();
    }
}

bool
Server::waitForSafe(double target_us)
{
    if (!config_.deterministic_ingress) {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        advanceSettledLocked(target_us);
        return true;
    }
    std::unique_lock<std::mutex> lock(wake_->mutex);
    // Strictly past the target: a client whose horizon sits exactly
    // at target_us may still submit more arrivals at that instant
    // (equal arrival times per handle are legal), so >= would let the
    // clock commit with such a tie racing the inbox drain.
    wake_->cv.wait(lock, [&] {
        // While parked, events below min(target, horizon floor) are
        // impossible (the pending step delivers at >= target once
        // committed; later submissions arrive at >= the floor and
        // are ingested after the commit): publish that as settled so
        // a cluster router can await quiescence mid-step.
        if (!(wake_->stop_requested && wake_->cancel_on_stop)) {
            advanceSettledLocked(
                std::min(target_us, minHorizonLocked()));
        }
        return (wake_->stop_requested && wake_->cancel_on_stop) ||
               safeHorizonLocked() > target_us;
    });
    if (wake_->stop_requested && wake_->cancel_on_stop)
        return false;
    // The clock jump to target_us is now committed: every event the
    // loop delivers from here on is stamped >= target_us, so the
    // settled horizon reaches the target.
    advanceSettledLocked(target_us);
    return true;
}

Server::GateOutcome
Server::waitToAdvance(double target_us)
{
    if (!config_.deterministic_ingress)
        return GateOutcome::kAdvance;
    std::unique_lock<std::mutex> lock(wake_->mutex);
    wake_->cv.wait(lock, [&] {
        // While parked here, any future submission arrives at or
        // beyond the minimum open horizon and is delivered at a
        // clock at or beyond its arrival, so events below
        // min(target, horizon floor) are impossible: publish that as
        // the settled horizon (re-evaluated as horizons move) so a
        // cluster router can await per-replica quiescence while the
        // gate is held.
        if (!(wake_->stop_requested && wake_->cancel_on_stop)) {
            advanceSettledLocked(
                std::min(target_us, minHorizonLocked()));
        }
        return (wake_->stop_requested && wake_->cancel_on_stop) ||
               wake_->poked || !wake_->inbox.empty() ||
               safeHorizonLocked() > target_us;
    });
    if (wake_->stop_requested && wake_->cancel_on_stop)
        return GateOutcome::kInterrupted;
    // New submissions (or cancel pokes) landed while the gate was
    // held: the earliest pending arrival may have changed, so the
    // outer loop must ingest and re-plan before any clock jump.
    if (wake_->poked || !wake_->inbox.empty())
        return GateOutcome::kReplan;
    return GateOutcome::kAdvance;
}

void
Server::publishClock()
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    wake_->clock_us = clock_;
    // Everything delivered so far is stamped <= clock_, and future
    // deliveries are stamped >= clock_, so events strictly below the
    // committed clock are settled.
    advanceSettledLocked(clock_);
}

void
Server::ingestDueArrivals()
{
    while (!arrival_order_.empty() &&
           arrival_order_.begin()->first <= clock_) {
        const int64_t id = arrival_order_.begin()->second;
        arrival_order_.erase(arrival_order_.begin());
        auto it = arrivals_.find(id);
        COMET_CHECK(it != arrivals_.end());
        PendingRequest pending = std::move(it->second.request);
        arrivals_.erase(it);

        // Chaos hook: a client cancel/disconnect racing admission.
        // Only the loop thread fires it, and processCancellations
        // observes the flag at the next iteration boundary, so the
        // injected race replays deterministically.
        if (COMET_FAILPOINT("server.ingress"))
            pending.stream->requestCancel();

        // A request that cannot fit the pool even running alone can
        // never be served: reject before it charges any fair share
        // (the same never-fits rule the scheduler applies).
        if (cache_->blocksForTokens(pending.prompt_tokens +
                                    pending.max_output_tokens) >
            cache_->totalBlocks()) {
            rejectPending(std::move(pending),
                          RejectReason::kTooLarge);
            continue;
        }
        if (config_.max_queued_total > 0 &&
            fair_->queuedCount() >= config_.max_queued_total) {
            rejectPending(std::move(pending),
                          RejectReason::kQueueFull);
            continue;
        }
        LiveRequest live;
        live.stream = pending.stream;
        live.tenant = pending.tenant;
        live.arrival_us = pending.arrival_us;
        const int64_t live_id = pending.id;
        const RejectReason verdict =
            fair_->offer(std::move(pending), clock_);
        if (verdict != RejectReason::kNone) {
            PendingRequest failed;
            failed.id = live_id;
            failed.stream = live.stream;
            rejectPending(std::move(failed), verdict);
            continue;
        }
        ++stats_.queued;
        serverCounter(config_.metrics_prefix, "queued").add();
        live_.emplace(live_id, std::move(live));
    }
}

void
Server::rejectPending(PendingRequest &&pending, RejectReason reason)
{
    COMET_CHECK(pending.stream != nullptr);
    ++stats_.rejected;
    serverCounter(config_.metrics_prefix, "rejected").add();
    StreamEvent event;
    event.kind = StreamEventKind::kRejected;
    event.virtual_us = clock_;
    event.reject_reason = reason;
    pending.stream->deliver(event);
    live_.erase(pending.id);
}

void
Server::injectFromFairQueue()
{
    COMET_SPAN("server/admit");
    for (;;) {
        scheduler_->admit();
        // Preempted (or previously injected) work waiting on KV
        // capacity keeps strict priority: nothing new is injected
        // behind a blocked head.
        if (scheduler_->queuedCount() > 0)
            break;
        if (scheduler_->runningCount() >= config_.max_batch)
            break;
        PendingRequest next;
        std::vector<PendingRequest> expired;
        const bool got = fair_->pick(clock_, &next, &expired);
        for (PendingRequest &e : expired)
            rejectPending(std::move(e),
                          RejectReason::kDeadlineExpired);
        if (!got)
            break;
        auto it = live_.find(next.id);
        COMET_CHECK(it != live_.end());
        it->second.in_scheduler = true;
        Request request;
        request.id = next.id;
        request.prompt_tokens = next.prompt_tokens;
        request.max_output_tokens = next.max_output_tokens;
        request.eos_output_tokens = next.eos_output_tokens;
        // SLO-aware chunk ordering: a tenant with a TTFT budget gets
        // its prefill chunks scheduled by absolute deadline; no
        // budget (0) keeps FCFS order among the deadline-free.
        const TenantConfig &tenant_config =
            config_.tenants[static_cast<size_t>(next.tenant)];
        if (tenant_config.ttft_slo_us > 0.0) {
            request.deadline_us =
                next.arrival_us + tenant_config.ttft_slo_us;
        }
        if (!next.prefix_block_keys.empty()) {
            request.prefix_namespace = next.tenant;
            request.prefix_block_keys =
                std::move(next.prefix_block_keys);
        }
        scheduler_->submit(request);
    }
}

bool
Server::stepOnce()
{
    COMET_SPAN("server/step");
    ingestDueArrivals();
    processDueCancels();

    // Nothing runnable yet: fast-forward the clock to the next
    // arrival (once the ingress gate allows it). The jump commits
    // only when the inbox is empty and every open horizon is
    // strictly past the target — then no arrival <= target can still
    // appear, and the target is provably the earliest arrival. Any
    // submission landing while the gate is held bounces back to the
    // outer loop, which ingests it and re-plans (it may be earlier
    // than the current target).
    if (scheduler_->idle() && fair_->empty()) {
        if (arrival_order_.empty())
            return true;
        const double next_us = arrival_order_.begin()->first;
        if (next_us > clock_) {
            switch (waitToAdvance(next_us)) {
              case GateOutcome::kInterrupted:
                return false;
              case GateOutcome::kReplan:
                return true; // the outer loop re-enters stepOnce
              case GateOutcome::kAdvance:
                clock_ = next_us;
                // Commit before any event delivery: a client that
                // observes an event (or connects) must never read a
                // clock behind the events it has seen.
                publishClock();
                break;
            }
        }
        ingestDueArrivals();
        // Abandons scheduled inside the jump window fire before any
        // admission decision at the new clock.
        processDueCancels();
    }

    // Admission happens at the current virtual time. Monolithic
    // mode charges the admitted wave's whole (re)prefill before any
    // token is visible; chunked mode defers all prefill compute to
    // the fused per-step plan below.
    const bool chunked = config_.chunked_prefill_tokens > 0;
    const size_t running_before = scheduler_->running().size();
    injectFromFairQueue();
    std::vector<int64_t> prefill_tokens;
    if (!chunked) {
        const std::vector<Request> &running = scheduler_->running();
        for (size_t i = running_before; i < running.size(); ++i) {
            // generated_tokens already includes the credited first
            // token; the forward pass recomputes everything before
            // it (prompt plus pre-preemption progress) *minus* the
            // tokens whose KV the prefix cache grafted — TTFT
            // honestly reflects the skipped work, in both directions.
            prefill_tokens.push_back(running[i].contextTokens() - 1 -
                                     running[i].prefix_matched_tokens);
        }
    }
    std::vector<Request> admit_retired = scheduler_->drainRetired();
    for (const Request &request : admit_retired) {
        // One-token generations retire at admission but still ran
        // their (possibly graft-shortened) prefill. (Chunked mode
        // never credits at admission, so nothing retires kFinished
        // here.)
        if (!chunked && request.state == RequestState::kFinished)
            prefill_tokens.push_back(request.contextTokens() - 1 -
                                     request.prefix_matched_tokens);
    }
    if (!prefill_tokens.empty()) {
        COMET_SPAN("server/prefill");
        const double prefill_us =
            engine_->prefillLatencyUs(prefill_tokens);
        if (!waitForSafe(clock_ + prefill_us))
            return false;
        clock_ += prefill_us;
        publishClock();
    }
    deliverRunningProgress();
    deliverRetired(admit_retired);

    if (scheduler_->runningCount() > 0) {
        COMET_SPAN("server/decode");
        double step_us = 0.0;
        if (chunked) {
            // Fused-step costing from the scheduler's deterministic
            // plan: one GEMM over decode + chunk tokens, the decode
            // batch's attention read, and each chunk's attention
            // over its request's growing KV prefix — the same model
            // replayTrace charges.
            const StepPlan plan = scheduler_->planStep();
            const int64_t gemm_tokens = plan.gemmTokens();
            COMET_CHECK(gemm_tokens > 0);
            auto gemm_it = gemm_cache_.find(gemm_tokens);
            if (gemm_it == gemm_cache_.end()) {
                gemm_it =
                    gemm_cache_
                        .emplace(gemm_tokens,
                                 engine_->gemmLatencyUs(gemm_tokens))
                        .first;
            }
            step_us = gemm_it->second;
            if (plan.decode_batch > 0) {
                step_us += engine_->attentionReadLatencyUs(
                    plan.decode_batch,
                    plan.decode_context_sum / plan.decode_batch);
            }
            for (const PlannedChunk &chunk : plan.chunks) {
                step_us += engine_->attentionReadLatencyUs(
                    1, std::max<int64_t>(chunk.context_after, 1));
            }
        } else {
            const std::vector<Request> &running =
                scheduler_->running();
            const int64_t batch =
                static_cast<int64_t>(running.size());
            // Per-request context accounting fanned out across the
            // runtime pool (ordered reduction: bit-identical to the
            // sequential sum for any pool size).
            const double context_sum = parallelReduceOrdered(
                0, batch, 32, 0.0,
                [&](int64_t begin, int64_t end) {
                    double partial = 0.0;
                    for (int64_t i = begin; i < end; ++i) {
                        partial += static_cast<double>(
                            running[static_cast<size_t>(i)]
                                .contextTokens());
                    }
                    return partial;
                },
                [](double acc, double partial) {
                    return acc + partial;
                });
            const auto mean_context = static_cast<int64_t>(
                context_sum / static_cast<double>(batch));
            auto gemm_it = gemm_cache_.find(batch);
            if (gemm_it == gemm_cache_.end()) {
                gemm_it = gemm_cache_
                              .emplace(batch,
                                       engine_->gemmLatencyUs(batch))
                              .first;
            }
            step_us =
                gemm_it->second +
                engine_->attentionReadLatencyUs(batch, mean_context);
        }
        if (!waitForSafe(clock_ + step_us))
            return false;
        clock_ += step_us;
        publishClock();
        scheduler_->step();
        deliverRunningProgress();
        deliverRetired(scheduler_->drainRetired());
    }
    return true;
}

void
Server::emitTokens(LiveRequest &live, int64_t generated_total)
{
    while (live.streamed_tokens < generated_total) {
        StreamEvent event;
        event.kind = StreamEventKind::kToken;
        event.token_index = live.streamed_tokens;
        event.virtual_us = clock_;
        live.stream->deliver(event);
        if (live.streamed_tokens == 0)
            live.first_token_us = clock_;
        live.last_token_us = clock_;
        ++live.streamed_tokens;
        ++stats_.streamed_tokens;
        serverCounter(config_.metrics_prefix, "streamed_tokens").add();
    }
}

void
Server::deliverRunningProgress()
{
    for (const Request &request : scheduler_->running()) {
        auto it = live_.find(request.id);
        if (it == live_.end())
            continue; // cancelled under the scheduler's feet
        emitTokens(it->second, request.generated_tokens);
    }
}

void
Server::deliverRetired(const std::vector<Request> &retired)
{
    for (const Request &request : retired) {
        auto it = live_.find(request.id);
        if (it == live_.end())
            continue; // already cancelled and delivered
        LiveRequest &live = it->second;
        StreamEvent event;
        event.virtual_us = clock_;
        switch (request.state) {
          case RequestState::kFinished: {
            emitTokens(live, request.generated_tokens);
            event.kind = StreamEventKind::kFinished;
            ++stats_.completed;
            serverCounter(config_.metrics_prefix, "completed").add();
            const TenantConfig &tenant_config =
                config_.tenants[static_cast<size_t>(live.tenant)];
            const std::string &tenant = tenant_config.name;
            obs::MetricsRegistry &registry =
                obs::MetricsRegistry::global();
            const double ttft =
                live.first_token_us - live.arrival_us;
            registry
                .histogram(config_.metrics_prefix + ".tenant." +
                               tenant + ".ttft_us",
                           latencyBucketsUs())
                .observe(ttft);
            TenantSloStats &slo =
                stats_.tenant_slo[static_cast<size_t>(live.tenant)];
            ++slo.finished;
            if (tenant_config.ttft_slo_us > 0.0) {
                const bool ok = ttft <= tenant_config.ttft_slo_us;
                ++(ok ? slo.ttft_ok : slo.ttft_miss);
                serverCounter(config_.metrics_prefix,
                              ("tenant." + tenant +
                               (ok ? ".slo.ttft_ok"
                                   : ".slo.ttft_miss"))
                                  .c_str())
                    .add();
            }
            if (live.streamed_tokens > 1) {
                const double tpot =
                    (live.last_token_us - live.first_token_us) /
                    static_cast<double>(live.streamed_tokens - 1);
                registry
                    .histogram(config_.metrics_prefix + ".tenant." +
                                   tenant + ".tpot_us",
                               latencyBucketsUs())
                    .observe(tpot);
                if (tenant_config.tpot_slo_us > 0.0) {
                    const bool ok =
                        tpot <= tenant_config.tpot_slo_us;
                    ++(ok ? slo.tpot_ok : slo.tpot_miss);
                    serverCounter(config_.metrics_prefix,
                                  ("tenant." + tenant +
                                   (ok ? ".slo.tpot_ok"
                                       : ".slo.tpot_miss"))
                                      .c_str())
                        .add();
                }
            }
            break;
          }
          case RequestState::kRejected:
            event.kind = StreamEventKind::kRejected;
            event.reject_reason = RejectReason::kTooLarge;
            ++stats_.rejected;
            serverCounter(config_.metrics_prefix, "rejected").add();
            break;
          case RequestState::kCancelled:
            event.kind = StreamEventKind::kCancelled;
            ++stats_.cancelled;
            serverCounter(config_.metrics_prefix, "cancelled").add();
            break;
          default:
            COMET_CHECK_MSG(false,
                            "retired request in a live state");
        }
        live.stream->deliver(event);
        live_.erase(it);
    }
}

void
Server::processCancellations()
{
    std::vector<int64_t> ids;
    for (const auto &entry : arrivals_) {
        if (entry.second.request.stream->cancelRequested())
            ids.push_back(entry.first);
    }
    for (const auto &entry : live_) {
        if (entry.second.stream->cancelRequested())
            ids.push_back(entry.first);
    }
    if (ids.empty())
        return;
    std::sort(ids.begin(), ids.end());
    for (int64_t id : ids)
        COMET_CHECK(cancelOne(id));
    // The scheduler retired the cancelled ids too; their live
    // entries are gone, so this delivers nothing further.
    deliverRetired(scheduler_->drainRetired());
}

void
Server::processDueCancels()
{
    bool any = false;
    while (!cancel_order_.empty() &&
           cancel_order_.begin()->first <= clock_) {
        const int64_t id = cancel_order_.begin()->second;
        cancel_order_.erase(cancel_order_.begin());
        // The request may have reached a terminal event before its
        // scheduled abandon time — the stale entry is a no-op.
        any = cancelOne(id) || any;
    }
    if (any)
        deliverRetired(scheduler_->drainRetired());
}

bool
Server::cancelOne(int64_t id)
{
    TokenStreamPtr stream;
    auto arrival = arrivals_.find(id);
    if (arrival != arrivals_.end()) {
        stream = arrival->second.request.stream;
        arrival_order_.erase({arrival->second.arrival_us, id});
        if (arrival->second.cancel_at_us > 0.0)
            cancel_order_.erase({arrival->second.cancel_at_us, id});
        arrivals_.erase(arrival);
    } else {
        auto it = live_.find(id);
        if (it == live_.end())
            return false; // already terminal
        stream = it->second.stream;
        if (it->second.in_scheduler) {
            COMET_CHECK(scheduler_->cancel(id).isOk());
        } else {
            PendingRequest removed;
            COMET_CHECK(fair_->removeById(id, &removed));
        }
        live_.erase(it);
    }
    ++stats_.cancelled;
    serverCounter(config_.metrics_prefix, "cancelled").add();
    StreamEvent event;
    event.kind = StreamEventKind::kCancelled;
    event.virtual_us = clock_;
    stream->deliver(event);
    return true;
}

void
Server::cancelEverything()
{
    COMET_SPAN("server/cancel_all");
    // A stop-with-cancel can interrupt a gate wait with submissions
    // still sitting in the inbox; pull them in first so every
    // accepted stream gets its terminal event.
    std::vector<SubmitRecord> pending;
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        pending.swap(wake_->inbox);
    }
    for (SubmitRecord &record : pending)
        acceptArrival(std::move(record));
    std::map<int64_t, TokenStreamPtr> streams;
    for (const auto &entry : arrivals_)
        streams.emplace(entry.first, entry.second.request.stream);
    for (const auto &entry : live_) {
        streams.emplace(entry.first, entry.second.stream);
        if (entry.second.in_scheduler)
            COMET_CHECK(scheduler_->cancel(entry.first).isOk());
    }
    fair_->drainAll();
    scheduler_->drainRetired();
    arrivals_.clear();
    arrival_order_.clear();
    cancel_order_.clear();
    live_.clear();
    for (const auto &entry : streams) {
        ++stats_.cancelled;
        serverCounter(config_.metrics_prefix, "cancelled").add();
        StreamEvent event;
        event.kind = StreamEventKind::kCancelled;
        event.virtual_us = clock_;
        entry.second->deliver(event);
    }
}

bool
Server::sessionIdle() const
{
    return arrivals_.empty() && fair_->empty() &&
           scheduler_->idle() && live_.empty();
}

void
Server::publish(bool complete)
{
    const SchedulerCounters &counters = scheduler_->counters();
    stats_.preemptions = counters.preemptions;
    stats_.reprefill_tokens = counters.reprefill_tokens;
    const prefix::PrefixCacheStats prefix_stats =
        cache_->prefixStats();
    stats_.prefix_hits = prefix_stats.hits;
    stats_.prefix_misses = prefix_stats.misses;
    stats_.prefix_matched_tokens = counters.prefix_matched_tokens;
    stats_.prefix_blocks_matched = prefix_stats.blocks_matched;
    stats_.prefix_blocks_evicted = prefix_stats.blocks_evicted;
    stats_.prefix_bytes_saved = prefix_stats.bytes_saved;
    std::lock_guard<std::mutex> lock(wake_->mutex);
    wake_->stats = stats_;
    wake_->sched = counters;
    wake_->clock_us = clock_;
    advanceSettledLocked(clock_);
    if (complete) {
        wake_->session_complete = true;
        // A complete session delivers nothing further: the settled
        // horizon jumps to infinity so waitSettled never blocks on a
        // drained replica.
        advanceSettledLocked(kInfinity);
        wake_->done_cv.notify_all();
    }
}

} // namespace server
} // namespace comet
