/**
 * @file
 * Multi-tenant weighted-fair admission for the online server.
 *
 * Tenants are configured up front with a fair-share weight, an
 * optional bounded queue (the backpressure contract: a full queue
 * rejects with RejectReason::kQueueFull, it never blocks or aborts),
 * an optional token-bucket rate limit, and SLO/deadline tags. The
 * queue orders admission across tenants by **start-time fair
 * queuing** over declared work: each tenant carries a virtual pass;
 * picking the minimum-pass tenant and advancing its pass by
 * (prompt + max_output) / weight shares admission capacity in
 * proportion to the weights, while an idle tenant's pass is clamped
 * to the global virtual time on re-activation so sleeping never
 * accumulates credit.
 *
 * All times are the server's deterministic virtual microseconds, so
 * every decision (fairness pick, rate-limit verdict, deadline expiry)
 * replays identically for a fixed workload.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "comet/prefix/block_key.h"
#include "comet/server/streaming.h"

namespace comet {
namespace server {

/** Per-tenant admission policy. */
struct TenantConfig {
    std::string name; ///< unique tenant key (metric label)
    /** Fair-share weight; admission capacity is split across
     * backlogged tenants in proportion to weights. */
    double weight = 1.0;
    /** Bounded-queue backpressure: queued requests beyond this are
     * rejected kQueueFull. 0 = unbounded. */
    int64_t max_queued = 0;
    /** Token-bucket rate limit, requests per (virtual) second;
     * arrivals finding the bucket empty are rejected kRateLimited.
     * 0 = unlimited. */
    double rate_limit_per_s = 0.0;
    /** Token-bucket capacity, requests (burst tolerance). */
    double rate_burst = 8.0;
    /** TTFT service-level objective, microseconds; 0 = none. The
     * server counts per-tenant attainment against it
     * (TenantSloStats, `server.tenant.<name>.slo.*`), the load
     * generator counts goodput against it, and with chunked prefill
     * on it orders prefill chunks by deadline (arrival + budget).
     * Admission itself does not enforce it. */
    double ttft_slo_us = 0.0;
    /** TPOT (mean time-per-output-token) service-level objective,
     * microseconds; 0 = none. Counted like ttft_slo_us over finished
     * streams with at least two tokens; never enforced. */
    double tpot_slo_us = 0.0;
    /** Admission deadline relative to arrival, microseconds; a
     * request still queued past it is rejected kDeadlineExpired
     * instead of occupying the batch with already-useless work.
     * 0 = wait forever. */
    double admission_deadline_us = 0.0;
    /**
     * Opts this tenant into the prefix cache (requires
     * ServerConfig::enable_prefix_cache and per-request prompt
     * content). Each tenant matches only within its own namespace —
     * opting in shares nothing with anyone else, it only lets the
     * tenant reuse *its own* hot prefixes.
     */
    bool prefix_caching = false;
};

/** A request waiting for admission. */
struct PendingRequest {
    int64_t id = 0;               ///< unique request id
    int tenant = 0;               ///< tenant index in the queue
    double arrival_us = 0.0;      ///< virtual arrival time
    int64_t prompt_tokens = 0;    ///< prompt length
    int64_t max_output_tokens = 0; ///< declared generation bound
    /** Actual EOS length when the workload models one; 0 = run to
     * the declared bound (see Request::eos_output_tokens). */
    int64_t eos_output_tokens = 0;
    /** Chained content keys of the prompt's full KV blocks, computed
     * on the submit path under the tenant's key space; empty when the
     * tenant is opted out or the client sent no prompt content. */
    std::vector<prefix::BlockKey> prefix_block_keys;
    /** The requester's stream (may be null in unit tests that
     * exercise the queue alone). */
    TokenStreamPtr stream;
};

/**
 * The weighted-fair, rate-limited, bounded admission queue.
 *
 * Not thread-safe: owned and driven by the server loop thread, which
 * serializes offer()/pick() in virtual-time order.
 */
class FairAdmissionQueue
{
  public:
    /** Creates the queue for a fixed tenant set (at least one;
     * names must be unique and non-empty, weights positive). */
    explicit FairAdmissionQueue(std::vector<TenantConfig> tenants);

    /** Number of configured tenants. */
    int
    numTenants() const
    {
        return static_cast<int>(tenants_.size());
    }

    /** Configuration of tenant @p index. */
    const TenantConfig &tenant(int index) const;

    /** Index of the tenant named @p name, or -1 when unknown. */
    int tenantIndex(const std::string &name) const;

    /**
     * Offers an arrival to its tenant's queue at virtual time
     * @p now_us (nondecreasing across calls). Applies, in order, the
     * token-bucket rate limit then the bounded-queue check; returns
     * RejectReason::kNone when the request was enqueued, else the
     * reason the caller must reject it with.
     */
    RejectReason offer(PendingRequest request, double now_us);

    /**
     * Picks the next request to admit at virtual time @p now_us by
     * weighted fairness. Requests whose admission deadline already
     * expired are moved to @p expired (never charged to their
     * tenant's fair share) instead of being returned. Returns false
     * when no admissible request remains.
     */
    bool pick(double now_us, PendingRequest *out,
              std::vector<PendingRequest> *expired);

    /** Removes a queued request by id (client cancellation); returns
     * false when the id is not queued. */
    bool removeById(int64_t id, PendingRequest *out);

    /** Removes and returns every queued request in (tenant, FIFO)
     * order — shutdown-with-cancel uses this to fail them over to
     * kCancelled deterministically. */
    std::vector<PendingRequest> drainAll();

    /** Requests currently queued across all tenants. */
    int64_t queuedCount() const;

    /** Requests currently queued for tenant @p index. */
    int64_t queuedCount(int tenant) const;

    /** True when no request is queued. */
    bool
    empty() const
    {
        return queuedCount() == 0;
    }

  private:
    struct TenantState {
        TenantConfig config;
        std::deque<PendingRequest> queue;
        /** Start-time fair-queuing pass (virtual service tag). */
        double pass = 0.0;
        /** Token-bucket fill, requests. */
        double bucket_tokens = 0.0;
        /** Virtual time of the last bucket refill. */
        double bucket_refill_us = 0.0;
    };

    /** Global virtual service time (pass of the last pick). */
    double virtual_pass_ = 0.0;
    std::vector<TenantState> tenants_;
};

} // namespace server
} // namespace comet
