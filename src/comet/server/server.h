/**
 * @file
 * The COMET online serving front-end.
 *
 * Server turns the offline serving stack (ServingEngine cost model +
 * PagedKvCache + the continuous-batching BatchScheduler) into an
 * asynchronous, multi-client system: concurrent client threads submit
 * requests and stream tokens back while a dedicated serving loop runs
 * continuous batching over a deterministic **virtual clock** advanced
 * by the engine's modeled prefill/decode latencies. The loop fans its
 * per-request accounting out over the comet::runtime thread pool and
 * emits COMET_SPANs plus `server.*` registry metrics.
 *
 * ## Determinism (conservative virtual-time ingress)
 *
 * Latency numbers must be bit-stable for a fixed workload even though
 * submission is racy host concurrency. Each client connects once and
 * submits requests with nondecreasing virtual arrival times; the
 * client handle's last submitted (or explicitly advanced) arrival is
 * its *horizon* — a promise that every arrival still coming through
 * the handle is at or after it. The loop never advances the virtual
 * clock to T until every open horizon is *strictly* past T (equal
 * arrival times through one handle are legal, so a horizon exactly at
 * T could still produce more arrivals at T), and before committing a
 * clock jump it re-examines any submission that landed while it was
 * waiting — the newcomer may be earlier than the planned target. By
 * the time the loop makes any admission or scheduling decision at
 * clock T it has therefore ingested every arrival <= T that will ever
 * exist, and the whole session replays identically regardless of
 * thread interleaving (classic conservative discrete-event
 * synchronization). Closing a handle moves its horizon to infinity;
 * drain()/stop() close ingress and release the gate. Set
 * ServerConfig::deterministic_ingress = false to trade determinism
 * for immediate (wall-clock) ingestion.
 *
 * ## Backpressure contract
 *
 * Overload is always an explicit, recoverable verdict, never an
 * abort: bounded queues, rate limits, impossible footprints, expired
 * deadlines and shutdown all reject the request with a
 * RejectReason on its stream, and KV exhaustion inside the batch is
 * absorbed by the scheduler's recoverable preemption.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "comet/serve/batch_scheduler.h"
#include "comet/serve/engine.h"
#include "comet/server/admission.h"
#include "comet/server/streaming.h"

namespace comet {
namespace server {

/** One request as a client submits it. */
struct StreamRequest {
    /** Caller-assigned id, unique across the whole session (the load
     * generator derives them deterministically per client). */
    int64_t id = 0;
    std::string tenant;        ///< tenant to account admission under
    int64_t prompt_tokens = 0; ///< prompt length to prefill
    /**
     * Prompt token ids — the content the prefix cache keys on. When
     * non-empty it must be exactly prompt_tokens long; empty keeps
     * the request content-free (no prefix caching for it, everything
     * else unchanged). Only consulted when the server has the prefix
     * cache on and the tenant opted in (TenantConfig::prefix_caching);
     * keys are derived on the submit path, and the ids themselves are
     * not retained past it.
     */
    std::vector<int32_t> prompt_ids;
    /** Declared generation bound (what admission reserves against). */
    int64_t max_output_tokens = 0;
    /** Actual EOS length when the workload models one; 0 = run to
     * the declared bound. */
    int64_t eos_output_tokens = 0;
    /** Virtual arrival time, microseconds; nondecreasing per client
     * handle. */
    double arrival_us = 0.0;
    /**
     * Virtual time at which the client abandons the request
     * (>= arrival_us); 0 = never. The loop cancels the request at the
     * first scheduling boundary whose clock reaches this time, so —
     * unlike the wall-clock TokenStream::requestCancel() — the cancel
     * lands at a deterministic point of the virtual timeline and
     * replays bit-identically (the chaos harness's workload scripts
     * model client cancel/disconnect through it).
     */
    double cancel_at_us = 0.0;
    /** Optional token callback; empty selects pull-mode streaming. */
    TokenStream::Callback callback;
};

/** Server construction parameters. */
struct ServerConfig {
    /** The tenant set (at least one; see TenantConfig). */
    std::vector<TenantConfig> tenants;
    /** Hard cap on concurrently decoding requests. */
    int64_t max_batch = 64;
    /** KV admission policy of the underlying scheduler. */
    AdmissionPolicy admission = AdmissionPolicy::kOptimisticPreempt;
    /** Free-block decode headroom under optimistic admission. */
    int64_t kv_watermark_blocks = 0;
    /** Server-wide bound on queued-for-admission requests (across
     * tenants, on top of per-tenant bounds); 0 = unbounded. */
    int64_t max_queued_total = 0;
    /** Conservative virtual-time ingress (deterministic replay); see
     * the file comment. false = ingest submissions immediately. */
    bool deterministic_ingress = true;
    /** Builds the session's KV cache with the automatic prefix cache
     * (comet::prefix). Tenants still opt in individually via
     * TenantConfig::prefix_caching, and requests must carry
     * StreamRequest::prompt_ids to participate. */
    bool enable_prefix_cache = false;
    /**
     * Chunked prefill (DESIGN.md §14): process at most this many
     * prefill tokens per request per step, fused with decode into
     * one GEMM launch, instead of charging each admission wave's
     * whole prefill up front. 0 (the default) keeps monolithic
     * prefill. Token streams are byte-identical between the two
     * modes; only the virtual-time shape changes — decode tenants
     * stop stalling behind long prompts. Prefill chunks are ordered
     * by TTFT deadline (arrival + TenantConfig::ttft_slo_us).
     */
    int64_t chunked_prefill_tokens = 0;
    /** Per-step token budget (decode + prefill chunks) of the
     * scheduler's knapsack; 0 = uncapped. Only meaningful with
     * chunked_prefill_tokens > 0 (see
     * BatchSchedulerConfig::step_token_budget). */
    int64_t step_token_budget = 0;
    /**
     * Namespace prefix of every metric this server publishes
     * (`<prefix>.submitted`, `<prefix>.tenant.<name>.ttft_us`, ...).
     * The default keeps the historical `server.*` names; a cluster
     * replica is constructed with `cluster.replica.<i>` so N replicas
     * publish into disjoint namespaces of one registry.
     */
    std::string metrics_prefix = "server";
};

/** Per-tenant SLO attainment over a session's finished streams (all
 * zero for tenants with no SLO budgets configured). */
struct TenantSloStats {
    std::string tenant;    ///< tenant name (metric label)
    int64_t finished = 0;  ///< streams that ended kFinished
    /** Finished streams whose TTFT met / missed
     * TenantConfig::ttft_slo_us (both 0 when no budget is set). @{ */
    int64_t ttft_ok = 0;
    int64_t ttft_miss = 0;
    /** @} */
    /** Finished streams (with >= 2 tokens) whose mean TPOT met /
     * missed TenantConfig::tpot_slo_us. @{ */
    int64_t tpot_ok = 0;
    int64_t tpot_miss = 0;
    /** @} */
};

/** Session counters, live over the session and stable after
 * drain()/stop(). */
struct ServerStats {
    int64_t submitted = 0;       ///< submit() calls observed
    int64_t queued = 0;          ///< accepted into the fair queue
    int64_t completed = 0;       ///< streams ended kFinished
    int64_t rejected = 0;        ///< streams ended kRejected
    int64_t cancelled = 0;       ///< streams ended kCancelled
    int64_t streamed_tokens = 0; ///< token events delivered
    int64_t preemptions = 0;     ///< scheduler KV-exhaustion evictions
    int64_t reprefill_tokens = 0; ///< recompute cost of preemptions
    // Prefix-cache accounting (all zero when the cache is off):
    int64_t prefix_hits = 0;   ///< admissions that grafted >= 1 block
    int64_t prefix_misses = 0; ///< lookups that matched nothing
    /** Context tokens grafted instead of prefilled, summed. */
    int64_t prefix_matched_tokens = 0;
    int64_t prefix_blocks_matched = 0; ///< KV pages grafted
    int64_t prefix_blocks_evicted = 0; ///< cached pages evicted
    int64_t prefix_bytes_saved = 0;    ///< quantized bytes not built
    /** Per-tenant SLO attainment, one row per configured tenant (in
     * ServerConfig::tenants order). Also published as
     * `server.tenant.<name>.slo.*` registry counters. */
    std::vector<TenantSloStats> tenant_slo;
};

/**
 * The asynchronous serving front-end (see the file comment).
 *
 * Construction starts the serving loop; stop() (or destruction) ends
 * it. All public methods are thread-safe.
 */
class Server
{
  public:
    /**
     * A client's submission handle. Copyable value type; all methods
     * forward to the server. Submissions through one handle must
     * carry nondecreasing arrival times; close the handle when no
     * more submissions are coming so the deterministic ingress gate
     * can release (see Server file comment).
     */
    class Client
    {
      public:
        /** An unconnected handle (submit on it is invalid). */
        Client() = default;

        /**
         * Submits a request and returns its stream. Never fails and
         * never blocks on capacity: structurally invalid submissions
         * (unknown tenant, closed server) come back as an already
         * terminated stream with the corresponding RejectReason, and
         * overload verdicts arrive asynchronously on the stream.
         */
        TokenStreamPtr submit(const StreamRequest &request);

        /** Promises that no submission with arrival_us earlier than
         * @p horizon_us is still coming through this handle. */
        void advanceTo(double horizon_us);

        /** Final horizon: no more submissions through this handle
         * (idempotent; the handle stays valid for no-ops). */
        void close();

        /** True when the handle is connected to a server. */
        bool valid() const { return server_ != nullptr; }

      private:
        friend class Server;
        Server *server_ = nullptr;
        size_t index_ = 0;
    };

    /**
     * Builds the serving state (KV cache sized from the engine's
     * budget, scheduler, fair queue, metrics) and starts the loop.
     * @p engine is not owned and must outlive the server.
     */
    Server(const ServingEngine *engine, ServerConfig config);

    /** Stops the loop (cancelling in-flight work) and joins it. */
    ~Server();

    /** Servers own a thread and cannot be copied. @{ */
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;
    /** @} */

    /**
     * Registers a client and returns its handle. For a deterministic
     * session, connect every client before the first submission —
     * each open handle gates the virtual clock at its horizon. A
     * handle connected mid-session starts with its horizon at the
     * current virtual clock (it can neither drag the ingress gate
     * below the virtual present nor submit arrivals in the past).
     */
    Client connect();

    /**
     * Graceful drain: stops accepting submissions (further submits
     * reject kShuttingDown), releases the ingress gate, and blocks
     * until every accepted request reached a terminal event. The
     * loop stays alive (metrics readable); call stop() to join it.
     */
    void drain();

    /**
     * Ends the session and joins the loop. With @p cancel_in_flight,
     * queued and running requests are cancelled deterministically
     * (ascending id order, one kCancelled event each) at the current
     * virtual clock; otherwise the call drains first. Idempotent.
     */
    void stop(bool cancel_in_flight = true);

    /** Session counters (stable once drain()/stop() returned). */
    ServerStats stats() const;

    /** Scheduler counters of the session (stable after
     * drain()/stop(); see SchedulerCounters). */
    SchedulerCounters schedulerCounters() const;

    /** Current virtual clock, microseconds. */
    double virtualClockUs() const;

    /** The tenant set the server was configured with. */
    const std::vector<TenantConfig> &tenants() const;

    /**
     * The session's KV cache, for invariant audits (comet::chaos
     * checks block conservation and zero leaks through it). Only
     * valid once drain() or stop() returned — the serving loop owns
     * the cache and this asserts the session is complete.
     */
    const PagedKvCache &kvCacheForAudit() const;

    /**
     * Blocks until every stream event with a virtual timestamp
     * strictly below @p virtual_us has been delivered (the server's
     * *settled horizon* has reached @p virtual_us).
     *
     * The settled horizon only advances at points where the serving
     * loop can prove no earlier-stamped event can still be produced,
     * so the guarantee holds under the caller discipline the cluster
     * router follows: every open client handle's horizon has been
     * advanced to at least @p virtual_us before the call, and no new
     * handle connects while waiting. (A handle connected mid-wait
     * starts at the published clock, which may sit below an already
     * settled horizon; early rejects on the submit path are likewise
     * stamped with the published clock and are outside the
     * guarantee — a router that validates tenants at its own edge
     * never triggers them.) Returns immediately once the session is
     * complete.
     */
    void waitSettled(double virtual_us) const;

    /** Total KV block capacity of the session's paged cache. */
    int64_t kvTotalBlocks() const;

    /**
     * KV blocks a request spanning @p tokens context tokens
     * reserves at admission (pure ceiling division by the cache's
     * block size — safe from any thread). The cluster router uses
     * this for reserved-blocks load accounting.
     */
    int64_t kvBlocksForTokens(int64_t tokens) const;

  private:
    /** A submission as queued from a client thread to the loop. */
    struct SubmitRecord {
        PendingRequest request;
        double arrival_us = 0.0;
        /** Scheduled client abandon time; 0 = never (see
         * StreamRequest::cancel_at_us). */
        double cancel_at_us = 0.0;
    };

    /** Loop-side bookkeeping for one live (non-terminal) request. */
    struct LiveRequest {
        TokenStreamPtr stream;
        int tenant = 0;
        double arrival_us = 0.0;
        double first_token_us = -1.0;
        double last_token_us = -1.0;
        int64_t streamed_tokens = 0;
        bool in_scheduler = false; ///< else waiting in the fair queue
    };

    /** Ingress shared between client threads and the loop. */
    struct Wake;

    /** How an ingress-gate wait for a clock fast-forward resolved. */
    enum class GateOutcome {
        kAdvance,     ///< safe to commit the clock jump
        kReplan,      ///< new submissions/pokes: re-plan the target
        kInterrupted, ///< stop-with-cancel ended the session
    };

    void loop();
    TokenStreamPtr submitFromClient(size_t client,
                                    const StreamRequest &request);
    void advanceClient(size_t client, double horizon_us,
                       bool close);
    int tenantIndexByName(const std::string &name) const;
    void acceptArrival(SubmitRecord &&record);
    double safeHorizonLocked() const;
    double minHorizonLocked() const;
    void advanceSettledLocked(double settled_us);
    bool waitForSafe(double target_us);
    GateOutcome waitToAdvance(double target_us);
    void publishClock();
    void ingestDueArrivals();
    bool stepOnce();
    void injectFromFairQueue();
    void deliverRunningProgress();
    void deliverRetired(const std::vector<Request> &retired);
    void processCancellations();
    void processDueCancels();
    bool cancelOne(int64_t id);
    void rejectPending(PendingRequest &&pending,
                       RejectReason reason);
    void emitTokens(LiveRequest &live, int64_t generated_total);
    void cancelEverything();
    bool sessionIdle() const;
    void publish(bool complete);

    const ServingEngine *engine_;
    ServerConfig config_;
    ServingPrecision precision_;
    /** Key-space template of the session's cache geometry; submit
     * stamps the tenant index in as the namespace. */
    prefix::KeySpace key_space_;
    std::unique_ptr<PagedKvCache> cache_;
    std::unique_ptr<BatchScheduler> scheduler_;
    std::unique_ptr<FairAdmissionQueue> fair_;

    std::shared_ptr<Wake> wake_; ///< ingress mutex/cv + inbox
    std::thread loop_thread_;
    std::mutex join_mutex_; ///< serializes stop()'s join

    // --- Loop-owned state (no locking; the loop thread only) ---
    /** Arrivals not yet due, ordered by (arrival_us, id). */
    std::set<std::pair<double, int64_t>> arrival_order_;
    /** Scheduled client abandons not yet due, ordered by
     * (cancel_at_us, id). */
    std::set<std::pair<double, int64_t>> cancel_order_;
    std::map<int64_t, SubmitRecord> arrivals_;
    std::map<int64_t, LiveRequest> live_;
    std::map<int64_t, double> gemm_cache_;
    double clock_ = 0.0;
    ServerStats stats_;
};

} // namespace server
} // namespace comet
