/**
 * @file
 * The COMET host runtime: a persistent work-stealing thread pool with
 * deterministic parallel-for.
 *
 * Every parallel hot path in the emulation (W4Ax GEMM tiles, decode
 * attention heads, FMPQ calibration sweeps, engine per-request work)
 * runs through this pool instead of spawning ad-hoc threads. Two
 * properties are contractual:
 *
 *  1. **Determinism.** A parallel region is split into chunks whose
 *     boundaries depend only on (begin, end, grain) — never on the
 *     thread count or on runtime scheduling. Chunk bodies write to
 *     disjoint outputs or to chunk-indexed slots, and reductions
 *     combine partials in ascending chunk order. Results are therefore
 *     bit-identical for any pool size, including 1.
 *
 *  2. **Work stealing.** Chunks are statically pre-assigned to
 *     executor slots in contiguous blocks (slot s owns chunks
 *     [s*C/S, (s+1)*C/S)); an executor that drains its own block
 *     claims chunks from other slots' blocks through the same atomic
 *     cursors. Stealing only moves *where* a chunk runs, never what
 *     it computes, so property 1 is unaffected by load imbalance.
 *
 * The pool is persistent: worker threads are created once and sleep
 * between regions, so per-call overhead is a wake + two atomic ops per
 * chunk rather than thread creation. The calling thread always
 * participates as executor slot 0, which keeps the 1-chunk and
 * pool-size-1 cases free of any cross-thread hand-off.
 *
 * Configuration: the global pool sizes itself from the
 * `COMET_THREADS` environment variable (falling back to
 * std::thread::hardware_concurrency), and can be resized at a safe
 * point with ThreadPool::configure(RuntimeConfig) /
 * setGlobalThreads().
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "comet/common/status.h"

namespace comet {

/** Host-runtime configuration (the programmatic twin of the
 * `COMET_THREADS` environment knob). */
struct RuntimeConfig {
    /** Worker threads in the global pool, including the caller slot.
     * 0 = resolve from `COMET_THREADS`, then hardware concurrency. */
    int threads = 0;
};

/** Number of grain-sized chunks a [begin, end) range splits into.
 * This — not the thread count — is the unit of scheduling, so it also
 * defines the partial-result slots of deterministic reductions. */
int64_t numChunks(int64_t begin, int64_t end, int64_t grain);

/**
 * A persistent work-stealing thread pool.
 *
 * A pool of size T runs regions on T executor slots: the calling
 * thread (slot 0) plus T-1 resident workers. Pools are independent;
 * most code uses the process-wide global() instance.
 */
class ThreadPool
{
  public:
    /**
     * Creates a pool with @p threads executor slots (>= 1). A size-1
     * pool spawns no workers and runs every region inline.
     */
    explicit ThreadPool(int threads);

    /** Joins and destroys the resident workers. */
    ~ThreadPool();

    /** Pools own threads and cannot be copied. @{ */
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;
    /** @} */

    /** Executor slots (resident workers + the caller slot). */
    int threadCount() const { return threads_; }

    /**
     * Runs @p fn(chunk_begin, chunk_end) for every grain-sized chunk
     * of [begin, end). Blocks until all chunks completed. Chunk
     * bodies run concurrently and must only write disjoint data.
     *
     * @param max_parallelism  cap on executor slots used for this
     *        region (0 = all). Affects scheduling only, never
     *        results.
     *
     * Calls from inside a pool task run the region inline (same
     * chunking) rather than deadlocking on the pool.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn,
                     int max_parallelism = 0);

    /**
     * parallelFor variant passing the deterministic chunk index
     * (0-based, ascending with chunk_begin) — the index callers use
     * to address per-chunk reduction slots.
     */
    void parallelForChunks(
        int64_t begin, int64_t end, int64_t grain,
        const std::function<void(int64_t, int64_t, int64_t)> &fn,
        int max_parallelism = 0);

    /**
     * parallelFor variant passing the executor slot index
     * (< threadCount()). Slots address per-worker accumulators; note
     * that with stealing the *assignment* of chunks to slots is not
     * deterministic, so per-slot partials are only safe for
     * order-insensitive (e.g. integer) reductions. Use
     * parallelReduceOrdered for floating-point reductions.
     */
    void parallelForSlots(
        int64_t begin, int64_t end, int64_t grain,
        const std::function<void(int64_t, int64_t, int)> &fn,
        int max_parallelism = 0);

    /**
     * Deterministic parallel reduction: computes
     * @p map(chunk_begin, chunk_end) for every chunk, then folds the
     * partials left-to-right in ascending chunk order:
     * combine(...combine(identity, p0)..., pC-1). The fold order is
     * fixed by the chunking alone, so the result is bit-identical for
     * any thread count.
     */
    template <typename T, typename MapFn, typename CombineFn>
    T
    parallelReduceOrdered(int64_t begin, int64_t end, int64_t grain,
                          T identity, const MapFn &map,
                          const CombineFn &combine)
    {
        const int64_t chunks = numChunks(begin, end, grain);
        if (chunks <= 0)
            return identity;
        std::vector<T> partials(static_cast<size_t>(chunks), identity);
        parallelForChunks(begin, end, grain,
                          [&](int64_t b, int64_t e, int64_t chunk) {
                              partials[static_cast<size_t>(chunk)] =
                                  map(b, e);
                          });
        T result = std::move(identity);
        for (int64_t c = 0; c < chunks; ++c)
            result = combine(std::move(result),
                             partials[static_cast<size_t>(c)]);
        return result;
    }

    /**
     * The process-wide pool. Created on first use with
     * resolveThreads(0) slots; resized by configure() /
     * setGlobalThreads().
     */
    static ThreadPool &global();

    /** Applies @p config to the global pool (rebuilds it if the size
     * changes). Must not race with in-flight parallel regions. */
    static void configure(const RuntimeConfig &config);

    /** Shorthand for configure({threads}). */
    static void setGlobalThreads(int threads);

    /**
     * Resolves a requested size: @p requested if > 0, else the
     * `COMET_THREADS` environment variable if set to a positive
     * integer, else std::thread::hardware_concurrency() (at least 1).
     */
    static int resolveThreads(int requested);

  private:
    struct Impl;
    void run(int64_t begin, int64_t end, int64_t grain,
             int max_parallelism,
             const std::function<void(int64_t, int64_t, int64_t, int)>
                 &fn);

    int threads_;
    Impl *impl_;
};

/** parallelFor on the global pool. */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)> &fn,
                 int max_parallelism = 0);

/** parallelForChunks on the global pool. */
void parallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)> &fn,
    int max_parallelism = 0);

/** parallelForSlots on the global pool. */
void parallelForSlots(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int)> &fn,
    int max_parallelism = 0);

/** parallelReduceOrdered on the global pool. */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduceOrdered(int64_t begin, int64_t end, int64_t grain,
                      T identity, const MapFn &map,
                      const CombineFn &combine)
{
    return ThreadPool::global().parallelReduceOrdered(
        begin, end, grain, std::move(identity), map, combine);
}

} // namespace comet
