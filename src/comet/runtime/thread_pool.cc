#include "comet/runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "comet/chaos/failpoint.h"
#include "comet/obs/metrics.h"
#include "comet/obs/trace_session.h"

namespace comet {

namespace {

/** Pool observability counters, registered once and cached (the
 * registry guarantees the references stay valid forever). @{ */
obs::Counter &
chunksExecutedCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter(
            "runtime.chunks_executed");
    return counter;
}

obs::Counter &
chunksStolenCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter(
            "runtime.chunks_stolen");
    return counter;
}

obs::Counter &
regionsCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter("runtime.regions");
    return counter;
}
/** @} */

/** Set while the current thread executes chunks of a region (as the
 * caller slot or a worker). Nested parallel calls made from inside a
 * chunk body run inline — same chunking, same results — instead of
 * re-entering the pool. */
thread_local bool tl_in_region = false;

/** One posted parallel region. Held by shared_ptr so a worker that
 * observes the region late can still probe its (exhausted) cursors
 * after the submitting call returned. The chunk body is only ever
 * invoked for successfully claimed chunks, all of which complete
 * before the submitter returns, so the raw `fn` pointer into the
 * submitter's frame never dangles at a call site. */
struct Region {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t chunks = 0;
    int slots = 1;
    const std::function<void(int64_t, int64_t, int64_t, int)> *fn =
        nullptr;

    /** One claim cursor per executor slot; slot s owns chunk block
     * [s*chunks/slots, (s+1)*chunks/slots). Claims past the block's
     * upper bound are ignored, which is what makes stealing through
     * the same cursors race-free. */
    std::unique_ptr<std::atomic<int64_t>[]> cursor;

    std::atomic<int64_t> completed{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    int64_t
    blockLo(int slot) const
    {
        return static_cast<int64_t>(slot) * chunks / slots;
    }

    int64_t
    blockHi(int slot) const
    {
        return (static_cast<int64_t>(slot) + 1) * chunks / slots;
    }
};

} // namespace

int64_t
numChunks(int64_t begin, int64_t end, int64_t grain)
{
    COMET_CHECK(grain > 0);
    if (end <= begin)
        return 0;
    return (end - begin + grain - 1) / grain;
}

struct ThreadPool::Impl {
    std::vector<std::thread> workers;

    std::mutex work_mutex;
    std::condition_variable work_cv;
    std::shared_ptr<Region> region;
    uint64_t generation = 0;
    bool stop = false;

    std::mutex done_mutex;
    std::condition_variable done_cv;

    /** Serializes regions: one in flight per pool. */
    std::mutex submit_mutex;

    void
    runChunk(Region &r, int64_t chunk, int slot)
    {
        if (!r.failed.load()) {
            const int64_t b = r.begin + chunk * r.grain;
            const int64_t e = std::min(b + r.grain, r.end);
            try {
                COMET_SPAN("pool/chunk");
                // Chaos hook: delay this chunk so steal order and
                // completion order get shaken; results must stay
                // bit-identical by construction (static chunking +
                // ordered reductions).
                if (COMET_FAILPOINT("pool.task"))
                    std::this_thread::yield();
                (*r.fn)(b, e, chunk, slot);
            } catch (...) {
                std::lock_guard<std::mutex> lock(r.error_mutex);
                if (!r.failed.load()) {
                    r.error = std::current_exception();
                    r.failed.store(true);
                }
            }
        }
        if (r.completed.fetch_add(1) + 1 == r.chunks) {
            std::lock_guard<std::mutex> lock(done_mutex);
            done_cv.notify_all();
        }
    }

    /** Drains the region from executor slot @p slot: own block first,
     * then steal from every other slot's block in cyclic order. */
    void
    execute(Region &r, int slot)
    {
        tl_in_region = true;
        int64_t executed = 0;
        int64_t stolen = 0;
        for (int offset = 0; offset < r.slots; ++offset) {
            const int victim = (slot + offset) % r.slots;
            const int64_t hi = r.blockHi(victim);
            while (true) {
                const int64_t chunk = r.cursor[victim].fetch_add(1);
                if (chunk >= hi)
                    break;
                runChunk(r, chunk, slot);
                ++executed;
                if (offset != 0)
                    ++stolen;
            }
        }
        if (executed > 0)
            chunksExecutedCounter().add(executed);
        if (stolen > 0)
            chunksStolenCounter().add(stolen);
        tl_in_region = false;
    }

    void
    workerMain(int worker_index)
    {
        uint64_t seen = 0;
        while (true) {
            std::shared_ptr<Region> r;
            {
                std::unique_lock<std::mutex> lock(work_mutex);
                work_cv.wait(lock, [&] {
                    return stop || generation != seen;
                });
                if (stop)
                    return;
                seen = generation;
                r = region;
            }
            if (!r)
                continue;
            const int slot = worker_index + 1;
            if (slot < r->slots)
                execute(*r, slot);
        }
    }
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads), impl_(new Impl)
{
    COMET_CHECK_MSG(threads >= 1,
                    "thread pool needs at least the caller slot");
    impl_->workers.reserve(static_cast<size_t>(threads - 1));
    for (int w = 0; w < threads - 1; ++w)
        impl_->workers.emplace_back(
            [this, w] { impl_->workerMain(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(impl_->work_mutex);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread &worker : impl_->workers)
        worker.join();
    delete impl_;
}

void
ThreadPool::run(int64_t begin, int64_t end, int64_t grain,
                int max_parallelism,
                const std::function<void(int64_t, int64_t, int64_t,
                                         int)> &fn)
{
    const int64_t chunks = numChunks(begin, end, grain);
    if (chunks == 0)
        return;

    int slots = static_cast<int>(
        std::min<int64_t>(threads_, chunks));
    if (max_parallelism > 0)
        slots = std::min(slots, max_parallelism);

    regionsCounter().add(1);
    if (slots <= 1 || tl_in_region) {
        // Inline execution, identical chunk decomposition and order.
        const bool was_in_region = tl_in_region;
        tl_in_region = true;
        for (int64_t chunk = 0; chunk < chunks; ++chunk) {
            const int64_t b = begin + chunk * grain;
            const int64_t e = std::min(b + grain, end);
            try {
                COMET_SPAN("pool/chunk");
                // Same chaos delay hook as the pooled path so the
                // hit stream does not depend on the slot count.
                if (COMET_FAILPOINT("pool.task"))
                    std::this_thread::yield();
                fn(b, e, chunk, 0);
            } catch (...) {
                tl_in_region = was_in_region;
                throw;
            }
        }
        tl_in_region = was_in_region;
        chunksExecutedCounter().add(chunks);
        return;
    }

    std::lock_guard<std::mutex> submit(impl_->submit_mutex);
    auto r = std::make_shared<Region>();
    r->begin = begin;
    r->end = end;
    r->grain = grain;
    r->chunks = chunks;
    r->slots = slots;
    r->fn = &fn;
    r->cursor = std::make_unique<std::atomic<int64_t>[]>(
        static_cast<size_t>(slots));
    for (int s = 0; s < slots; ++s)
        r->cursor[s].store(r->blockLo(s));

    {
        std::lock_guard<std::mutex> lock(impl_->work_mutex);
        impl_->region = r;
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();

    impl_->execute(*r, 0);

    {
        std::unique_lock<std::mutex> lock(impl_->done_mutex);
        impl_->done_cv.wait(lock, [&] {
            return r->completed.load() >= r->chunks;
        });
    }
    {
        std::lock_guard<std::mutex> lock(impl_->work_mutex);
        if (impl_->region == r)
            impl_->region = nullptr;
    }
    if (r->failed.load())
        std::rethrow_exception(r->error);
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)>
                            &fn,
                        int max_parallelism)
{
    run(begin, end, grain, max_parallelism,
        [&](int64_t b, int64_t e, int64_t, int) { fn(b, e); });
}

void
ThreadPool::parallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)> &fn,
    int max_parallelism)
{
    run(begin, end, grain, max_parallelism,
        [&](int64_t b, int64_t e, int64_t chunk, int) {
            fn(b, e, chunk);
        });
}

void
ThreadPool::parallelForSlots(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int)> &fn,
    int max_parallelism)
{
    run(begin, end, grain, max_parallelism,
        [&](int64_t b, int64_t e, int64_t, int slot) {
            fn(b, e, slot);
        });
}

namespace {

std::mutex g_global_pool_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_global_pool_mutex);
    if (!g_global_pool) {
        g_global_pool =
            std::make_unique<ThreadPool>(resolveThreads(0));
    }
    return *g_global_pool;
}

void
ThreadPool::configure(const RuntimeConfig &config)
{
    const int threads = resolveThreads(config.threads);
    std::lock_guard<std::mutex> lock(g_global_pool_mutex);
    if (g_global_pool && g_global_pool->threadCount() == threads)
        return;
    g_global_pool.reset(); // join old workers before rebuilding
    g_global_pool = std::make_unique<ThreadPool>(threads);
}

void
ThreadPool::setGlobalThreads(int threads)
{
    RuntimeConfig config;
    config.threads = threads;
    configure(config);
}

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("COMET_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0 && parsed <= 4096)
            return static_cast<int>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)> &fn,
            int max_parallelism)
{
    ThreadPool::global().parallelFor(begin, end, grain, fn,
                                     max_parallelism);
}

void
parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t, int64_t)>
                      &fn,
                  int max_parallelism)
{
    ThreadPool::global().parallelForChunks(begin, end, grain, fn,
                                           max_parallelism);
}

void
parallelForSlots(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t, int)> &fn,
                 int max_parallelism)
{
    ThreadPool::global().parallelForSlots(begin, end, grain, fn,
                                          max_parallelism);
}

} // namespace comet
