/**
 * @file
 * Umbrella header: includes the whole public COMET API.
 *
 * Fine-grained includes are preferred inside the library itself;
 * downstream users who just want everything can include this one
 * header (mirroring the single-header convenience of the paper's
 * shipped C++ API).
 */
#pragma once

#include "comet/common/logging.h"
#include "comet/common/rng.h"
#include "comet/common/stats.h"
#include "comet/common/status.h"
#include "comet/common/table.h"

#include "comet/obs/metrics.h"
#include "comet/obs/obs.h"
#include "comet/obs/trace_session.h"

#include "comet/runtime/thread_pool.h"

#include "comet/tensor/packed.h"
#include "comet/tensor/tensor.h"

#include "comet/quant/fmpq.h"
#include "comet/quant/kv_quant.h"
#include "comet/quant/outlier.h"
#include "comet/quant/permutation.h"
#include "comet/quant/qoq.h"
#include "comet/quant/quantizer.h"
#include "comet/quant/rotation.h"
#include "comet/quant/smooth_quant.h"
#include "comet/quant/weight_quant.h"

#include "comet/kernel/convert.h"
#include "comet/kernel/fp4.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/kernel/int4_pack.h"
#include "comet/kernel/interleave.h"
#include "comet/kernel/mma.h"
#include "comet/kernel/pipeline.h"

#include "comet/attention/decode_attention.h"

#include "comet/io/serialize.h"

#include "comet/gpusim/cost_model.h"
#include "comet/gpusim/gpu_spec.h"
#include "comet/gpusim/kernel_sim.h"
#include "comet/gpusim/planner.h"
#include "comet/gpusim/roofline.h"
#include "comet/gpusim/sm_scheduler.h"

#include "comet/model/decoder_session.h"
#include "comet/model/layer_shapes.h"
#include "comet/model/llm_config.h"
#include "comet/model/perplexity.h"
#include "comet/model/quantized_decoder.h"
#include "comet/model/synthetic.h"
#include "comet/model/tiny_transformer.h"
#include "comet/model/zeroshot.h"

#include "comet/kvcache/block_allocator.h"
#include "comet/kvcache/kv_cache.h"

#include "comet/prefix/block_key.h"
#include "comet/prefix/prefix_cache.h"
#include "comet/prefix/radix_index.h"

#include "comet/serve/batch_scheduler.h"
#include "comet/serve/engine.h"
#include "comet/serve/request.h"
#include "comet/serve/trace.h"

#include "comet/server/admission.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"
#include "comet/server/streaming.h"

#include "comet/cluster/cluster_loadgen.h"
#include "comet/cluster/placement.h"
#include "comet/cluster/router.h"

#include "comet/tp/interconnect.h"
#include "comet/tp/shard.h"

#include "comet/chaos/failpoint.h"
#include "comet/chaos/harness.h"
#include "comet/chaos/invariants.h"
#include "comet/chaos/script.h"
