/**
 * @file
 * The chaos harness: seeded fault schedules, the server-level script
 * runner, and model-based fuzzers for the KV cache and the batch
 * scheduler.
 *
 * Three layers, from broad to narrow:
 *
 *  - runChaosScript() replays a generated workload script (see
 *    script.h) against a real Server with an optional fault schedule
 *    armed, then audits the drained session: per-stream event-shape
 *    and token-conservation invariants, terminal accounting against
 *    ServerStats, a monotone published virtual clock, and KV-cache
 *    quiescence (zero leaked blocks). It returns a canonical text
 *    event log — byte-identical across runs of the same seed at any
 *    COMET_THREADS, which is the bit-identical-replay check the soak
 *    and CI legs enforce.
 *
 *  - runKvModelFuzz() drives a PagedKvCache directly through random
 *    add/append/fork/remove sequences against a token-count mirror,
 *    cross-validating allocator refcounts, chain sizing and block
 *    conservation after every operation (with injected allocator OOM
 *    when faults are on).
 *
 *  - runSchedulerFuzz() drives a BatchScheduler through random
 *    submit/admit/step/cancel interleavings, checking KV consistency
 *    each round and exact terminal accounting at the end.
 *
 *  - runPrefixFuzz() drives a prefix-enabled PagedKvCache through
 *    shared-prompt adds, forks, evictions-under-pressure and cache
 *    clears, auditing the index's extra refcounts and the
 *    grafted-token bounds (see below).
 *
 * All three return the violated invariant as an error instead of
 * aborting, so a failing seed can be reported — and, for scripts,
 * shrunk — by the caller.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comet/chaos/script.h"
#include "comet/cluster/router.h"
#include "comet/common/status.h"
#include "comet/server/server.h"

namespace comet {
namespace chaos {

/**
 * One fault schedule over the serving stack's failpoints. Each knob
 * arms one site; 0 disables it. The probability sites draw from Rngs
 * seeded off @p seed, so a (seed, knobs) pair is one exact fault
 * schedule.
 */
struct ChaosFaultConfig {
    uint64_t seed = 1; ///< seeds the probability-trigger draws
    /** P(injected allocator OOM) per KV block allocation. */
    double kv_alloc_p = 0.05;
    /** P(injected delay) per thread-pool chunk. */
    double pool_task_p = 0.02;
    /** Simulate a client cancel racing admission on every Nth
     * ingested arrival. */
    int64_t ingress_every = 17;
    /** Force a spurious preemption on every Nth scheduler step. */
    int64_t preempt_every = 97;
    /** Force an admission-deadline expiry on every Nth queue pick. */
    int64_t expire_every = 131;
    /** Force a prefix-cache miss (failed graft, full prefill
     * fallback) on every Nth lookup; 0 leaves the graft path clean.
     * Only observable with the prefix cache on. */
    int64_t graft_every = 0;
    /** Drop every Nth prefill chunk at its boundary (`sched.chunk`;
     * the chunk is re-planned on a later step). Only observable with
     * chunked prefill on (ChaosScriptConfig::chunk_tokens); must be
     * >= 2 when armed — every chunk dropped would stall prefill
     * forever. 0 leaves the chunk path clean. */
    int64_t chunk_every = 0;
    /** Force every Nth cluster placement onto its second-choice
     * replica (`cluster.route`). Only observable through a
     * ClusterRouter. */
    int64_t route_every = 0;
    /** Inject a drain of the chosen replica on every Nth cluster
     * placement (`cluster.drain`; skipped when it would leave no
     * active replica). Only observable through a ClusterRouter. */
    int64_t drain_every = 0;
    /** Fire the `tp.allreduce` failpoint on every Nth evaluation: in
     * the engine's collective cost path the step's all-reduces run at
     * degraded (halved) link bandwidth, in a ShardedW4AxGemm the fold
     * is discarded and replayed byte-identically. Only observable
     * with tensor parallelism on (ChaosScriptConfig::tp_degree > 1);
     * latency-only, so event logs must not change. */
    int64_t allreduce_every = 0;
};

/** Arms (replacing any armed schedule, resetting all counters) the
 * failpoints a non-zero knob selects. Disarm with
 * FailPointRegistry::global().disarmAll(). */
void armChaosFaults(const ChaosFaultConfig &faults);

/** Outcome of one scripted server run. */
struct ChaosRunResult {
    bool ok = true;       ///< every invariant held
    std::string failure;  ///< first violated invariant (ok = false)
    /** Canonical per-request event log (submission order, one line
     * per event); abandoned requests are audited but not logged —
     * their client is gone. Byte-identical across replays of the
     * same seed and fault schedule at any thread count. */
    std::string event_log;
    server::ServerStats stats; ///< the session's final counters
};

/**
 * Replays @p script against a fresh Server (tenants from @p config)
 * and audits the drained session (see the file comment). When
 * @p faults is non-null its schedule is armed for the run; all
 * failpoints are disarmed before returning either way.
 */
ChaosRunResult runChaosScript(const std::vector<ChaosStep> &script,
                              const ChaosScriptConfig &config,
                              const ChaosFaultConfig *faults);

/** Outcome of one scripted cluster run. */
struct ClusterChaosRunResult {
    bool ok = true;      ///< every invariant held
    std::string failure; ///< first violated invariant (ok = false)
    /** Canonical per-request event log; same format and
     * byte-identical-replay guarantee as ChaosRunResult. */
    std::string event_log;
    cluster::ClusterStats cluster_stats; ///< router counters
    int64_t replica_streamed_tokens = 0; ///< summed over replicas
    int64_t replica_completed = 0;       ///< summed over replicas
};

/**
 * Replays @p script against a fresh @p replicas -replica
 * ClusterRouter (tenants from @p config, all replicas on one shared
 * engine) and audits the drained session: the single-server
 * per-stream invariants, token conservation against the *summed*
 * replica streamed-token counters, terminal accounting against the
 * summed replica stats plus the router's edge verdicts
 * (submitted == routed + edge-rejected + edge-cancelled), a monotone
 * published cluster clock, and per-replica KV quiescence.
 *
 * When @p faults is non-null, only its cluster-safe subset is armed:
 * `cluster.route` / `cluster.drain` (hit exclusively on the routing
 * thread, so their every-Nth schedules replay exactly) and the
 * thread-pool delay site. Per-replica failpoints (kv.alloc,
 * sched.preempt, admission.expire, server.ingress, prefix.graft,
 * sched.chunk, tp.allreduce) are deliberately excluded: their hit
 * counters are shared across all replica loop threads, so which
 * replica's step absorbs the Nth hit depends on wall-clock
 * interleaving — armed, they would break the bit-identical-replay
 * guarantee this runner audits. All failpoints are disarmed before
 * returning.
 *
 * @p tp_degrees, when non-empty, builds a heterogeneous cluster:
 * replica r serves at degree `tp_degrees[r % tp_degrees.size()]`
 * (via ReplicaSpec::tp_degree overrides of the one shared template
 * engine), every overridden replica's KV pool pinned to the shared
 * engine's 256 blocks so capacities — and the event log — match the
 * homogeneous cluster's.
 */
ClusterChaosRunResult
runClusterChaosScript(const std::vector<ChaosStep> &script,
                      const ChaosScriptConfig &config,
                      const ChaosFaultConfig *faults, int replicas,
                      cluster::RoutingPolicy policy,
                      const std::vector<int> &tp_degrees = {});

/** Model-based KV-cache fuzz (see the file comment). OK when every
 * per-op invariant held and the drained cache is quiescent. */
Status runKvModelFuzz(uint64_t seed, int steps, bool with_faults);

/** Model-based batch-scheduler fuzz (see the file comment). */
Status runSchedulerFuzz(uint64_t seed, int steps, bool with_faults);

/**
 * Model-based prefix-cache fuzz: drives a prefix-enabled PagedKvCache
 * through random add-with-prefix / append / fork / remove /
 * clear-cache interleavings, with prompts drawn from a small pool of
 * shared seeds so grafts actually happen, cross-validating refcounts
 * (including the index's own holds), block conservation and the
 * grafted-tokens bound after every operation. @p with_faults arms
 * injected allocator OOM and the prefix.graft forced-miss failpoint.
 * Ends by draining, checking quiescence, clearing the cache and
 * requiring a fully free pool.
 */
Status runPrefixFuzz(uint64_t seed, int steps, bool with_faults);

} // namespace chaos
} // namespace comet
