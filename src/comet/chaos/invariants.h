/**
 * @file
 * Whole-state invariant checkers for the chaos harness.
 *
 * Each checker walks a serving-stack component and cross-validates
 * its redundant bookkeeping, returning a descriptive error Status on
 * the first violation instead of aborting — the harness wants to
 * report the violated invariant together with the seed and the
 * (shrunk) step script that produced it.
 *
 * KV cache invariants (checked after every fuzzer op and at
 * quiescence):
 *  - block conservation: free + physically-used = total, and the
 *    number of blocks with a nonzero refcount equals the allocator's
 *    used count;
 *  - refcount/chain agreement: every allocated block appears in the
 *    live sequences' chains exactly refcount times (copy-on-write
 *    forks share blocks; nothing else may), *plus one* when the
 *    prefix index holds it (PagedKvCache::prefixHeldBlocks() — a
 *    cached page legitimately outlives the sequences that built it),
 *    so a block referenced by no chain and not indexed is a leak and
 *    a chain entry without a matching reference is a dangling page;
 *  - chain sizing: each sequence's chain holds exactly
 *    blocksForTokens(tokens) pages, and the logical page total is the
 *    sum of chain lengths;
 *  - quiescence: with no live sequence, every allocated block is a
 *    prefix-index page (zero with the prefix cache off), and
 *    clearPrefixCache() would therefore free the pool completely.
 */
#pragma once

#include "comet/common/status.h"
#include "comet/kvcache/kv_cache.h"

namespace comet {
namespace chaos {

/** Cross-validates allocator refcounts against the live sequences'
 * block chains (see the file comment). OK when consistent. */
Status checkKvCacheConsistency(const PagedKvCache &cache);

/** checkKvCacheConsistency plus: no live sequences and zero blocks in
 * use — the post-drain zero-leak check. */
Status checkKvCacheQuiescent(const PagedKvCache &cache);

} // namespace chaos
} // namespace comet
