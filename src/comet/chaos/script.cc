#include "comet/chaos/script.h"

#include <algorithm>
#include <cstdio>

#include "comet/common/rng.h"
#include "comet/common/status.h"

namespace comet {
namespace chaos {

const char *
chaosStepKindName(ChaosStepKind kind)
{
    switch (kind) {
      case ChaosStepKind::kSubmit:
        return "submit";
      case ChaosStepKind::kAdvance:
        return "advance";
      case ChaosStepKind::kReconnect:
        return "reconnect";
    }
    return "?";
}

std::vector<server::TenantConfig>
defaultChaosTenants()
{
    std::vector<server::TenantConfig> tenants(4);
    tenants[0].name = "gold";
    tenants[0].weight = 4.0;
    tenants[1].name = "silver";
    tenants[1].weight = 2.0;
    // A tenant that exercises bounded-queue and rate-limit rejects
    // organically under the script's load.
    tenants[2].name = "bronze";
    tenants[2].weight = 1.0;
    tenants[2].max_queued = 4;
    tenants[2].rate_limit_per_s = 50.0;
    tenants[2].rate_burst = 4.0;
    // A tenant whose requests age out of the queue when the batch is
    // busy (organic kDeadlineExpired coverage).
    tenants[3].name = "deadline";
    tenants[3].weight = 1.0;
    tenants[3].admission_deadline_us = 2e4;
    return tenants;
}

std::vector<ChaosStep>
generateChaosScript(const ChaosScriptConfig &config)
{
    COMET_CHECK(config.steps >= 1);
    COMET_CHECK_MSG(config.clients >= 2,
                    "chaos scripts need >= 2 clients so a "
                    "reconnect never closes the last open horizon");
    const size_t tenants = config.tenants.empty()
                               ? defaultChaosTenants().size()
                               : config.tenants.size();
    Rng rng(config.seed);
    std::vector<ChaosStep> script;
    script.reserve(static_cast<size_t>(config.steps));
    double now_us = 0.0;
    int64_t next_id = 1;
    for (int i = 0; i < config.steps; ++i) {
        // Strictly increasing step times keep every per-client
        // arrival sequence monotone under arbitrary subsequencing —
        // the shrinker's soundness rests on this.
        now_us += rng.uniform(50.0, 2500.0);
        ChaosStep step;
        step.time_us = now_us;
        step.client =
            static_cast<int>(rng.uniformInt(
                static_cast<uint64_t>(config.clients)));
        const double roll = rng.uniform();
        if (roll < 0.06) {
            step.kind = ChaosStepKind::kAdvance;
        } else if (roll < 0.10) {
            step.kind = ChaosStepKind::kReconnect;
        } else {
            step.kind = ChaosStepKind::kSubmit;
            step.id = next_id++;
            step.tenant = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(tenants)));
            // A sprinkle of impossible footprints keeps the
            // kTooLarge reject path in every soak.
            step.prompt_tokens =
                rng.uniform() < 0.02
                    ? (int64_t{1} << 20)
                    : 1 + static_cast<int64_t>(rng.uniformInt(192));
            step.max_output_tokens =
                1 + static_cast<int64_t>(rng.uniformInt(24));
            step.eos_output_tokens =
                rng.uniform() < 0.5
                    ? 1 + static_cast<int64_t>(rng.uniformInt(
                              static_cast<uint64_t>(
                                  step.max_output_tokens)))
                    : 0;
            if (config.prefix && step.prompt_tokens < (1 << 16)) {
                // A per-(tenant, pool) seed: requests in one pool
                // share their common-length prompt prefix; pools and
                // tenants never collide (and tenant isolation is
                // enforced by key namespaces regardless).
                COMET_CHECK(config.prompt_pools > 0);
                const uint64_t pool = rng.uniformInt(
                    static_cast<uint64_t>(config.prompt_pools));
                step.prompt_seed = config.seed * 2654435761ull +
                                   static_cast<uint64_t>(step.tenant) *
                                       40503ull +
                                   pool + 1ull;
            }
            if (rng.uniform() < 0.2) {
                step.cancel_at_us =
                    now_us + rng.uniform(0.0, 5e4);
            }
            step.abandon = rng.uniform() < 0.05;
        }
        script.push_back(step);
    }
    return script;
}

std::string
renderChaosScript(const std::vector<ChaosStep> &script)
{
    std::string out;
    out.reserve(script.size() * 64);
    char line[192];
    for (const ChaosStep &step : script) {
        switch (step.kind) {
          case ChaosStepKind::kSubmit:
            std::snprintf(
                line, sizeof(line),
                "submit c=%d id=%lld tenant=%d prompt=%lld "
                "max_out=%lld eos=%lld seed=%llu t=%.3f "
                "cancel_at=%.3f abandon=%d\n",
                step.client, static_cast<long long>(step.id),
                step.tenant,
                static_cast<long long>(step.prompt_tokens),
                static_cast<long long>(step.max_output_tokens),
                static_cast<long long>(step.eos_output_tokens),
                static_cast<unsigned long long>(step.prompt_seed),
                step.time_us, step.cancel_at_us,
                step.abandon ? 1 : 0);
            break;
          case ChaosStepKind::kAdvance:
            std::snprintf(line, sizeof(line),
                          "advance c=%d t=%.3f\n", step.client,
                          step.time_us);
            break;
          case ChaosStepKind::kReconnect:
            std::snprintf(line, sizeof(line),
                          "reconnect c=%d t=%.3f\n", step.client,
                          step.time_us);
            break;
        }
        out += line;
    }
    return out;
}

std::vector<ChaosStep>
shrinkChaosScript(
    const std::vector<ChaosStep> &script,
    const std::function<bool(const std::vector<ChaosStep> &)>
        &still_fails,
    int max_runs)
{
    std::vector<ChaosStep> current = script;
    int runs = 0;
    size_t chunk = std::max<size_t>(1, current.size() / 2);
    while (runs < max_runs) {
        bool removed_any = false;
        size_t start = 0;
        while (start < current.size() && runs < max_runs) {
            const size_t end =
                std::min(start + chunk, current.size());
            if (end - start == current.size())
                break; // never test the empty script
            std::vector<ChaosStep> candidate;
            candidate.reserve(current.size() - (end - start));
            candidate.insert(candidate.end(), current.begin(),
                             current.begin() +
                                 static_cast<std::ptrdiff_t>(start));
            candidate.insert(candidate.end(),
                             current.begin() +
                                 static_cast<std::ptrdiff_t>(end),
                             current.end());
            ++runs;
            if (still_fails(candidate)) {
                current = std::move(candidate);
                removed_any = true;
                // The next chunk slid into place at `start`.
            } else {
                start += chunk;
            }
        }
        if (chunk == 1) {
            if (!removed_any)
                break; // a local minimum: no single step removable
            continue;  // another single-step sweep may now succeed
        }
        chunk = std::max<size_t>(1, chunk / 2);
    }
    return current;
}

} // namespace chaos
} // namespace comet
