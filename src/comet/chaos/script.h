/**
 * @file
 * Seeded multi-tenant workload scripts for the chaos harness.
 *
 * A chaos script is a flat list of self-contained steps the harness
 * replays against a Server: submissions (with randomized prompt and
 * output lengths, tenants, scheduled virtual-time abandons, and the
 * occasional impossible footprint), horizon advances, and client
 * reconnects. Scripts are generated from a seed by a comet::Rng, so
 * `--seed=N` reproduces a run exactly; and every step carries its own
 * absolute virtual times with the global step time strictly
 * increasing, so **any subsequence of a valid script is itself
 * valid** (per-client arrival monotonicity survives deletion). That
 * closure property is what makes delta-debugging shrinks sound:
 * shrinkChaosScript() can drop arbitrary step ranges and re-run the
 * predicate without ever manufacturing an illegal workload.
 *
 * Client cancels and disconnects are modeled through
 * StreamRequest::cancel_at_us — scheduled *virtual-time* abandons the
 * serving loop executes at deterministic clock boundaries — rather
 * than wall-clock requestCancel() calls from the harness thread,
 * whose landing point would race host scheduling and break
 * bit-identical replay.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comet/server/admission.h"

namespace comet {
namespace chaos {

/** What one script step does. */
enum class ChaosStepKind {
    kSubmit = 0, ///< submit a request on a client handle
    kAdvance,    ///< advance a client's ingress horizon
    kReconnect,  ///< close the client's handle and connect a new one
};

/** Returns "submit" / "advance" / "reconnect". */
const char *chaosStepKindName(ChaosStepKind kind);

/** One self-contained step of a chaos script. */
struct ChaosStep {
    ChaosStepKind kind = ChaosStepKind::kSubmit; ///< what to do
    int client = 0;      ///< client slot the step acts through
    int64_t id = 0;      ///< request id (kSubmit; session-unique)
    int tenant = 0;      ///< tenant index (kSubmit)
    int64_t prompt_tokens = 0;     ///< prompt length (kSubmit)
    int64_t max_output_tokens = 0; ///< declared bound (kSubmit)
    int64_t eos_output_tokens = 0; ///< actual EOS length (kSubmit)
    /**
     * Prompt-content seed (kSubmit); 0 = content-free request. When
     * non-zero the harness materializes the prompt as the first
     * prompt_tokens ids of the Rng stream this seeds, so two submits
     * sharing a seed share their common-length prefix by construction
     * — the redundancy the prefix cache grafts. Self-contained per
     * step, so the shrinker's subsequence closure survives.
     */
    uint64_t prompt_seed = 0;
    /** Virtual time of the step: the arrival (kSubmit) or the new
     * horizon (kAdvance); strictly increasing across the script. */
    double time_us = 0.0;
    /** Scheduled virtual-time abandon (kSubmit); 0 = never. */
    double cancel_at_us = 0.0;
    /** The client walks away without ever reading the stream
     * (kSubmit); the harness still audits it after drain. */
    bool abandon = false;
};

/** Script generation parameters. */
struct ChaosScriptConfig {
    uint64_t seed = 1; ///< the only source of randomness
    int steps = 1000;  ///< script length
    /** Concurrent client handles (>= 2, so a reconnecting client
     * never leaves the ingress gate without an open horizon). */
    int clients = 4;
    /** Tenant set the script draws from; empty selects
     * defaultChaosTenants(). */
    std::vector<server::TenantConfig> tenants;
    /**
     * Prefix-cache mode: submits draw a prompt_seed from a small
     * per-tenant pool (shared prefixes across requests of one tenant,
     * never across tenants), and the harness runs the server with the
     * prefix cache on and every tenant opted in. Off keeps scripts
     * content-free — bit-for-bit the pre-prefix-cache soak.
     */
    bool prefix = false;
    /** Distinct shared-prompt pools per tenant in prefix mode. */
    int64_t prompt_pools = 3;
    /** Chunked-prefill mode: the harness runs the server with
     * ServerConfig::chunked_prefill_tokens set to this (0 keeps
     * monolithic prefill), so cancels, preemptions and grafts land
     * at chunk edges; pair with ChaosFaultConfig::chunk_every to
     * drop chunks at their boundaries too. */
    int64_t chunk_tokens = 0;
    /** Tensor-parallel degree of the engine the harness serves
     * against (1 = the classic single-GPU soak). Higher degrees
     * exercise the sharded KV-pool accounting and give the
     * `tp.allreduce` failpoint (ChaosFaultConfig::allreduce_every) a
     * live cost path; the KV pool is pinned to the same 256 blocks
     * at every degree, so admission capacity never moves and the
     * replay stays byte-identical across thread counts. (Streams may
     * differ from a TP=1 replay of the same script: TP shifts the
     * virtual clock, and scripts carry time-triggered cancels.) */
    int tp_degree = 1;
};

/**
 * The 4-tenant serving mix the soak runs against: weighted "gold"
 * and "silver", a "bronze" tenant with a short bounded queue and a
 * tight rate limit (organic kQueueFull / kRateLimited coverage), and
 * a "deadline" tenant whose admission deadline expires under load
 * (organic kDeadlineExpired coverage).
 */
std::vector<server::TenantConfig> defaultChaosTenants();

/** Generates the seeded script (see the file comment). */
std::vector<ChaosStep>
generateChaosScript(const ChaosScriptConfig &config);

/** Renders a script as one human-readable line per step — the repro
 * artifact printed for a shrunk failing run. */
std::string renderChaosScript(const std::vector<ChaosStep> &script);

/**
 * Delta-debugging shrink: repeatedly deletes step ranges (halving
 * the chunk size down to single steps) while @p still_fails keeps
 * accepting the candidate, bounded by @p max_runs predicate
 * evaluations. Returns the smallest failing script found; subsequence
 * validity is guaranteed by the script representation.
 */
std::vector<ChaosStep> shrinkChaosScript(
    const std::vector<ChaosStep> &script,
    const std::function<bool(const std::vector<ChaosStep> &)>
        &still_fails,
    int max_runs = 256);

} // namespace chaos
} // namespace comet
