#include "comet/chaos/harness.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "comet/chaos/failpoint.h"
#include "comet/chaos/invariants.h"
#include "comet/common/rng.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/serve/batch_scheduler.h"
#include "comet/serve/engine.h"

namespace comet {
namespace chaos {

namespace {

using server::RejectReason;
using server::Server;
using server::StreamEvent;
using server::StreamEventKind;
using server::StreamRequest;
using server::TenantConfig;
using server::TokenStreamPtr;

/** The small, KV-bound engine every chaos run serves against: 256
 * pages make exhaustion, preemption and queueing routine at the
 * script's request sizes. The pool is pinned to the same 256 blocks
 * at every tensor-parallel degree, so TP changes only step latency —
 * admission capacity (and the replay's cross-thread determinism)
 * must not move. Streams can still differ from TP=1 where scripts
 * carry time-triggered cancels: the virtual clock runs at a
 * different rate. */
EngineConfig
chaosEngineConfig(int tp_degree = 1)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 32;
    config.tensor_parallel = tp_degree;
    return engineConfigWithKvBlocks(config, 256);
}

/** Tokens a finished stream must have delivered. */
int64_t
stopTokens(const ChaosStep &step)
{
    return step.eos_output_tokens > 0 ? step.eos_output_tokens
                                      : step.max_output_tokens;
}

/** The first @p tokens ids of the stream @p seed seeds — the prompt
 * content a non-zero ChaosStep::prompt_seed stands for. */
std::vector<int32_t>
promptFromSeed(uint64_t seed, int64_t tokens)
{
    Rng rng(seed);
    std::vector<int32_t> ids;
    ids.reserve(static_cast<size_t>(tokens));
    for (int64_t i = 0; i < tokens; ++i)
        ids.push_back(static_cast<int32_t>(rng.uniformInt(32000)));
    return ids;
}

std::string
format(const char *fmt, long long a, long long b)
{
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer), fmt, a, b);
    return buffer;
}

} // namespace

void
armChaosFaults(const ChaosFaultConfig &faults)
{
    FailPointRegistry &registry = FailPointRegistry::global();
    if (faults.kv_alloc_p > 0.0) {
        registry.arm("kv.alloc",
                     FailPointSpec::withProbability(
                         faults.kv_alloc_p, faults.seed ^ 0x6b76ull));
    }
    if (faults.pool_task_p > 0.0) {
        registry.arm("pool.task",
                     FailPointSpec::withProbability(
                         faults.pool_task_p,
                         faults.seed ^ 0x706f6f6cull));
    }
    if (faults.ingress_every > 0) {
        registry.arm("server.ingress",
                     FailPointSpec::everyNth(faults.ingress_every));
    }
    if (faults.preempt_every > 0) {
        registry.arm("sched.preempt",
                     FailPointSpec::everyNth(faults.preempt_every));
    }
    if (faults.expire_every > 0) {
        registry.arm("admission.expire",
                     FailPointSpec::everyNth(faults.expire_every));
    }
    if (faults.graft_every > 0) {
        registry.arm("prefix.graft",
                     FailPointSpec::everyNth(faults.graft_every));
    }
    if (faults.chunk_every > 0) {
        // everyNth >= 2 guarantees forward progress: between any two
        // dropped chunks at one site, at least one chunk lands.
        COMET_CHECK(faults.chunk_every >= 2);
        registry.arm("sched.chunk",
                     FailPointSpec::everyNth(faults.chunk_every));
    }
    if (faults.route_every > 0) {
        registry.arm("cluster.route",
                     FailPointSpec::everyNth(faults.route_every));
    }
    if (faults.drain_every > 0) {
        registry.arm("cluster.drain",
                     FailPointSpec::everyNth(faults.drain_every));
    }
    if (faults.allreduce_every > 0) {
        registry.arm("tp.allreduce",
                     FailPointSpec::everyNth(faults.allreduce_every));
    }
}

ChaosRunResult
runChaosScript(const std::vector<ChaosStep> &script,
               const ChaosScriptConfig &config,
               const ChaosFaultConfig *faults)
{
    ChaosRunResult result;
    const auto fail = [&result](const std::string &message) {
        if (result.ok) {
            result.ok = false;
            result.failure = message;
        }
    };

    FailPointRegistry::global().disarmAll();
    if (faults != nullptr)
        armChaosFaults(*faults);

    const ServingEngine engine(chaosEngineConfig(config.tp_degree));
    server::ServerConfig server_config;
    server_config.tenants = config.tenants.empty()
                                ? defaultChaosTenants()
                                : config.tenants;
    server_config.max_batch = 8;
    server_config.chunked_prefill_tokens = config.chunk_tokens;
    if (config.prefix) {
        server_config.enable_prefix_cache = true;
        for (TenantConfig &tenant : server_config.tenants)
            tenant.prefix_caching = true;
    }
    {
        Server server(&engine, server_config);
        std::vector<Server::Client> clients;
        clients.reserve(static_cast<size_t>(config.clients));
        for (int c = 0; c < config.clients; ++c)
            clients.push_back(server.connect());

        // Drive the whole script without ever blocking on a stream:
        // submissions are non-blocking, and pull-mode streams buffer,
        // so consumption can wait until after drain — a mid-script
        // blocking read could deadlock against the ingress gate
        // (the loop may be waiting on this thread's future
        // submissions).
        struct Submitted {
            const ChaosStep *step;
            TokenStreamPtr stream;
        };
        std::vector<Submitted> submitted;
        double watermark_us = 0.0;
        for (const ChaosStep &step : script) {
            const size_t slot = static_cast<size_t>(step.client);
            if (slot >= clients.size()) {
                fail("script step references an unconnected client "
                     "slot");
                break;
            }
            switch (step.kind) {
              case ChaosStepKind::kSubmit: {
                StreamRequest request;
                request.id = step.id;
                request.tenant =
                    server_config
                        .tenants[static_cast<size_t>(step.tenant) %
                                 server_config.tenants.size()]
                        .name;
                request.prompt_tokens = step.prompt_tokens;
                request.max_output_tokens = step.max_output_tokens;
                request.eos_output_tokens = step.eos_output_tokens;
                request.arrival_us = step.time_us;
                request.cancel_at_us = step.cancel_at_us;
                if (step.prompt_seed != 0) {
                    request.prompt_ids = promptFromSeed(
                        step.prompt_seed, step.prompt_tokens);
                }
                submitted.push_back(
                    {&step, clients[slot].submit(request)});
                break;
              }
              case ChaosStepKind::kAdvance:
                clients[slot].advanceTo(step.time_us);
                break;
              case ChaosStepKind::kReconnect:
                clients[slot].close();
                clients[slot] = server.connect();
                break;
            }
            // The published virtual clock must never run backwards,
            // no matter how the loop interleaves with this thread.
            const double clock_us = server.virtualClockUs();
            if (clock_us < watermark_us)
                fail("published virtual clock ran backwards");
            watermark_us = std::max(watermark_us, clock_us);
        }
        for (Server::Client &client : clients)
            client.close();
        server.drain();
        result.stats = server.stats();

        // ---- Post-drain audit ----
        int64_t delivered_tokens = 0;
        int64_t completed = 0;
        int64_t rejected = 0;
        int64_t cancelled = 0;
        char line[96];
        for (const Submitted &entry : submitted) {
            const ChaosStep &step = *entry.step;
            StreamEvent event;
            int64_t tokens = 0;
            double last_us = -1.0;
            bool terminal_seen = false;
            StreamEventKind terminal = StreamEventKind::kToken;
            RejectReason reason = RejectReason::kNone;
            while (entry.stream->next(&event)) {
                if (terminal_seen) {
                    fail(format("id=%lld: event after the terminal "
                                "event (%lld)",
                                step.id, 0));
                    break;
                }
                if (event.virtual_us < last_us) {
                    fail(format("id=%lld: event timestamps ran "
                                "backwards (%lld)",
                                step.id, 0));
                }
                last_us = event.virtual_us;
                if (event.kind == StreamEventKind::kToken) {
                    if (event.token_index != tokens) {
                        fail(format("id=%lld: token indices not "
                                    "contiguous at %lld",
                                    step.id, tokens));
                    }
                    ++tokens;
                    if (!step.abandon) {
                        std::snprintf(line, sizeof(line),
                                      "id=%lld token %lld t=%.6f\n",
                                      static_cast<long long>(step.id),
                                      static_cast<long long>(
                                          event.token_index),
                                      event.virtual_us);
                        result.event_log += line;
                    }
                } else {
                    terminal_seen = true;
                    terminal = event.kind;
                    reason = event.reject_reason;
                    if (!step.abandon) {
                        std::snprintf(
                            line, sizeof(line),
                            "id=%lld %s reason=%s t=%.6f\n",
                            static_cast<long long>(step.id),
                            server::streamEventKindName(event.kind),
                            server::rejectReasonName(
                                event.reject_reason),
                            event.virtual_us);
                        result.event_log += line;
                    }
                }
            }
            if (!terminal_seen) {
                fail(format("id=%lld: stream ended with no terminal "
                            "event (%lld tokens)",
                            step.id, tokens));
                continue;
            }
            delivered_tokens += tokens;
            switch (terminal) {
              case StreamEventKind::kFinished:
                ++completed;
                if (tokens != stopTokens(step)) {
                    fail(format("id=%lld: finished with the wrong "
                                "token count %lld",
                                step.id, tokens));
                }
                break;
              case StreamEventKind::kRejected:
                ++rejected;
                if (tokens != 0) {
                    fail(format("id=%lld: rejected after streaming "
                                "%lld tokens",
                                step.id, tokens));
                }
                if (reason == RejectReason::kNone)
                    fail(format("id=%lld: rejected with no reason "
                                "(%lld)",
                                step.id, 0));
                break;
              case StreamEventKind::kCancelled:
                ++cancelled;
                if (tokens > stopTokens(step)) {
                    fail(format("id=%lld: cancelled after streaming "
                                "past its stop length (%lld)",
                                step.id, tokens));
                }
                break;
              default:
                fail(format("id=%lld: impossible terminal kind "
                            "(%lld)",
                            step.id, 0));
                break;
            }
        }

        // Token conservation and exact terminal accounting against
        // the server's own counters: every submitted stream ended
        // exactly once, and every token the loop counted as streamed
        // is sitting in exactly one stream.
        if (delivered_tokens != result.stats.streamed_tokens) {
            fail(format("token conservation: streams hold %lld "
                        "tokens, the server streamed %lld",
                        delivered_tokens,
                        result.stats.streamed_tokens));
        }
        if (result.stats.submitted !=
            static_cast<int64_t>(submitted.size())) {
            fail(format("submitted accounting: %lld vs %lld",
                        result.stats.submitted,
                        static_cast<int64_t>(submitted.size())));
        }
        if (completed != result.stats.completed ||
            rejected != result.stats.rejected ||
            cancelled != result.stats.cancelled) {
            fail("terminal accounting: stream verdicts disagree "
                 "with ServerStats");
        }
        if (completed + rejected + cancelled !=
            static_cast<int64_t>(submitted.size())) {
            fail(format("terminal conservation: %lld terminals for "
                        "%lld submissions",
                        completed + rejected + cancelled,
                        static_cast<int64_t>(submitted.size())));
        }

        // Zero-leak drain: the KV pool is fully free again.
        const Status quiescent =
            checkKvCacheQuiescent(server.kvCacheForAudit());
        if (!quiescent.isOk())
            fail(quiescent.message());

        server.stop(/*cancel_in_flight=*/false);
    }
    FailPointRegistry::global().disarmAll();
    return result;
}

ClusterChaosRunResult
runClusterChaosScript(const std::vector<ChaosStep> &script,
                      const ChaosScriptConfig &config,
                      const ChaosFaultConfig *faults, int replicas,
                      cluster::RoutingPolicy policy,
                      const std::vector<int> &tp_degrees)
{
    COMET_CHECK(replicas > 0);
    ClusterChaosRunResult result;
    const auto fail = [&result](const std::string &message) {
        if (result.ok) {
            result.ok = false;
            result.failure = message;
        }
    };

    FailPointRegistry::global().disarmAll();
    if (faults != nullptr) {
        // Cluster-safe subset only — see the header comment: the
        // per-replica sites' shared hit counters interleave across
        // replica loop threads, which would break replay.
        ChaosFaultConfig restricted;
        restricted.seed = faults->seed;
        restricted.pool_task_p = faults->pool_task_p;
        restricted.kv_alloc_p = 0.0;
        restricted.ingress_every = 0;
        restricted.preempt_every = 0;
        restricted.expire_every = 0;
        restricted.route_every = faults->route_every;
        restricted.drain_every = faults->drain_every;
        // tp.allreduce stays excluded too: the engine cost path is
        // evaluated on every replica's loop thread against one
        // shared hit counter.
        restricted.allreduce_every = 0;
        armChaosFaults(restricted);
    }

    const ServingEngine engine(chaosEngineConfig());
    cluster::ClusterConfig cluster_config;
    for (int r = 0; r < replicas; ++r) {
        cluster::ReplicaSpec spec;
        spec.engine = &engine;
        if (!tp_degrees.empty()) {
            spec.tp_degree =
                tp_degrees[static_cast<size_t>(r) %
                           tp_degrees.size()];
            // Pin every derived engine to the template's 256-block
            // pool: heterogeneous degrees must not skew per-replica
            // admission capacity (TP=1 entries stay on the shared
            // engine untouched).
            if (spec.tp_degree > 1)
                spec.kv_blocks = 256;
            else
                spec.tp_degree = 0;
        }
        cluster_config.replicas.push_back(spec);
    }
    cluster_config.policy = policy;
    cluster_config.server.tenants = config.tenants.empty()
                                        ? defaultChaosTenants()
                                        : config.tenants;
    cluster_config.server.max_batch = 8;
    cluster_config.server.chunked_prefill_tokens =
        config.chunk_tokens;
    if (config.prefix) {
        cluster_config.server.enable_prefix_cache = true;
        for (TenantConfig &tenant : cluster_config.server.tenants)
            tenant.prefix_caching = true;
    }
    {
        cluster::ClusterRouter router(cluster_config);
        std::vector<cluster::ClusterRouter::Client> clients;
        clients.reserve(static_cast<size_t>(config.clients));
        for (int c = 0; c < config.clients; ++c)
            clients.push_back(router.connect());

        // Same non-blocking drive as the single-server runner: never
        // read a stream before drain, or the read could deadlock
        // against the cluster ingress gate.
        struct Submitted {
            const ChaosStep *step;
            TokenStreamPtr stream;
        };
        std::vector<Submitted> submitted;
        double watermark_us = 0.0;
        for (const ChaosStep &step : script) {
            const size_t slot = static_cast<size_t>(step.client);
            if (slot >= clients.size()) {
                fail("script step references an unconnected client "
                     "slot");
                break;
            }
            switch (step.kind) {
              case ChaosStepKind::kSubmit: {
                StreamRequest request;
                request.id = step.id;
                request.tenant =
                    cluster_config.server
                        .tenants[static_cast<size_t>(step.tenant) %
                                 cluster_config.server.tenants
                                     .size()]
                        .name;
                request.prompt_tokens = step.prompt_tokens;
                request.max_output_tokens = step.max_output_tokens;
                request.eos_output_tokens = step.eos_output_tokens;
                request.arrival_us = step.time_us;
                request.cancel_at_us = step.cancel_at_us;
                if (step.prompt_seed != 0) {
                    request.prompt_ids = promptFromSeed(
                        step.prompt_seed, step.prompt_tokens);
                }
                submitted.push_back(
                    {&step, clients[slot].submit(request)});
                break;
              }
              case ChaosStepKind::kAdvance:
                clients[slot].advanceTo(step.time_us);
                break;
              case ChaosStepKind::kReconnect:
                clients[slot].close();
                clients[slot] = router.connect();
                break;
            }
            const double clock_us = router.virtualClockUs();
            if (clock_us < watermark_us)
                fail("published cluster clock ran backwards");
            watermark_us = std::max(watermark_us, clock_us);
        }
        for (cluster::ClusterRouter::Client &client : clients)
            client.close();
        router.drain();
        result.cluster_stats = router.stats();
        int64_t replica_rejected = 0;
        int64_t replica_cancelled = 0;
        for (int r = 0; r < router.numReplicas(); ++r) {
            const server::ServerStats stats =
                router.replicaStats(r);
            result.replica_streamed_tokens += stats.streamed_tokens;
            result.replica_completed += stats.completed;
            replica_rejected += stats.rejected;
            replica_cancelled += stats.cancelled;
        }

        // ---- Post-drain audit (per-stream checks identical to the
        // single-server runner) ----
        int64_t delivered_tokens = 0;
        int64_t completed = 0;
        int64_t rejected = 0;
        int64_t cancelled = 0;
        char line[96];
        for (const Submitted &entry : submitted) {
            const ChaosStep &step = *entry.step;
            StreamEvent event;
            int64_t tokens = 0;
            double last_us = -1.0;
            bool terminal_seen = false;
            StreamEventKind terminal = StreamEventKind::kToken;
            RejectReason reason = RejectReason::kNone;
            while (entry.stream->next(&event)) {
                if (terminal_seen) {
                    fail(format("id=%lld: event after the terminal "
                                "event (%lld)",
                                step.id, 0));
                    break;
                }
                if (event.virtual_us < last_us) {
                    fail(format("id=%lld: event timestamps ran "
                                "backwards (%lld)",
                                step.id, 0));
                }
                last_us = event.virtual_us;
                if (event.kind == StreamEventKind::kToken) {
                    if (event.token_index != tokens) {
                        fail(format("id=%lld: token indices not "
                                    "contiguous at %lld",
                                    step.id, tokens));
                    }
                    ++tokens;
                    if (!step.abandon) {
                        std::snprintf(line, sizeof(line),
                                      "id=%lld token %lld t=%.6f\n",
                                      static_cast<long long>(step.id),
                                      static_cast<long long>(
                                          event.token_index),
                                      event.virtual_us);
                        result.event_log += line;
                    }
                } else {
                    terminal_seen = true;
                    terminal = event.kind;
                    reason = event.reject_reason;
                    if (!step.abandon) {
                        std::snprintf(
                            line, sizeof(line),
                            "id=%lld %s reason=%s t=%.6f\n",
                            static_cast<long long>(step.id),
                            server::streamEventKindName(event.kind),
                            server::rejectReasonName(
                                event.reject_reason),
                            event.virtual_us);
                        result.event_log += line;
                    }
                }
            }
            if (!terminal_seen) {
                fail(format("id=%lld: stream ended with no terminal "
                            "event (%lld tokens)",
                            step.id, tokens));
                continue;
            }
            delivered_tokens += tokens;
            switch (terminal) {
              case StreamEventKind::kFinished:
                ++completed;
                if (tokens != stopTokens(step)) {
                    fail(format("id=%lld: finished with the wrong "
                                "token count %lld",
                                step.id, tokens));
                }
                break;
              case StreamEventKind::kRejected:
                ++rejected;
                if (tokens != 0) {
                    fail(format("id=%lld: rejected after streaming "
                                "%lld tokens",
                                step.id, tokens));
                }
                if (reason == RejectReason::kNone)
                    fail(format("id=%lld: rejected with no reason "
                                "(%lld)",
                                step.id, 0));
                break;
              case StreamEventKind::kCancelled:
                ++cancelled;
                if (tokens > stopTokens(step)) {
                    fail(format("id=%lld: cancelled after streaming "
                                "past its stop length (%lld)",
                                step.id, tokens));
                }
                break;
              default:
                fail(format("id=%lld: impossible terminal kind "
                            "(%lld)",
                            step.id, 0));
                break;
            }
        }

        // Cluster token conservation: every token a replica counted
        // as streamed is sitting in exactly one cluster stream (the
        // drain audit that proves a mid-workload drain dropped
        // nothing).
        if (delivered_tokens != result.replica_streamed_tokens) {
            fail(format("cluster token conservation: streams hold "
                        "%lld tokens, replicas streamed %lld",
                        delivered_tokens,
                        result.replica_streamed_tokens));
        }
        const cluster::ClusterStats &cs = result.cluster_stats;
        if (cs.submitted !=
            static_cast<int64_t>(submitted.size())) {
            fail(format("cluster submitted accounting: %lld vs %lld",
                        cs.submitted,
                        static_cast<int64_t>(submitted.size())));
        }
        // Every submission either reached a replica or got an edge
        // verdict, never both, never neither.
        if (cs.submitted != cs.routed + cs.rejected + cs.cancelled) {
            fail(format("cluster routing conservation: %lld "
                        "submitted vs %lld routed+edge verdicts",
                        cs.submitted,
                        cs.routed + cs.rejected + cs.cancelled));
        }
        int64_t routed_sum = 0;
        for (int64_t per : cs.routed_per_replica)
            routed_sum += per;
        if (routed_sum != cs.routed) {
            fail(format("per-replica routed counters sum to %lld, "
                        "not %lld",
                        routed_sum, cs.routed));
        }
        // Terminal accounting across layers: replica verdicts plus
        // edge verdicts equal the stream verdicts exactly.
        if (completed != result.replica_completed ||
            rejected != replica_rejected + cs.rejected ||
            cancelled != replica_cancelled + cs.cancelled) {
            fail("cluster terminal accounting: stream verdicts "
                 "disagree with replica + edge counters");
        }
        if (completed + rejected + cancelled !=
            static_cast<int64_t>(submitted.size())) {
            fail(format("cluster terminal conservation: %lld "
                        "terminals for %lld submissions",
                        completed + rejected + cancelled,
                        static_cast<int64_t>(submitted.size())));
        }

        // Zero-leak drain on every replica.
        for (int r = 0; r < router.numReplicas(); ++r) {
            const Status quiescent = checkKvCacheQuiescent(
                router.replicaKvCacheForAudit(r));
            if (!quiescent.isOk()) {
                fail("replica " + std::to_string(r) + ": " +
                     quiescent.message());
            }
        }

        router.stop(/*cancel_in_flight=*/false);
    }
    FailPointRegistry::global().disarmAll();
    return result;
}

Status
runKvModelFuzz(uint64_t seed, int steps, bool with_faults)
{
    FailPointRegistry::global().disarmAll();
    if (with_faults) {
        FailPointRegistry::global().arm(
            "kv.alloc",
            FailPointSpec::withProbability(0.1, seed ^ 0x6b76ull));
    }
    KvCacheConfig config;
    config.bits_per_value = 4.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = 64e6; // ~120 blocks at KV4
    PagedKvCache cache(LlmConfig::llama3_8b(), config);

    Rng rng(seed);
    std::map<int64_t, int64_t> mirror; // id -> expected token count
    int64_t next_id = 1;
    Status verdict = Status::ok();
    const auto randomLive = [&rng, &mirror]() {
        auto it = mirror.begin();
        std::advance(it, static_cast<int64_t>(rng.uniformInt(
                             mirror.size())));
        return it->first;
    };
    for (int i = 0; i < steps && verdict.isOk(); ++i) {
        const double roll = rng.uniform();
        if (mirror.empty() || roll < 0.35) {
            const int64_t tokens =
                1 + static_cast<int64_t>(rng.uniformInt(200));
            const Status status =
                cache.addSequence(next_id, tokens);
            if (status.isOk()) {
                mirror.emplace(next_id, tokens);
            } else if (status.code() !=
                       StatusCode::kResourceExhausted) {
                verdict = status;
            }
            ++next_id;
        } else if (roll < 0.75) {
            const int64_t id = randomLive();
            const Status status = cache.appendToken(id);
            if (status.isOk()) {
                ++mirror[id];
            } else if (status.code() !=
                       StatusCode::kResourceExhausted) {
                verdict = status;
            }
        } else if (roll < 0.85) {
            const int64_t parent = randomLive();
            const Status status =
                cache.forkSequence(parent, next_id);
            if (status.isOk())
                mirror.emplace(next_id, mirror[parent]);
            else
                verdict = status; // forks never exhaust
            ++next_id;
        } else {
            const int64_t id = randomLive();
            cache.removeSequence(id);
            mirror.erase(id);
        }
        if (!verdict.isOk())
            break;
        verdict = checkKvCacheConsistency(cache);
        if (!verdict.isOk())
            break;
        if (cache.numSequences() !=
            static_cast<int64_t>(mirror.size())) {
            verdict = Status::internal(
                "live sequence count diverged from the model");
            break;
        }
        for (const auto &[id, tokens] : mirror) {
            if (cache.sequenceTokens(id) != tokens) {
                verdict = Status::internal(
                    "sequence token count diverged from the model");
                break;
            }
        }
    }
    if (verdict.isOk()) {
        for (const auto &[id, tokens] : mirror)
            cache.removeSequence(id);
        verdict = checkKvCacheQuiescent(cache);
    }
    FailPointRegistry::global().disarmAll();
    return verdict;
}

Status
runSchedulerFuzz(uint64_t seed, int steps, bool with_faults)
{
    FailPointRegistry::global().disarmAll();
    if (with_faults) {
        FailPointRegistry::global().arm(
            "kv.alloc",
            FailPointSpec::withProbability(0.05, seed ^ 0x6b76ull));
        FailPointRegistry::global().arm(
            "sched.preempt", FailPointSpec::everyNth(13));
    }
    KvCacheConfig config;
    config.bits_per_value = 4.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = 64e6;
    PagedKvCache cache(LlmConfig::llama3_8b(), config);
    BatchSchedulerConfig sched_config;
    sched_config.max_batch = 4;
    sched_config.prefill_emits_token = true;
    sched_config.collect_retired = true;
    BatchScheduler scheduler(&cache, sched_config);

    Rng rng(seed);
    std::set<int64_t> live; // submitted and not yet retired
    int64_t next_id = 1;
    int64_t submitted = 0;
    int64_t finished = 0;
    int64_t cancelled = 0;
    int64_t rejected = 0;
    Status verdict = Status::ok();
    const auto drainRetired = [&]() {
        for (const Request &request : scheduler.drainRetired()) {
            live.erase(request.id);
            switch (request.state) {
              case RequestState::kFinished:
                ++finished;
                break;
              case RequestState::kCancelled:
                ++cancelled;
                break;
              case RequestState::kRejected:
                ++rejected;
                break;
              default:
                verdict = Status::internal(
                    "retired request in a live state");
                break;
            }
        }
    };
    for (int i = 0; i < steps && verdict.isOk(); ++i) {
        const double roll = rng.uniform();
        if (live.empty() || roll < 0.4) {
            Request request;
            request.id = next_id++;
            request.prompt_tokens =
                1 + static_cast<int64_t>(rng.uniformInt(96));
            request.max_output_tokens =
                1 + static_cast<int64_t>(rng.uniformInt(16));
            if (rng.uniform() < 0.5) {
                request.eos_output_tokens =
                    1 + static_cast<int64_t>(rng.uniformInt(
                            static_cast<uint64_t>(
                                request.max_output_tokens)));
            }
            scheduler.submit(request);
            live.insert(request.id);
            ++submitted;
        } else if (roll < 0.55) {
            auto it = live.begin();
            std::advance(it, static_cast<int64_t>(rng.uniformInt(
                                 live.size())));
            verdict = scheduler.cancel(*it);
        } else {
            scheduler.admit();
            scheduler.step();
        }
        drainRetired();
        if (!verdict.isOk())
            break;
        verdict = checkKvCacheConsistency(cache);
    }
    if (verdict.isOk()) {
        // Run the tail down and settle the books exactly.
        for (int64_t id : std::vector<int64_t>(live.begin(),
                                               live.end())) {
            const Status status = scheduler.cancel(id);
            if (!status.isOk()) {
                verdict = status;
                break;
            }
        }
        drainRetired();
    }
    if (verdict.isOk() && !live.empty())
        verdict = Status::internal("cancelled requests not retired");
    if (verdict.isOk() &&
        submitted != finished + cancelled + rejected) {
        verdict = Status::internal(
            "terminal accounting: submitted != finished + "
            "cancelled + rejected");
    }
    if (verdict.isOk())
        verdict = checkKvCacheQuiescent(cache);
    FailPointRegistry::global().disarmAll();
    return verdict;
}

Status
runPrefixFuzz(uint64_t seed, int steps, bool with_faults)
{
    FailPointRegistry::global().disarmAll();
    if (with_faults) {
        FailPointRegistry::global().arm(
            "kv.alloc",
            FailPointSpec::withProbability(0.05, seed ^ 0x6b76ull));
        FailPointRegistry::global().arm(
            "prefix.graft", FailPointSpec::everyNth(7));
    }
    KvCacheConfig config;
    config.bits_per_value = 4.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = 64e6;
    config.enable_prefix_cache = true;
    PagedKvCache cache(LlmConfig::llama3_8b(), config);

    Rng rng(seed);
    std::map<int64_t, int64_t> mirror; // id -> expected token count
    int64_t next_id = 1;
    Status verdict = Status::ok();
    const auto randomLive = [&rng, &mirror]() {
        auto it = mirror.begin();
        std::advance(it, static_cast<int64_t>(rng.uniformInt(
                             mirror.size())));
        return it->first;
    };
    for (int i = 0; i < steps && verdict.isOk(); ++i) {
        const double roll = rng.uniform();
        if (mirror.empty() || roll < 0.4) {
            // Prompt from a small pool of (namespace, pool) seeds so
            // later submits genuinely share key chains and graft.
            const int64_t ns =
                static_cast<int64_t>(rng.uniformInt(2));
            const uint64_t pool = rng.uniformInt(3);
            const int64_t tokens =
                1 + static_cast<int64_t>(rng.uniformInt(200));
            const std::vector<int32_t> prompt = promptFromSeed(
                seed * 7368787ull +
                    static_cast<uint64_t>(ns) * 131ull + pool + 1ull,
                tokens);
            prefix::KeySpace space;
            space.namespace_id = ns;
            space.bits_per_value = config.bits_per_value;
            space.block_tokens = config.block_tokens;
            space.quant_group_tokens = config.quant_group_tokens;
            const std::vector<prefix::BlockKey> keys =
                prefix::chainBlockKeys(space, prompt);
            const Result<int64_t> grafted =
                cache.addSequenceWithPrefix(next_id, tokens, ns,
                                            keys);
            if (grafted.isOk()) {
                mirror.emplace(next_id, tokens);
                if (grafted.value() < 0 ||
                    grafted.value() >= tokens ||
                    grafted.value() % config.block_tokens != 0) {
                    verdict = Status::internal(
                        "grafted token count out of bounds (must be "
                        "a block multiple strictly below the "
                        "prompt)");
                }
            } else if (grafted.status().code() !=
                       StatusCode::kResourceExhausted) {
                verdict = grafted.status();
            }
            ++next_id;
        } else if (roll < 0.7) {
            const int64_t id = randomLive();
            const Status status = cache.appendToken(id);
            if (status.isOk()) {
                ++mirror[id];
            } else if (status.code() !=
                       StatusCode::kResourceExhausted) {
                verdict = status;
            }
        } else if (roll < 0.8) {
            const int64_t parent = randomLive();
            const Status status =
                cache.forkSequence(parent, next_id);
            if (status.isOk())
                mirror.emplace(next_id, mirror[parent]);
            else
                verdict = status; // forks never exhaust
            ++next_id;
        } else if (roll < 0.98) {
            const int64_t id = randomLive();
            cache.removeSequence(id);
            mirror.erase(id);
        } else {
            cache.clearPrefixCache();
            if (cache.prefixOwnedBlocks() != 0) {
                verdict = Status::internal(
                    "prefix index still holds pages after clear");
            }
        }
        if (!verdict.isOk())
            break;
        verdict = checkKvCacheConsistency(cache);
        if (!verdict.isOk())
            break;
        for (const auto &[id, tokens] : mirror) {
            if (cache.sequenceTokens(id) != tokens) {
                verdict = Status::internal(
                    "sequence token count diverged from the model");
                break;
            }
        }
    }
    if (verdict.isOk()) {
        for (const auto &[id, tokens] : mirror)
            cache.removeSequence(id);
        verdict = checkKvCacheQuiescent(cache);
    }
    if (verdict.isOk()) {
        // Quiescence tolerates index-held pages; a full clear must
        // hand every last block back.
        cache.clearPrefixCache();
        if (cache.physicalBlocksInUse() != 0) {
            verdict = Status::internal(
                "blocks still allocated after clearing the prefix "
                "cache (leak)");
        }
    }
    FailPointRegistry::global().disarmAll();
    return verdict;
}

} // namespace chaos
} // namespace comet
