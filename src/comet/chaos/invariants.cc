#include "comet/chaos/invariants.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace comet {
namespace chaos {

namespace {

Status
violation(const char *what, int64_t a, int64_t b)
{
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "%s (%lld vs %lld)", what,
                  static_cast<long long>(a),
                  static_cast<long long>(b));
    return Status::internal(buffer);
}

} // namespace

Status
checkKvCacheConsistency(const PagedKvCache &cache)
{
    const int64_t total = cache.totalBlocks();

    // Expected refcount of every block, from the chains of the live
    // sequences; also the chain-sizing checks along the way.
    std::map<int64_t, int64_t> expected_refs;
    int64_t logical = 0;
    for (int64_t seq_id : cache.sequenceIds()) {
        const std::vector<int64_t> &blocks =
            cache.sequenceBlocks(seq_id);
        const int64_t tokens = cache.sequenceTokens(seq_id);
        if (static_cast<int64_t>(blocks.size()) !=
            cache.blocksForTokens(tokens)) {
            return violation(
                "sequence chain length != blocksForTokens(tokens)",
                static_cast<int64_t>(blocks.size()),
                cache.blocksForTokens(tokens));
        }
        for (int64_t block : blocks) {
            if (block < 0 || block >= total) {
                return violation("chain references an out-of-range "
                                 "block id",
                                 block, total);
            }
            ++expected_refs[block];
        }
        logical += static_cast<int64_t>(blocks.size());
    }
    // The prefix index holds exactly one reference per indexed page,
    // on top of whatever chains share it.
    const std::vector<int64_t> held = cache.prefixHeldBlocks();
    for (size_t i = 0; i < held.size(); ++i) {
        const int64_t block = held[i];
        if (block < 0 || block >= total) {
            return violation("prefix index holds an out-of-range "
                             "block id",
                             block, total);
        }
        if (i > 0 && held[i - 1] >= block) {
            return violation("prefix index block ids not strictly "
                             "ascending (duplicate hold)",
                             held[i - 1], block);
        }
        ++expected_refs[block];
    }
    if (logical != cache.logicalBlocksInUse()) {
        return violation("sum of chain lengths != "
                         "logicalBlocksInUse()",
                         logical, cache.logicalBlocksInUse());
    }

    // Block conservation and refcount/chain agreement over the whole
    // pool.
    int64_t physically_referenced = 0;
    for (int64_t block = 0; block < total; ++block) {
        const int64_t refs = cache.blockRefCount(block);
        const auto it = expected_refs.find(block);
        const int64_t expected =
            it == expected_refs.end() ? 0 : it->second;
        if (refs != expected) {
            char buffer[160];
            std::snprintf(
                buffer, sizeof(buffer),
                "block %lld refcount %lld but the live chains "
                "reference it %lld times",
                static_cast<long long>(block),
                static_cast<long long>(refs),
                static_cast<long long>(expected));
            return Status::internal(buffer);
        }
        if (refs > 0)
            ++physically_referenced;
    }
    if (physically_referenced != cache.physicalBlocksInUse()) {
        return violation("blocks with refcount > 0 != "
                         "physicalBlocksInUse() (leaked block)",
                         physically_referenced,
                         cache.physicalBlocksInUse());
    }
    if (cache.freeBlocks() + cache.physicalBlocksInUse() != total) {
        return violation("free + used != total blocks",
                         cache.freeBlocks() +
                             cache.physicalBlocksInUse(),
                         total);
    }
    return Status::ok();
}

Status
checkKvCacheQuiescent(const PagedKvCache &cache)
{
    const Status consistent = checkKvCacheConsistency(cache);
    if (!consistent.isOk())
        return consistent;
    if (cache.numSequences() != 0) {
        return violation("sequences still live at quiescence",
                         cache.numSequences(), 0);
    }
    // Index-held pages may outlive the drain (that is the point of
    // the cache); anything beyond them is a leak. Consistency above
    // already proved each held page's refcount is exactly its index
    // hold once no chain references it.
    if (cache.physicalBlocksInUse() != cache.prefixOwnedBlocks()) {
        return violation("blocks allocated at quiescence beyond the "
                         "prefix index's holds (leak)",
                         cache.physicalBlocksInUse(),
                         cache.prefixOwnedBlocks());
    }
    return Status::ok();
}

} // namespace chaos
} // namespace comet
