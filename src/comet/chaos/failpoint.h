/**
 * @file
 * Deterministic fault-injection hook points for the serving stack.
 *
 * A *failpoint* is a named hook compiled permanently into production
 * code — `COMET_FAILPOINT("kv.alloc")` — that evaluates to true when a
 * chaos schedule says the site should fail right now. The call site
 * decides what "fail" means there (a synthetic allocator OOM, a task
 * delay, a simulated client cancel); the registry only decides *when*.
 *
 * The design mirrors COMET_SPAN's always-compiled-in gate: with no
 * schedule armed, a failpoint costs one relaxed atomic load and a
 * predictable branch (the same ~1 ns budget bench_obs_overhead proves
 * for spans; bench_chaos_soak measures this path), so the hooks can
 * live in allocator- and scheduler-hot code permanently.
 *
 * Schedules are deterministic functions of the per-failpoint hit
 * counter (and, for probability triggers, of a seeded comet::Rng):
 * trigger once on the Nth hit, on every Nth hit, on an explicit list
 * of hit indices, or per hit with probability p. Hits from a single
 * thread therefore fire identically across runs — the property the
 * chaos harness's bit-identical replay check rests on. Every fire
 * bumps the `chaos.failpoint.<name>` metrics counter so injected
 * faults are visible in the observability dump next to their effects.
 *
 * A probability schedule with p = 1 and no fire cap can make a
 * retried operation (e.g. admission) fail forever; seeded harness
 * schedules use p < 1 or finite triggers so faulted runs terminate.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "comet/common/rng.h"

namespace comet {

namespace obs {
class Counter;
} // namespace obs

namespace chaos {

namespace detail {
/** The one process-global armed gate; read inline by every
 * COMET_FAILPOINT. Not for direct use — FailPointRegistry::arm() and
 * disarm() own it. */
extern std::atomic<bool> g_failpoints_armed;
} // namespace detail

/** When an armed failpoint fires, as a function of its hit count. */
enum class FailPointTrigger {
    kNever = 0,   ///< armed but inert (hit counting only)
    kNthHit,      ///< fire exactly once, on the Nth hit (1-based)
    kEveryNth,    ///< fire on hits N, 2N, 3N, ... (1-based)
    kProbability, ///< fire per hit with probability p (seeded draw)
    kHitList,     ///< fire on an explicit list of 0-based hit indices
};

/** One armed schedule. Build via the factory helpers. */
struct FailPointSpec {
    FailPointTrigger trigger = FailPointTrigger::kNever; ///< when
    /** N of kNthHit / kEveryNth (1-based; must be >= 1 there). */
    int64_t n = 0;
    /** Fire probability per hit (kProbability; in [0, 1]). */
    double probability = 0.0;
    /** Seed of the per-failpoint Rng behind kProbability draws. */
    uint64_t seed = 0;
    /** 0-based hit indices that fire (kHitList; sorted or not). */
    std::vector<int64_t> hits;
    /** Hard cap on total fires; -1 = unlimited. Keeps probability
     * schedules finite where the call site retries until success. */
    int64_t max_fires = -1;

    /** Fire exactly once, on the @p n-th hit (1-based). */
    static FailPointSpec nthHit(int64_t n);
    /** Fire on every @p n-th hit (1-based period). */
    static FailPointSpec everyNth(int64_t n);
    /** Fire per hit with probability @p p, drawn from a Rng seeded
     * with @p seed; at most @p max_fires fires (-1 = unlimited). */
    static FailPointSpec withProbability(double p, uint64_t seed,
                                         int64_t max_fires = -1);
    /** Fire exactly on the 0-based hit indices in @p hits. */
    static FailPointSpec atHits(std::vector<int64_t> hits);
};

/**
 * The process-global registry of armed failpoints.
 *
 * Thread-safe: call sites on any thread evaluate COMET_FAILPOINT
 * concurrently with a test thread arming/disarming schedules. The
 * armed fast path takes one mutex per hit — acceptable because it is
 * only ever paid inside chaos runs; the disarmed path never locks.
 */
class FailPointRegistry
{
  public:
    /** The process-wide registry. */
    static FailPointRegistry &global();

    /** Arms (or replaces) the schedule for @p name and resets its hit
     * and fire counters. Raises the global armed gate. */
    void arm(const std::string &name, FailPointSpec spec);

    /** Disarms @p name (no-op when not armed). Lowers the global gate
     * once no failpoint remains armed. */
    void disarm(const std::string &name);

    /** Disarms every failpoint and lowers the global gate. */
    void disarmAll();

    /** Times the site named @p name was evaluated while armed. */
    int64_t hitCount(const std::string &name) const;

    /** Times the site named @p name actually fired. */
    int64_t fireCount(const std::string &name) const;

    /** The COMET_FAILPOINT fast path: one relaxed atomic load. */
    static bool
    armed()
    {
        return detail::g_failpoints_armed.load(
            std::memory_order_relaxed);
    }

    /** Slow path behind COMET_FAILPOINT once the gate is up: counts
     * the hit and evaluates the schedule for @p name (false when the
     * name has no armed schedule). Call sites use the macro. */
    bool shouldFire(const char *name);

  private:
    FailPointRegistry() = default;

    /** Armed state of one failpoint. */
    struct State {
        FailPointSpec spec;
        int64_t hits = 0;
        int64_t fires = 0;
        Rng rng{0};
        /** Cached `chaos.failpoint.<name>` counter (registry-owned,
         * valid forever). */
        obs::Counter *fired_counter = nullptr;
    };

    mutable std::mutex mutex_;
    std::map<std::string, State> states_;
};

} // namespace chaos
} // namespace comet

/**
 * Evaluates to true when the chaos schedule armed for @p name (a
 * string literal) says this site should inject its failure now.
 * Zero-overhead when nothing is armed: one relaxed atomic load and a
 * predictable branch (see the file comment).
 */
#define COMET_FAILPOINT(name)                                              \
    (::comet::chaos::FailPointRegistry::armed() &&                         \
     ::comet::chaos::FailPointRegistry::global().shouldFire(name))
