#include "comet/chaos/failpoint.h"

#include <algorithm>

#include "comet/common/status.h"
#include "comet/obs/metrics.h"
#include "comet/obs/trace_session.h"

namespace comet {
namespace chaos {

namespace detail {
std::atomic<bool> g_failpoints_armed{false};
} // namespace detail

FailPointSpec
FailPointSpec::nthHit(int64_t n)
{
    COMET_CHECK(n >= 1);
    FailPointSpec spec;
    spec.trigger = FailPointTrigger::kNthHit;
    spec.n = n;
    return spec;
}

FailPointSpec
FailPointSpec::everyNth(int64_t n)
{
    COMET_CHECK(n >= 1);
    FailPointSpec spec;
    spec.trigger = FailPointTrigger::kEveryNth;
    spec.n = n;
    return spec;
}

FailPointSpec
FailPointSpec::withProbability(double p, uint64_t seed,
                               int64_t max_fires)
{
    COMET_CHECK(p >= 0.0 && p <= 1.0);
    FailPointSpec spec;
    spec.trigger = FailPointTrigger::kProbability;
    spec.probability = p;
    spec.seed = seed;
    spec.max_fires = max_fires;
    return spec;
}

FailPointSpec
FailPointSpec::atHits(std::vector<int64_t> hits)
{
    FailPointSpec spec;
    spec.trigger = FailPointTrigger::kHitList;
    spec.hits = std::move(hits);
    std::sort(spec.hits.begin(), spec.hits.end());
    return spec;
}

FailPointRegistry &
FailPointRegistry::global()
{
    static FailPointRegistry registry;
    return registry;
}

void
FailPointRegistry::arm(const std::string &name, FailPointSpec spec)
{
    COMET_CHECK_MSG(!name.empty(), "failpoint names must be non-empty");
    obs::Counter &counter = obs::MetricsRegistry::global().counter(
        "chaos.failpoint." + name);
    std::lock_guard<std::mutex> lock(mutex_);
    State state;
    state.rng = Rng(spec.seed);
    state.spec = std::move(spec);
    state.fired_counter = &counter;
    states_[name] = std::move(state);
    detail::g_failpoints_armed.store(true,
                                     std::memory_order_relaxed);
}

void
FailPointRegistry::disarm(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    states_.erase(name);
    if (states_.empty()) {
        detail::g_failpoints_armed.store(false,
                                         std::memory_order_relaxed);
    }
}

void
FailPointRegistry::disarmAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    states_.clear();
    detail::g_failpoints_armed.store(false,
                                     std::memory_order_relaxed);
}

int64_t
FailPointRegistry::hitCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = states_.find(name);
    return it == states_.end() ? 0 : it->second.hits;
}

int64_t
FailPointRegistry::fireCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = states_.find(name);
    return it == states_.end() ? 0 : it->second.fires;
}

bool
FailPointRegistry::shouldFire(const char *name)
{
    obs::Counter *fired_counter = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = states_.find(name);
        if (it == states_.end())
            return false;
        State &state = it->second;
        const int64_t hit = state.hits++;
        if (state.spec.max_fires >= 0 &&
            state.fires >= state.spec.max_fires)
            return false;
        bool fire = false;
        switch (state.spec.trigger) {
          case FailPointTrigger::kNever:
            break;
          case FailPointTrigger::kNthHit:
            fire = hit + 1 == state.spec.n;
            break;
          case FailPointTrigger::kEveryNth:
            fire = (hit + 1) % state.spec.n == 0;
            break;
          case FailPointTrigger::kProbability:
            fire = state.rng.uniform() < state.spec.probability;
            break;
          case FailPointTrigger::kHitList:
            fire = std::binary_search(state.spec.hits.begin(),
                                      state.spec.hits.end(), hit);
            break;
        }
        if (!fire)
            return false;
        ++state.fires;
        fired_counter = state.fired_counter;
    }
    // Outside the registry lock: the metrics registry takes its own.
    COMET_SPAN("chaos/inject");
    fired_counter->add(1);
    return true;
}

} // namespace chaos
} // namespace comet
