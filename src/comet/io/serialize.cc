#include "comet/io/serialize.h"

#include <cstdio>
#include <cstring>

namespace comet {

namespace {

constexpr uint32_t kWeightMagic = 0x434d5731;    // "CMW1"
constexpr uint32_t kQuantizerMagic = 0x434d5131; // "CMQ1"
constexpr uint32_t kKvMagic = 0x434d4b31;        // "CMK1"
constexpr uint32_t kFormatVersion = 1;

/** A bound on per-dimension extents so malformed headers cannot
 * trigger enormous allocations. */
constexpr int64_t kMaxElements = int64_t{1} << 26;

Status
checkHeader(ByteReader &reader, uint32_t magic)
{
    Result<uint32_t> file_magic = reader.readU32();
    if (!file_magic.isOk())
        return file_magic.status();
    if (file_magic.value() != magic)
        return Status::invalidArgument("bad magic number");
    Result<uint32_t> version = reader.readU32();
    if (!version.isOk())
        return version.status();
    if (version.value() != kFormatVersion)
        return Status::invalidArgument("unsupported format version");
    return Status::ok();
}

Status
checkDim(int64_t value, const char *what)
{
    if (value <= 0 || value > kMaxElements) {
        return Status::invalidArgument(std::string("implausible ") +
                                       what);
    }
    return Status::ok();
}

} // namespace

void
ByteWriter::writeU32(uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        buffer_.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
ByteWriter::writeU64(uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer_.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
ByteWriter::writeI64(int64_t value)
{
    writeU64(static_cast<uint64_t>(value));
}

void
ByteWriter::writeF32(float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    writeU32(bits);
}

void
ByteWriter::writeBytes(const uint8_t *data, size_t size)
{
    buffer_.insert(buffer_.end(), data, data + size);
}

Result<uint32_t>
ByteReader::readU32()
{
    if (remaining() < 4)
        return Status::outOfRange("truncated input (u32)");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(buffer_[offset_++]) << (8 * i);
    return value;
}

Result<uint64_t>
ByteReader::readU64()
{
    if (remaining() < 8)
        return Status::outOfRange("truncated input (u64)");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(buffer_[offset_++]) << (8 * i);
    return value;
}

Result<int64_t>
ByteReader::readI64()
{
    Result<uint64_t> value = readU64();
    if (!value.isOk())
        return value.status();
    return static_cast<int64_t>(value.value());
}

Result<float>
ByteReader::readF32()
{
    Result<uint32_t> bits = readU32();
    if (!bits.isOk())
        return bits.status();
    float value;
    const uint32_t raw = bits.value();
    std::memcpy(&value, &raw, sizeof value);
    return value;
}

Status
ByteReader::readBytes(uint8_t *out, size_t size)
{
    if (remaining() < size)
        return Status::outOfRange("truncated input (bytes)");
    std::memcpy(out, buffer_.data() + offset_, size);
    offset_ += size;
    return Status::ok();
}

std::vector<uint8_t>
serialize(const BlockQuantizedWeight &weight)
{
    ByteWriter writer;
    writer.writeU32(kWeightMagic);
    writer.writeU32(kFormatVersion);
    writer.writeI64(weight.out_features);
    writer.writeI64(weight.in_channels);
    writer.writeI64(weight.block_size);
    writer.writeBytes(weight.data.data(),
                      static_cast<size_t>(weight.data.rows() *
                                          weight.data.rowBytes()));
    for (int64_t i = 0; i < weight.scales.numel(); ++i)
        writer.writeF32(weight.scales[i]);
    return writer.take();
}

Result<BlockQuantizedWeight>
deserializeBlockQuantizedWeight(const std::vector<uint8_t> &bytes)
{
    ByteReader reader(bytes);
    if (Status status = checkHeader(reader, kWeightMagic);
        !status.isOk())
        return status;

    Result<int64_t> out_features = reader.readI64();
    Result<int64_t> in_channels = reader.readI64();
    Result<int64_t> block_size = reader.readI64();
    if (!out_features.isOk() || !in_channels.isOk() ||
        !block_size.isOk())
        return Status::outOfRange("truncated weight header");
    for (const auto &[value, what] :
         {std::pair{out_features.value(), "out_features"},
          std::pair{in_channels.value(), "in_channels"},
          std::pair{block_size.value(), "block_size"}}) {
        if (Status status = checkDim(value, what); !status.isOk())
            return status;
    }
    if (in_channels.value() % 2 != 0 ||
        in_channels.value() % block_size.value() != 0) {
        return Status::invalidArgument(
            "in_channels inconsistent with block size");
    }
    // The buffer must already hold the full payload; this bounds any
    // allocation by the input size.
    const uint64_t payload =
        static_cast<uint64_t>(out_features.value()) *
            static_cast<uint64_t>(in_channels.value()) / 2 +
        static_cast<uint64_t>(out_features.value()) *
            static_cast<uint64_t>(in_channels.value() /
                                  block_size.value()) *
            4;
    if (reader.remaining() < payload)
        return Status::outOfRange("truncated weight payload");

    BlockQuantizedWeight weight{
        out_features.value(), in_channels.value(), block_size.value(),
        Int4Tensor(out_features.value(), in_channels.value()),
        Tensor(out_features.value(),
               in_channels.value() / block_size.value())};
    if (Status status = reader.readBytes(
            weight.data.data(),
            static_cast<size_t>(weight.data.rows() *
                                weight.data.rowBytes()));
        !status.isOk())
        return status;
    for (int64_t i = 0; i < weight.scales.numel(); ++i) {
        Result<float> scale = reader.readF32();
        if (!scale.isOk())
            return scale.status();
        weight.scales[i] = scale.value();
    }
    return weight;
}

std::vector<uint8_t>
serialize(const FmpqActivationQuantizer &quantizer)
{
    ByteWriter writer;
    writer.writeU32(kQuantizerMagic);
    writer.writeU32(kFormatVersion);
    const FmpqConfig &config = quantizer.config();
    writer.writeI64(config.block_size);
    writer.writeF32(config.outlier.threshold_ratio);
    writer.writeU32(config.enable_permutation ? 1 : 0);
    writer.writeU32(static_cast<uint32_t>(config.low_bits));
    writer.writeU32(static_cast<uint32_t>(config.high_bits));
    writer.writeI64(quantizer.channels());
    for (int64_t src : quantizer.permutation().order())
        writer.writeI64(src);
    writer.writeI64(quantizer.numBlocks());
    for (BlockPrecision precision : quantizer.blockPrecisions())
        writer.writeU32(static_cast<uint32_t>(precision));
    return writer.take();
}

Result<FmpqActivationQuantizer>
deserializeFmpqQuantizer(const std::vector<uint8_t> &bytes)
{
    ByteReader reader(bytes);
    if (Status status = checkHeader(reader, kQuantizerMagic);
        !status.isOk())
        return status;

    FmpqConfig config;
    Result<int64_t> block_size = reader.readI64();
    Result<float> threshold = reader.readF32();
    Result<uint32_t> permute = reader.readU32();
    Result<uint32_t> low_bits = reader.readU32();
    Result<uint32_t> high_bits = reader.readU32();
    Result<int64_t> channels = reader.readI64();
    if (!block_size.isOk() || !threshold.isOk() || !permute.isOk() ||
        !low_bits.isOk() || !high_bits.isOk() || !channels.isOk())
        return Status::outOfRange("truncated quantizer header");
    if (Status status = checkDim(block_size.value(), "block_size");
        !status.isOk())
        return status;
    if (Status status = checkDim(channels.value(), "channels");
        !status.isOk())
        return status;
    if (low_bits.value() < 2 || high_bits.value() <= low_bits.value() ||
        high_bits.value() > 16) {
        return Status::invalidArgument("implausible bit widths");
    }
    if (channels.value() % block_size.value() != 0) {
        return Status::invalidArgument(
            "channels inconsistent with block size");
    }
    config.block_size = block_size.value();
    config.outlier.threshold_ratio = threshold.value();
    config.enable_permutation = permute.value() != 0;
    config.low_bits = static_cast<int>(low_bits.value());
    config.high_bits = static_cast<int>(high_bits.value());
    if (reader.remaining() <
        static_cast<uint64_t>(channels.value()) * 8)
        return Status::outOfRange("truncated permutation payload");

    std::vector<int64_t> order(
        static_cast<size_t>(channels.value()));
    for (auto &src : order) {
        Result<int64_t> value = reader.readI64();
        if (!value.isOk())
            return value.status();
        if (value.value() < 0 || value.value() >= channels.value())
            return Status::invalidArgument(
                "permutation index out of range");
        src = value.value();
    }
    // Bijection check before handing to ChannelPermutation (which
    // aborts on misuse — serialization must stay recoverable).
    {
        std::vector<uint8_t> seen(order.size(), 0);
        for (int64_t src : order) {
            if (seen[static_cast<size_t>(src)])
                return Status::invalidArgument(
                    "permutation is not a bijection");
            seen[static_cast<size_t>(src)] = 1;
        }
    }

    Result<int64_t> num_blocks = reader.readI64();
    if (!num_blocks.isOk())
        return num_blocks.status();
    if (num_blocks.value() !=
        channels.value() / config.block_size) {
        return Status::invalidArgument("block count mismatch");
    }
    std::vector<BlockPrecision> precisions;
    precisions.reserve(static_cast<size_t>(num_blocks.value()));
    for (int64_t b = 0; b < num_blocks.value(); ++b) {
        Result<uint32_t> precision = reader.readU32();
        if (!precision.isOk())
            return precision.status();
        if (precision.value() > 1)
            return Status::invalidArgument("bad block precision");
        precisions.push_back(
            static_cast<BlockPrecision>(precision.value()));
    }
    return FmpqActivationQuantizer::fromParts(
        config, ChannelPermutation(std::move(order)),
        std::move(precisions));
}

std::vector<uint8_t>
serialize(const QuantizedKv &kv)
{
    ByteWriter writer;
    writer.writeU32(kKvMagic);
    writer.writeU32(kFormatVersion);
    writer.writeI64(kv.tokens);
    writer.writeI64(kv.channels);
    writer.writeI64(kv.group_size);
    writer.writeBytes(
        reinterpret_cast<const uint8_t *>(kv.data.data()),
        static_cast<size_t>(kv.tokens * kv.channels));
    writer.writeU64(kv.params.size());
    for (const QuantParams &params : kv.params) {
        writer.writeF32(params.scale);
        writer.writeI64(params.zero_point);
    }
    return writer.take();
}

Result<QuantizedKv>
deserializeQuantizedKv(const std::vector<uint8_t> &bytes)
{
    ByteReader reader(bytes);
    if (Status status = checkHeader(reader, kKvMagic); !status.isOk())
        return status;
    Result<int64_t> tokens = reader.readI64();
    Result<int64_t> channels = reader.readI64();
    Result<int64_t> group_size = reader.readI64();
    if (!tokens.isOk() || !channels.isOk() || !group_size.isOk())
        return Status::outOfRange("truncated KV header");
    for (const auto &[value, what] :
         {std::pair{tokens.value(), "tokens"},
          std::pair{channels.value(), "channels"},
          std::pair{group_size.value(), "group_size"}}) {
        if (Status status = checkDim(value, what); !status.isOk())
            return status;
    }

    if (reader.remaining() <
        static_cast<uint64_t>(tokens.value()) *
            static_cast<uint64_t>(channels.value()))
        return Status::outOfRange("truncated KV payload");
    QuantizedKv kv{tokens.value(), channels.value(),
                   group_size.value(),
                   Int8Tensor(tokens.value(), channels.value()),
                   {}};
    if (Status status = reader.readBytes(
            reinterpret_cast<uint8_t *>(kv.data.data()),
            static_cast<size_t>(kv.tokens * kv.channels));
        !status.isOk())
        return status;
    Result<uint64_t> param_count = reader.readU64();
    if (!param_count.isOk())
        return param_count.status();
    const uint64_t expected =
        static_cast<uint64_t>(kv.numGroups()) *
        static_cast<uint64_t>(kv.channels);
    if (param_count.value() != expected)
        return Status::invalidArgument("KV parameter count mismatch");
    kv.params.reserve(param_count.value());
    for (uint64_t i = 0; i < param_count.value(); ++i) {
        Result<float> scale = reader.readF32();
        Result<int64_t> zero = reader.readI64();
        if (!scale.isOk() || !zero.isOk())
            return Status::outOfRange("truncated KV params");
        kv.params.push_back(QuantParams{
            scale.value(), static_cast<int32_t>(zero.value())});
    }
    return kv;
}

Status
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return Status::invalidArgument("cannot open file for write: " +
                                       path);
    const size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (written != bytes.size())
        return Status::internal("short write: " + path);
    return Status::ok();
}

Result<std::vector<uint8_t>>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return Status::invalidArgument("cannot open file for read: " +
                                       path);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    const size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (read != bytes.size())
        return Status::internal("short read: " + path);
    return bytes;
}

} // namespace comet
