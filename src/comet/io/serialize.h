/**
 * @file
 * Binary serialization of quantized artifacts.
 *
 * The paper ships the W4Ax kernel as a standalone library with C++
 * APIs for integration into existing inference systems; that workflow
 * needs quantized weights and calibrated quantizer state to be
 * persisted once (offline PTQ) and loaded by the serving process.
 * This module provides a small, versioned, little-endian binary
 * format for:
 *
 *  - BlockQuantizedWeight  (packed INT4 weights + per-block scales),
 *  - the FMPQ calibration state (block precisions + channel
 *    permutation + config), and
 *  - QuantizedKv snapshots (for cache checkpointing/tests).
 *
 * All readers validate magic, version and structural invariants and
 * report malformed input through Status — corrupt files never abort.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comet/common/status.h"
#include "comet/quant/fmpq.h"
#include "comet/quant/kv_quant.h"

namespace comet {

/**
 * Append-only little-endian byte buffer writer.
 */
class ByteWriter
{
  public:
    void writeU32(uint32_t value);
    void writeU64(uint64_t value);
    void writeI64(int64_t value);
    void writeF32(float value);
    void writeBytes(const uint8_t *data, size_t size);

    const std::vector<uint8_t> &buffer() const { return buffer_; }
    std::vector<uint8_t> take() { return std::move(buffer_); }

  private:
    std::vector<uint8_t> buffer_;
};

/**
 * Bounds-checked little-endian byte buffer reader; all reads return
 * Status-carrying results so truncated input is a recoverable error.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &buffer)
        : buffer_(buffer)
    {
    }

    Result<uint32_t> readU32();
    Result<uint64_t> readU64();
    Result<int64_t> readI64();
    Result<float> readF32();
    Status readBytes(uint8_t *out, size_t size);

    size_t remaining() const { return buffer_.size() - offset_; }
    bool
    atEnd() const
    {
        return offset_ == buffer_.size();
    }

  private:
    const std::vector<uint8_t> &buffer_;
    size_t offset_ = 0;
};

/** Serializes a block-quantized weight to bytes. */
std::vector<uint8_t> serialize(const BlockQuantizedWeight &weight);

/** Parses a block-quantized weight; fails on malformed input. */
Result<BlockQuantizedWeight> deserializeBlockQuantizedWeight(
    const std::vector<uint8_t> &bytes);

/** Serializes the calibrated state of an FMPQ activation quantizer
 * (config, permutation, block precisions). */
std::vector<uint8_t> serialize(const FmpqActivationQuantizer &quantizer);

/** Restores an FMPQ activation quantizer from bytes. */
Result<FmpqActivationQuantizer> deserializeFmpqQuantizer(
    const std::vector<uint8_t> &bytes);

/** Serializes a packed quantized KV tensor. */
std::vector<uint8_t> serialize(const QuantizedKv &kv);

/** Restores a packed quantized KV tensor from bytes. */
Result<QuantizedKv> deserializeQuantizedKv(
    const std::vector<uint8_t> &bytes);

/** Writes bytes to a file. */
Status writeFile(const std::string &path,
                 const std::vector<uint8_t> &bytes);

/** Reads a whole file into bytes. */
Result<std::vector<uint8_t>> readFile(const std::string &path);

} // namespace comet
