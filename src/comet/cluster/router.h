#ifndef COMET_CLUSTER_ROUTER_H_
#define COMET_CLUSTER_ROUTER_H_

/**
 * @file router.h
 * `comet::cluster` — a deterministic multi-replica serving router.
 *
 * A ClusterRouter fronts N independent `comet::server` replicas,
 * each with its own ServingEngine, PagedKvCache, and BatchScheduler
 * (replicas may differ in tensor-parallel degree or KV capacity by
 * pointing at different engines). Clients talk to the router exactly
 * as they would to a single Server — connect / submit / advanceTo /
 * close — and receive the same TokenStream events; the router places
 * each request on a replica with a pluggable deterministic policy
 * (see RoutingPolicy) and forwards the replica's stream events
 * verbatim.
 *
 * Determinism. The router extends the single-server virtual-time
 * ingress gate to per-replica horizons: the cluster clock advances
 * to an event time E only once every open *cluster* client horizon
 * is strictly past E, and before any placement at E every *replica*
 * handle's horizon is advanced to E. Placement inputs at E — the
 * edge fair-admission order, the policy state, and (for
 * least-loaded) reserved-block loads built from replica stream
 * events settled strictly before E via Server::waitSettled — are
 * therefore pure functions of the submitted workload, so cluster
 * runs replay bit-identically at any `COMET_THREADS`.
 *
 * Cross-replica fair admission. Requests pass a cluster-level
 * FairAdmissionQueue before any per-replica admission: token-bucket
 * rate limits are enforced once at the edge (replicas receive
 * rate-limit-stripped tenant configs), and same-instant arrivals are
 * placed in start-time weighted fair order, so one hot replica's
 * overload rejects cannot starve a tenant with capacity elsewhere.
 * Per-tenant queue bounds and admission deadlines remain per-replica
 * (the edge never holds a request across events, so they could not
 * trigger there).
 *
 * Drain. A replica drain (scheduled in ClusterConfig::drains, fired
 * by the `cluster.drain` failpoint, or requested at wall-clock time
 * via requestDrain) marks the replica inactive for placement, closes
 * the router's ingress handle to it, and lets its in-flight streams
 * run to completion — zero streams dropped. A drain that would leave
 * no active replica is skipped (availability wins).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "comet/cluster/placement.h"
#include "comet/server/server.h"

namespace comet {
namespace cluster {

/** One replica behind the router. */
struct ReplicaSpec {
    /** The replica's engine (not owned; may be shared between
     * replicas of identical configuration). */
    const ServingEngine *engine = nullptr;
    /** Placement weight for the hash ring (vnode share) and
     * weighted round-robin. Must be > 0. */
    double weight = 1.0;
    /**
     * Intra-replica tensor-parallel degree override. 0 (default)
     * keeps the engine's own degree; > 0 makes the router derive an
     * owned engine from `engine->config()` with this degree —
     * heterogeneous clusters (say TP=4 next to TP=1 replicas) then
     * need only one template engine. Must pass tp::validateTpDegree
     * for the engine's model (see validateClusterConfig).
     */
    int tp_degree = 0;
    /**
     * Per-replica KV pool override, in full-model blocks. 0 keeps
     * the engine's memory fraction; > 0 resizes the derived engine's
     * pool via engineConfigWithKvBlocks — the knob that keeps a
     * heterogeneous cluster's replicas at equal admission capacity
     * when their TP degrees (and thus per-GPU budgets) differ.
     */
    int64_t kv_blocks = 0;
};

/** A replica drain scheduled at a virtual time: deterministic, and
 * replayed identically on every run. The drain takes effect before
 * the first placement at or after @ref at_us. */
struct ScheduledDrain {
    int replica = 0;    ///< replica index to drain
    double at_us = 0.0; ///< virtual fire time, microseconds
};

/** Cluster configuration: the replica set plus the per-replica
 * server template. */
struct ClusterConfig {
    /** The replicas (at least one). */
    std::vector<ReplicaSpec> replicas;
    /**
     * Template for every replica's ServerConfig. The router rewrites
     * per replica: `metrics_prefix` becomes `cluster.replica.<i>`,
     * and tenant token-bucket rate limits are stripped (the cluster
     * edge enforces them once, at true arrival time). Tenant names,
     * weights, queue bounds, deadlines, SLOs, and prefix-caching
     * opt-ins apply to every replica alike.
     */
    server::ServerConfig server;
    /** Placement policy (see RoutingPolicy). */
    RoutingPolicy policy = RoutingPolicy::kConsistentHash;
    /** Deterministic drains to fire at virtual times. */
    std::vector<ScheduledDrain> drains;
    /** Virtual nodes a weight-1.0 replica contributes to the
     * consistent-hash ring. */
    int hash_vnodes = 64;
};

/**
 * Validates a cluster configuration before construction: at least
 * one replica, every replica with an engine and positive weight, and
 * every tp_degree/kv_blocks override legal for its engine's model
 * (degree dividing the head, hidden, intermediate and vocab extents).
 * Returns a descriptive invalid-argument Status naming the offending
 * replica — the ClusterRouter constructor aborts on the same check,
 * so callers wanting a recoverable error validate first.
 */
Status validateClusterConfig(const ClusterConfig &config);

/** Router-level session counters (replica counters live in each
 * replica's ServerStats; see ClusterRouter::replicaStats). */
struct ClusterStats {
    int64_t submitted = 0; ///< cluster submit() calls (any verdict)
    int64_t routed = 0;    ///< requests forwarded to a replica
    int64_t rerouted = 0;  ///< placements moved off the first choice
    int64_t drains = 0;    ///< replica drains fired
    int64_t drains_skipped = 0; ///< drains skipped (last replica)
    int64_t rejected = 0;  ///< rejected at the cluster edge
    int64_t cancelled = 0; ///< cancelled before reaching a replica
    /** Requests forwarded to each replica, by replica index. */
    std::vector<int64_t> routed_per_replica;
};

/**
 * The multi-replica serving router. Owns its replicas' Server
 * instances and a routing loop thread; thread-safe in the same
 * pattern as Server (client handles from any thread, one handle's
 * calls serialized by the caller).
 */
class ClusterRouter {
  public:
    /**
     * A client handle on the cluster, mirroring Server::Client:
     * submissions must carry nondecreasing arrival times per handle,
     * and each open handle gates the cluster clock at its horizon.
     */
    class Client {
      public:
        /** An unconnected handle; use ClusterRouter::connect(). */
        Client() = default;

        /** Submits a request; see Server::Client::submit. The
         * returned stream delivers the routed replica's events. */
        server::TokenStreamPtr
        submit(const server::StreamRequest &request);

        /** Promises no further submissions before @p horizon_us. */
        void advanceTo(double horizon_us);

        /** Closes the handle (horizon to infinity). */
        void close();

        /** True once connected. */
        bool valid() const { return router_ != nullptr; }

      private:
        friend class ClusterRouter;
        ClusterRouter *router_ = nullptr;
        size_t index_ = 0;
    };

    /**
     * Builds the replica servers and starts the routing loop.
     * Engines must outlive the router.
     */
    explicit ClusterRouter(ClusterConfig config);

    /** Stops the router (cancelling in-flight work) and joins. */
    ~ClusterRouter();

    ClusterRouter(const ClusterRouter &) = delete;
    ClusterRouter &operator=(const ClusterRouter &) = delete;

    /**
     * Registers a cluster client; see Server::connect. The new
     * handle's horizon starts at the router's propagated ingress
     * floor (>= the published clock): the router forwards its
     * clients' joint horizon to the replicas as it advances, so a
     * later connect may not submit below what was already promised.
     * Keep at least one handle open (or connect all clients up
     * front) if mid-session connects are needed; once every handle
     * has closed and all work routed, the floor is infinite and a
     * new handle could never submit.
     */
    Client connect();

    /**
     * Graceful cluster drain: closes ingress, routes what was
     * already submitted, drains every replica, and blocks until all
     * accepted streams reached a terminal event.
     */
    void drain();

    /**
     * Ends the session and joins the routing loop. With
     * @p cancel_in_flight, unrouted requests are cancelled at the
     * cluster edge (ascending id order) and every replica is stopped
     * with cancellation; otherwise drains first. Idempotent.
     */
    void stop(bool cancel_in_flight = true);

    /**
     * Requests a drain of @p replica from any thread. The drain
     * lands at the router's next wall-clock iteration — use
     * ClusterConfig::drains for deterministic replays.
     */
    void requestDrain(int replica);

    /** Router counters (stable once drain()/stop() returned). */
    ClusterStats stats() const;

    /** Replica count. */
    int numReplicas() const;

    /** Session counters of replica @p replica. */
    server::ServerStats replicaStats(int replica) const;

    /** Scheduler counters of replica @p replica. */
    SchedulerCounters replicaSchedulerCounters(int replica) const;

    /** Replica @p replica's KV cache for invariant audits; valid
     * once drain()/stop() returned (see Server::kvCacheForAudit). */
    const PagedKvCache &replicaKvCacheForAudit(int replica) const;

    /** Current cluster virtual clock, microseconds (the latest
     * committed router event time). */
    double virtualClockUs() const;

    /** Replica @p replica's published virtual clock, microseconds.
     * Unlike the router clock (which tracks routing events only),
     * replica clocks advance through serving steps, so after a drain
     * their max is the session makespan. */
    double replicaVirtualClockUs(int replica) const;

    /**
     * The replica a request was placed on, or -1 when the request
     * is unknown, not yet routed, or was rejected/cancelled at the
     * cluster edge.
     */
    int placementOf(int64_t id) const;

    /** The tenant set every replica shares. */
    const std::vector<server::TenantConfig> &tenants() const;

  private:
    /** A submission queued from a client thread to the loop. */
    struct RouteRecord {
        server::StreamRequest request; ///< callback cleared
        server::TokenStreamPtr stream; ///< cluster-facing stream
        int tenant = 0;                ///< edge tenant index
    };

    /** Ingress shared between client threads and the loop. */
    struct Wake;

    /** How an ingress-gate wait resolved (see Server). */
    enum class GateOutcome { kAdvance, kReplan, kInterrupted };

    void loop();
    server::TokenStreamPtr
    submitFromClient(size_t client,
                     const server::StreamRequest &request);
    void advanceClient(size_t client, double horizon_us, bool close);
    int tenantIndexByName(const std::string &name) const;
    void acceptSubmit(RouteRecord &&record);
    double minHorizonLocked() const;
    double safeHorizonLocked() const;
    GateOutcome waitToAdvance(double target_us);
    void publishClock();
    bool stepOnce();
    void fireDueDrains(double now_us);
    void drainReplica(int replica);
    void propagateHorizons();
    void advanceReplicas(double now_us);
    void settleReplicas(double now_us);
    void applyReleases(double now_us);
    void recordRelease(int64_t id, double virtual_us);
    void routeArrivalsAt(double now_us);
    void placeRequest(int64_t id);
    void forwardToReplica(int replica, RouteRecord &&record);
    int choosePlacement(uint64_t key);
    int secondChoice(uint64_t key, int first) const;
    bool fitsReplica(int replica,
                     const server::StreamRequest &request) const;
    int activeCount() const;
    void rejectAtEdge(int64_t id, server::RejectReason reason);
    void processEdgeCancellations();
    void cancelUnrouted();
    void completeSession();
    void stopReplicas(bool cancel_in_flight);
    bool routerIdle() const;
    void publish(bool complete);

    ClusterConfig config_;
    /** Engines derived for replicas with tp_degree/kv_blocks
     * overrides. Declared before servers_ so every Server's engine
     * outlives it. */
    std::vector<std::unique_ptr<ServingEngine>> owned_engines_;
    std::vector<std::unique_ptr<server::Server>> servers_;
    std::vector<server::Server::Client> handles_;
    std::unique_ptr<server::FairAdmissionQueue> fair_edge_;

    std::shared_ptr<Wake> wake_;
    std::thread loop_thread_;
    std::mutex join_mutex_; ///< serializes stop()'s join

    /** Terminal-event releases recorded by replica loop threads;
     * applied by the router loop once settled (strictly before the
     * current event time). */
    std::mutex release_mutex_;
    std::vector<std::pair<double, int64_t>> releases_;

    // --- Loop-owned state (the routing loop thread only) ---
    /** Pending arrivals, ordered by (arrival_us, id). */
    std::set<std::pair<double, int64_t>> pending_order_;
    std::map<int64_t, RouteRecord> pending_;
    /** Unfired scheduled drains, ordered by (at_us, replica). */
    std::set<std::pair<double, int>> drain_order_;
    std::vector<bool> replica_active_;
    /** Reserved-KV-block load per replica (least-loaded policy). */
    std::vector<int64_t> reserved_blocks_;
    /** id -> (replica, reserved blocks) for routed, non-terminal
     * streams (least-loaded policy). */
    std::map<int64_t, std::pair<int, int64_t>> outstanding_;
    /** Latest arrival forwarded per replica: monotonicity clamp for
     * the non-deterministic ingress mode. */
    std::vector<double> last_forward_us_;
    ConsistentHashRing ring_;
    SmoothWeightedRoundRobin wrr_;
    ClusterStats stats_;
    bool session_done_ = false;
    double clock_ = 0.0;
    /** Ingress floor last forwarded to the replica handles (see
     * propagateHorizons); monotone. */
    double propagated_us_ = 0.0;
};

} // namespace cluster
} // namespace comet

#endif // COMET_CLUSTER_ROUTER_H_
