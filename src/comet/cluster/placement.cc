#include "comet/cluster/placement.h"

#include <algorithm>

#include "comet/common/status.h"

namespace comet {
namespace cluster {

namespace {

/** SplitMix64 finalizer: the same platform-independent mix the rng
 * seeding uses — placement must hash identically everywhere. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over the tenant name, then mixed: stable across runs and
 * platforms (no std::hash, whose value is implementation-defined). */
uint64_t
hashString(const std::string &text)
{
    uint64_t h = 1469598103934665603ULL;
    for (char c : text) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ULL;
    }
    return mix64(h);
}

bool
isActive(int replica, const std::vector<bool> &active)
{
    return replica >= 0 &&
           static_cast<size_t>(replica) < active.size() &&
           active[static_cast<size_t>(replica)];
}

} // namespace

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::kConsistentHash:
        return "hash";
      case RoutingPolicy::kLeastLoaded:
        return "least";
      case RoutingPolicy::kWeightedRoundRobin:
        return "wrr";
    }
    return "unknown";
}

bool
parseRoutingPolicy(const std::string &name, RoutingPolicy *out)
{
    COMET_CHECK(out != nullptr);
    if (name == "hash") {
        *out = RoutingPolicy::kConsistentHash;
        return true;
    }
    if (name == "least") {
        *out = RoutingPolicy::kLeastLoaded;
        return true;
    }
    if (name == "wrr") {
        *out = RoutingPolicy::kWeightedRoundRobin;
        return true;
    }
    return false;
}

uint64_t
placementKey(const std::string &tenant, uint64_t first_prefix_key,
             bool has_prefix_key)
{
    const uint64_t tenant_hash = hashString(tenant);
    if (!has_prefix_key)
        return tenant_hash;
    return mix64(tenant_hash ^ mix64(first_prefix_key));
}

ConsistentHashRing::ConsistentHashRing(int vnodes_per_weight)
    : vnodes_per_weight_(std::max(vnodes_per_weight, 1))
{
}

void
ConsistentHashRing::addReplica(int replica, double weight)
{
    COMET_CHECK(replica >= 0);
    COMET_CHECK(weight > 0.0);
    for (const auto &point : ring_) {
        if (point.second == replica)
            return;
    }
    const int vnodes = std::max(
        1, static_cast<int>(weight * vnodes_per_weight_ + 0.5));
    for (int v = 0; v < vnodes; ++v) {
        const uint64_t position =
            mix64((static_cast<uint64_t>(replica) << 32) ^
                  static_cast<uint64_t>(v));
        ring_.emplace_back(position, replica);
    }
    std::sort(ring_.begin(), ring_.end());
}

void
ConsistentHashRing::removeReplica(int replica)
{
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [replica](
                                   const std::pair<uint64_t, int> &p) {
                                   return p.second == replica;
                               }),
                ring_.end());
}

int
ConsistentHashRing::walk(uint64_t key,
                         const std::vector<bool> &active,
                         int skip_replica) const
{
    if (ring_.empty())
        return -1;
    // First point clockwise of (or at) the key, then wrap.
    size_t start =
        static_cast<size_t>(
            std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(key, -1)) -
            ring_.begin()) %
        ring_.size();
    for (size_t step = 0; step < ring_.size(); ++step) {
        const int replica =
            ring_[(start + step) % ring_.size()].second;
        if (replica == skip_replica)
            continue;
        if (isActive(replica, active))
            return replica;
    }
    return -1;
}

int
ConsistentHashRing::pick(uint64_t key,
                         const std::vector<bool> &active) const
{
    return walk(key, active, /*skip_replica=*/-1);
}

int
ConsistentHashRing::pickSecond(uint64_t key,
                               const std::vector<bool> &active) const
{
    const int first = pick(key, active);
    if (first < 0)
        return -1;
    return walk(key, active, /*skip_replica=*/first);
}

int
pickLeastLoaded(const std::vector<ReplicaLoad> &loads)
{
    int best = -1;
    for (size_t i = 0; i < loads.size(); ++i) {
        const ReplicaLoad &load = loads[i];
        if (!load.active)
            continue;
        COMET_CHECK(load.capacity_blocks > 0);
        if (best < 0) {
            best = static_cast<int>(i);
            continue;
        }
        const ReplicaLoad &incumbent =
            loads[static_cast<size_t>(best)];
        // load_i < load_best  <=>  r_i * c_best < r_best * c_i
        // (exact in int64: reserved and capacity are block counts).
        if (load.reserved_blocks * incumbent.capacity_blocks <
            incumbent.reserved_blocks * load.capacity_blocks)
            best = static_cast<int>(i);
    }
    return best;
}

void
SmoothWeightedRoundRobin::reset(const std::vector<double> &weights)
{
    for (double w : weights)
        COMET_CHECK(w > 0.0);
    weights_ = weights;
    credit_.assign(weights.size(), 0.0);
}

int
SmoothWeightedRoundRobin::pick(const std::vector<bool> &active)
{
    int best = -1;
    double total = 0.0;
    for (size_t i = 0; i < weights_.size(); ++i) {
        if (!isActive(static_cast<int>(i), active))
            continue;
        credit_[i] += weights_[i];
        total += weights_[i];
        if (best < 0 || credit_[i] > credit_[static_cast<size_t>(
                                         best)])
            best = static_cast<int>(i);
    }
    if (best >= 0)
        credit_[static_cast<size_t>(best)] -= total;
    return best;
}

} // namespace cluster
} // namespace comet
