#ifndef COMET_CLUSTER_CLUSTER_LOADGEN_H_
#define COMET_CLUSTER_CLUSTER_LOADGEN_H_

/**
 * @file cluster_loadgen.h
 * The open-loop load generator, pointed at a ClusterRouter.
 *
 * Reuses the single-server generator's workload synthesis and report
 * aggregation (comet/server/loadgen.h) verbatim: the same seed
 * produces the identical request sequence whether it is driven into
 * one Server or a ClusterRouter, which is exactly what the
 * cluster-vs-single-server equivalence tests compare. The only
 * cluster-specific additions are the routed-replica column on each
 * outcome (filled from ClusterRouter::placementOf after the drain
 * barrier) and a per-replica latency breakdown in the rendered
 * report.
 */

#include <string>

#include "comet/cluster/router.h"
#include "comet/server/loadgen.h"

namespace comet {
namespace cluster {

/**
 * Runs the workload against @p router: spawns config.clients client
 * threads, submits every pre-generated request through them, streams
 * all tokens back, drains the cluster, and aggregates the report.
 * Each outcome's RequestOutcome::replica records where the request
 * ran (-1 for edge rejections). The router must have been built with
 * loadgenTenants(config) as its tenant set and must not have had
 * clients connected yet.
 */
server::LoadgenReport
runClusterLoadgen(ClusterRouter *router,
                  const server::LoadgenConfig &config);

/**
 * Renders the per-tenant report plus a per-replica breakdown —
 * routed/completed/token counts and TTFT/TPOT p50/p99 per replica
 * (@p num_replicas rows; requests with replica -1 are summarized in
 * an "edge" row when any exist). Deterministic for a fixed seed.
 */
std::string
renderClusterLoadgenReport(const server::LoadgenReport &report,
                           int num_replicas);

} // namespace cluster
} // namespace comet

#endif // COMET_CLUSTER_CLUSTER_LOADGEN_H_
