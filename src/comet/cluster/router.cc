#include "comet/cluster/router.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <utility>

#include "comet/chaos/failpoint.h"
#include "comet/common/status.h"
#include "comet/obs/obs.h"
#include "comet/obs/trace_session.h"
#include "comet/tp/shard.h"

namespace comet {
namespace cluster {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

obs::Counter &
clusterCounter(const std::string &name)
{
    return obs::MetricsRegistry::global().counter("cluster." + name);
}

/** SplitMix64 finalizer (see placement.cc — kept local so the
 * anonymous namespaces stay independent). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Canonical prompt-prefix span the placement key hashes: one
 * default KV block of leading token ids. Replica-geometry
 * independent, so heterogeneous clusters hash identically. */
constexpr int64_t kPlacementPrefixTokens = 16;

uint64_t
requestPlacementKey(const server::StreamRequest &request)
{
    uint64_t prefix_hash = 0;
    bool has_prefix = false;
    if (!request.prompt_ids.empty()) {
        const int64_t span = std::min<int64_t>(
            kPlacementPrefixTokens,
            static_cast<int64_t>(request.prompt_ids.size()));
        prefix_hash = mix64(static_cast<uint64_t>(span));
        for (int64_t i = 0; i < span; ++i) {
            prefix_hash = mix64(
                prefix_hash ^
                static_cast<uint64_t>(static_cast<uint32_t>(
                    request.prompt_ids[static_cast<size_t>(i)])));
        }
        has_prefix = true;
    }
    return placementKey(request.tenant, prefix_hash, has_prefix);
}

} // namespace

Status
validateClusterConfig(const ClusterConfig &config)
{
    if (config.replicas.empty()) {
        return Status::invalidArgument(
            "a cluster needs at least one replica");
    }
    for (size_t i = 0; i < config.replicas.size(); ++i) {
        const ReplicaSpec &spec = config.replicas[i];
        const std::string where = "replica " + std::to_string(i);
        if (spec.engine == nullptr)
            return Status::invalidArgument(where + " has no engine");
        if (!(spec.weight > 0.0)) {
            return Status::invalidArgument(
                where + " needs a positive placement weight");
        }
        if (spec.tp_degree < 0 || spec.kv_blocks < 0) {
            return Status::invalidArgument(
                where +
                " overrides must be non-negative (0 = inherit)");
        }
        if (spec.tp_degree > 0) {
            const Status tp_ok = tp::validateTpDegree(
                spec.engine->config().model, spec.tp_degree);
            if (!tp_ok.isOk()) {
                return Status::invalidArgument(where + ": " +
                                               tp_ok.message());
            }
        }
    }
    return Status::ok();
}

/** Ingress state shared between cluster client threads and the
 * routing loop; the same single-mutex pattern Server::Wake uses. */
struct ClusterRouter::Wake {
    std::mutex mutex;
    /** The loop waits here (for work, horizons, pokes, drains). */
    std::condition_variable cv;
    /** drain()/stop() callers wait here for session completion. */
    std::condition_variable done_cv;
    /** Submitted requests the loop has not picked up yet. */
    std::vector<RouteRecord> inbox;
    /** Wall-clock drain requests the loop has not picked up yet. */
    std::vector<int> drain_inbox;
    /** Per-cluster-client ingress horizons. */
    std::vector<double> horizons;
    bool draining = false;         ///< cluster ingress closed
    bool stop_requested = false;   ///< loop asked to exit
    bool cancel_on_stop = false;   ///< stop cancels in-flight work
    bool poked = false;            ///< a stream requested cancel
    bool session_complete = false; ///< all accepted work terminal
    /** The ingress floor last forwarded to the replica handles: no
     * future cluster submission is below it. New clients start here
     * (not at the clock), so a late connect can never invalidate the
     * promise already made to the replicas. */
    double propagated_us = 0.0;
    /** True once any client connected. Until then the joint client
     * horizon is vacuously infinite, and propagating it would close
     * the replicas' ingress before the session even starts — the
     * loop thread races the first connect(), so it must treat the
     * empty client set as "not yet", never as "all closed". */
    bool ever_connected = false;
    int64_t submitted = 0;      ///< submit() calls (any verdict)
    int64_t early_rejected = 0; ///< rejected on the submit path
    // Published snapshots (the loop owns the live state).
    ClusterStats stats;
    double clock_us = 0.0;
    /** id -> replica, recorded at placement time. */
    std::map<int64_t, int> placements;
};

ClusterRouter::ClusterRouter(ClusterConfig config)
    : config_(std::move(config))
{
    const Status valid = validateClusterConfig(config_);
    COMET_CHECK_MSG(valid.isOk(), valid.message().c_str());
    const size_t n = config_.replicas.size();
    ring_ = ConsistentHashRing(config_.hash_vnodes);
    std::vector<double> weights;
    for (size_t i = 0; i < n; ++i) {
        const ReplicaSpec &spec = config_.replicas[i];
        const ServingEngine *engine = spec.engine;
        if (spec.tp_degree > 0 || spec.kv_blocks > 0) {
            EngineConfig derived = spec.engine->config();
            if (spec.tp_degree > 0)
                derived.tensor_parallel = spec.tp_degree;
            if (spec.kv_blocks > 0) {
                derived =
                    engineConfigWithKvBlocks(derived, spec.kv_blocks);
            }
            owned_engines_.push_back(
                std::make_unique<ServingEngine>(derived));
            engine = owned_engines_.back().get();
        }
        server::ServerConfig replica_config = config_.server;
        replica_config.metrics_prefix =
            "cluster.replica." + std::to_string(i);
        // Rate limits are enforced once, at the cluster edge; a
        // replica applying them again would double-charge tenants
        // whose traffic concentrates on it.
        for (server::TenantConfig &tenant : replica_config.tenants)
            tenant.rate_limit_per_s = 0.0;
        servers_.push_back(std::make_unique<server::Server>(
            engine, std::move(replica_config)));
        ring_.addReplica(static_cast<int>(i), spec.weight);
        weights.push_back(spec.weight);
    }
    wrr_.reset(weights);
    for (size_t i = 0; i < n; ++i)
        handles_.push_back(servers_[i]->connect());
    replica_active_.assign(n, true);
    reserved_blocks_.assign(n, 0);
    last_forward_us_.assign(n, 0.0);
    stats_.routed_per_replica.assign(n, 0);

    // The edge queue re-uses the per-replica fairness machinery with
    // edge semantics: weights and rate limits apply (enforced here,
    // at true arrival time), queue bounds and deadlines do not (the
    // edge never holds a request across an event, so they could
    // never trigger — they stay per-replica, where real queueing
    // happens).
    std::vector<server::TenantConfig> edge_tenants =
        config_.server.tenants;
    for (server::TenantConfig &tenant : edge_tenants) {
        tenant.max_queued = 0;
        tenant.admission_deadline_us = 0.0;
    }
    fair_edge_ = std::make_unique<server::FairAdmissionQueue>(
        edge_tenants);

    for (const ScheduledDrain &drain : config_.drains) {
        COMET_CHECK(drain.replica >= 0 &&
                    drain.replica < static_cast<int>(n));
        COMET_CHECK(drain.at_us >= 0.0);
        drain_order_.insert({drain.at_us, drain.replica});
    }

    wake_ = std::make_shared<Wake>();
    wake_->stats = stats_;
    loop_thread_ = std::thread(&ClusterRouter::loop, this);
}

ClusterRouter::~ClusterRouter() { stop(true); }

ClusterRouter::Client
ClusterRouter::connect()
{
    Client client;
    client.router_ = this;
    std::lock_guard<std::mutex> lock(wake_->mutex);
    COMET_CHECK_MSG(!wake_->draining,
                    "connect() on a draining/stopped cluster");
    client.index_ = wake_->horizons.size();
    // Start at the propagated ingress floor (>= the clock): the
    // router has already promised its replicas no submission below
    // it, and this handle must keep that promise.
    wake_->horizons.push_back(
        std::max(wake_->clock_us, wake_->propagated_us));
    wake_->ever_connected = true;
    return client;
}

server::TokenStreamPtr
ClusterRouter::Client::submit(const server::StreamRequest &request)
{
    COMET_CHECK_MSG(valid(), "submit() on an unconnected handle");
    return router_->submitFromClient(index_, request);
}

void
ClusterRouter::Client::advanceTo(double horizon_us)
{
    COMET_CHECK_MSG(valid(), "advanceTo() on an unconnected handle");
    router_->advanceClient(index_, horizon_us, /*close=*/false);
}

void
ClusterRouter::Client::close()
{
    COMET_CHECK_MSG(valid(), "close() on an unconnected handle");
    router_->advanceClient(index_, kInfinity, /*close=*/true);
}

server::TokenStreamPtr
ClusterRouter::submitFromClient(size_t client,
                                const server::StreamRequest &request)
{
    COMET_CHECK(request.id >= 0);
    COMET_CHECK(request.prompt_tokens > 0);
    COMET_CHECK(request.max_output_tokens > 0);
    COMET_CHECK(request.eos_output_tokens >= 0);
    COMET_CHECK(request.arrival_us >= 0.0);
    COMET_CHECK_MSG(request.cancel_at_us == 0.0 ||
                        request.cancel_at_us >= request.arrival_us,
                    "cancel_at_us must be 0 or >= arrival_us");

    server::TokenStreamPtr stream =
        request.callback
            ? std::make_shared<server::TokenStream>(request.callback)
            : std::make_shared<server::TokenStream>();
    // Until the request is routed, a cancellation pokes the router;
    // forwardToReplica re-points the poke at the replica stream.
    std::weak_ptr<Wake> weak = wake_;
    stream->setCancelPoke([weak] {
        if (std::shared_ptr<Wake> wake = weak.lock()) {
            std::lock_guard<std::mutex> lock(wake->mutex);
            wake->poked = true;
            wake->cv.notify_all();
        }
    });

    server::RejectReason early = server::RejectReason::kNone;
    double reject_clock_us = 0.0;
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        ++wake_->submitted;
        clusterCounter("submitted").add();
        COMET_CHECK(client < wake_->horizons.size());
        double &horizon = wake_->horizons[client];
        if (wake_->draining || horizon == kInfinity) {
            early = server::RejectReason::kShuttingDown;
        } else if (tenantIndexByName(request.tenant) < 0) {
            early = server::RejectReason::kUnknownTenant;
        } else {
            COMET_CHECK_MSG(
                request.arrival_us >= horizon,
                "arrival times must be nondecreasing per client");
            horizon = request.arrival_us;
            RouteRecord record;
            record.request = request;
            record.request.callback = nullptr;
            record.stream = stream;
            record.tenant = tenantIndexByName(request.tenant);
            wake_->inbox.push_back(std::move(record));
            wake_->cv.notify_all();
        }
        if (early != server::RejectReason::kNone) {
            ++wake_->early_rejected;
            clusterCounter("rejected").add();
            reject_clock_us = wake_->clock_us;
        }
    }
    if (early != server::RejectReason::kNone) {
        server::StreamEvent event;
        event.kind = server::StreamEventKind::kRejected;
        event.virtual_us = reject_clock_us;
        event.reject_reason = early;
        stream->deliver(event);
    }
    return stream;
}

int
ClusterRouter::tenantIndexByName(const std::string &name) const
{
    for (size_t i = 0; i < config_.server.tenants.size(); ++i) {
        if (config_.server.tenants[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
ClusterRouter::advanceClient(size_t client, double horizon_us,
                             bool close)
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    COMET_CHECK(client < wake_->horizons.size());
    double &horizon = wake_->horizons[client];
    horizon = std::max(horizon, close ? kInfinity : horizon_us);
    wake_->cv.notify_all();
}

void
ClusterRouter::drain()
{
    std::unique_lock<std::mutex> lock(wake_->mutex);
    wake_->draining = true;
    wake_->cv.notify_all();
    wake_->done_cv.wait(lock,
                        [&] { return wake_->session_complete; });
}

void
ClusterRouter::stop(bool cancel_in_flight)
{
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        wake_->draining = true;
        wake_->stop_requested = true;
        wake_->cancel_on_stop |= cancel_in_flight;
        wake_->cv.notify_all();
    }
    std::lock_guard<std::mutex> join_lock(join_mutex_);
    if (loop_thread_.joinable())
        loop_thread_.join();
}

void
ClusterRouter::requestDrain(int replica)
{
    COMET_CHECK(replica >= 0 && replica < numReplicas());
    std::lock_guard<std::mutex> lock(wake_->mutex);
    wake_->drain_inbox.push_back(replica);
    wake_->cv.notify_all();
}

ClusterStats
ClusterRouter::stats() const
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    ClusterStats stats = wake_->stats;
    stats.submitted = wake_->submitted;
    stats.rejected += wake_->early_rejected;
    return stats;
}

int
ClusterRouter::numReplicas() const
{
    return static_cast<int>(servers_.size());
}

server::ServerStats
ClusterRouter::replicaStats(int replica) const
{
    COMET_CHECK(replica >= 0 && replica < numReplicas());
    return servers_[static_cast<size_t>(replica)]->stats();
}

SchedulerCounters
ClusterRouter::replicaSchedulerCounters(int replica) const
{
    COMET_CHECK(replica >= 0 && replica < numReplicas());
    return servers_[static_cast<size_t>(replica)]
        ->schedulerCounters();
}

const PagedKvCache &
ClusterRouter::replicaKvCacheForAudit(int replica) const
{
    COMET_CHECK(replica >= 0 && replica < numReplicas());
    return servers_[static_cast<size_t>(replica)]->kvCacheForAudit();
}

double
ClusterRouter::virtualClockUs() const
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    return wake_->clock_us;
}

double
ClusterRouter::replicaVirtualClockUs(int replica) const
{
    COMET_CHECK(replica >= 0 && replica < numReplicas());
    return servers_[static_cast<size_t>(replica)]->virtualClockUs();
}

int
ClusterRouter::placementOf(int64_t id) const
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    auto it = wake_->placements.find(id);
    return it == wake_->placements.end() ? -1 : it->second;
}

const std::vector<server::TenantConfig> &
ClusterRouter::tenants() const
{
    return config_.server.tenants;
}

// --------------------------------------------------------------------
// Routing loop
// --------------------------------------------------------------------

void
ClusterRouter::loop()
{
    obs::configureFromEnv();
    COMET_SPAN("cluster/session");
    for (;;) {
        bool stop_now = false;
        bool cancel_now = false;
        bool drain_now = false;
        std::vector<RouteRecord> incoming;
        std::vector<int> drain_requests;
        {
            std::unique_lock<std::mutex> lock(wake_->mutex);
            wake_->cv.wait(lock, [&] {
                return wake_->stop_requested || wake_->poked ||
                       !wake_->inbox.empty() ||
                       !wake_->drain_inbox.empty() || !routerIdle() ||
                       (wake_->draining &&
                        !wake_->session_complete) ||
                       // A client horizon moved past what the
                       // replicas were promised: wake to propagate,
                       // or a fully-routed session would leave the
                       // replicas gated forever. Gated on
                       // ever_connected: before the first connect
                       // the joint horizon is vacuously infinite.
                       (wake_->ever_connected &&
                        minHorizonLocked() > wake_->propagated_us);
            });
            incoming.swap(wake_->inbox);
            drain_requests.swap(wake_->drain_inbox);
            wake_->poked = false;
            stop_now = wake_->stop_requested;
            cancel_now = wake_->cancel_on_stop;
            drain_now = wake_->draining;
        }
        for (RouteRecord &record : incoming)
            acceptSubmit(std::move(record));
        for (int replica : drain_requests)
            drainReplica(replica);
        if (stop_now && cancel_now) {
            cancelUnrouted();
            stopReplicas(true);
            publish(/*complete=*/true);
            return;
        }
        processEdgeCancellations();
        propagateHorizons();
        if (!routerIdle()) {
            if (!stepOnce()) {
                cancelUnrouted();
                stopReplicas(true);
                publish(/*complete=*/true);
                return;
            }
            publish(/*complete=*/false);
            continue;
        }
        if (drain_now || stop_now) {
            completeSession();
            publish(/*complete=*/true);
            if (stop_now) {
                stopReplicas(cancel_now);
                return;
            }
            continue;
        }
        publish(/*complete=*/false);
    }
}

void
ClusterRouter::acceptSubmit(RouteRecord &&record)
{
    const int64_t id = record.request.id;
    COMET_CHECK_MSG(pending_.find(id) == pending_.end(),
                    "request ids must be unique per session");
    pending_order_.insert({record.request.arrival_us, id});
    pending_.emplace(id, std::move(record));
}

double
ClusterRouter::minHorizonLocked() const
{
    double floor = kInfinity;
    for (double horizon : wake_->horizons)
        floor = std::min(floor, horizon);
    return floor;
}

double
ClusterRouter::safeHorizonLocked() const
{
    if (!config_.server.deterministic_ingress || wake_->draining)
        return kInfinity;
    return minHorizonLocked();
}

ClusterRouter::GateOutcome
ClusterRouter::waitToAdvance(double target_us)
{
    if (!config_.server.deterministic_ingress)
        return GateOutcome::kAdvance;
    std::unique_lock<std::mutex> lock(wake_->mutex);
    wake_->cv.wait(lock, [&] {
        return (wake_->stop_requested && wake_->cancel_on_stop) ||
               wake_->poked || !wake_->inbox.empty() ||
               !wake_->drain_inbox.empty() ||
               safeHorizonLocked() > target_us;
    });
    if (wake_->stop_requested && wake_->cancel_on_stop)
        return GateOutcome::kInterrupted;
    if (wake_->poked || !wake_->inbox.empty() ||
        !wake_->drain_inbox.empty())
        return GateOutcome::kReplan;
    return GateOutcome::kAdvance;
}

void
ClusterRouter::publishClock()
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    wake_->clock_us = clock_;
}

bool
ClusterRouter::stepOnce()
{
    const double next_arrival =
        pending_order_.empty() ? kInfinity
                               : pending_order_.begin()->first;
    const double next_drain = drain_order_.empty()
                                  ? kInfinity
                                  : drain_order_.begin()->first;
    const double target = std::min(next_arrival, next_drain);
    if (target == kInfinity)
        return true;
    if (target > clock_) {
        switch (waitToAdvance(target)) {
          case GateOutcome::kInterrupted:
            return false;
          case GateOutcome::kReplan:
            return true; // the outer loop re-enters stepOnce
          case GateOutcome::kAdvance:
            clock_ = target;
            publishClock();
            break;
        }
    }
    // A drain scheduled at t takes effect before any placement at or
    // after t.
    fireDueDrains(clock_);
    if (pending_order_.empty() ||
        pending_order_.begin()->first > clock_)
        return true;
    const double now = pending_order_.begin()->first;
    // Every replica's ingress horizon reaches the event time before
    // any submission at it — the per-replica extension of the
    // cluster gate.
    advanceReplicas(now);
    if (config_.policy == RoutingPolicy::kLeastLoaded)
        settleReplicas(now);
    routeArrivalsAt(now);
    return true;
}

void
ClusterRouter::fireDueDrains(double now_us)
{
    while (!drain_order_.empty() &&
           drain_order_.begin()->first <= now_us) {
        const int replica = drain_order_.begin()->second;
        drain_order_.erase(drain_order_.begin());
        drainReplica(replica);
    }
}

void
ClusterRouter::drainReplica(int replica)
{
    if (replica < 0 || replica >= numReplicas())
        return;
    if (!replica_active_[static_cast<size_t>(replica)])
        return;
    if (activeCount() <= 1) {
        // Availability wins: draining the last active replica would
        // leave nowhere to place traffic.
        ++stats_.drains_skipped;
        clusterCounter("drains_skipped").add();
        return;
    }
    COMET_SPAN("cluster/drain");
    replica_active_[static_cast<size_t>(replica)] = false;
    ++stats_.drains;
    clusterCounter("drains").add();
    // Close our ingress handle (the replica's gate opens fully) and
    // let in-flight streams run to completion — zero drops. The
    // blocking wait is deterministic: the replica's completion is a
    // virtual-time fact, independent of wall-clock interleaving.
    handles_[static_cast<size_t>(replica)].close();
    servers_[static_cast<size_t>(replica)]->drain();
}

void
ClusterRouter::propagateHorizons()
{
    // The cluster ingress floor: no future forward can be below the
    // least client horizon, nor below the earliest already-accepted
    // arrival still waiting to route. Replicas may advance their
    // clocks up to it — this is what lets them finish the final
    // batch (floor becomes infinity once every client closed and
    // everything routed) instead of idling at the last event time.
    double floor;
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        // Racing the first connect(): an empty client set means the
        // session has not started, not that every client closed —
        // propagating its vacuous infinity would reject the whole
        // workload as shutting-down.
        if (!wake_->ever_connected)
            return;
        floor = minHorizonLocked();
    }
    if (!pending_order_.empty())
        floor = std::min(floor, pending_order_.begin()->first);
    if (floor <= propagated_us_)
        return;
    propagated_us_ = floor;
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        wake_->propagated_us = floor;
    }
    for (size_t i = 0; i < handles_.size(); ++i) {
        if (replica_active_[i])
            handles_[i].advanceTo(floor);
    }
}

void
ClusterRouter::advanceReplicas(double now_us)
{
    for (size_t i = 0; i < handles_.size(); ++i) {
        if (replica_active_[i])
            handles_[i].advanceTo(now_us);
    }
}

void
ClusterRouter::settleReplicas(double now_us)
{
    // Reserved-block accounting must observe exactly the terminal
    // events stamped strictly before the event time: wait for every
    // replica's settled horizon (drained replicas settle at
    // infinity), then fold in the releases below it. Records at
    // exactly now_us stay queued — the settled promise does not
    // cover them, and a run racing ahead must not see more releases
    // than a replay.
    for (size_t i = 0; i < servers_.size(); ++i)
        servers_[i]->waitSettled(now_us);
    applyReleases(now_us);
}

void
ClusterRouter::applyReleases(double now_us)
{
    std::lock_guard<std::mutex> lock(release_mutex_);
    auto it = releases_.begin();
    while (it != releases_.end()) {
        if (it->first < now_us) {
            auto held = outstanding_.find(it->second);
            COMET_CHECK(held != outstanding_.end());
            const int replica = held->second.first;
            reserved_blocks_[static_cast<size_t>(replica)] -=
                held->second.second;
            COMET_CHECK(
                reserved_blocks_[static_cast<size_t>(replica)] >= 0);
            outstanding_.erase(held);
            it = releases_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ClusterRouter::recordRelease(int64_t id, double virtual_us)
{
    std::lock_guard<std::mutex> lock(release_mutex_);
    releases_.emplace_back(virtual_us, id);
}

void
ClusterRouter::routeArrivalsAt(double now_us)
{
    // Batch every arrival at the committed event time, offer the
    // batch to the edge fair queue, then place picks in start-time
    // weighted fair order: same-instant arrivals are placed by fair
    // share, not submission interleaving.
    std::vector<int64_t> batch;
    while (!pending_order_.empty() &&
           pending_order_.begin()->first <= now_us) {
        batch.push_back(pending_order_.begin()->second);
        pending_order_.erase(pending_order_.begin());
    }
    for (int64_t id : batch) {
        auto it = pending_.find(id);
        COMET_CHECK(it != pending_.end());
        const RouteRecord &record = it->second;
        server::PendingRequest pending;
        pending.id = id;
        pending.tenant = record.tenant;
        pending.arrival_us = record.request.arrival_us;
        pending.prompt_tokens = record.request.prompt_tokens;
        pending.max_output_tokens = record.request.max_output_tokens;
        pending.eos_output_tokens = record.request.eos_output_tokens;
        pending.stream = record.stream;
        const server::RejectReason verdict =
            fair_edge_->offer(std::move(pending), now_us);
        if (verdict != server::RejectReason::kNone)
            rejectAtEdge(id, verdict);
    }
    server::PendingRequest next;
    std::vector<server::PendingRequest> expired;
    while (fair_edge_->pick(now_us, &next, &expired)) {
        for (server::PendingRequest &e : expired)
            rejectAtEdge(e.id,
                         server::RejectReason::kDeadlineExpired);
        expired.clear();
        placeRequest(next.id);
    }
    for (server::PendingRequest &e : expired)
        rejectAtEdge(e.id, server::RejectReason::kDeadlineExpired);
    COMET_CHECK(fair_edge_->empty());
}

void
ClusterRouter::placeRequest(int64_t id)
{
    COMET_SPAN("cluster/route");
    auto it = pending_.find(id);
    COMET_CHECK(it != pending_.end());
    RouteRecord record = std::move(it->second);
    pending_.erase(it);

    const uint64_t key = requestPlacementKey(record.request);
    int chosen = choosePlacement(key);
    COMET_CHECK_MSG(chosen >= 0,
                    "placement with no active replica");

    // Chaos: inject a drain of the chosen replica mid-placement,
    // then re-place. Fired on the routing thread only, so the drain
    // schedule is a pure function of the placement sequence.
    if (COMET_FAILPOINT("cluster.drain")) {
        if (activeCount() > 1) {
            drainReplica(chosen);
            chosen = choosePlacement(key);
            COMET_CHECK(chosen >= 0);
        }
    }
    // Chaos: force the second-choice replica (a failover decision
    // without a failure).
    if (COMET_FAILPOINT("cluster.route")) {
        const int second = secondChoice(key, chosen);
        if (second >= 0 && second != chosen) {
            chosen = second;
            ++stats_.rerouted;
            clusterCounter("rerouted").add();
        }
    }
    // Never-fits reroute: a request too large for the chosen
    // replica's pool but servable elsewhere takes the lowest-index
    // fitting replica instead of bouncing off admission. If nowhere
    // fits, the chosen replica rejects kTooLarge exactly as a
    // single server would.
    if (!fitsReplica(chosen, record.request)) {
        for (int i = 0; i < numReplicas(); ++i) {
            if (i == chosen ||
                !replica_active_[static_cast<size_t>(i)])
                continue;
            if (fitsReplica(i, record.request)) {
                chosen = i;
                ++stats_.rerouted;
                clusterCounter("rerouted").add();
                break;
            }
        }
    }

    ++stats_.routed;
    ++stats_.routed_per_replica[static_cast<size_t>(chosen)];
    clusterCounter("routed").add();
    clusterCounter(std::string("policy.") +
                   routingPolicyName(config_.policy) +
                   ".placements")
        .add();
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        wake_->placements[id] = chosen;
    }
    forwardToReplica(chosen, std::move(record));
}

void
ClusterRouter::forwardToReplica(int replica, RouteRecord &&record)
{
    const int64_t id = record.request.id;
    server::StreamRequest forward;
    forward.id = id;
    forward.tenant = record.request.tenant;
    forward.prompt_tokens = record.request.prompt_tokens;
    forward.prompt_ids = std::move(record.request.prompt_ids);
    forward.max_output_tokens = record.request.max_output_tokens;
    forward.eos_output_tokens = record.request.eos_output_tokens;
    forward.arrival_us = record.request.arrival_us;
    forward.cancel_at_us = record.request.cancel_at_us;
    if (!config_.server.deterministic_ingress) {
        // Without the gate, arrivals can reach the router out of
        // order; clamp to keep the per-replica-handle monotonicity
        // contract (placement itself is best-effort in this mode).
        double &floor =
            last_forward_us_[static_cast<size_t>(replica)];
        forward.arrival_us = std::max(forward.arrival_us, floor);
        if (forward.cancel_at_us > 0.0) {
            forward.cancel_at_us =
                std::max(forward.cancel_at_us, forward.arrival_us);
        }
        floor = forward.arrival_us;
    }

    server::TokenStreamPtr cluster_stream = record.stream;
    const bool track_release =
        config_.policy == RoutingPolicy::kLeastLoaded;
    if (track_release) {
        const int64_t blocks =
            servers_[static_cast<size_t>(replica)]
                ->kvBlocksForTokens(forward.prompt_tokens +
                                    forward.max_output_tokens);
        reserved_blocks_[static_cast<size_t>(replica)] += blocks;
        outstanding_.emplace(id, std::make_pair(replica, blocks));
    }
    // The replica delivers straight into the cluster-facing stream;
    // terminal events additionally release the reserved-block
    // accounting (applied by the routing loop once settled).
    forward.callback = [this, id, track_release,
                        cluster_stream](
                           const server::StreamEvent &event) {
        if (track_release && isTerminal(event.kind))
            recordRelease(id, event.virtual_us);
        cluster_stream->deliver(event);
    };
    server::TokenStreamPtr replica_stream =
        handles_[static_cast<size_t>(replica)].submit(forward);
    // From here on a cancellation goes straight to the replica.
    cluster_stream->setCancelPoke([replica_stream] {
        replica_stream->requestCancel();
    });
    if (cluster_stream->cancelRequested() &&
        !replica_stream->cancelRequested())
        replica_stream->requestCancel();
}

int
ClusterRouter::choosePlacement(uint64_t key)
{
    int chosen = -1;
    switch (config_.policy) {
      case RoutingPolicy::kConsistentHash:
        chosen = ring_.pick(key, replica_active_);
        break;
      case RoutingPolicy::kLeastLoaded: {
        std::vector<ReplicaLoad> loads(servers_.size());
        for (size_t i = 0; i < servers_.size(); ++i) {
            loads[i].reserved_blocks = reserved_blocks_[i];
            loads[i].capacity_blocks = servers_[i]->kvTotalBlocks();
            loads[i].active = replica_active_[i];
        }
        chosen = pickLeastLoaded(loads);
        break;
      }
      case RoutingPolicy::kWeightedRoundRobin:
        chosen = wrr_.pick(replica_active_);
        break;
    }
    return chosen;
}

int
ClusterRouter::secondChoice(uint64_t key, int first) const
{
    if (config_.policy == RoutingPolicy::kConsistentHash)
        return ring_.pickSecond(key, replica_active_);
    if (config_.policy == RoutingPolicy::kLeastLoaded) {
        std::vector<ReplicaLoad> loads(servers_.size());
        for (size_t i = 0; i < servers_.size(); ++i) {
            loads[i].reserved_blocks = reserved_blocks_[i];
            loads[i].capacity_blocks = servers_[i]->kvTotalBlocks();
            loads[i].active = replica_active_[i] &&
                              static_cast<int>(i) != first;
        }
        return pickLeastLoaded(loads);
    }
    for (int i = 0; i < numReplicas(); ++i) {
        if (i != first && replica_active_[static_cast<size_t>(i)])
            return i;
    }
    return -1;
}

bool
ClusterRouter::fitsReplica(
    int replica, const server::StreamRequest &request) const
{
    const server::Server &server =
        *servers_[static_cast<size_t>(replica)];
    return server.kvBlocksForTokens(request.prompt_tokens +
                                    request.max_output_tokens) <=
           server.kvTotalBlocks();
}

int
ClusterRouter::activeCount() const
{
    int count = 0;
    for (bool active : replica_active_)
        count += active ? 1 : 0;
    return count;
}

void
ClusterRouter::rejectAtEdge(int64_t id, server::RejectReason reason)
{
    auto it = pending_.find(id);
    COMET_CHECK(it != pending_.end());
    RouteRecord record = std::move(it->second);
    pending_.erase(it);
    ++stats_.rejected;
    clusterCounter("rejected").add();
    server::StreamEvent event;
    event.kind = server::StreamEventKind::kRejected;
    event.virtual_us = clock_;
    event.reject_reason = reason;
    record.stream->deliver(event);
}

void
ClusterRouter::processEdgeCancellations()
{
    std::vector<int64_t> ids;
    for (const auto &entry : pending_) {
        if (entry.second.stream->cancelRequested())
            ids.push_back(entry.first);
    }
    for (int64_t id : ids) {
        auto it = pending_.find(id);
        COMET_CHECK(it != pending_.end());
        pending_order_.erase(
            {it->second.request.arrival_us, id});
        RouteRecord record = std::move(it->second);
        pending_.erase(it);
        ++stats_.cancelled;
        clusterCounter("cancelled").add();
        server::StreamEvent event;
        event.kind = server::StreamEventKind::kCancelled;
        event.virtual_us = clock_;
        record.stream->deliver(event);
    }
}

void
ClusterRouter::cancelUnrouted()
{
    // A stop-with-cancel can land with submissions still in the
    // inbox; pull them in so every accepted stream terminates.
    std::vector<RouteRecord> leftover;
    {
        std::lock_guard<std::mutex> lock(wake_->mutex);
        leftover.swap(wake_->inbox);
    }
    for (RouteRecord &record : leftover)
        acceptSubmit(std::move(record));
    for (auto &entry : pending_) {
        ++stats_.cancelled;
        clusterCounter("cancelled").add();
        server::StreamEvent event;
        event.kind = server::StreamEventKind::kCancelled;
        event.virtual_us = clock_;
        entry.second.stream->deliver(event);
    }
    pending_.clear();
    pending_order_.clear();
}

void
ClusterRouter::completeSession()
{
    if (session_done_)
        return;
    session_done_ = true;
    for (size_t i = 0; i < servers_.size(); ++i) {
        if (replica_active_[i])
            handles_[i].close();
        servers_[i]->drain();
    }
}

void
ClusterRouter::stopReplicas(bool cancel_in_flight)
{
    for (auto &server : servers_)
        server->stop(cancel_in_flight);
    session_done_ = true;
}

bool
ClusterRouter::routerIdle() const
{
    return pending_.empty();
}

void
ClusterRouter::publish(bool complete)
{
    std::lock_guard<std::mutex> lock(wake_->mutex);
    wake_->stats = stats_;
    wake_->clock_us = clock_;
    if (complete) {
        wake_->session_complete = true;
        wake_->done_cv.notify_all();
    }
}

} // namespace cluster
} // namespace comet
