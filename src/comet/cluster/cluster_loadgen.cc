#include "comet/cluster/cluster_loadgen.h"

#include <algorithm>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "comet/common/stats.h"
#include "comet/common/status.h"
#include "comet/common/table.h"

namespace comet {
namespace cluster {

namespace {

/** p50/p99 of one latency series; zeros when empty. */
std::pair<double, double>
p50p99OrZero(const std::vector<double> &values)
{
    if (values.empty())
        return {0.0, 0.0};
    const std::vector<double> ps = exactPercentiles(values,
                                                    {50.0, 99.0});
    return {ps[0], ps[1]};
}

/** One per-replica row of the rendered breakdown. */
struct ReplicaRow {
    int64_t routed = 0;
    int64_t completed = 0;
    int64_t tokens = 0;
    std::vector<double> ttfts;
    std::vector<double> tpots;
};

} // namespace

server::LoadgenReport
runClusterLoadgen(ClusterRouter *router,
                  const server::LoadgenConfig &config)
{
    COMET_CHECK(router != nullptr);
    COMET_CHECK(config.clients > 0);
    COMET_CHECK(!config.tenants.empty());

    const std::vector<server::LoadgenRequest> workload =
        server::generateLoadgenWorkload(config);
    const size_t total = workload.size();
    std::vector<server::RequestOutcome> outcomes(total);
    for (size_t i = 0; i < total; ++i) {
        outcomes[i].tenant = workload[i].tenant;
        outcomes[i].arrival_us = workload[i].arrival_us;
    }

    // Connect every client before any submission so each handle's
    // ingress horizon gates the cluster clock from the start.
    const size_t clients =
        std::min(static_cast<size_t>(config.clients), total);
    std::vector<ClusterRouter::Client> handles;
    for (size_t c = 0; c < clients; ++c)
        handles.push_back(router->connect());

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ClusterRouter::Client client = handles[c];
            // Round-robin over the arrival-sorted workload keeps
            // each client's submissions in nondecreasing arrival
            // order, as the ingress contract requires.
            std::vector<std::pair<size_t, server::TokenStreamPtr>>
                streams;
            for (size_t i = c; i < total; i += clients) {
                const server::LoadgenRequest &generated =
                    workload[i];
                server::StreamRequest request;
                request.id = static_cast<int64_t>(i);
                request.tenant =
                    config.tenants[static_cast<size_t>(
                                       generated.tenant)]
                        .admission.name;
                request.prompt_tokens = generated.prompt_tokens;
                request.max_output_tokens =
                    generated.declared_output_tokens;
                request.eos_output_tokens =
                    generated.eos_output_tokens;
                request.arrival_us = generated.arrival_us;
                request.prompt_ids = generated.prompt_ids;
                server::RequestOutcome *outcome = &outcomes[i];
                if (config.callbacks) {
                    request.callback =
                        [outcome](const server::StreamEvent &event) {
                            server::recordLoadgenEvent(outcome,
                                                       event);
                        };
                }
                server::TokenStreamPtr stream =
                    client.submit(request);
                if (!config.callbacks)
                    streams.emplace_back(i, std::move(stream));
            }
            // Open loop: everything submitted; release the ingress
            // gate, then stream the responses back.
            client.close();
            for (auto &entry : streams) {
                server::StreamEvent event;
                while (entry.second->next(&event))
                    server::recordLoadgenEvent(
                        &outcomes[entry.first], event);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    // Callback mode: events keep flowing on replica loop threads
    // until the drain barrier below synchronizes the outcome slots.
    router->drain();

    for (size_t i = 0; i < total; ++i)
        outcomes[i].replica =
            router->placementOf(static_cast<int64_t>(i));
    // The router clock tracks routing events (the last arrival);
    // the serving makespan is the furthest replica clock.
    double makespan_us = router->virtualClockUs();
    for (int r = 0; r < router->numReplicas(); ++r)
        makespan_us = std::max(makespan_us,
                               router->replicaVirtualClockUs(r));
    return server::finalizeLoadgenReport(config,
                                         std::move(outcomes),
                                         makespan_us);
}

std::string
renderClusterLoadgenReport(const server::LoadgenReport &report,
                           int num_replicas)
{
    COMET_CHECK(num_replicas > 0);
    std::string out = server::renderLoadgenReport(report);

    // Per-replica breakdown. Replica -1 (never forwarded: edge
    // rejects/cancels) only gets a row when it occurred.
    std::vector<ReplicaRow> rows(
        static_cast<size_t>(num_replicas) + 1);
    for (const server::RequestOutcome &outcome : report.outcomes) {
        const size_t slot =
            outcome.replica >= 0 && outcome.replica < num_replicas
                ? static_cast<size_t>(outcome.replica)
                : static_cast<size_t>(num_replicas);
        ReplicaRow &row = rows[slot];
        ++row.routed;
        row.tokens += outcome.tokens;
        if (outcome.terminal ==
            server::StreamEventKind::kFinished) {
            ++row.completed;
            row.ttfts.push_back(outcome.first_token_us -
                                outcome.arrival_us);
            if (outcome.tokens > 1)
                row.tpots.push_back(
                    (outcome.last_token_us -
                     outcome.first_token_us) /
                    static_cast<double>(outcome.tokens - 1));
        }
    }

    Table table({"replica", "routed", "done", "tokens",
                 "ttft p50 (ms)", "ttft p99 (ms)", "tpot p50 (ms)",
                 "tpot p99 (ms)"});
    for (size_t r = 0; r < rows.size(); ++r) {
        const ReplicaRow &row = rows[r];
        const bool edge = r == static_cast<size_t>(num_replicas);
        if (edge && row.routed == 0)
            continue;
        const auto [ttft_p50, ttft_p99] = p50p99OrZero(row.ttfts);
        const auto [tpot_p50, tpot_p99] = p50p99OrZero(row.tpots);
        table.addRow({edge ? "edge" : std::to_string(r),
                      std::to_string(row.routed),
                      std::to_string(row.completed),
                      std::to_string(row.tokens),
                      formatDouble(ttft_p50 * 1e-3, 3),
                      formatDouble(ttft_p99 * 1e-3, 3),
                      formatDouble(tpot_p50 * 1e-3, 3),
                      formatDouble(tpot_p99 * 1e-3, 3)});
    }
    out += "\n";
    out += table.render();
    return out;
}

} // namespace cluster
} // namespace comet
