#ifndef COMET_CLUSTER_PLACEMENT_H_
#define COMET_CLUSTER_PLACEMENT_H_

/**
 * @file placement.h
 * Deterministic replica-placement policies for the cluster router.
 *
 * Every policy here is a pure function of its explicit inputs — a
 * placement key, replica weights, reserved-block loads, an
 * active-set mask — with total, platform-independent tie-breaking
 * (SplitMix64-style mixing, lowest-replica-index ties). That purity
 * is what lets a cluster run replay bit-identically: the router
 * feeds the policies the same inputs in the same virtual-time order
 * on every run, so they make the same placement decisions at any
 * `COMET_THREADS`.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace comet {
namespace cluster {

/** Which placement policy the cluster router runs. */
enum class RoutingPolicy {
    /**
     * Consistent hash on the tenant/prompt-prefix placement key
     * over a virtual-node ring. Requests sharing a prompt prefix
     * land on the same replica, so `comet::prefix` hit rates
     * survive scale-out, and replica add/remove moves only the keys
     * owned by the vanished/new ring segments.
     */
    kConsistentHash,
    /**
     * Lowest reserved-KV-blocks fraction first. The router accounts
     * each routed request's full admission reservation
     * (prompt + max output blocks) against its replica until the
     * stream reaches a terminal event.
     */
    kLeastLoaded,
    /** Smooth weighted round-robin over the replica weights. */
    kWeightedRoundRobin,
};

/** Stable lowercase policy name ("hash", "least", "wrr") as used in
 * metrics names and the `COMET_CLUSTER_POLICY` selector. */
const char *routingPolicyName(RoutingPolicy policy);

/**
 * Parses a `COMET_CLUSTER_POLICY`-style name ("hash", "least",
 * "wrr"). Returns true and sets @p out on a match.
 */
bool parseRoutingPolicy(const std::string &name, RoutingPolicy *out);

/**
 * The placement key a request hashes to: the tenant name folded
 * with the request's first prompt-prefix block key when one exists
 * (so shared-prompt-pool traffic co-locates per pool), else the
 * tenant name alone (all of a tenant's unkeyed traffic co-locates).
 */
uint64_t placementKey(const std::string &tenant,
                      uint64_t first_prefix_key,
                      bool has_prefix_key);

/**
 * A consistent-hash ring over replica indices with per-replica
 * virtual nodes (more vnodes per unit weight = proportionally more
 * key space). Deterministic: vnode positions are a pure hash of
 * (replica index, vnode index), and lookups walk the ring clockwise.
 */
class ConsistentHashRing {
  public:
    /** @param vnodes_per_weight Virtual nodes a weight-1.0 replica
     * contributes (minimum 1 per replica). */
    explicit ConsistentHashRing(int vnodes_per_weight = 64);

    /** Adds @p replica with @p weight; no-op if already present. */
    void addReplica(int replica, double weight = 1.0);

    /** Removes @p replica's vnodes; other placements are unmoved. */
    void removeReplica(int replica);

    /**
     * First replica clockwise of @p key whose entry in @p active is
     * true (replicas the mask does not cover count as inactive).
     * Returns -1 when no active replica owns any ring segment.
     */
    int pick(uint64_t key, const std::vector<bool> &active) const;

    /**
     * The second-choice replica for @p key: the first *distinct*
     * active replica clockwise past the first choice. Returns -1
     * when fewer than two active replicas are on the ring.
     */
    int pickSecond(uint64_t key,
                   const std::vector<bool> &active) const;

    /** Number of (replica, vnode) points on the ring. */
    size_t points() const { return ring_.size(); }

  private:
    int walk(uint64_t key, const std::vector<bool> &active,
             int skip_replica) const;

    int vnodes_per_weight_;
    /** (position hash, replica), sorted by position. */
    std::vector<std::pair<uint64_t, int>> ring_;
};

/** One replica's load as the least-loaded chooser sees it. */
struct ReplicaLoad {
    /** KV blocks reserved by streams routed there and not yet
     * terminal (admission reservations, not instantaneous usage). */
    int64_t reserved_blocks = 0;
    /** The replica's total KV block capacity (> 0). */
    int64_t capacity_blocks = 1;
    /** False once draining/drained: never a placement target. */
    bool active = true;
};

/**
 * The active replica with the lowest reserved/capacity fraction
 * (exact cross-multiplied compare — no floating-point division),
 * ties to the lowest index. Returns -1 when none is active.
 */
int pickLeastLoaded(const std::vector<ReplicaLoad> &loads);

/**
 * Smooth weighted round-robin (the nginx algorithm): each pick adds
 * every active replica's weight to its credit, picks the highest
 * credit (ties to the lowest index), then charges the picked
 * replica the total active weight. Over time each active replica
 * receives traffic proportional to its weight, without bursts.
 */
class SmoothWeightedRoundRobin {
  public:
    /** Installs the replica weights (all > 0) and zeroes credits. */
    void reset(const std::vector<double> &weights);

    /**
     * Picks the next replica among those @p active allows (replicas
     * the mask does not cover count as inactive). Returns -1 when
     * none is active.
     */
    int pick(const std::vector<bool> &active);

  private:
    std::vector<double> weights_;
    std::vector<double> credit_;
};

} // namespace cluster
} // namespace comet

#endif // COMET_CLUSTER_PLACEMENT_H_
