#include "comet/tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace comet {

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims_)
        n *= d;
    return n;
}

std::string
Shape::toString() const
{
    std::string out = "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (float x : data_)
        m = std::max(m, std::fabs(x));
    return m;
}

double
Tensor::meanSquare() const
{
    double sum = 0.0;
    for (float x : data_)
        sum += static_cast<double>(x) * x;
    return sum / static_cast<double>(data_.size());
}

double
meanSquaredError(const Tensor &a, const Tensor &b)
{
    COMET_CHECK(a.shape() == b.shape());
    double sum = 0.0;
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        sum += d * d;
    }
    return sum / static_cast<double>(n);
}

double
maxAbsError(const Tensor &a, const Tensor &b)
{
    COMET_CHECK(a.shape() == b.shape());
    double m = 0.0;
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
    return m;
}

double
relativeError(const Tensor &a, const Tensor &b)
{
    COMET_CHECK(a.shape() == b.shape());
    double num = 0.0, den = 0.0;
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        num += d * d;
        den += static_cast<double>(a[i]) * a[i];
    }
    return std::sqrt(num) / std::max(std::sqrt(den), 1e-12);
}

} // namespace comet
