/**
 * @file
 * A small dense float tensor for the COMET reproduction.
 *
 * The quantization algorithms and the tiny transformer only need
 * row-major float storage with 1-D/2-D/3-D indexing, so Tensor is
 * deliberately minimal: contiguous, owning, no strides, no broadcasting.
 * Quantized data lives in the packed types (see packed.h), never here.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "comet/common/status.h"

namespace comet {

/** Shape of a dense tensor; dims are positive. */
class Shape
{
  public:
    Shape() = default;

    /** Constructs from an explicit dim list, e.g. Shape({rows, cols}). */
    Shape(std::initializer_list<int64_t> dims) : dims_(dims)
    {
        validate();
    }

    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims))
    {
        validate();
    }

    /** Number of dims. */
    int rank() const { return static_cast<int>(dims_.size()); }

    /** Size of dim @p i. */
    int64_t
    dim(int i) const
    {
        COMET_CHECK(i >= 0 && i < rank());
        return dims_[static_cast<size_t>(i)];
    }

    /** Total number of elements (1 for a rank-0 shape). */
    int64_t numel() const;

    bool operator==(const Shape &other) const = default;

    /** Renders like "[4, 128]". */
    std::string toString() const;

  private:
    void
    validate() const
    {
        for (int64_t d : dims_)
            COMET_CHECK_MSG(d > 0, "tensor dims must be positive");
    }

    std::vector<int64_t> dims_;
};

/**
 * Owning, contiguous, row-major float tensor.
 *
 * Elements are zero-initialized on construction.
 */
class Tensor
{
  public:
    /** Creates an empty (rank-0, single element) tensor. */
    Tensor() : shape_({1}), data_(1, 0.0f) {}

    /** Creates a zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape)
        : shape_(std::move(shape)),
          data_(static_cast<size_t>(shape_.numel()), 0.0f)
    {
    }

    /** Convenience 2-D constructor. */
    Tensor(int64_t rows, int64_t cols) : Tensor(Shape({rows, cols})) {}

    const Shape &shape() const { return shape_; }
    int64_t numel() const { return shape_.numel(); }

    /** Raw contiguous storage. @{ */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    /** @} */

    /** Linear element access. @{ */
    float &
    operator[](int64_t i)
    {
        COMET_CHECK(i >= 0 && i < numel());
        return data_[static_cast<size_t>(i)];
    }

    float
    operator[](int64_t i) const
    {
        COMET_CHECK(i >= 0 && i < numel());
        return data_[static_cast<size_t>(i)];
    }
    /** @} */

    /** 2-D access; requires rank 2. @{ */
    float &
    at(int64_t r, int64_t c)
    {
        return data_[static_cast<size_t>(index2d(r, c))];
    }

    float
    at(int64_t r, int64_t c) const
    {
        return data_[static_cast<size_t>(index2d(r, c))];
    }
    /** @} */

    /** 3-D access; requires rank 3. @{ */
    float &
    at(int64_t i, int64_t j, int64_t k)
    {
        return data_[static_cast<size_t>(index3d(i, j, k))];
    }

    float
    at(int64_t i, int64_t j, int64_t k) const
    {
        return data_[static_cast<size_t>(index3d(i, j, k))];
    }
    /** @} */

    /** Number of rows/cols for a rank-2 tensor. @{ */
    int64_t
    rows() const
    {
        COMET_CHECK(shape_.rank() == 2);
        return shape_.dim(0);
    }

    int64_t
    cols() const
    {
        COMET_CHECK(shape_.rank() == 2);
        return shape_.dim(1);
    }
    /** @} */

    /** Sets every element to @p value. */
    void fill(float value);

    /** Largest absolute element (0 for all-zero tensors). */
    float absMax() const;

    /** Mean of squared elements. */
    double meanSquare() const;

  private:
    int64_t
    index2d(int64_t r, int64_t c) const
    {
        COMET_CHECK(shape_.rank() == 2);
        COMET_CHECK(r >= 0 && r < shape_.dim(0));
        COMET_CHECK(c >= 0 && c < shape_.dim(1));
        return r * shape_.dim(1) + c;
    }

    int64_t
    index3d(int64_t i, int64_t j, int64_t k) const
    {
        COMET_CHECK(shape_.rank() == 3);
        COMET_CHECK(i >= 0 && i < shape_.dim(0));
        COMET_CHECK(j >= 0 && j < shape_.dim(1));
        COMET_CHECK(k >= 0 && k < shape_.dim(2));
        return (i * shape_.dim(1) + j) * shape_.dim(2) + k;
    }

    Shape shape_;
    std::vector<float> data_;
};

/** Mean squared error between two same-shaped tensors. */
double meanSquaredError(const Tensor &a, const Tensor &b);

/** Maximum absolute difference between two same-shaped tensors. */
double maxAbsError(const Tensor &a, const Tensor &b);

/** Relative Frobenius error ||a-b|| / max(||a||, eps). */
double relativeError(const Tensor &a, const Tensor &b);

} // namespace comet
