/**
 * @file
 * Packed low-precision tensor storage.
 *
 * COMET's kernel operates on INT4 and INT8 data exactly as it is laid out
 * on the GPU: INT4 values are packed two-per-byte (eight per 32-bit
 * register word), INT8 values one-per-byte. These types store the packed
 * bytes plus the logical 2-D extent, so layout transformations such as
 * weight interleaving (Section 4.3 of the paper) can be expressed as real
 * byte-level operations and verified bit-exactly.
 *
 * Conventions:
 *  - INT4 values are signed, range [-8, 7], two's complement in a nibble.
 *  - Within a byte, the element with the lower column index occupies the
 *    low nibble (little-endian nibble order), matching CUDA's sub-byte
 *    packing.
 *  - Rows are padded to a whole number of bytes; columns must be even for
 *    Int4Tensor to keep addressing simple (all COMET tiles satisfy this).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "comet/common/status.h"

namespace comet {

/** Clamps a signed integer to the INT4 range [-8, 7]. */
inline int8_t
clampInt4(int32_t v)
{
    if (v < -8)
        return -8;
    if (v > 7)
        return 7;
    return static_cast<int8_t>(v);
}

/** Clamps a signed integer to the INT8 range [-128, 127]. */
inline int8_t
clampInt8(int32_t v)
{
    if (v < -128)
        return -128;
    if (v > 127)
        return 127;
    return static_cast<int8_t>(v);
}

/**
 * Row-major 2-D tensor of signed INT4 values, packed two per byte.
 */
class Int4Tensor
{
  public:
    /** Creates a zero-filled tensor. @pre cols is even. */
    Int4Tensor(int64_t rows, int64_t cols);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }

    /** Reads the element at (r, c), sign-extended to int8. */
    int8_t get(int64_t r, int64_t c) const;

    /** Writes @p v (must already be in [-8, 7]) at (r, c). */
    void set(int64_t r, int64_t c, int8_t v);

    /** Bytes of packed storage for one row. */
    int64_t rowBytes() const { return cols_ / 2; }

    /** Raw packed bytes, rows() * rowBytes() long. @{ */
    const uint8_t *data() const { return data_.data(); }
    uint8_t *data() { return data_.data(); }
    /** @} */

    /** Packed bytes of row @p r (rowBytes() of them). @{ */
    const uint8_t *
    rowPtr(int64_t r) const
    {
        COMET_CHECK(r >= 0 && r < rows_);
        return data_.data() + r * rowBytes();
    }
    uint8_t *
    rowPtr(int64_t r)
    {
        COMET_CHECK(r >= 0 && r < rows_);
        return data_.data() + r * rowBytes();
    }
    /** @} */

    /** Reads 8 consecutive INT4 values starting at column @p c of row
     * @p r as one packed 32-bit register word. @pre c % 8 == 0. */
    uint32_t loadWord(int64_t r, int64_t c) const;

    /** Stores a packed register word (8 INT4 values) at (r, c).
     * @pre c % 8 == 0. */
    void storeWord(int64_t r, int64_t c, uint32_t word);

  private:
    int64_t rows_;
    int64_t cols_;
    std::vector<uint8_t> data_;
};

/**
 * Row-major 2-D tensor of signed INT8 values.
 */
class Int8Tensor
{
  public:
    /** Creates a zero-filled tensor. */
    Int8Tensor(int64_t rows, int64_t cols);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }

    int8_t
    get(int64_t r, int64_t c) const
    {
        return data_[checkedIndex(r, c)];
    }

    void
    set(int64_t r, int64_t c, int8_t v)
    {
        data_[checkedIndex(r, c)] = v;
    }

    /** Raw storage, rows() * cols() bytes. @{ */
    const int8_t *data() const { return data_.data(); }
    int8_t *data() { return data_.data(); }
    /** @} */

    /** Storage of row @p r (cols() values). @{ */
    const int8_t *
    rowPtr(int64_t r) const
    {
        COMET_CHECK(r >= 0 && r < rows_);
        return data_.data() + r * cols_;
    }
    int8_t *
    rowPtr(int64_t r)
    {
        COMET_CHECK(r >= 0 && r < rows_);
        return data_.data() + r * cols_;
    }
    /** @} */

    /** Reads 4 consecutive INT8 values starting at column @p c of row
     * @p r as one packed 32-bit register word (little-endian byte
     * order). @pre c % 4 == 0. */
    uint32_t loadWord(int64_t r, int64_t c) const;

    /** Stores a packed register word (4 INT8 values) at (r, c).
     * @pre c % 4 == 0. */
    void storeWord(int64_t r, int64_t c, uint32_t word);

  private:
    size_t
    checkedIndex(int64_t r, int64_t c) const
    {
        COMET_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return static_cast<size_t>(r * cols_ + c);
    }

    int64_t rows_;
    int64_t cols_;
    std::vector<int8_t> data_;
};

} // namespace comet
