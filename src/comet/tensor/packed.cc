#include "comet/tensor/packed.h"

namespace comet {

Int4Tensor::Int4Tensor(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols)
{
    COMET_CHECK(rows > 0 && cols > 0);
    COMET_CHECK_MSG(cols % 2 == 0, "Int4Tensor requires an even column "
                                   "count (two nibbles per byte)");
    data_.assign(static_cast<size_t>(rows_ * rowBytes()), 0);
}

int8_t
Int4Tensor::get(int64_t r, int64_t c) const
{
    COMET_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    const uint8_t byte = data_[static_cast<size_t>(r * rowBytes() + c / 2)];
    const uint8_t nibble = (c % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    // Sign-extend the 4-bit two's-complement value.
    return static_cast<int8_t>(nibble >= 8 ? static_cast<int>(nibble) - 16
                                           : static_cast<int>(nibble));
}

void
Int4Tensor::set(int64_t r, int64_t c, int8_t v)
{
    COMET_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    COMET_CHECK_MSG(v >= -8 && v <= 7, "value outside INT4 range");
    const uint8_t nibble = static_cast<uint8_t>(v) & 0x0f;
    uint8_t &byte = data_[static_cast<size_t>(r * rowBytes() + c / 2)];
    if (c % 2 == 0)
        byte = static_cast<uint8_t>((byte & 0xf0) | nibble);
    else
        byte = static_cast<uint8_t>((byte & 0x0f) | (nibble << 4));
}

uint32_t
Int4Tensor::loadWord(int64_t r, int64_t c) const
{
    COMET_CHECK(r >= 0 && r < rows_ && c >= 0 && c + 8 <= cols_);
    COMET_CHECK_MSG(c % 8 == 0, "word loads must be 8-element aligned");
    const size_t base = static_cast<size_t>(r * rowBytes() + c / 2);
    uint32_t word = 0;
    for (int i = 3; i >= 0; --i)
        word = (word << 8) | data_[base + static_cast<size_t>(i)];
    return word;
}

void
Int4Tensor::storeWord(int64_t r, int64_t c, uint32_t word)
{
    COMET_CHECK(r >= 0 && r < rows_ && c >= 0 && c + 8 <= cols_);
    COMET_CHECK_MSG(c % 8 == 0, "word stores must be 8-element aligned");
    const size_t base = static_cast<size_t>(r * rowBytes() + c / 2);
    for (int i = 0; i < 4; ++i)
        data_[base + static_cast<size_t>(i)] =
            static_cast<uint8_t>(word >> (8 * i));
}

Int8Tensor::Int8Tensor(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols)
{
    COMET_CHECK(rows > 0 && cols > 0);
    data_.assign(static_cast<size_t>(rows_ * cols_), 0);
}

uint32_t
Int8Tensor::loadWord(int64_t r, int64_t c) const
{
    COMET_CHECK(r >= 0 && r < rows_ && c >= 0 && c + 4 <= cols_);
    COMET_CHECK_MSG(c % 4 == 0, "word loads must be 4-element aligned");
    const size_t base = static_cast<size_t>(r * cols_ + c);
    uint32_t word = 0;
    for (int i = 3; i >= 0; --i) {
        word = (word << 8) |
               static_cast<uint8_t>(data_[base + static_cast<size_t>(i)]);
    }
    return word;
}

void
Int8Tensor::storeWord(int64_t r, int64_t c, uint32_t word)
{
    COMET_CHECK(r >= 0 && r < rows_ && c >= 0 && c + 4 <= cols_);
    COMET_CHECK_MSG(c % 4 == 0, "word stores must be 4-element aligned");
    const size_t base = static_cast<size_t>(r * cols_ + c);
    for (int i = 0; i < 4; ++i) {
        data_[base + static_cast<size_t>(i)] =
            static_cast<int8_t>(word >> (8 * i));
    }
}

} // namespace comet
