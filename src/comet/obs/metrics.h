/**
 * @file
 * Named monotonic counters and fixed-bucket histograms.
 *
 * The registry is the one place observability numbers accumulate:
 * scheduler/engine counters, thread-pool steal counts, per-tile kernel
 * tallies and warning-level log records all land here instead of each
 * subsystem growing its own ad-hoc struct fields. Counters are single
 * relaxed atomic adds, cheap enough for kernel inner loops; histograms
 * add one binary search over their (immutable) bucket bounds.
 *
 * References returned by the registry stay valid for the process
 * lifetime — hot paths look a counter up once (function-local static)
 * and keep the reference. reset() zeroes values but never invalidates
 * references, so one process can run several measurement sessions
 * (repeated bench runs, test fixtures) from a clean slate.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace comet {
namespace obs {

/** A monotonic, thread-safe counter. */
class Counter
{
  public:
    /** Adds @p n (relaxed atomic; safe from any thread). */
    void
    add(int64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current value. */
    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zeroes the counter (tests only; the counter stays registered). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * A thread-safe histogram over fixed, sorted bucket upper bounds.
 *
 * A sample lands in the first bucket whose upper bound is >= the
 * value; samples above the last bound land in the implicit overflow
 * bucket. Bounds are fixed at registration so observe() needs no
 * locking — one binary search plus two relaxed atomic adds.
 */
class Histogram
{
  public:
    /** Creates a histogram with ascending @p upper_bounds (at least
     * one bound; an overflow bucket is added implicitly). */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Records one sample. Thread-safe. */
    void observe(double value);

    /** Total samples recorded. */
    int64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of all recorded samples. */
    double sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Samples in bucket @p bucket (the last index is overflow). */
    int64_t bucketCount(size_t bucket) const;

    /** The registered upper bounds (overflow bucket not included). */
    const std::vector<double> &upperBounds() const { return bounds_; }

    /** Number of buckets including the overflow bucket. */
    size_t numBuckets() const { return bounds_.size() + 1; }

    /** Zeroes all buckets (tests only). */
    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<int64_t>[]> buckets_;
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * The process-wide registry of named counters and histograms.
 *
 * Registration (first lookup of a name) takes a mutex; subsequent use
 * of the returned reference is lock-free. Names are dotted paths by
 * convention (`subsystem.metric`, e.g. `runtime.chunks_stolen`).
 */
class MetricsRegistry
{
  public:
    /** The global registry instance. */
    static MetricsRegistry &global();

    /** Returns the counter named @p name, creating it on first use.
     * The reference stays valid for the process lifetime. */
    Counter &counter(const std::string &name);

    /** Returns the histogram named @p name, creating it with
     * @p upper_bounds on first use (later calls ignore the bounds
     * argument and return the registered instance). */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    /** Current value of counter @p name, or 0 when not registered
     * (convenient for tests and dump consumers). */
    int64_t counterValue(const std::string &name) const;

    /** Writes every metric as `name value` text lines, sorted by
     * name; histograms print count/sum plus per-bucket lines. */
    void dumpText(std::ostream &out) const;

    /** Returns all metrics as a JSON object:
     * `{"counters": {...}, "histograms": {...}}`. */
    std::string dumpJson() const;

    /**
     * Zeroes every registered metric without invalidating any
     * reference handed out earlier. The supported way to start a
     * fresh measurement session inside one process: test fixtures
     * call it in SetUp so counters never leak across tests, and
     * repeated bench runs call it between sessions so back-to-back
     * reports stay comparable.
     */
    void reset();

    /** Backwards-compatible alias for reset(). */
    void resetForTesting() { reset(); }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace obs
} // namespace comet
