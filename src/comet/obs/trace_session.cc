#include "comet/obs/trace_session.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace comet {
namespace obs {

namespace detail {
std::atomic<bool> g_spans_enabled{false};
} // namespace detail

namespace {

/** Per-thread span cap: bounds memory when a caller leaves a session
 * armed across a long run (1M spans ~ 40 MB/thread worst case). */
constexpr size_t kMaxSpansPerThread = size_t{1} << 20;

/** One thread's recording state. Owned by the global registry so it
 * outlives the thread; the recording thread is the only writer while
 * a session is armed, and drain() only reads between sessions. */
struct Buffer {
    std::vector<SpanRecord> spans;
    int tid = 0;
    int depth = 0;
};

struct Registry {
    std::mutex mutex;
    std::vector<std::unique_ptr<Buffer>> buffers;
    std::atomic<int64_t> dropped{0};
};

Registry &
registry()
{
    static Registry *r = new Registry();
    return *r;
}

/** Nanoseconds since the process trace epoch (first call). */
int64_t
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch)
        .count();
}

/** This thread's buffer, registered with the session on first use. */
Buffer &
threadBuffer()
{
    thread_local Buffer *buffer = nullptr;
    if (buffer == nullptr) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.buffers.push_back(std::make_unique<Buffer>());
        buffer = r.buffers.back().get();
        buffer->tid = static_cast<int>(r.buffers.size()) - 1;
    }
    return *buffer;
}

} // namespace

TraceSession &
TraceSession::global()
{
    static TraceSession *session = new TraceSession();
    return *session;
}

void
TraceSession::start()
{
    nowNs(); // pin the epoch before the first span
    detail::g_spans_enabled.store(true, std::memory_order_relaxed);
}

void
TraceSession::stop()
{
    detail::g_spans_enabled.store(false, std::memory_order_relaxed);
}

std::vector<SpanRecord>
TraceSession::drain()
{
    Registry &r = registry();
    std::vector<SpanRecord> all;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        for (const std::unique_ptr<Buffer> &buffer : r.buffers) {
            all.insert(all.end(), buffer->spans.begin(),
                       buffer->spans.end());
            buffer->spans.clear();
        }
    }
    std::sort(all.begin(), all.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.begin_ns < b.begin_ns;
              });
    return all;
}

int64_t
TraceSession::bufferedSpans()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    int64_t total = 0;
    for (const std::unique_ptr<Buffer> &buffer : r.buffers)
        total += static_cast<int64_t>(buffer->spans.size());
    return total;
}

int64_t
TraceSession::droppedSpans() const
{
    return registry().dropped.load(std::memory_order_relaxed);
}

std::string
TraceSession::chromeTraceJson()
{
    const std::vector<SpanRecord> spans = drain();
    std::string json = "{\"displayTimeUnit\":\"ms\","
                       "\"traceEvents\":[";
    char event[256];
    bool first = true;
    for (const SpanRecord &span : spans) {
        std::snprintf(
            event, sizeof(event),
            "%s{\"name\":\"%s\",\"cat\":\"comet\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
            "\"args\":{\"depth\":%d}}",
            first ? "" : ",", span.name,
            static_cast<double>(span.begin_ns) / 1e3,
            static_cast<double>(span.end_ns - span.begin_ns) / 1e3,
            span.tid, span.depth);
        json += event;
        first = false;
    }
    json += "]}";
    return json;
}

Status
TraceSession::exportChromeTrace(const std::string &path)
{
    stop();
    const std::string json = chromeTraceJson();
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        return Status::invalidArgument(
            "cannot open trace output file: " + path);
    }
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    const bool close_ok = std::fclose(file) == 0;
    if (written != json.size() || !close_ok)
        return Status::internal("short write exporting trace: " +
                                path);
    return Status::ok();
}

void
ScopedSpan::begin(const char *name)
{
    Buffer &buffer = threadBuffer();
    name_ = name;
    begin_ns_ = nowNs();
    depth_ = buffer.depth++;
    armed_ = true;
}

void
ScopedSpan::end()
{
    Buffer &buffer = threadBuffer();
    --buffer.depth;
    if (buffer.spans.size() >= kMaxSpansPerThread) {
        registry().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    SpanRecord record;
    record.name = name_;
    record.begin_ns = begin_ns_;
    record.end_ns = nowNs();
    record.tid = buffer.tid;
    record.depth = depth_;
    buffer.spans.push_back(record);
}

} // namespace obs
} // namespace comet
