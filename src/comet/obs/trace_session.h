/**
 * @file
 * Scoped spans and Chrome-trace-event export.
 *
 * A span is a named begin/end interval recorded by the RAII helper
 * `COMET_SPAN("name")`. Recording is gated on one process-global
 * atomic flag: when no trace session is active, a span costs a single
 * relaxed load and a predictable branch, so instrumentation can stay
 * in hot paths permanently. When a session is active, each span is
 * appended to a lock-free thread-local buffer (steady-clock
 * timestamps, small sequential thread id, nesting depth), and the
 * global TraceSession later drains every buffer into Chrome
 * trace-event JSON loadable in Perfetto or `chrome://tracing`.
 *
 * Span names must be string literals (or otherwise outlive the
 * session): buffers store the pointer, not a copy.
 *
 * Kernel-tile spans sit behind the compile-time `COMET_KERNEL_SPAN`
 * macro (enabled with -DCOMET_OBS_KERNEL_SPANS=1 via the
 * COMET_KERNEL_SPANS CMake option) so the default build keeps
 * inner-loop code completely span-free.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "comet/common/status.h"

namespace comet {
namespace obs {

namespace detail {
/** The one global recording gate; read inline by every span. Not for
 * direct use — TraceSession::start()/stop() own it. */
extern std::atomic<bool> g_spans_enabled;
} // namespace detail

/** One recorded span interval. */
struct SpanRecord {
    /** Static name (the COMET_SPAN literal). */
    const char *name = nullptr;
    /** Steady-clock nanoseconds since the process trace epoch. @{ */
    int64_t begin_ns = 0;
    int64_t end_ns = 0;
    /** @} */
    /** Sequential id of the recording thread (dense, starts at 0). */
    int tid = 0;
    /** Nesting depth at begin time (0 = top level on its thread). */
    int depth = 0;
};

/**
 * The global span-recording session.
 *
 * start() arms recording, stop() disarms it; drain() snapshots and
 * clears everything recorded so far. Thread buffers are owned by the
 * session and persist across worker-thread lifetimes, so draining
 * after a thread exited is safe. Recording into a buffer is
 * lock-free; only registration of a new thread and draining take the
 * session mutex.
 */
class TraceSession
{
  public:
    /** The process-wide session. */
    static TraceSession &global();

    /** Arms span recording (idempotent). */
    void start();

    /** Disarms span recording (idempotent). Spans already recorded
     * stay buffered until drain(). */
    void stop();

    /** True while recording is armed. The COMET_SPAN fast path: one
     * relaxed atomic load, fully inlineable. */
    static bool
    enabled()
    {
        return detail::g_spans_enabled.load(
            std::memory_order_relaxed);
    }

    /** Snapshots and clears every thread buffer. Call after stop();
     * spans still open on other threads at stop() time are simply
     * absent from the snapshot. Records are sorted by begin time. */
    std::vector<SpanRecord> drain();

    /** Number of spans currently buffered across all threads. */
    int64_t bufferedSpans();

    /** Spans dropped because a thread buffer hit its cap. */
    int64_t droppedSpans() const;

    /** Drains the session into Chrome trace-event JSON (complete "X"
     * events, microsecond timestamps). Always valid JSON, even with
     * zero spans. */
    std::string chromeTraceJson();

    /** chromeTraceJson() written to @p path. Stops the session first
     * so the export is a consistent snapshot. */
    Status exportChromeTrace(const std::string &path);

  private:
    TraceSession() = default;
};

/**
 * RAII span: records one SpanRecord for its scope when the global
 * session is armed, and is a near-free no-op otherwise. Use through
 * COMET_SPAN.
 */
class ScopedSpan
{
  public:
    /** Opens a span named @p name (must be a string literal). */
    explicit ScopedSpan(const char *name)
    {
        if (TraceSession::enabled())
            begin(name);
    }

    /** Closes the span (records it if recording was armed at
     * construction). */
    ~ScopedSpan()
    {
        if (armed_)
            end();
    }

    /** Spans are scope-bound and cannot be copied. @{ */
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
    /** @} */

  private:
    void begin(const char *name);
    void end();

    const char *name_ = nullptr;
    int64_t begin_ns_ = 0;
    int depth_ = 0;
    bool armed_ = false;
};

} // namespace obs
} // namespace comet

/** @cond internal — two-step expansion so __LINE__ pastes. */
#define COMET_OBS_CONCAT2(a, b) a##b
#define COMET_OBS_CONCAT(a, b) COMET_OBS_CONCAT2(a, b)
/** @endcond */

/** Records a scoped span named @p name (a string literal) into the
 * global trace session when one is active. */
#define COMET_SPAN(name)                                                   \
    ::comet::obs::ScopedSpan COMET_OBS_CONCAT(comet_obs_span_,             \
                                              __LINE__)(name)

#if defined(COMET_OBS_KERNEL_SPANS) && COMET_OBS_KERNEL_SPANS
/** Kernel inner-loop span: compiled in only with the
 * COMET_KERNEL_SPANS build option so the default build stays
 * zero-overhead inside tile loops. */
#define COMET_KERNEL_SPAN(name) COMET_SPAN(name)
#else
#define COMET_KERNEL_SPAN(name)                                            \
    do {                                                                   \
    } while (false)
#endif
