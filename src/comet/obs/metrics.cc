#include "comet/obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "comet/common/status.h"

namespace comet {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    COMET_CHECK_MSG(!bounds_.empty(),
                    "histogram needs at least one bucket bound");
    COMET_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bucket bounds must be ascending");
    buckets_ =
        std::make_unique<std::atomic<int64_t>[]>(numBuckets());
    for (size_t b = 0; b < numBuckets(); ++b)
        buckets_[b].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto bucket =
        static_cast<size_t>(it - bounds_.begin()); // == size(): overflow
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

int64_t
Histogram::bucketCount(size_t bucket) const
{
    COMET_CHECK(bucket < numBuckets());
    return buckets_[bucket].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (size_t b = 0; b < numBuckets(); ++b)
        buckets_[b].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<Histogram>(
                                    std::move(upper_bounds)))
                 .first;
    }
    return *it->second;
}

int64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

void
MetricsRegistry::dumpText(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        out << name << " " << counter->value() << "\n";
    for (const auto &[name, histogram] : histograms_) {
        out << name << " count=" << histogram->count()
            << " sum=" << histogram->sum() << "\n";
        for (size_t b = 0; b < histogram->numBuckets(); ++b) {
            out << name << ".bucket[";
            if (b < histogram->upperBounds().size())
                out << "le=" << histogram->upperBounds()[b];
            else
                out << "le=+inf";
            out << "] " << histogram->bucketCount(b) << "\n";
        }
    }
}

std::string
MetricsRegistry::dumpJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string json = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        if (!first)
            json += ",";
        first = false;
        json += "\"" + name +
                "\":" + std::to_string(counter->value());
    }
    json += "},\"histograms\":{";
    first = true;
    for (const auto &[name, histogram] : histograms_) {
        if (!first)
            json += ",";
        first = false;
        json += "\"" + name +
                "\":{\"count\":" + std::to_string(histogram->count()) +
                ",\"sum\":" + std::to_string(histogram->sum()) +
                ",\"buckets\":[";
        for (size_t b = 0; b < histogram->numBuckets(); ++b) {
            if (b > 0)
                json += ",";
            json += std::to_string(histogram->bucketCount(b));
        }
        json += "]}";
    }
    json += "}}";
    return json;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_) {
        (void)name;
        counter->reset();
    }
    for (const auto &[name, histogram] : histograms_) {
        (void)name;
        histogram->reset();
    }
}

} // namespace obs
} // namespace comet
