#include "comet/obs/obs.h"

#include <cstdlib>
#include <mutex>

#include "comet/obs/trace_session.h"

namespace comet {
namespace obs {

namespace {

std::mutex g_config_mutex;
ObsConfig g_config;

void
flushAtExit()
{
    // Errors cannot be reported meaningfully this late; the export
    // itself prints nothing on success, matching bench stdout hygiene.
    (void)flushTrace();
}

} // namespace

void
configure(const ObsConfig &config)
{
    {
        std::lock_guard<std::mutex> lock(g_config_mutex);
        g_config = config;
    }
    if (config.spans)
        TraceSession::global().start();
    else
        TraceSession::global().stop();
}

ObsConfig
currentConfig()
{
    std::lock_guard<std::mutex> lock(g_config_mutex);
    return g_config;
}

ObsConfig
configFromEnv()
{
    ObsConfig config;
    if (const char *path = std::getenv("COMET_TRACE")) {
        if (path[0] != '\0') {
            config.spans = true;
            config.trace_path = path;
        }
    }
    return config;
}

void
configureFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const ObsConfig config = configFromEnv();
        if (!config.spans && config.trace_path.empty())
            return;
        configure(config);
        if (!config.trace_path.empty())
            std::atexit(flushAtExit);
    });
}

Status
flushTrace()
{
    const ObsConfig config = currentConfig();
    if (config.trace_path.empty())
        return Status::ok();
    return TraceSession::global().exportChromeTrace(
        config.trace_path);
}

} // namespace obs
} // namespace comet
