/**
 * @file
 * Observability activation: ObsConfig and the `COMET_TRACE` env knob.
 *
 * Two ways to turn tracing on:
 *
 *  - Programmatic: `obs::configure({.spans = true, .trace_path =
 *    "trace.json"})`, run the workload, then `obs::flushTrace()`.
 *  - Environment: set `COMET_TRACE=<out.json>` and run any binary
 *    whose entry path calls `obs::configureFromEnv()` (all bench
 *    binaries do, and `replayTrace` calls it itself). The trace is
 *    exported automatically at process exit.
 *
 * The metrics registry needs no activation — counters are always
 * live; `MetricsRegistry::global().dumpText()` prints them.
 */
#pragma once

#include <string>

#include "comet/common/status.h"

namespace comet {
namespace obs {

/** Observability activation switches (programmatic twin of the
 * `COMET_TRACE` environment variable). */
struct ObsConfig {
    /** Arm span recording into the global TraceSession. */
    bool spans = false;
    /** When non-empty, flushTrace() (and the process-exit hook
     * installed by configureFromEnv()) writes Chrome trace-event
     * JSON here. */
    std::string trace_path;
};

/** Applies @p config: starts or stops the global TraceSession and
 * remembers the export path for flushTrace(). */
void configure(const ObsConfig &config);

/** The configuration currently applied. */
ObsConfig currentConfig();

/** Builds an ObsConfig from the environment: `COMET_TRACE=<path>`
 * enables spans with that export path; unset leaves everything off. */
ObsConfig configFromEnv();

/**
 * One-shot environment activation: the first call applies
 * configFromEnv() and, when a trace path is configured, registers a
 * process-exit hook that writes the trace. Later calls are no-ops,
 * so hot paths may call this freely.
 */
void configureFromEnv();

/** Stops the session and writes the configured trace file. OK (and
 * does nothing) when no trace_path is configured. */
Status flushTrace();

} // namespace obs
} // namespace comet
