#!/usr/bin/env bash
# CI smoke pass: one fast run per bench family, exercising the real
# binaries end to end without the full figure-reproduction runtimes.
#
#   - bench_kernel_micro: google-benchmark timing of the packed-data
#     kernel paths, filtered to one benchmark per family with a tiny
#     min_time so the whole binary finishes in seconds.
#   - bench_fig10_throughput --smoke: the serving engine stack at
#     reduced shapes (2 models, 128/64 tokens).
#   - bench_runtime_scaling --smoke: the thread-pool scaling table;
#     its exit status also asserts bit-identity across pool sizes.
#   - bench_server_loadgen --smoke: the online serving front-end
#     under open-loop Poisson load from concurrent client threads;
#     its exit status asserts report determinism and that overload
#     rejects (with matching server.rejected accounting), never
#     aborts.
#   - bench_chaos_soak --smoke: the fault-injected serving soak at
#     reduced scale (2 seeds x 500 steps); its exit status asserts
#     every serving invariant under injected faults plus byte-equal
#     event logs across COMET_THREADS=1 and 8. Run a second time in
#     --prefix mode: shared-prompt scripts with the prefix cache on
#     and the graft failpoint armed.
#   - bench_prefix_cache --smoke: prefix-cache hit rate and latency
#     win on a shared-prompt workload; its exit status asserts the
#     cache-on/cache-off token streams are identical and the cached
#     run is deterministic.
#   - bench_slo_attainment --smoke: chunked prefill vs monolithic on
#     the mixed long-context + chat workload; its exit status asserts
#     byte-identical token streams between the modes, chunked-run
#     determinism, and the chat tenants' TPOT-tail win.
#   - bench_cluster_router --smoke: the multi-replica router on the
#     same workload, 1 vs 4 replicas under every routing policy; its
#     exit status asserts 1-replica/bare-server token identity,
#     scale-out stream preservation, cluster-run determinism, and
#     the load-spreading policies' chat TTFT tail win. A third
#     bench_chaos_soak run in --cluster mode routes the fault scripts
#     through a 4-replica cluster with cluster.route/cluster.drain
#     armed.
#   - bench_tp_scaling --smoke: decode-step scaling at TP=1/2/4 on
#     the 70B cost model against the all-reduce curve; the binary
#     first re-proves the sharded GEMM/attention operators bitwise
#     against TP=1 and aborts on any divergence. A fourth
#     bench_chaos_soak run in --tp mode replays the fault scripts on
#     a TP=2 engine with the tp.allreduce failpoint armed.
#
# Usage: scripts/ci_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
    echo "error: bench dir '${bench_dir}' not found (build first)" >&2
    exit 1
fi

run() {
    echo "==> $*"
    "$@"
    echo
}

json_dir=$(mktemp -d)
trap 'rm -rf "${json_dir}"' EXIT

run "${bench_dir}/bench_kernel_micro" \
    --benchmark_filter='BM_(FastConversion|InterleaveWeights/128|W4AxGemmEmulation/8|ParallelForDispatch/4)$' \
    --benchmark_min_time=0.05s \
    --json="${json_dir}/kernel_micro.json"

run "${bench_dir}/bench_fig10_throughput" --smoke \
    --json="${json_dir}/fig10_throughput.json"

run "${bench_dir}/bench_prefix_cache" --smoke \
    --json="${json_dir}/prefix_cache.json"

run "${bench_dir}/bench_slo_attainment" --smoke \
    --json="${json_dir}/slo_attainment.json"

run "${bench_dir}/bench_cluster_router" --smoke \
    --json="${json_dir}/cluster_router.json"

run "${bench_dir}/bench_tp_scaling" --smoke \
    --json="${json_dir}/tp_scaling.json"

# Emitter smoke: the --json reports written above must parse under the
# perf-gate schema (a self-diff exercises load + gated-metric checks
# without depending on this machine's timings matching the baselines).
run python3 "$(dirname "$0")/check_bench.py" \
    "${json_dir}/kernel_micro.json" "${json_dir}/kernel_micro.json" \
    "${json_dir}/fig10_throughput.json" \
    "${json_dir}/fig10_throughput.json" \
    "${json_dir}/prefix_cache.json" \
    "${json_dir}/prefix_cache.json" \
    "${json_dir}/slo_attainment.json" \
    "${json_dir}/slo_attainment.json" \
    "${json_dir}/cluster_router.json" \
    "${json_dir}/cluster_router.json" \
    "${json_dir}/tp_scaling.json" \
    "${json_dir}/tp_scaling.json"

run "${bench_dir}/bench_runtime_scaling" --smoke

run "${bench_dir}/bench_server_loadgen" --smoke

run "${bench_dir}/bench_chaos_soak" --smoke

run "${bench_dir}/bench_chaos_soak" --smoke --prefix

run "${bench_dir}/bench_chaos_soak" --smoke --cluster

run "${bench_dir}/bench_chaos_soak" --smoke --tp

echo "ci_smoke: all bench families passed"
