#!/usr/bin/env python3
"""Perf-trajectory gate: diff a fresh bench --json report against a
committed BENCH_*.json baseline.

Usage:
    check_bench.py [--threshold 0.15] BASELINE FRESH [BASELINE FRESH ...]

Each (BASELINE, FRESH) pair must come from the same bench binary run
with the same config. For every *gated* metric in the baseline the
fresh run must contain the metric, and its value must not regress by
more than the threshold (default 15%) in the metric's declared
direction. Ungated metrics are reported informationally only (raw CPU
timings vary across machines; gating them would flake CI).

Exit status: 0 when every gated metric of every pair passes, 1 on any
regression or report mismatch, 2 on usage errors.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"cannot read report {path!r}: {e}")
    for key in ("schema_version", "bench", "config", "metrics"):
        if key not in report:
            fail_usage(f"{path}: missing required key {key!r}")
    if report["schema_version"] != SCHEMA_VERSION:
        fail_usage(
            f"{path}: schema_version {report['schema_version']} "
            f"(this script understands {SCHEMA_VERSION})"
        )
    return report


def fail_usage(message):
    print(f"check_bench: {message}", file=sys.stderr)
    sys.exit(2)


def regressed(base, fresh, higher_is_better, threshold):
    """True when fresh is worse than base by more than threshold."""
    if base == 0.0:
        # A zero baseline has no relative scale; only count movement
        # in the bad direction as a regression.
        return fresh > 0.0 if not higher_is_better else fresh < 0.0
    if higher_is_better:
        return fresh < base * (1.0 - threshold)
    return fresh > base * (1.0 + threshold)


def relative_change(base, fresh):
    if base == 0.0:
        return float("inf") if fresh != 0.0 else 0.0
    return (fresh - base) / abs(base)


def check_pair(baseline_path, fresh_path, threshold):
    base = load_report(baseline_path)
    fresh = load_report(fresh_path)
    failures = []

    if base["bench"] != fresh["bench"]:
        failures.append(
            f"bench name mismatch: baseline {base['bench']!r} vs "
            f"fresh {fresh['bench']!r}"
        )
    if base["config"] != fresh["config"]:
        failures.append(
            f"config mismatch (comparison meaningless): baseline "
            f"{base['config']} vs fresh {fresh['config']}"
        )
    if failures:
        return failures

    fresh_metrics = {m["name"]: m for m in fresh["metrics"]}
    base_names = {m["name"] for m in base["metrics"]}

    for metric in base["metrics"]:
        name = metric["name"]
        if not metric.get("gate", False):
            if name in fresh_metrics:
                change = relative_change(
                    metric["value"], fresh_metrics[name]["value"]
                )
                print(
                    f"  info  {base['bench']}:{name}: "
                    f"{metric['value']:g} -> "
                    f"{fresh_metrics[name]['value']:g} "
                    f"({change:+.1%}, ungated)"
                )
            continue
        if name not in fresh_metrics:
            failures.append(f"gated metric {name!r} missing from fresh run")
            continue
        fm = fresh_metrics[name]
        for key in ("unit", "direction"):
            if metric.get(key) != fm.get(key):
                failures.append(
                    f"gated metric {name!r}: {key} changed "
                    f"({metric.get(key)!r} -> {fm.get(key)!r})"
                )
        higher = metric.get("direction") == "higher_is_better"
        if regressed(metric["value"], fm["value"], higher, threshold):
            failures.append(
                f"gated metric {name!r} regressed: "
                f"{metric['value']:g} -> {fm['value']:g} "
                f"({relative_change(metric['value'], fm['value']):+.1%}, "
                f"threshold ±{threshold:.0%}, {metric.get('direction')})"
            )
        else:
            print(
                f"  ok    {base['bench']}:{name}: "
                f"{metric['value']:g} -> {fm['value']:g} "
                f"({relative_change(metric['value'], fm['value']):+.1%})"
            )

    for name in fresh_metrics:
        if name not in base_names and fresh_metrics[name].get("gate"):
            print(
                f"  note  {base['bench']}:{name}: new gated metric not "
                f"in baseline (refresh the committed BENCH_*.json)"
            )
    if failures:
        # Point straight at the offending baseline and how to refresh
        # it, so an intended perf change is a one-command fix.
        smoke = base["config"].get("smoke") == "true"
        regen = (
            f"./build/bench/{base['bench']}"
            f"{' --smoke' if smoke else ''} --json={baseline_path}"
        )
        failures.append(
            f"offending baseline: {baseline_path} — if the change is "
            f"intended, regenerate it with: {regen}"
        )
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Diff fresh bench reports against committed baselines."
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed relative regression of gated metrics (default 0.15)",
    )
    parser.add_argument(
        "reports",
        nargs="+",
        metavar="BASELINE FRESH",
        help="alternating baseline/fresh report paths",
    )
    args = parser.parse_args()
    if len(args.reports) % 2 != 0:
        fail_usage("reports must come in BASELINE FRESH pairs")
    if not 0.0 <= args.threshold < 1.0:
        fail_usage("threshold must be in [0, 1)")

    all_failures = []
    for i in range(0, len(args.reports), 2):
        baseline_path, fresh_path = args.reports[i], args.reports[i + 1]
        print(f"checking {fresh_path} against {baseline_path}")
        all_failures += check_pair(baseline_path, fresh_path, args.threshold)

    if all_failures:
        print(f"\ncheck_bench: {len(all_failures)} failure(s):",
              file=sys.stderr)
        for failure in all_failures:
            print(f"  FAIL  {failure}", file=sys.stderr)
        sys.exit(1)
    print("check_bench: all gated metrics within threshold")


if __name__ == "__main__":
    main()
