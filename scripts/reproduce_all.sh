#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every table/figure
# bench, and the examples. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "================================================================" >> bench_output.txt
    echo "== $(basename "$b")" >> bench_output.txt
    echo "================================================================" >> bench_output.txt
    "$b" >> bench_output.txt 2>&1
    echo >> bench_output.txt
done

echo "== examples =="
for e in build/examples/*; do
    [ -x "$e" ] && [ -f "$e" ] || continue
    echo "--- $(basename "$e")"
    "$e" > /dev/null || echo "    FAILED: $e"
done
echo "done; see test_output.txt and bench_output.txt"
