#!/usr/bin/env bash
# Docs gate, three passes:
#
#  1. Env-var sync: every COMET_* variable the code reads via getenv
#     must be documented in docs/OPERATIONS.md's environment-variable
#     table, and every variable that table lists must still exist in
#     the code — docs can neither lag nor go stale.
#  2. Relative links: every relative markdown link in README.md,
#     DESIGN.md, EXPERIMENTS.md and docs/*.md must resolve to an
#     existing file.
#  3. Strict undocumented-API pass: the main Doxyfile builds the
#     browsable docs with EXTRACT_ALL = YES, which (by design)
#     suppresses undocumented-member warnings. A second,
#     non-generating pass with EXTRACT_ALL = NO and
#     WARN_IF_UNDOCUMENTED = YES is restricted to the subsystems
#     whose public API must stay fully documented; any warning fails
#     the check.
#
# Usage: scripts/check_docs.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

failures=0

# --- 1. docs/OPERATIONS.md env-var table vs getenv() in the code ---

# Variables the code actually reads.
code_vars=$(grep -rhoE 'getenv\("COMET_[A-Z_]+"\)' src bench |
    grep -oE 'COMET_[A-Z_]+' | sort -u)
# Variables the OPERATIONS.md environment-variable table documents
# (the table rows between the "## Environment variables" heading and
# the build-time options paragraph).
doc_vars=$(sed -n '/^## Environment variables/,/^Build-time CMake/p' \
    docs/OPERATIONS.md | grep -oE '^\| `COMET_[A-Z_]+`' |
    grep -oE 'COMET_[A-Z_]+' | sort -u)

undocumented=$(comm -23 <(echo "$code_vars") <(echo "$doc_vars"))
stale=$(comm -13 <(echo "$code_vars") <(echo "$doc_vars"))
if [ -n "$undocumented" ]; then
    echo "check_docs.sh: env vars read by the code but missing from" \
         "docs/OPERATIONS.md:" >&2
    echo "$undocumented" >&2
    failures=1
fi
if [ -n "$stale" ]; then
    echo "check_docs.sh: env vars documented in docs/OPERATIONS.md" \
         "but no longer read by any getenv in src/ or bench/:" >&2
    echo "$stale" >&2
    failures=1
fi

# --- 2. relative links in the top-level docs must resolve ---

for doc in README.md DESIGN.md EXPERIMENTS.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Markdown inline links, minus absolute URLs and pure anchors.
    links=$(grep -oE '\]\(([^)#]+)(#[^)]*)?\)' "$doc" |
        sed -E 's/^\]\(//; s/#[^)]*//; s/\)$//' |
        grep -vE '^[a-z]+://' | sort -u || true)
    for link in $links; do
        if [ ! -e "$dir/$link" ]; then
            echo "check_docs.sh: broken relative link in $doc:" \
                 "$link" >&2
            failures=1
        fi
    done
done

if [ "$failures" -ne 0 ]; then
    exit 1
fi
echo "check_docs.sh: env-var table and relative links are in sync"

# --- 3. strict undocumented-API doxygen pass ---

if ! command -v doxygen > /dev/null; then
    echo "check_docs.sh: doxygen not found on PATH" >&2
    exit 1
fi

# Layer strict overrides onto the repo Doxyfile via stdin config.
log=$(mktemp)
trap 'rm -f "$log"' EXIT
doxygen - > /dev/null 2> "$log" <<EOF || true
@INCLUDE = Doxyfile
INPUT = src/comet/obs src/comet/runtime src/comet/serve src/comet/server src/comet/chaos src/comet/simd src/comet/prefix src/comet/cluster src/comet/tp
FILE_PATTERNS = *.h
USE_MDFILE_AS_MAINPAGE =
EXTRACT_ALL = NO
WARN_IF_UNDOCUMENTED = YES
WARN_AS_ERROR = NO
GENERATE_HTML = NO
SOURCE_BROWSER = NO
QUIET = YES
EOF

if [ -s "$log" ]; then
    echo "check_docs.sh: undocumented public API (or other Doxygen" \
         "warnings) in obs/, runtime/, serve/, server/, chaos/," \
         "simd/, prefix/, cluster/ or tp/:" >&2
    cat "$log" >&2
    exit 1
fi
echo "check_docs.sh: obs/, runtime/, serve/, server/, chaos/, simd/, prefix/, cluster/ and tp/ public APIs are fully documented"
