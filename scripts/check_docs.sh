#!/usr/bin/env bash
# Strict undocumented-API gate for the observability, runtime and
# serving public headers.
#
# The main Doxyfile builds the browsable docs with EXTRACT_ALL = YES,
# which (by design) suppresses undocumented-member warnings. This
# script runs a second, non-generating pass with EXTRACT_ALL = NO and
# WARN_IF_UNDOCUMENTED = YES restricted to the subsystems whose public
# API must stay fully documented; any warning fails the check.
#
# Usage: scripts/check_docs.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v doxygen > /dev/null; then
    echo "check_docs.sh: doxygen not found on PATH" >&2
    exit 1
fi

# Layer strict overrides onto the repo Doxyfile via stdin config.
log=$(mktemp)
trap 'rm -f "$log"' EXIT
doxygen - > /dev/null 2> "$log" <<EOF || true
@INCLUDE = Doxyfile
INPUT = src/comet/obs src/comet/runtime src/comet/serve src/comet/server src/comet/chaos src/comet/simd src/comet/prefix
FILE_PATTERNS = *.h
USE_MDFILE_AS_MAINPAGE =
EXTRACT_ALL = NO
WARN_IF_UNDOCUMENTED = YES
WARN_AS_ERROR = NO
GENERATE_HTML = NO
SOURCE_BROWSER = NO
QUIET = YES
EOF

if [ -s "$log" ]; then
    echo "check_docs.sh: undocumented public API (or other Doxygen" \
         "warnings) in obs/, runtime/, serve/, server/, chaos/," \
         "simd/ or prefix/:" >&2
    cat "$log" >&2
    exit 1
fi
echo "check_docs.sh: obs/, runtime/, serve/, server/, chaos/, simd/ and prefix/ public APIs are fully documented"
