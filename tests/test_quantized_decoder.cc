/**
 * @file
 * End-to-end verification of the packed W4A4KV4 inference path: the
 * QuantizedDecoder (real integer kernels) against the fake-quant
 * reference model built from the same quantizers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/model/quantized_decoder.h"

namespace comet {
namespace {

struct Harness {
    TinyTransformer teacher;
    CalibrationData calibration;
    Dataset eval;
};

Harness
makeHarness(uint64_t seed)
{
    TinyTransformerConfig config;
    config.vocab_size = 64;
    config.hidden_size = 64;
    config.num_heads = 4;
    config.num_kv_heads = 2;
    config.num_layers = 2;
    config.intermediate_size = 128;
    config.outlier_fraction = 0.05;
    config.outlier_scale = 15.0;
    config.seed = seed;
    auto teacher = TinyTransformer::random(config);
    Rng rng(seed + 1);
    Dataset calib = sampleDataset(teacher, 3, 24, rng);
    Dataset eval = sampleDataset(teacher, 2, 16, rng);
    auto calibration = CalibrationData::collect(teacher, calib);
    return {std::move(teacher), std::move(calibration),
            std::move(eval)};
}

/**
 * Builds the fake-quantization twin of the QuantizedDecoder: weights
 * replaced by the dequantized packed weights (mapped back to the
 * original channel order), activations fake-quantized by the same
 * site quantizers, KV fake-quantized with the same config. The twin
 * runs through TinyTransformer::forward in float; agreement with the
 * packed path proves the integer kernels end to end.
 */
struct Twin {
    TinyTransformer model;
    std::shared_ptr<HookQuantSimulator> sim;
};

Twin
makeTwin(const Harness &h, const QuantizedDecoderConfig &config)
{
    // Per-site quantizers identical to the decoder's (same
    // calibration, same config => same permutation and precisions).
    auto quantizers = std::make_shared<
        std::map<std::pair<int64_t, int>, FmpqActivationQuantizer>>();
    const auto &mc = h.teacher.config();
    for (int64_t l = 0; l < mc.num_layers; ++l) {
        for (int s = 0; s < kNumActSites; ++s) {
            quantizers->emplace(
                std::make_pair(l, s),
                FmpqActivationQuantizer::calibrate(
                    h.calibration.activations(
                        l, static_cast<ActSite>(s)),
                    config.fmpq));
        }
    }

    auto act_site_of = [](WeightKind kind) {
        switch (kind) {
          case WeightKind::kQ:
          case WeightKind::kK:
          case WeightKind::kV:
            return ActSite::kQkv;
          case WeightKind::kO:
            return ActSite::kO;
          case WeightKind::kGate:
          case WeightKind::kUp:
            return ActSite::kMlp;
          case WeightKind::kDown:
            return ActSite::kDown;
        }
        return ActSite::kQkv;
    };

    auto model = h.teacher.transformedWeights(
        [&](const LinearSite &linear_site, const Tensor &w) {
            const auto &quantizer = quantizers->at(
                {linear_site.layer,
                 static_cast<int>(act_site_of(linear_site.kind))});
            const Tensor permuted =
                dequantize(quantizer.quantizeWeight(w));
            // Back to the original channel order.
            return quantizer.permutation().inverse().applyToColumns(
                permuted);
        });

    auto sim = std::make_shared<HookQuantSimulator>();
    sim->setActHook([quantizers](const ActivationSite &site,
                                 const Tensor &x) {
        return quantizers
            ->at({site.layer, static_cast<int>(site.site)})
            .fakeQuantize(x);
    });
    sim->setKvQuantizer(config.kv);
    return {std::move(model), std::move(sim)};
}

TEST(QuantizedDecoder, MatchesFakeQuantTwin)
{
    const Harness h = makeHarness(77);
    QuantizedDecoderConfig config;
    // Per-token KV quantization groups: the incremental cache and the
    // twin's whole-sequence fake quantization then derive identical
    // parameters, isolating the packed-kernel comparison. (With
    // multi-token groups the incremental path legitimately uses
    // partial-group scales while the cache grows.)
    config.kv = KvQuantConfig{4, 1, true};
    QuantizedDecoder decoder(h.teacher, h.calibration, config);
    const Twin twin = makeTwin(h, config);

    const std::vector<int32_t> tokens{3, 11, 42, 7, 29, 55};
    const Tensor twin_logits =
        twin.model.forward(tokens, twin.sim.get());

    for (size_t t = 0; t < tokens.size(); ++t) {
        const std::vector<float> logits = decoder.step(tokens[t]);
        double scale = 1.0;
        for (int64_t v = 0; v < 64; ++v) {
            scale = std::max(scale,
                             std::fabs(static_cast<double>(
                                 twin_logits.at(
                                     static_cast<int64_t>(t), v))));
        }
        for (int64_t v = 0; v < 64; ++v) {
            ASSERT_NEAR(logits[static_cast<size_t>(v)],
                        twin_logits.at(static_cast<int64_t>(t), v),
                        0.02 * scale + 0.02)
                << "position " << t << " vocab " << v;
        }
    }
}

TEST(QuantizedDecoder, ReportsW4A4Fraction)
{
    const Harness h = makeHarness(78);
    QuantizedDecoder decoder(h.teacher, h.calibration);
    EXPECT_GT(decoder.w4a4ComputeFraction(), 0.4);
    EXPECT_LE(decoder.w4a4ComputeFraction(), 1.0);
}

TEST(QuantizedDecoder, PerplexityStaysUsable)
{
    // The packed path's language-modeling quality tracks the fake-
    // quant FMPQ row: usable, far from the W4A4 collapse.
    const Harness h = makeHarness(79);
    QuantizedDecoderConfig config;

    double packed_nll = 0.0;
    int64_t packed_tokens = 0;
    for (const auto &sequence : h.eval.sequences) {
        QuantizedDecoder decoder(h.teacher, h.calibration, config);
        std::vector<float> logits = decoder.step(sequence[0]);
        for (size_t t = 1; t < sequence.size(); ++t) {
            // NLL of the observed next token under the decoder.
            double max_logit = logits[0];
            for (float v : logits)
                max_logit =
                    std::max(max_logit, static_cast<double>(v));
            double sum = 0.0;
            for (float v : logits)
                sum += std::exp(static_cast<double>(v) - max_logit);
            const double p =
                std::exp(static_cast<double>(
                             logits[static_cast<size_t>(
                                 sequence[t])]) -
                         max_logit) /
                sum;
            packed_nll -= std::log(std::max(p, 1e-12));
            ++packed_tokens;
            logits = decoder.step(sequence[t]);
        }
    }
    const double packed_ppl =
        std::exp(packed_nll / static_cast<double>(packed_tokens));

    double fp_nll = 0.0;
    int64_t fp_tokens = 0;
    for (const auto &sequence : h.eval.sequences) {
        const auto [nll, count] = h.teacher.sequenceNll(sequence);
        fp_nll += nll;
        fp_tokens += count;
    }
    const double fp_ppl =
        std::exp(fp_nll / static_cast<double>(fp_tokens));

    EXPECT_LT(packed_ppl, fp_ppl * 6.0); // usable, not collapsed
    EXPECT_GE(packed_ppl, fp_ppl * 0.9);
}

TEST(QuantizedDecoder, PlainMlpModelSupported)
{
    TinyTransformerConfig config;
    config.vocab_size = 64;
    config.hidden_size = 64;
    config.num_heads = 4;
    config.num_kv_heads = 2;
    config.num_layers = 2;
    config.intermediate_size = 128;
    config.gated_mlp = false;
    config.seed = 80;
    const auto teacher = TinyTransformer::random(config);
    Rng rng(81);
    const Dataset calib = sampleDataset(teacher, 2, 20, rng);
    const CalibrationData calibration =
        CalibrationData::collect(teacher, calib);
    QuantizedDecoder decoder(teacher, calibration);
    const std::vector<float> logits = decoder.prefill({1, 2, 3});
    EXPECT_EQ(logits.size(), 64u);
    EXPECT_EQ(decoder.position(), 3);
}

} // namespace
} // namespace comet
