/**
 * @file
 * Unit tests for the synthetic activation/weight generators.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/model/synthetic.h"

namespace comet {
namespace {

TEST(SyntheticActivations, OutlierCountMatchesFraction)
{
    SyntheticActivationConfig config;
    config.channels = 1000;
    config.outlier_fraction = 0.01;
    const SyntheticActivationModel model(config);
    EXPECT_EQ(model.outlierChannels().size(), 10u);
}

TEST(SyntheticActivations, OutlierChannelsHaveLargeGains)
{
    SyntheticActivationConfig config;
    config.channels = 256;
    config.outlier_fraction = 0.02;
    config.outlier_scale = 40.0;
    const SyntheticActivationModel model(config);
    for (int64_t c : model.outlierChannels())
        EXPECT_GT(model.gains()[static_cast<size_t>(c)], 10.0f);
    // Normal channels stay at gain 1.
    int64_t normals = 0;
    for (int64_t c = 0; c < 256; ++c) {
        if (model.gains()[static_cast<size_t>(c)] == 1.0f)
            ++normals;
    }
    EXPECT_EQ(normals, 256 - static_cast<int64_t>(
                                 model.outlierChannels().size()));
}

TEST(SyntheticActivations, SamplesReflectGains)
{
    SyntheticActivationConfig config;
    config.channels = 128;
    config.outlier_fraction = 0.05;
    config.outlier_scale = 50.0;
    const SyntheticActivationModel model(config);
    Rng rng(1);
    const Tensor x = model.sample(512, rng);

    // Empirical per-channel stddev tracks the planted gain.
    for (int64_t c : model.outlierChannels()) {
        double ss = 0.0;
        for (int64_t t = 0; t < 512; ++t)
            ss += static_cast<double>(x.at(t, c)) * x.at(t, c);
        const double stddev = std::sqrt(ss / 512.0);
        EXPECT_GT(stddev, 10.0) << "outlier channel " << c;
    }
}

TEST(SyntheticActivations, DeterministicForFixedSeed)
{
    SyntheticActivationConfig config;
    config.seed = 42;
    const SyntheticActivationModel a(config), b(config);
    EXPECT_EQ(a.outlierChannels(), b.outlierChannels());
    Rng rng_a(7), rng_b(7);
    const Tensor xa = a.sample(4, rng_a);
    const Tensor xb = b.sample(4, rng_b);
    EXPECT_DOUBLE_EQ(maxAbsError(xa, xb), 0.0);
}

TEST(SyntheticActivations, ProfilesDiffer)
{
    const auto llama = llama7bActivationProfile();
    const auto opt = opt13bActivationProfile();
    const auto qwen = qwen72bActivationProfile();
    EXPECT_EQ(llama.channels, 4096);
    EXPECT_EQ(opt.channels, 5120);
    EXPECT_EQ(qwen.channels, 8192);
    // OPT is known for denser/larger outliers.
    EXPECT_GT(opt.outlier_fraction, llama.outlier_fraction);
    EXPECT_GT(opt.outlier_scale, llama.outlier_scale);
}

TEST(SampleWeights, UnitGainScaling)
{
    Rng rng(3);
    const Tensor w = sampleWeights(64, 256, rng);
    // Mean square ~ 1/in.
    EXPECT_NEAR(w.meanSquare(), 1.0 / 256.0, 0.2 / 256.0);
}

TEST(SyntheticActivationsDeathTest, InvalidConfigRejected)
{
    SyntheticActivationConfig config;
    config.channels = 0;
    EXPECT_DEATH(SyntheticActivationModel{config}, "CHECK failed");
}

} // namespace
} // namespace comet
