/**
 * @file
 * Unit tests for the roofline analysis (paper Figure 2).
 */
#include <gtest/gtest.h>

#include "comet/gpusim/roofline.h"

namespace comet {
namespace {

TEST(Roofline, AttainableBelowRidgeIsBandwidthBound)
{
    EXPECT_DOUBLE_EQ(rooflineAttainable(100.0, 10.0, 2.0), 20.0);
}

TEST(Roofline, AttainableAboveRidgeIsPeak)
{
    EXPECT_DOUBLE_EQ(rooflineAttainable(100.0, 10.0, 50.0), 100.0);
}

TEST(Roofline, ActActOperatorIsMemoryBoundAtAnyKvPrecision)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    for (int bits : {4, 8, 16}) {
        const OperatorPoint point = analyzeActActOperator(spec, bits);
        EXPECT_TRUE(point.memory_bound) << bits << " bits";
    }
}

TEST(Roofline, Kv4QuadruplesActActThroughput)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    const OperatorPoint fp16 = analyzeActActOperator(spec, 16);
    const OperatorPoint int4 = analyzeActActOperator(spec, 4);
    EXPECT_NEAR(int4.attainable_ops / fp16.attainable_ops, 4.0, 1e-9);
}

TEST(Roofline, Fp16ActActIntensityIsOne)
{
    // The paper states the act-act operator's intensity is fixed at
    // 1.0 (FP16 KV: 2 ops per 2 bytes).
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_DOUBLE_EQ(analyzeActActOperator(spec, 16).intensity, 1.0);
}

TEST(Roofline, WeightActTransitionsWithBatch)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    const OperatorPoint small =
        analyzeWeightActOperator(spec, 16, 16, 1);
    const OperatorPoint large =
        analyzeWeightActOperator(spec, 16, 16, 512);
    EXPECT_TRUE(small.memory_bound);
    EXPECT_FALSE(large.memory_bound);
}

TEST(Roofline, CrossoverNearRidgeBatch)
{
    // FP16 ridge = 312e12 / 2e12 = 156 ops/byte = batch 156 at 2B
    // weights: batch 128 still memory-bound, batch 256 compute-bound.
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_TRUE(
        analyzeWeightActOperator(spec, 16, 16, 128).memory_bound);
    EXPECT_FALSE(
        analyzeWeightActOperator(spec, 16, 16, 256).memory_bound);
}

TEST(Roofline, LowerWeightPrecisionRaisesIntensity)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    const OperatorPoint w16 =
        analyzeWeightActOperator(spec, 16, 16, 8);
    const OperatorPoint w4 = analyzeWeightActOperator(spec, 16, 4, 8);
    EXPECT_NEAR(w4.intensity / w16.intensity, 4.0, 1e-9);
}

TEST(Roofline, RidgeIntensityLadder)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_DOUBLE_EQ(ridgeIntensity(spec, 16), 156.0);
    EXPECT_DOUBLE_EQ(ridgeIntensity(spec, 8), 312.0);
    EXPECT_DOUBLE_EQ(ridgeIntensity(spec, 4), 624.0);
}

TEST(RooflineDeathTest, RejectsNonPositiveInputs)
{
    EXPECT_DEATH(rooflineAttainable(0.0, 1.0, 1.0), "CHECK failed");
    EXPECT_DEATH(
        analyzeWeightActOperator(GpuSpec::a100Sxm480G(), 16, 16, 0),
        "CHECK failed");
}

} // namespace
} // namespace comet
