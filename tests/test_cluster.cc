/**
 * @file
 * Tests for the multi-replica cluster router: single-server
 * equivalence, placement affinity (replica-local prefix reuse),
 * graceful drain with zero dropped streams, cross-replica fair
 * admission, and bit-identical replays across thread counts.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "comet/chaos/harness.h"
#include "comet/chaos/script.h"
#include "comet/cluster/cluster_loadgen.h"
#include "comet/cluster/router.h"
#include "comet/obs/metrics.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

namespace comet {
namespace cluster {
namespace {

using server::LoadgenConfig;
using server::LoadgenReport;
using server::RequestOutcome;
using server::StreamEventKind;

/** The small KV-bound engine every cluster test serves against. */
EngineConfig
testEngineConfig(int64_t kv_blocks = 2048)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 32;
    return engineConfigWithKvBlocks(config, kv_blocks);
}

ClusterConfig
clusterConfig(const ServingEngine *engine, int replicas,
              const LoadgenConfig &workload,
              RoutingPolicy policy = RoutingPolicy::kConsistentHash)
{
    ClusterConfig config;
    for (int r = 0; r < replicas; ++r) {
        ReplicaSpec spec;
        spec.engine = engine;
        config.replicas.push_back(spec);
    }
    config.policy = policy;
    config.server.tenants = server::loadgenTenants(workload);
    config.server.max_batch = 16;
    return config;
}

class ClusterTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::MetricsRegistry::global().reset();
    }
};

TEST_F(ClusterTest, OneReplicaClusterMatchesBareServer)
{
    const ServingEngine engine(testEngineConfig());
    const LoadgenConfig workload =
        server::mixedSloWorkload(31, /*smoke=*/true);

    server::ServerConfig server_config;
    server_config.tenants = server::loadgenTenants(workload);
    server_config.max_batch = 16;
    server::Server server(&engine, server_config);
    const LoadgenReport single = runLoadgen(&server, workload);
    server.stop();

    ClusterRouter router(clusterConfig(&engine, 1, workload));
    const LoadgenReport routed =
        runClusterLoadgen(&router, workload);
    router.stop(/*cancel_in_flight=*/false);

    // Token-stream equality, request by request: same verdicts, same
    // token counts, same virtual timestamps.
    ASSERT_EQ(single.outcomes.size(), routed.outcomes.size());
    for (size_t i = 0; i < single.outcomes.size(); ++i) {
        const RequestOutcome &a = single.outcomes[i];
        const RequestOutcome &b = routed.outcomes[i];
        EXPECT_EQ(a.terminal, b.terminal) << "id " << i;
        EXPECT_EQ(a.tokens, b.tokens) << "id " << i;
        EXPECT_DOUBLE_EQ(a.first_token_us, b.first_token_us)
            << "id " << i;
        EXPECT_DOUBLE_EQ(a.last_token_us, b.last_token_us)
            << "id " << i;
        if (b.terminal == StreamEventKind::kRejected)
            EXPECT_TRUE(b.replica == -1 || b.replica == 0);
        else
            EXPECT_EQ(b.replica, 0);
    }
    EXPECT_DOUBLE_EQ(single.makespan_us, routed.makespan_us);
    EXPECT_EQ(server::renderLoadgenReport(single),
              server::renderLoadgenReport(routed));

    const ClusterStats stats = router.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<int64_t>(routed.outcomes.size()));
    EXPECT_EQ(stats.routed, stats.submitted - stats.rejected);
}

TEST_F(ClusterTest, HashAffinityKeepsPrefixReuseReplicaLocal)
{
    const ServingEngine engine(testEngineConfig());
    LoadgenConfig workload =
        server::mixedSloWorkload(7, /*smoke=*/true);
    // Real prompt content drawn from shared per-tenant pools, and
    // prefix caching on: the traffic the hash policy exists for.
    for (server::LoadgenTenant &tenant : workload.tenants) {
        tenant.shared_prompt_pools = 2;
        tenant.admission.prefix_caching = true;
    }

    ClusterConfig config = clusterConfig(
        &engine, 4, workload, RoutingPolicy::kConsistentHash);
    config.server.enable_prefix_cache = true;
    for (server::TenantConfig &tenant : config.server.tenants)
        tenant.prefix_caching = true;
    ClusterRouter router(config);
    const LoadgenReport report =
        runClusterLoadgen(&router, workload);

    // Placement affinity: every pair of requests sharing (tenant,
    // leading prompt tokens) landed on the same replica — prefix
    // reuse never needs to cross a replica boundary, which is also
    // the isolation property (replicas share no cache state).
    const std::vector<server::LoadgenRequest> generated =
        server::generateLoadgenWorkload(workload);
    std::map<std::pair<int, int32_t>, int> group_replica;
    for (size_t i = 0; i < generated.size(); ++i) {
        if (report.outcomes[i].replica < 0)
            continue;
        ASSERT_FALSE(generated[i].prompt_ids.empty());
        const std::pair<int, int32_t> group = {
            generated[i].tenant, generated[i].prompt_ids[0]};
        auto it = group_replica.find(group);
        if (it == group_replica.end()) {
            group_replica.emplace(group,
                                  report.outcomes[i].replica);
        } else {
            EXPECT_EQ(it->second, report.outcomes[i].replica)
                << "tenant " << group.first << " pool prompt moved "
                << "across replicas (request " << i << ")";
        }
    }
    EXPECT_GT(group_replica.size(), 1u);

    // The grafts actually happened, replica-locally.
    int64_t prefix_hits = 0;
    for (int r = 0; r < router.numReplicas(); ++r)
        prefix_hits += router.replicaStats(r).prefix_hits;
    EXPECT_GT(prefix_hits, 0);
    router.stop(/*cancel_in_flight=*/false);
}

TEST_F(ClusterTest, ScheduledDrainCompletesAllStreams)
{
    const ServingEngine engine(testEngineConfig());
    const LoadgenConfig workload =
        server::mixedSloWorkload(11, /*smoke=*/true);

    ClusterConfig config = clusterConfig(
        &engine, 4, workload, RoutingPolicy::kWeightedRoundRobin);
    // Drain replica 2 mid-workload: the smoke mix spans several
    // virtual seconds, so 0.4 s lands between arrivals.
    ScheduledDrain drain;
    drain.replica = 2;
    drain.at_us = 4e5;
    config.drains.push_back(drain);
    ClusterRouter router(config);
    const LoadgenReport report =
        runClusterLoadgen(&router, workload);

    const ClusterStats stats = router.stats();
    EXPECT_EQ(stats.drains, 1);
    EXPECT_EQ(stats.drains_skipped, 0);

    // Zero dropped streams: every submission ended kFinished or
    // kRejected — never kCancelled — and token conservation holds
    // against the summed replica counters.
    EXPECT_EQ(report.cancelled, 0);
    EXPECT_EQ(report.completed + report.rejected, report.submitted);
    int64_t replica_tokens = 0;
    for (int r = 0; r < router.numReplicas(); ++r)
        replica_tokens += router.replicaStats(r).streamed_tokens;
    EXPECT_EQ(report.tokens, replica_tokens);

    // Nothing was routed to the drained replica after the drain
    // fired, but it did serve traffic before.
    EXPECT_GT(stats.routed_per_replica[2], 0);
    for (const RequestOutcome &outcome : report.outcomes) {
        if (outcome.arrival_us >= drain.at_us)
            EXPECT_NE(outcome.replica, 2)
                << "arrival at " << outcome.arrival_us;
    }
    router.stop(/*cancel_in_flight=*/false);
}

TEST_F(ClusterTest, DrainingLastReplicaIsSkipped)
{
    const ServingEngine engine(testEngineConfig());
    const LoadgenConfig workload =
        server::mixedSloWorkload(13, /*smoke=*/true);

    ClusterConfig config = clusterConfig(&engine, 2, workload);
    for (int r = 0; r < 2; ++r) {
        ScheduledDrain drain;
        drain.replica = r;
        drain.at_us = 1e5;
        config.drains.push_back(drain);
    }
    ClusterRouter router(config);
    const LoadgenReport report =
        runClusterLoadgen(&router, workload);

    // The first drain fires; the second would leave zero active
    // replicas and is skipped — the workload still completes.
    const ClusterStats stats = router.stats();
    EXPECT_EQ(stats.drains, 1);
    EXPECT_EQ(stats.drains_skipped, 1);
    EXPECT_EQ(report.cancelled, 0);
    EXPECT_EQ(report.completed + report.rejected, report.submitted);
    router.stop(/*cancel_in_flight=*/false);
}

TEST_F(ClusterTest, PoliciesSpreadLoadAcrossReplicas)
{
    const ServingEngine engine(testEngineConfig());
    const LoadgenConfig workload =
        server::mixedSloWorkload(17, /*smoke=*/true);
    for (RoutingPolicy policy :
         {RoutingPolicy::kLeastLoaded,
          RoutingPolicy::kWeightedRoundRobin}) {
        obs::MetricsRegistry::global().reset();
        ClusterRouter router(
            clusterConfig(&engine, 4, workload, policy));
        const LoadgenReport report =
            runClusterLoadgen(&router, workload);
        EXPECT_EQ(report.completed + report.rejected,
                  report.submitted)
            << routingPolicyName(policy);
        const ClusterStats stats = router.stats();
        for (int r = 0; r < 4; ++r) {
            EXPECT_GT(stats.routed_per_replica[static_cast<size_t>(
                          r)],
                      0)
                << routingPolicyName(policy) << " replica " << r;
        }
        // The per-policy placement counter matched the routed count.
        EXPECT_EQ(obs::MetricsRegistry::global()
                      .counter(std::string("cluster.policy.") +
                               routingPolicyName(policy) +
                               ".placements")
                      .value(),
                  stats.routed);
        router.stop(/*cancel_in_flight=*/false);
    }
}

TEST_F(ClusterTest, PerReplicaMetricsNamespacesAreDisjoint)
{
    const ServingEngine engine(testEngineConfig());
    const LoadgenConfig workload =
        server::mixedSloWorkload(19, /*smoke=*/true);
    ClusterRouter router(clusterConfig(&engine, 2, workload));
    const LoadgenReport report =
        runClusterLoadgen(&router, workload);
    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    // Each replica publishes under its own prefix; the summed
    // per-replica submissions equal the routed total.
    const int64_t r0 =
        registry.counter("cluster.replica.0.submitted").value();
    const int64_t r1 =
        registry.counter("cluster.replica.1.submitted").value();
    EXPECT_GT(r0, 0);
    EXPECT_GT(r1, 0);
    EXPECT_EQ(r0 + r1, router.stats().routed);
    EXPECT_EQ(registry.counter("cluster.routed").value(),
              router.stats().routed);
    EXPECT_EQ(registry.counter("cluster.submitted").value(),
              report.submitted);
    // The bare "server.*" namespace stayed empty: replicas never
    // leak into the single-server names.
    EXPECT_EQ(registry.counter("server.submitted").value(), 0);
    router.stop(/*cancel_in_flight=*/false);
}

TEST_F(ClusterTest, RendersPerReplicaReport)
{
    const ServingEngine engine(testEngineConfig());
    const LoadgenConfig workload =
        server::mixedSloWorkload(23, /*smoke=*/true);
    ClusterRouter router(clusterConfig(&engine, 2, workload));
    const LoadgenReport report =
        runClusterLoadgen(&router, workload);
    const std::string rendered =
        renderClusterLoadgenReport(report, 2);
    EXPECT_NE(rendered.find("replica"), std::string::npos);
    EXPECT_NE(rendered.find("ttft p99"), std::string::npos);
    // Re-rendering is byte-stable.
    EXPECT_EQ(rendered, renderClusterLoadgenReport(report, 2));
    router.stop(/*cancel_in_flight=*/false);
}

TEST_F(ClusterTest, ReplicaSeedsAreDistinctAndStable)
{
    EXPECT_EQ(server::deriveReplicaSeed(42, 0),
              server::deriveReplicaSeed(42, 0));
    EXPECT_NE(server::deriveReplicaSeed(42, 0),
              server::deriveReplicaSeed(42, 1));
    EXPECT_NE(server::deriveReplicaSeed(42, 0),
              server::deriveReplicaSeed(43, 0));
    EXPECT_NE(server::deriveReplicaSeed(42, 0), 42u);
}

TEST_F(ClusterTest, FaultedClusterReplaysBitIdenticallyAcrossThreads)
{
    chaos::ChaosScriptConfig config;
    config.seed = 29;
    config.steps = 300;
    const std::vector<chaos::ChaosStep> script =
        chaos::generateChaosScript(config);
    chaos::ChaosFaultConfig faults;
    faults.seed = 29;
    faults.route_every = 7;
    faults.drain_every = 41;

    ThreadPool::setGlobalThreads(1);
    const chaos::ClusterChaosRunResult serial =
        chaos::runClusterChaosScript(script, config, &faults, 4,
                                     RoutingPolicy::kConsistentHash);
    ThreadPool::setGlobalThreads(8);
    const chaos::ClusterChaosRunResult pooled =
        chaos::runClusterChaosScript(script, config, &faults, 4,
                                     RoutingPolicy::kConsistentHash);
    ThreadPool::setGlobalThreads(0); // back to the environment pick

    EXPECT_TRUE(serial.ok) << serial.failure;
    EXPECT_TRUE(pooled.ok) << pooled.failure;
    ASSERT_FALSE(serial.event_log.empty());
    EXPECT_EQ(serial.event_log, pooled.event_log);
    EXPECT_EQ(serial.replica_streamed_tokens,
              pooled.replica_streamed_tokens);
    EXPECT_EQ(serial.cluster_stats.routed,
              pooled.cluster_stats.routed);
    EXPECT_EQ(serial.cluster_stats.rerouted,
              pooled.cluster_stats.rerouted);
    EXPECT_EQ(serial.cluster_stats.drains,
              pooled.cluster_stats.drains);
    EXPECT_EQ(serial.cluster_stats.routed_per_replica,
              pooled.cluster_stats.routed_per_replica);
    // The armed failpoints actually fired.
    EXPECT_GT(serial.cluster_stats.rerouted, 0);
    EXPECT_GT(serial.cluster_stats.drains, 0);
}

TEST_F(ClusterTest, UnfaultedClusterSoakHoldsAllInvariants)
{
    chaos::ChaosScriptConfig config;
    config.seed = 37;
    config.steps = 250;
    const std::vector<chaos::ChaosStep> script =
        chaos::generateChaosScript(config);
    const chaos::ClusterChaosRunResult result =
        chaos::runClusterChaosScript(script, config, nullptr, 3,
                                     RoutingPolicy::kLeastLoaded);
    EXPECT_TRUE(result.ok) << result.failure;
    EXPECT_GT(result.replica_completed, 0);
    EXPECT_FALSE(result.event_log.empty());
}

} // namespace
} // namespace cluster
} // namespace comet
