/**
 * @file
 * Cross-module integration tests: the full FMPQ -> packed layout ->
 * W4Ax kernel path against float references, and algorithm/system
 * consistency checks spanning quant, kernel, gpusim and serve.
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/gpusim/kernel_sim.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/layer_shapes.h"
#include "comet/model/synthetic.h"
#include "comet/serve/engine.h"

namespace comet {
namespace {

TEST(Integration, FullQuantizeComputePath)
{
    // Calibrate FMPQ on synthetic LLM-like activations, quantize a
    // linear layer for real (packed nibbles, interleaved W4A8 layout,
    // fast conversion), run the emulated kernel, and confirm the
    // result approximates the float GEMM with INT4-level error while
    // matching the dequantized reference bit-for-bit.
    Rng rng(1);
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.02;
    act_config.outlier_scale = 35.0;
    act_config.seed = 2;
    const SyntheticActivationModel activations(act_config);

    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    const Tensor calib = activations.sample(128, rng);
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, fmpq_config);

    const Tensor x = activations.sample(24, rng);
    const Tensor w = sampleWeights(32, 256, rng);
    const auto qa = quantizer.quantize(x);
    const auto qw = quantizer.quantizeWeight(w);

    W4AxGemmConfig kernel_config;
    kernel_config.tile_m = 16;
    kernel_config.tile_n = 16;
    kernel_config.tile_k = 64;
    const W4AxGemm kernel(qw, quantizer.blockPrecisions(),
                          kernel_config);
    W4AxGemmStats stats;
    const Tensor out = kernel.run(qa, &stats);

    EXPECT_LT(relativeError(gemmW4AxReference(qa, qw), out), 1e-5);
    EXPECT_LT(relativeError(gemmFloat(x, w), out), 0.3);
    EXPECT_GT(stats.w4a4TileFraction(), 0.5);
}

TEST(Integration, FmpqBeatsNaiveInt4OnLayerOutput)
{
    // The algorithm-level claim behind Table 1, measured at a single
    // layer: mixed-precision activations preserve the GEMM output far
    // better than uniform INT4.
    Rng rng(3);
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.02;
    act_config.seed = 4;
    const SyntheticActivationModel activations(act_config);
    const Tensor calib = activations.sample(128, rng);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, fmpq_config);

    const Tensor x = activations.sample(16, rng);
    const Tensor w = sampleWeights(32, 256, rng);
    const Tensor reference = gemmFloat(x, w);

    const Tensor fmpq_out =
        gemmFloat(quantizer.fakeQuantize(x), w);
    const Tensor naive_out = gemmFloat(fakeQuantPerRow(x, 4), w);
    EXPECT_LT(relativeError(reference, fmpq_out) * 2.0,
              relativeError(reference, naive_out));
}

TEST(Integration, KernelStatsMatchSchedulerInputs)
{
    // The W4A4 fraction the emulated kernel observes equals the
    // fraction the cost model's scheduler is configured with.
    Rng rng(5);
    SyntheticActivationConfig act_config;
    act_config.channels = 512;
    act_config.outlier_fraction = 0.01;
    act_config.seed = 6;
    const SyntheticActivationModel activations(act_config);
    const Tensor calib = activations.sample(64, rng);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 128;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, fmpq_config);

    const Tensor x = activations.sample(8, rng);
    const Tensor w = sampleWeights(16, 512, rng);
    const auto qa = quantizer.quantize(x);
    const auto qw = quantizer.quantizeWeight(w);
    W4AxGemmConfig kernel_config;
    kernel_config.tile_m = 8;
    kernel_config.tile_n = 16;
    kernel_config.tile_k = 128;
    W4AxGemmStats stats;
    W4AxGemm(qw, quantizer.blockPrecisions(), kernel_config)
        .run(qa, &stats);
    EXPECT_DOUBLE_EQ(stats.w4a4TileFraction(),
                     quantizer.int4BlockFraction());
}

TEST(Integration, LayerShapesDriveKernelSimulator)
{
    // Every decoder GEMM of every paper model is accepted by the
    // cost model and keeps the COMET-beats-cuBLAS property at decode
    // batch 16.
    const KernelSimulator sim;
    for (const LlmConfig &model : LlmConfig::paperModels()) {
        for (const LayerGemm &gemm : decoderLayerGemms(model, 16)) {
            const double cublas = sim.latencyUs(
                gemm.shape, GemmKernelKind::kCublasW16A16);
            const double comet = sim.latencyUs(
                gemm.shape, GemmKernelKind::kCometW4Ax);
            EXPECT_GT(cublas, comet)
                << model.name << " " << gemm.name;
        }
    }
}

TEST(Integration, EndToEndSpeedupInPaperBallpark)
{
    // COMET vs TRT-LLM-W4A16 at 1024/512 across mid-size models:
    // the paper reports 2.02x on average; accept a generous band.
    double ratio_sum = 0.0;
    int count = 0;
    for (const char *name :
         {"LLaMA-3-8B", "LLaMA-2-13B", "Mistral-7B"}) {
        EngineConfig base;
        base.model = LlmConfig::byName(name);
        base.input_tokens = 1024;
        base.output_tokens = 512;
        base.mode = ServingMode::kTrtW4A16;
        const double baseline = ServingEngine(base)
                                    .measureThroughput()
                                    .tokens_per_second;
        base.mode = ServingMode::kCometW4AxKv4;
        const double comet = ServingEngine(base)
                                 .measureThroughput()
                                 .tokens_per_second;
        ASSERT_GT(baseline, 0.0) << name;
        ratio_sum += comet / baseline;
        ++count;
    }
    const double mean_ratio = ratio_sum / count;
    EXPECT_GT(mean_ratio, 1.3);
    EXPECT_LT(mean_ratio, 4.0);
}

} // namespace
} // namespace comet
