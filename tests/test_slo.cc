/**
 * @file
 * Tests for SLO attainment accounting: per-tenant TTFT/TPOT
 * ok/miss counters on the server (TenantSloStats and the
 * `server.tenant.<name>.slo.*` registry counters), the TraceMetrics
 * attainment helpers, and the load generator's TPOT-SLO columns.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "comet/obs/metrics.h"
#include "comet/serve/engine.h"
#include "comet/serve/trace.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

namespace comet {
namespace server {
namespace {

EngineConfig
testEngineConfig(int64_t kv_blocks = 4096)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 32;
    return engineConfigWithKvBlocks(config, kv_blocks);
}

StreamRequest
streamRequest(int64_t id, double arrival_us, const std::string &tenant,
              int64_t prompt = 64, int64_t output = 4)
{
    StreamRequest request;
    request.id = id;
    request.tenant = tenant;
    request.prompt_tokens = prompt;
    request.max_output_tokens = output;
    request.eos_output_tokens = output;
    request.arrival_us = arrival_us;
    return request;
}

class SloTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::MetricsRegistry::global().reset();
    }
};

TEST_F(SloTest, TenantSloCountersPartitionFinishedStreams)
{
    const ServingEngine engine(testEngineConfig());
    ServerConfig config;
    // "tight" can never meet its budgets, "loose" always does, and
    // "none" has no budgets — its row stays all-zero except finished.
    TenantConfig tight;
    tight.name = "tight";
    tight.ttft_slo_us = 1e-3;
    tight.tpot_slo_us = 1e-3;
    TenantConfig loose;
    loose.name = "loose";
    loose.ttft_slo_us = 1e12;
    loose.tpot_slo_us = 1e12;
    TenantConfig none;
    none.name = "none";
    config.tenants = {tight, loose, none};
    config.max_batch = 16;
    Server server(&engine, config);

    Server::Client client = server.connect();
    int64_t id = 0;
    for (const std::string &tenant : {"tight", "loose", "none"}) {
        // Three multi-token streams (TPOT measurable) plus one
        // single-token stream (TPOT not measurable).
        for (int i = 0; i < 3; ++i) {
            client.submit(streamRequest(++id, 10.0 * id, tenant, 64,
                                        /*output=*/4));
        }
        client.submit(
            streamRequest(++id, 10.0 * id, tenant, 64, /*output=*/1));
    }
    client.close();
    server.drain();

    const ServerStats stats = server.stats();
    ASSERT_EQ(stats.tenant_slo.size(), 3u);

    const TenantSloStats &tight_row = stats.tenant_slo[0];
    EXPECT_EQ(tight_row.tenant, "tight");
    EXPECT_EQ(tight_row.finished, 4);
    EXPECT_EQ(tight_row.ttft_ok, 0);
    EXPECT_EQ(tight_row.ttft_miss, 4);
    EXPECT_EQ(tight_row.tpot_ok, 0);
    EXPECT_EQ(tight_row.tpot_miss, 3); // 1-token stream: no TPOT

    const TenantSloStats &loose_row = stats.tenant_slo[1];
    EXPECT_EQ(loose_row.tenant, "loose");
    EXPECT_EQ(loose_row.finished, 4);
    EXPECT_EQ(loose_row.ttft_ok, 4);
    EXPECT_EQ(loose_row.ttft_miss, 0);
    EXPECT_EQ(loose_row.tpot_ok, 3);
    EXPECT_EQ(loose_row.tpot_miss, 0);

    const TenantSloStats &none_row = stats.tenant_slo[2];
    EXPECT_EQ(none_row.tenant, "none");
    EXPECT_EQ(none_row.finished, 4);
    EXPECT_EQ(none_row.ttft_ok + none_row.ttft_miss, 0);
    EXPECT_EQ(none_row.tpot_ok + none_row.tpot_miss, 0);

    // The registry mirrors the stats rows.
    const obs::MetricsRegistry &registry =
        obs::MetricsRegistry::global();
    EXPECT_EQ(
        registry.counterValue("server.tenant.tight.slo.ttft_miss"),
        4);
    EXPECT_EQ(
        registry.counterValue("server.tenant.tight.slo.tpot_miss"),
        3);
    EXPECT_EQ(registry.counterValue("server.tenant.loose.slo.ttft_ok"),
              4);
    EXPECT_EQ(registry.counterValue("server.tenant.loose.slo.tpot_ok"),
              3);
    server.stop();
}

TEST_F(SloTest, SloCountersAreIdenticalChunkedAndMonolithic)
{
    // Attainment verdicts depend on virtual time, so they are NOT
    // part of the byte-identical-stream guarantee — but the set of
    // finished streams is, and the ok+miss partitions must always
    // cover it exactly.
    const ServingEngine engine(testEngineConfig());
    for (const int64_t chunk : {int64_t{0}, int64_t{64}}) {
        obs::MetricsRegistry::global().reset();
        const LoadgenConfig workload =
            mixedSloWorkload(/*seed=*/5, /*smoke=*/true);
        ServerConfig config;
        config.tenants = loadgenTenants(workload);
        config.max_batch = 16;
        config.chunked_prefill_tokens = chunk;
        Server server(&engine, config);
        const LoadgenReport report = runLoadgen(&server, workload);
        const ServerStats stats = server.stats();
        server.stop();

        ASSERT_EQ(stats.tenant_slo.size(), report.tenants.size());
        int64_t finished = 0;
        for (size_t t = 0; t < stats.tenant_slo.size(); ++t) {
            const TenantSloStats &row = stats.tenant_slo[t];
            finished += row.finished;
            EXPECT_EQ(row.finished, report.tenants[t].completed);
            // Every tenant of the mixed workload has a TTFT budget:
            // the ok/miss partition covers every finished stream.
            EXPECT_EQ(row.ttft_ok + row.ttft_miss, row.finished);
            // The TPOT partition covers the measurable completions —
            // but only for tenants that configured a TPOT budget.
            if (workload.tenants[t].admission.tpot_slo_us > 0.0) {
                EXPECT_EQ(row.tpot_ok + row.tpot_miss,
                          report.tenants[t].tpot_measured);
            } else {
                EXPECT_EQ(row.tpot_ok + row.tpot_miss, 0);
            }
        }
        EXPECT_EQ(finished, stats.completed);
    }
}

TEST_F(SloTest, TraceMetricsAttainmentFractions)
{
    TraceMetrics metrics;
    RequestLatency a;
    a.ttft_us = 100.0;
    a.tpot_us = 10.0;
    a.output_tokens = 4;
    RequestLatency b;
    b.ttft_us = 300.0;
    b.tpot_us = 0.0;
    b.output_tokens = 1; // no measurable TPOT
    RequestLatency c;
    c.ttft_us = 500.0;
    c.tpot_us = 50.0;
    c.output_tokens = 2;
    metrics.per_request = {a, b, c};

    EXPECT_DOUBLE_EQ(metrics.ttftAttainment(1000.0), 1.0);
    EXPECT_DOUBLE_EQ(metrics.ttftAttainment(250.0), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(metrics.ttftAttainment(50.0), 0.0);
    // TPOT attainment is over the 2 requests with >= 2 tokens.
    EXPECT_DOUBLE_EQ(metrics.tpotAttainment(40.0), 0.5);
    EXPECT_DOUBLE_EQ(metrics.tpotAttainment(60.0), 1.0);

    const TraceMetrics empty;
    EXPECT_TRUE(std::isnan(empty.ttftAttainment(100.0)));
    EXPECT_TRUE(std::isnan(empty.tpotAttainment(100.0)));
    // Only unmeasurable completions -> TPOT attainment stays NaN.
    TraceMetrics short_only;
    short_only.per_request = {b};
    EXPECT_TRUE(std::isnan(short_only.tpotAttainment(100.0)));
    EXPECT_DOUBLE_EQ(short_only.ttftAttainment(300.0), 1.0);
}

TEST_F(SloTest, LoadgenReportsTpotSloColumn)
{
    const ServingEngine engine(testEngineConfig());
    const LoadgenConfig workload =
        mixedSloWorkload(/*seed=*/9, /*smoke=*/true);
    ServerConfig config;
    config.tenants = loadgenTenants(workload);
    config.max_batch = 16;
    config.chunked_prefill_tokens = 64;
    Server server(&engine, config);
    const LoadgenReport report = runLoadgen(&server, workload);
    server.stop();

    EXPECT_GT(report.completed, 0);
    bool chat_measured = false;
    for (const LoadgenTenantReport &row : report.tenants) {
        EXPECT_LE(row.tpot_slo_met, row.tpot_measured);
        EXPECT_LE(row.tpot_measured, row.completed);
        EXPECT_LE(row.slo_met, row.completed);
        if (row.name != "longctx" && row.tpot_measured > 0)
            chat_measured = true;
    }
    EXPECT_TRUE(chat_measured);
    const std::string rendered = renderLoadgenReport(report);
    EXPECT_NE(rendered.find("tpot slo"), std::string::npos);
}

} // namespace
} // namespace server
} // namespace comet
