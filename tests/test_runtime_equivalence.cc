/**
 * @file
 * The runtime determinism contract, asserted end to end: every path
 * ported onto the comet::runtime pool produces bit-identical results
 * with a 1-slot pool and an N-slot pool. Covers the W4Ax GEMM
 * (including stats and the ragged n-edge), the float/int reference
 * GEMMs, decode attention (reference, online, quantized, batched),
 * FMPQ quantization sweeps, the packed quantized decoder, and the
 * serving engine's per-request fan-out.
 */
#include <gtest/gtest.h>

#include <vector>

#include "comet/attention/decode_attention.h"
#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/quantized_decoder.h"
#include "comet/model/synthetic.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/engine.h"

namespace comet {
namespace {

/** Pool sizes every path is checked across. */
constexpr int kWidePool = 4;

void
expectBitEqual(const Tensor &a, const Tensor &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (int64_t r = 0; r < a.rows(); ++r) {
        for (int64_t c = 0; c < a.cols(); ++c) {
            ASSERT_EQ(a.at(r, c), b.at(r, c))
                << what << " differs at (" << r << ", " << c << ")";
        }
    }
}

void
expectBitEqual(const std::vector<float> &a,
               const std::vector<float> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " differs at " << i;
}

/** Runs @p fn under a 1-slot global pool and a kWidePool-slot one,
 * returning both results. */
template <typename Fn>
auto
underBothPoolSizes(Fn fn)
{
    ThreadPool::setGlobalThreads(1);
    auto narrow = fn();
    ThreadPool::setGlobalThreads(kWidePool);
    auto wide = fn();
    return std::make_pair(std::move(narrow), std::move(wide));
}

struct W4AxFixture {
    FmpqActivationQuantizer quantizer;
    MixedQuantizedActivation activation;
    BlockQuantizedWeight weight;
    Tensor x;
    Tensor w;
};

W4AxFixture
makeFixture(int64_t tokens, int64_t out_features, int64_t channels,
            int64_t block_size, uint64_t seed)
{
    Rng rng(seed);
    SyntheticActivationConfig act_config;
    act_config.channels = channels;
    act_config.outlier_fraction = 0.03;
    act_config.outlier_scale = 30.0;
    act_config.seed = seed + 1;
    const SyntheticActivationModel model(act_config);

    FmpqConfig fmpq_config;
    fmpq_config.block_size = block_size;
    const Tensor calib = model.sample(64, rng);
    auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, fmpq_config);

    Tensor x = model.sample(tokens, rng);
    Tensor w = sampleWeights(out_features, channels, rng);
    auto activation = quantizer.quantize(x);
    auto weight = quantizer.quantizeWeight(w);
    return {std::move(quantizer), std::move(activation),
            std::move(weight), std::move(x), std::move(w)};
}

void
expectStatsEqual(const W4AxGemmStats &a, const W4AxGemmStats &b)
{
    EXPECT_EQ(a.int4_tiles, b.int4_tiles);
    EXPECT_EQ(a.int8_tiles, b.int8_tiles);
    EXPECT_EQ(a.int4_mac_ops, b.int4_mac_ops);
    EXPECT_EQ(a.int8_mac_ops, b.int8_mac_ops);
    EXPECT_EQ(a.conversion_instructions, b.conversion_instructions);
}

TEST(RuntimeEquivalence, W4AxGemmSequentialVsPooled)
{
    ThreadPool::setGlobalThreads(kWidePool);
    W4AxFixture s = makeFixture(8, 48, 128, 32, 11);
    W4AxGemmConfig sequential;
    sequential.tile_m = 4;
    sequential.tile_n = 8;
    sequential.tile_k = 32;
    sequential.threads = 1;
    W4AxGemmConfig pooled = sequential;
    pooled.threads = 0; // every pool slot

    W4AxGemmStats seq_stats, pool_stats;
    const Tensor seq_out =
        W4AxGemm(s.weight, s.quantizer.blockPrecisions(), sequential)
            .run(s.activation, &seq_stats);
    const Tensor pool_out =
        W4AxGemm(s.weight, s.quantizer.blockPrecisions(), pooled)
            .run(s.activation, &pool_stats);
    expectBitEqual(seq_out, pool_out, "W4Ax GEMM output");
    expectStatsEqual(seq_stats, pool_stats);
}

TEST(RuntimeEquivalence, W4AxGemmOneVsManyPoolSlots)
{
    W4AxFixture s = makeFixture(16, 40, 64, 32, 12);
    auto [narrow, wide] = underBothPoolSizes([&] {
        W4AxGemmConfig config;
        config.tile_m = 8;
        config.tile_n = 16;
        config.tile_k = 32;
        config.threads = 0;
        W4AxGemmStats stats;
        Tensor out =
            W4AxGemm(s.weight, s.quantizer.blockPrecisions(), config)
                .run(s.activation, &stats);
        return std::make_pair(std::move(out), stats);
    });
    expectBitEqual(narrow.first, wide.first, "W4Ax GEMM output");
    expectStatsEqual(narrow.second, wide.second);
}

/** The satellite regression: n_dim % tile_n != 0 under multi-thread
 * partitioning. 40 output features over 16-wide tiles leaves an
 * 8-column ragged strip; every partition boundary must clamp to
 * n_dim on both ends. */
TEST(RuntimeEquivalence, W4AxGemmRaggedEdgeMultiThread)
{
    ThreadPool::setGlobalThreads(kWidePool);
    W4AxFixture s = makeFixture(5, 40, 64, 32, 13);
    ASSERT_NE(40 % 16, 0);
    W4AxGemmConfig config;
    config.tile_m = 4;
    config.tile_n = 16;
    config.tile_k = 32;
    config.threads = kWidePool;
    const W4AxGemm gemm(s.weight, s.quantizer.blockPrecisions(),
                        config);
    const Tensor out = gemm.run(s.activation);
    const Tensor reference = gemmW4AxReference(s.activation, s.weight);
    EXPECT_LT(relativeError(reference, out), 1e-5);

    W4AxGemmConfig sequential = config;
    sequential.threads = 1;
    const Tensor seq_out =
        W4AxGemm(s.weight, s.quantizer.blockPrecisions(), sequential)
            .run(s.activation);
    expectBitEqual(seq_out, out, "ragged-edge W4Ax GEMM output");
}

TEST(RuntimeEquivalence, ReferenceGemms)
{
    Rng rng(21);
    Tensor x(13, 48), w(29, 48);
    for (int64_t r = 0; r < x.rows(); ++r)
        for (int64_t c = 0; c < x.cols(); ++c)
            x.at(r, c) = static_cast<float>(rng.gaussian());
    for (int64_t r = 0; r < w.rows(); ++r)
        for (int64_t c = 0; c < w.cols(); ++c)
            w.at(r, c) = static_cast<float>(rng.gaussian());

    auto [narrow, wide] =
        underBothPoolSizes([&] { return gemmFloat(x, w); });
    expectBitEqual(narrow, wide, "gemmFloat");

    W4AxFixture s = makeFixture(7, 24, 64, 32, 22);
    auto [ref_narrow, ref_wide] = underBothPoolSizes(
        [&] { return gemmW4AxReference(s.activation, s.weight); });
    expectBitEqual(ref_narrow, ref_wide, "gemmW4AxReference");
}

struct AttentionFixture {
    AttentionConfig config;
    std::vector<float> q;
    Tensor k;
    Tensor v;
};

AttentionFixture
makeAttention(int64_t tokens, uint64_t seed)
{
    AttentionConfig config;
    config.num_heads = 8;
    config.num_kv_heads = 4;
    config.head_dim = 16;
    config.chunk_tokens = 16;
    Rng rng(seed);
    std::vector<float> q(static_cast<size_t>(config.qDim()));
    for (float &value : q)
        value = static_cast<float>(rng.gaussian());
    Tensor k(tokens, config.kvDim()), v(tokens, config.kvDim());
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t c = 0; c < config.kvDim(); ++c) {
            k.at(t, c) = static_cast<float>(rng.gaussian());
            v.at(t, c) = static_cast<float>(rng.gaussian());
        }
    }
    return {config, std::move(q), std::move(k), std::move(v)};
}

TEST(RuntimeEquivalence, DecodeAttentionPaths)
{
    const AttentionFixture f = makeAttention(70, 31);

    auto [ref_narrow, ref_wide] = underBothPoolSizes([&] {
        return decodeAttentionReference(f.config, f.q, f.k, f.v);
    });
    expectBitEqual(ref_narrow, ref_wide, "decodeAttentionReference");

    auto [on_narrow, on_wide] = underBothPoolSizes([&] {
        return decodeAttentionOnline(f.config, f.q, f.k, f.v);
    });
    expectBitEqual(on_narrow, on_wide, "decodeAttentionOnline");

    const KvCacheQuantizer quantizer(KvQuantConfig{4, 32, true});
    const QuantizedKv qk = quantizer.quantize(f.k);
    const QuantizedKv qv = quantizer.quantize(f.v);
    auto [q_narrow, q_wide] = underBothPoolSizes([&] {
        return decodeAttentionQuantized(f.config, f.q, qk, qv,
                                        quantizer);
    });
    expectBitEqual(q_narrow, q_wide, "decodeAttentionQuantized");
}

TEST(RuntimeEquivalence, DecodeAttentionBatch)
{
    // Ragged batch: per-sequence cache lengths differ.
    const AttentionFixture a = makeAttention(33, 41);
    const AttentionFixture b = makeAttention(70, 42);
    const AttentionFixture c = makeAttention(5, 43);
    const std::vector<DecodeBatchItem> batch{
        {&a.q, &a.k, &a.v}, {&b.q, &b.k, &b.v}, {&c.q, &c.k, &c.v}};

    auto [narrow, wide] = underBothPoolSizes([&] {
        return decodeAttentionOnlineBatch(a.config, batch);
    });
    ASSERT_EQ(narrow.size(), batch.size());
    ASSERT_EQ(wide.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        expectBitEqual(narrow[i], wide[i], "batched attention");

    // Batched output == one-at-a-time output.
    const std::vector<const AttentionFixture *> fixtures{&a, &b, &c};
    for (size_t i = 0; i < fixtures.size(); ++i) {
        const auto single = decodeAttentionOnline(
            a.config, *batch[i].q, *batch[i].k, *batch[i].v);
        expectBitEqual(single, wide[i], "batch vs single attention");
    }
}

TEST(RuntimeEquivalence, FmpqQuantizationSweeps)
{
    Rng rng(51);
    SyntheticActivationConfig act_config;
    act_config.channels = 128;
    act_config.outlier_fraction = 0.05;
    act_config.seed = 52;
    const SyntheticActivationModel model(act_config);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 32;
    const auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    const Tensor x = model.sample(17, rng);
    const Tensor w = sampleWeights(23, 128, rng);

    auto [fq_narrow, fq_wide] = underBothPoolSizes(
        [&] { return quantizer.fakeQuantize(x); });
    expectBitEqual(fq_narrow, fq_wide, "fakeQuantize");

    auto [qa_narrow, qa_wide] =
        underBothPoolSizes([&] { return quantizer.quantize(x); });
    expectBitEqual(qa_narrow.scales, qa_wide.scales,
                   "activation scales");
    for (int64_t t = 0; t < qa_narrow.tokens; ++t) {
        for (int64_t c = 0; c < qa_narrow.channels; ++c) {
            ASSERT_EQ(qa_narrow.int4_data.get(t, c),
                      qa_wide.int4_data.get(t, c));
            ASSERT_EQ(qa_narrow.int8_data.get(t, c),
                      qa_wide.int8_data.get(t, c));
        }
    }

    auto [qw_narrow, qw_wide] = underBothPoolSizes(
        [&] { return quantizer.quantizeWeight(w); });
    expectBitEqual(qw_narrow.scales, qw_wide.scales,
                   "weight scales");
    for (int64_t n = 0; n < qw_narrow.out_features; ++n)
        for (int64_t c = 0; c < qw_narrow.in_channels; ++c)
            ASSERT_EQ(qw_narrow.data.get(n, c),
                      qw_wide.data.get(n, c));
}

TEST(RuntimeEquivalence, QuantizedDecoderEndToEnd)
{
    TinyTransformerConfig model_config;
    model_config.vocab_size = 64;
    model_config.hidden_size = 64;
    model_config.num_heads = 4;
    model_config.num_kv_heads = 2;
    model_config.num_layers = 2;
    model_config.intermediate_size = 128;
    model_config.outlier_fraction = 0.05;
    model_config.outlier_scale = 15.0;
    model_config.seed = 61;
    const auto teacher = TinyTransformer::random(model_config);
    Rng rng(62);
    const Dataset calib = sampleDataset(teacher, 3, 24, rng);
    const auto calibration =
        CalibrationData::collect(teacher, calib);
    const std::vector<int32_t> prompt{3, 17, 42, 8, 25, 60, 1};

    // Rebuilds the decoder under each pool size: covers the parallel
    // site-calibration sweep, the pooled weight quantization, the
    // packed GEMMs, per-head attention, and the LM head.
    auto [narrow, wide] = underBothPoolSizes([&] {
        QuantizedDecoder decoder(teacher, calibration);
        return decoder.prefill(prompt);
    });
    expectBitEqual(narrow, wide, "decoder prefill logits");
}

TEST(RuntimeEquivalence, ServingEnginePerRequestFanOut)
{
    auto measure = [] {
        EngineConfig config;
        config.model = LlmConfig::byName("LLaMA-2-13B");
        config.input_tokens = 512;
        config.output_tokens = 128;
        config.max_batch = 64;
        return ServingEngine(config).measureThroughputAtBatch(48);
    };
    auto [narrow, wide] = underBothPoolSizes(measure);
    EXPECT_EQ(narrow.tokens_per_second, wide.tokens_per_second);
    EXPECT_EQ(narrow.decode_step_us, wide.decode_step_us);
    EXPECT_EQ(narrow.prefill_us, wide.prefill_us);
    EXPECT_EQ(narrow.mean_batch, wide.mean_batch);
    EXPECT_EQ(narrow.peak_batch, wide.peak_batch);
    EXPECT_EQ(narrow.preemptions, wide.preemptions);
    EXPECT_EQ(narrow.mean_kv_utilization, wide.mean_kv_utilization);
}

} // namespace
} // namespace comet
