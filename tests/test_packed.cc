/**
 * @file
 * Unit tests for packed INT4/INT8 tensors, including the full signed
 * value ranges and register-word round trips.
 */
#include <gtest/gtest.h>

#include "comet/tensor/packed.h"

namespace comet {
namespace {

TEST(ClampHelpers, Int4Range)
{
    EXPECT_EQ(clampInt4(-100), -8);
    EXPECT_EQ(clampInt4(-8), -8);
    EXPECT_EQ(clampInt4(0), 0);
    EXPECT_EQ(clampInt4(7), 7);
    EXPECT_EQ(clampInt4(100), 7);
}

TEST(ClampHelpers, Int8Range)
{
    EXPECT_EQ(clampInt8(-1000), -128);
    EXPECT_EQ(clampInt8(127), 127);
    EXPECT_EQ(clampInt8(1000), 127);
}

TEST(Int4Tensor, RoundTripsAllValues)
{
    Int4Tensor t(2, 16);
    int8_t v = -8;
    for (int64_t c = 0; c < 16; ++c) {
        t.set(0, c, v);
        v = static_cast<int8_t>(v == 7 ? -8 : v + 1);
    }
    v = -8;
    for (int64_t c = 0; c < 16; ++c) {
        EXPECT_EQ(t.get(0, c), v) << "column " << c;
        v = static_cast<int8_t>(v == 7 ? -8 : v + 1);
    }
}

TEST(Int4Tensor, NeighboringNibblesDoNotInterfere)
{
    Int4Tensor t(1, 4);
    t.set(0, 0, -1); // 0xF nibble
    t.set(0, 1, 3);
    EXPECT_EQ(t.get(0, 0), -1);
    EXPECT_EQ(t.get(0, 1), 3);
    t.set(0, 0, 0);
    EXPECT_EQ(t.get(0, 1), 3); // untouched
}

TEST(Int4Tensor, RowBytes)
{
    Int4Tensor t(3, 10);
    EXPECT_EQ(t.rowBytes(), 5);
}

TEST(Int4Tensor, WordRoundTrip)
{
    Int4Tensor t(1, 16);
    const uint32_t word = 0x89abcdefu;
    t.storeWord(0, 8, word);
    EXPECT_EQ(t.loadWord(0, 8), word);
    // Individual nibbles decode as signed INT4.
    EXPECT_EQ(t.get(0, 8), 0xf - 16);  // low nibble of 0xef
    EXPECT_EQ(t.get(0, 15), 0x8 - 16); // high nibble of 0x89
}

TEST(Int4TensorDeathTest, OddColumnsRejected)
{
    EXPECT_DEATH(Int4Tensor(1, 3), "even column");
}

TEST(Int4TensorDeathTest, RangeChecked)
{
    Int4Tensor t(1, 4);
    EXPECT_DEATH(t.set(0, 0, 8), "INT4 range");
    EXPECT_DEATH(t.get(0, 4), "CHECK failed");
    // Out of bounds trips the range check...
    EXPECT_DEATH(t.loadWord(0, 4), "CHECK failed");
    // ...and an in-bounds but misaligned word trips the alignment
    // check.
    Int4Tensor wide(1, 16);
    EXPECT_DEATH(wide.loadWord(0, 4), "aligned");
}

TEST(Int8Tensor, RoundTripsExtremes)
{
    Int8Tensor t(2, 4);
    t.set(0, 0, -128);
    t.set(0, 1, 127);
    t.set(1, 3, -1);
    EXPECT_EQ(t.get(0, 0), -128);
    EXPECT_EQ(t.get(0, 1), 127);
    EXPECT_EQ(t.get(1, 3), -1);
}

TEST(Int8Tensor, WordRoundTrip)
{
    Int8Tensor t(1, 8);
    const uint32_t word = 0x80ff7f01u;
    t.storeWord(0, 4, word);
    EXPECT_EQ(t.loadWord(0, 4), word);
    EXPECT_EQ(t.get(0, 4), 0x01);
    EXPECT_EQ(t.get(0, 5), 0x7f);
    EXPECT_EQ(t.get(0, 6), -1);
    EXPECT_EQ(t.get(0, 7), -128);
}

TEST(Int8TensorDeathTest, WordAlignment)
{
    Int8Tensor t(1, 8);
    EXPECT_DEATH(t.loadWord(0, 2), "aligned");
}

/** Property sweep: every (row, col) position stores independently. */
class Int4TensorSweep : public ::testing::TestWithParam<int> {};

TEST_P(Int4TensorSweep, IndependentPositions)
{
    const int8_t value = static_cast<int8_t>(GetParam());
    Int4Tensor t(4, 8);
    for (int64_t r = 0; r < 4; ++r) {
        for (int64_t c = 0; c < 8; ++c)
            t.set(r, c, static_cast<int8_t>((value + r + c) % 16 - 8));
    }
    for (int64_t r = 0; r < 4; ++r) {
        for (int64_t c = 0; c < 8; ++c) {
            EXPECT_EQ(t.get(r, c),
                      static_cast<int8_t>((value + r + c) % 16 - 8));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllInt4Values, Int4TensorSweep,
                         ::testing::Range(0, 16));

} // namespace
} // namespace comet
