/**
 * @file
 * Unit tests for the SmoothQuant baseline.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/model/synthetic.h"
#include "comet/quant/smooth_quant.h"

namespace comet {
namespace {

struct LayerFixture {
    Tensor acts;
    Tensor weight;
};

LayerFixture
makeLayer(uint64_t seed)
{
    Rng rng(seed);
    SyntheticActivationConfig config;
    config.channels = 64;
    config.outlier_fraction = 0.05;
    config.outlier_scale = 30.0;
    config.seed = seed;
    const SyntheticActivationModel model(config);
    return {model.sample(64, rng), sampleWeights(16, 64, rng)};
}

TEST(SmoothQuant, FactorsArePositive)
{
    const LayerFixture f = makeLayer(1);
    const auto layer = SmoothQuantLayer::calibrate(f.acts, f.weight);
    for (float s : layer.smoothingFactors())
        EXPECT_GT(s, 0.0f);
}

TEST(SmoothQuant, OutlierChannelsGetLargerFactors)
{
    const LayerFixture f = makeLayer(2);
    const auto layer = SmoothQuantLayer::calibrate(f.acts, f.weight);
    const ChannelStats stats = computeChannelStats(f.acts);
    const OutlierReport report = detectOutliers(stats);
    ASSERT_FALSE(report.outlier_channels.empty());

    double outlier_mean = 0.0, normal_mean = 0.0;
    int64_t normals = 0;
    for (int64_t c = 0; c < 64; ++c) {
        if (report.is_outlier[static_cast<size_t>(c)]) {
            outlier_mean +=
                layer.smoothingFactors()[static_cast<size_t>(c)];
        } else {
            normal_mean +=
                layer.smoothingFactors()[static_cast<size_t>(c)];
            ++normals;
        }
    }
    outlier_mean /= static_cast<double>(
        report.outlier_channels.size());
    normal_mean /= static_cast<double>(normals);
    EXPECT_GT(outlier_mean, 3.0 * normal_mean);
}

TEST(SmoothQuant, SmoothedActivationsHaveFlatterRange)
{
    const LayerFixture f = makeLayer(3);
    SmoothQuantConfig config;
    config.act_bits = 16; // isolate the smoothing effect
    const auto layer =
        SmoothQuantLayer::calibrate(f.acts, f.weight, config);
    // Apply the smoothing division manually via the factors.
    Tensor smoothed(f.acts.rows(), f.acts.cols());
    for (int64_t t = 0; t < f.acts.rows(); ++t) {
        for (int64_t c = 0; c < f.acts.cols(); ++c) {
            smoothed.at(t, c) =
                f.acts.at(t, c) /
                layer.smoothingFactors()[static_cast<size_t>(c)];
        }
    }
    const ChannelStats before = computeChannelStats(f.acts);
    const ChannelStats after = computeChannelStats(smoothed);
    auto spread = [](const ChannelStats &stats) {
        float max_v = 0.0f;
        for (float v : stats.abs_max)
            max_v = std::max(max_v, v);
        return max_v / std::max(stats.median_abs_max, 1e-6f);
    };
    EXPECT_LT(spread(after), spread(before) / 3.0);
}

TEST(SmoothQuant, EndToEndGemmErrorBeatsNaiveW8A8)
{
    const LayerFixture f = makeLayer(4);
    const Tensor reference = gemmFloat(f.acts, f.weight);

    // SmoothQuant W8A8.
    const auto layer = SmoothQuantLayer::calibrate(f.acts, f.weight);
    const Tensor sq_out = gemmFloat(layer.fakeQuantActivations(f.acts),
                                    layer.quantizedWeight());

    // Naive W8A8 (per-token act, per-channel weight, no smoothing).
    const Tensor naive_out = gemmFloat(fakeQuantPerRow(f.acts, 8),
                                       fakeQuantPerRow(f.weight, 8));

    EXPECT_LT(relativeError(reference, sq_out),
              relativeError(reference, naive_out));
    EXPECT_LT(relativeError(reference, sq_out), 0.05);
}

TEST(SmoothQuantDeathTest, MismatchedChannelsRejected)
{
    Tensor acts(4, 32);
    Tensor weight(8, 64);
    EXPECT_DEATH(SmoothQuantLayer::calibrate(acts, weight), "match");
}

/** Sweep over alpha: all migration strengths must stay numerically
 * sane (positive factors, bounded reconstruction error). */
class SmoothQuantAlphaSweep
    : public ::testing::TestWithParam<double> {};

TEST_P(SmoothQuantAlphaSweep, StableAcrossAlpha)
{
    const LayerFixture f = makeLayer(5);
    SmoothQuantConfig config;
    config.alpha = static_cast<float>(GetParam());
    const auto layer =
        SmoothQuantLayer::calibrate(f.acts, f.weight, config);
    const Tensor reference = gemmFloat(f.acts, f.weight);
    const Tensor out = gemmFloat(layer.fakeQuantActivations(f.acts),
                                 layer.quantizedWeight());
    EXPECT_LT(relativeError(reference, out), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Alphas, SmoothQuantAlphaSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

} // namespace
} // namespace comet
