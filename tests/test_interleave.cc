/**
 * @file
 * Unit tests for weight interleaving and the shared-memory bank
 * conflict simulation (paper Figure 6).
 */
#include <gtest/gtest.h>

#include <set>

#include "comet/common/rng.h"
#include "comet/kernel/convert.h"
#include "comet/kernel/interleave.h"

namespace comet {
namespace {

TEST(InterleavedIndex, MatchesFigure6Assignment)
{
    // Unit word 0 (slots 0..7) holds v0..v3 and v8..v11; word 1 holds
    // v4..v7 and v12..v15 — thread T0's eight values are contiguous.
    EXPECT_EQ(interleavedIndex(0), 0);
    EXPECT_EQ(interleavedIndex(3), 3);
    EXPECT_EQ(interleavedIndex(8), 4);
    EXPECT_EQ(interleavedIndex(11), 7);
    EXPECT_EQ(interleavedIndex(4), 8);
    EXPECT_EQ(interleavedIndex(7), 11);
    EXPECT_EQ(interleavedIndex(12), 12);
    EXPECT_EQ(interleavedIndex(15), 15);
}

TEST(InterleavedIndex, SelfInverse)
{
    for (int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(interleavedIndex(interleavedIndex(i)), i);
}

TEST(InterleavedIndex, SecondUnitOffsets)
{
    EXPECT_EQ(interleavedIndex(16 + 8), 16 + 4);
    EXPECT_EQ(interleavedIndex(16 + 4), 16 + 8);
}

TEST(InterleaveWeights, RoundTrip)
{
    Rng rng(1);
    Int4Tensor w(4, 32);
    for (int64_t r = 0; r < 4; ++r) {
        for (int64_t c = 0; c < 32; ++c) {
            w.set(r, c,
                  static_cast<int8_t>(
                      static_cast<int>(rng.uniformInt(16)) - 8));
        }
    }
    const Int4Tensor round_trip =
        deinterleaveWeights(interleaveWeights(w));
    for (int64_t r = 0; r < 4; ++r) {
        for (int64_t c = 0; c < 32; ++c)
            EXPECT_EQ(round_trip.get(r, c), w.get(r, c));
    }
}

TEST(InterleaveWeights, ValuesOnlyMoveWithinUnits)
{
    Int4Tensor w(1, 32);
    for (int64_t c = 0; c < 32; ++c)
        w.set(0, c, static_cast<int8_t>(c % 16 - 8));
    const Int4Tensor out = interleaveWeights(w);
    // Each 16-value unit must contain the same multiset of values.
    for (int64_t unit = 0; unit < 2; ++unit) {
        std::multiset<int> before, after;
        for (int64_t i = 0; i < 16; ++i) {
            before.insert(w.get(0, unit * 16 + i));
            after.insert(out.get(0, unit * 16 + i));
        }
        EXPECT_EQ(before, after);
    }
}

TEST(SmemSim, ConflictFreeBroadcast)
{
    // All threads reading the same word broadcast in one wavefront.
    std::vector<WarpAccess> accesses;
    for (int t = 0; t < 8; ++t)
        accesses.push_back({t, 0, 4});
    const SmemSimResult result = simulateWarpLoad(accesses);
    EXPECT_EQ(result.wavefronts, 1);
    EXPECT_EQ(result.conflicts, 0);
}

TEST(SmemSim, SameBankDistinctWordsSerialize)
{
    // Words 0 and 32 share bank 0: two wavefronts.
    const SmemSimResult result = simulateWarpLoad(
        {{0, 0, 4}, {1, 32 * 4, 4}});
    EXPECT_EQ(result.wavefronts, 2);
    EXPECT_EQ(result.conflicts, 1);
}

TEST(SmemSim, NaivePatternConflictsInterleavedDoesNot)
{
    const SmemSimResult naive =
        simulateWarpLoad(naiveW4A8AccessPattern(8));
    const SmemSimResult interleaved =
        simulateWarpLoad(interleavedW4A8AccessPattern(8));
    // The overlapping misaligned accesses touch more words and
    // serialize; the interleaved pattern is conflict-free.
    EXPECT_GT(naive.word_touches, interleaved.word_touches);
    EXPECT_EQ(interleaved.conflicts, 0);
    EXPECT_GT(naive.word_touches, 8);
}

TEST(SmemSim, LdmatrixCountHalved)
{
    EXPECT_EQ(naiveW4A8LdmatrixCount(), 2);
    EXPECT_EQ(interleavedW4A8LdmatrixCount(), 1);
}

TEST(PrepareWeights, ComposesInterleaveAndSwitch)
{
    // prepareWeightsForW4A8 must equal locationSwitch applied per
    // register word of the interleaved tensor.
    Rng rng(2);
    Int4Tensor w(2, 32);
    for (int64_t r = 0; r < 2; ++r) {
        for (int64_t c = 0; c < 32; ++c) {
            w.set(r, c,
                  static_cast<int8_t>(
                      static_cast<int>(rng.uniformInt(16)) - 8));
        }
    }
    const Int4Tensor prepared = prepareWeightsForW4A8(w);
    const Int4Tensor interleaved = interleaveWeights(w);
    for (int64_t r = 0; r < 2; ++r) {
        for (int64_t c = 0; c < 32; c += 8) {
            EXPECT_EQ(prepared.loadWord(r, c),
                      locationSwitch(interleaved.loadWord(r, c)));
        }
    }
}

TEST(SmemSimDeathTest, RejectsNonPositiveWidth)
{
    EXPECT_DEATH(simulateWarpLoad({{0, 0, 0}}), "CHECK failed");
}

/** Sweep: the interleaved pattern stays conflict-free at any thread
 * count that fits one shared-memory row. */
class InterleavePatternSweep : public ::testing::TestWithParam<int> {};

TEST_P(InterleavePatternSweep, InterleavedConflictFree)
{
    const int threads = GetParam();
    const SmemSimResult result =
        simulateWarpLoad(interleavedW4A8AccessPattern(threads));
    EXPECT_EQ(result.conflicts, 0);
}

INSTANTIATE_TEST_SUITE_P(Threads, InterleavePatternSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

} // namespace
} // namespace comet
